#!/usr/bin/env python3
"""Compression explorer: Table 1 on your own rendered frames.

Renders one real turbulent-jet frame and one turbulent-vortex frame
(the paper's easy and hard compression cases), pushes each through every
registered codec, and prints size, reduction, PSNR and wall-clock — the
data a user needs to pick a codec for their own network budget, exactly
the §4.2 trade-off discussion.

Run:  python examples/compression_explorer.py [size]
"""

import sys
import time

import numpy as np

from repro import Camera, TransferFunction, get_codec
from repro.compress import percent_reduction, psnr
from repro.data import turbulent_jet, turbulent_vortex
from repro.render import render_volume, to_display_rgb

METHODS = ("raw", "rle", "lzo", "deflate", "bzip", "jpeg", "jpeg+lzo", "jpeg+bzip")


def explore(name: str, frame: np.ndarray) -> None:
    print(f"\n--- {name}: {frame.shape[0]}x{frame.shape[1]} frame, "
          f"{frame.nbytes} raw bytes ---")
    print(f"{'method':>10} {'bytes':>9} {'reduction':>10} {'psnr':>9} "
          f"{'enc ms':>8} {'dec ms':>8}")
    for method in METHODS:
        codec = get_codec(method)
        t0 = time.perf_counter()
        payload = codec.encode_image(frame)
        t_enc = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        decoded = codec.decode_image(payload)
        t_dec = (time.perf_counter() - t0) * 1e3
        quality = psnr(frame, decoded)
        quality_str = "lossless" if quality == float("inf") else f"{quality:6.1f}dB"
        print(
            f"{method:>10} {len(payload):>9} "
            f"{percent_reduction(frame.nbytes, len(payload)):>9.1f}% "
            f"{quality_str:>9} {t_enc:>8.1f} {t_dec:>8.1f}"
        )


def main(size: int = 256) -> None:
    cam = Camera(image_size=(size, size))

    jet = turbulent_jet(scale=0.8, n_steps=50)
    jet_frame = to_display_rgb(
        render_volume(jet.volume(25), TransferFunction.jet(), cam)
    )
    explore("turbulent jet (sparse plume — compresses well)", jet_frame)

    vortex = turbulent_vortex(scale=0.6, n_steps=10)
    vortex_frame = to_display_rgb(
        render_volume(vortex.volume(5), TransferFunction.vortex(), cam)
    )
    explore("turbulent vortex (high coverage — the hard case)", vortex_frame)

    print(
        "\nthe paper's pick: JPEG+LZO — lossy-but-visually-lossless, "
        ">=96% reduction, cheap decode on a weak client."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 256)
