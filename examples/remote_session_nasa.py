#!/usr/bin/env python3
"""Remote session replay: the paper's NASA Ames → UC Davis experiment.

Combines the two halves of this library:

1. the *functional* path renders real frames, compresses them with the
   real JPEG+LZO codec and moves the real bytes through the daemon;
2. the *timing* models replay each frame's actual wire size over the
   calibrated NASA→UCD WAN and the SGI O2 client, answering: "what frame
   rate would this session have sustained on the paper's testbed?" —
   side by side with the X-Window baseline (Table 2 / Figure 8).

Run:  python examples/remote_session_nasa.py
"""

from repro import Camera, RemoteVisualizationSession, turbulent_jet
from repro.net import XDisplayModel
from repro.sim.cluster import NASA_TO_UCD, O2_CLIENT


def main() -> None:
    size = 256
    dataset = turbulent_jet(scale=0.5, n_steps=10)
    x_model = XDisplayModel(route=NASA_TO_UCD, client=O2_CLIENT)
    pixels = size * size

    with RemoteVisualizationSession(
        dataset,
        group_size=4,
        camera=Camera(image_size=(size, size)),
        codec="jpeg+lzo",
    ) as session:
        report = session.run(range(8))

    print(
        f"rendered and shipped {len(report.frames)} frames of "
        f"{size}x{size} through the display daemon "
        f"(mean compression ratio {report.mean_compression_ratio:.1f}x)\n"
    )

    print(f"{'step':>5} {'payload':>9} {'WAN xfer':>9} {'client':>8} "
          f"{'daemon fps':>11} {'X fps':>7}")
    x_time = x_model.frame_time_s(pixels)
    for frame, payload in zip(report.frames, report.payload_bytes):
        transfer = NASA_TO_UCD.transfer_s(payload)
        client = (
            O2_CLIENT.costs.decompress_s(pixels, frame.n_pieces)
            + pixels * 3 / O2_CLIENT.local_display_bandwidth_Bps
            + O2_CLIENT.display_overhead_s
        )
        daemon_fps = 1.0 / (transfer + client)
        print(
            f"{frame.time_step:>5} {payload:>8}B {transfer:>8.3f}s "
            f"{client:>7.3f}s {daemon_fps:>10.2f} {1/x_time:>7.2f}"
        )

    print(
        f"\npaper Table 2 at {size}^2: X Window 0.5 fps, compression 5.6 fps"
    )


if __name__ == "__main__":
    main()
