#!/usr/bin/env python3
"""Shaded perspective orbit: a 'high quality images' showcase.

Renders a camera orbit around one turbulent-jet time step with
perspective projection and Lambert gradient shading, ships each frame
through the §4.1 parallel-compression path (every SPMD rank compresses
and sends its own binary-swap strip), and writes the received frames as
PPM files.

Run:  python examples/shaded_orbit.py [output_dir]
"""

import sys
import time
from pathlib import Path

from repro.core import RemoteVisualizationSession
from repro.data import turbulent_jet
from repro.render import Camera, TransferFunction
from repro.render.ppm import write_ppm


def main(out_dir: str = "orbit_frames") -> None:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    dataset = turbulent_jet(scale=0.5, n_steps=60)
    camera = Camera(
        image_size=(160, 160),
        projection="perspective",
        distance=2.2,
        fov=40.0,
        elevation=25.0,
    )
    with RemoteVisualizationSession(
        dataset,
        group_size=4,
        camera=camera,
        tf=TransferFunction.jet(),
        codec="jpeg+lzo",
        spmd=True,
        parallel_compression=True,
        shading=True,
    ) as session:
        n_frames = 12
        t0 = time.perf_counter()
        for k in range(n_frames):
            azimuth = 360.0 * k / n_frames
            session.display.set_view(azimuth=azimuth, elevation=25.0)
            # let the remote callback arrive before rendering (§5 buffering)
            deadline = time.time() + 1.0
            while (
                session.renderer.pending_view() is None
                and time.time() < deadline
            ):
                time.sleep(0.005)
            frame = session.step(30)  # same time step, orbiting view
            write_ppm(out / f"orbit_{k:03d}.ppm", frame.image)
            print(
                f"frame {k:2d}: azimuth {azimuth:5.1f}  "
                f"{frame.payload_bytes:6d} B in {frame.n_pieces} strips"
            )
        elapsed = time.perf_counter() - t0
        print(
            f"\n{n_frames} perspective frames via parallel compression in "
            f"{elapsed:.1f}s -> {out}/"
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "orbit_frames")
