#!/usr/bin/env python3
"""Partition tuning: find the optimal processor grouping for a machine.

Reproduces the paper's Figure 6/7 methodology as a user-facing workflow:
given a machine, a dataset and an image size, sweep the number of
processor groups L with both the O(1) analytic model and the
discrete-event simulation, print the three §3 metrics, and report the
recommended partitioning.

Run:  python examples/partition_tuning.py [n_procs]
"""

import sys

from repro import PartitionPlan, PerformanceModel, PipelineConfig, simulate_pipeline
from repro.core.partitioning import candidate_partitions
from repro.sim.cluster import RWCP_CLUSTER
from repro.sim.costs import JET_PROFILE


def main(n_procs: int = 64) -> None:
    n_steps = 128
    pixels = 256 * 256
    model = PerformanceModel(
        machine=RWCP_CLUSTER, profile=JET_PROFILE, pixels=pixels
    )

    print(
        f"machine: {RWCP_CLUSTER.name}  P={n_procs}  "
        f"dataset: {JET_PROFILE.name}  steps={n_steps}  image=256x256\n"
    )
    header = (
        f"{'L':>4} {'kind':>14} {'model overall':>14} {'sim overall':>12} "
        f"{'startup':>9} {'inter-frame':>12}"
    )
    print(header)
    print("-" * len(header))

    best_l, best_overall = None, float("inf")
    for l_groups in candidate_partitions(n_procs):
        plan = PartitionPlan(n_procs, l_groups)
        predicted = model.predict(plan, n_steps)
        simulated = simulate_pipeline(
            PipelineConfig(
                n_procs=n_procs,
                n_groups=l_groups,
                n_steps=n_steps,
                profile=JET_PROFILE,
                machine=RWCP_CLUSTER,
                image_size=(256, 256),
            )
        ).metrics
        print(
            f"{l_groups:>4} {plan.kind:>14} {predicted.overall_time:>13.1f}s "
            f"{simulated.overall_time:>11.1f}s {simulated.start_up_latency:>8.2f}s "
            f"{simulated.inter_frame_delay:>11.3f}s"
        )
        if simulated.overall_time < best_overall:
            best_l, best_overall = l_groups, simulated.overall_time

    plan = PartitionPlan(n_procs, best_l)
    print(
        f"\nrecommended partitioning: L={best_l} groups of "
        f"{plan.group_size} processors ({best_overall:.1f}s overall; "
        f"the paper found L=4 optimal for P in 16/32/64)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
