#!/usr/bin/env python3
"""One-command paper reproduction: every table and figure, one report.

Runs the same computations the benchmark harness locks in CI — Figure 6,
Figure 7, Table 1, Figure 8, Table 2, Figure 9, Figure 10, Figure 11 and
the §6 dataset contrasts — prints each artifact, and finishes with a
pipeline timeline so the paper's core idea is visible at a glance.

Run:  python examples/reproduce_paper.py          (full, a few minutes)
      REPRO_BENCH_FAST=1 python examples/reproduce_paper.py  (capped sizes)
"""

import os
import sys
from pathlib import Path

# reuse the benchmark implementations directly
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from _util import IMAGE_SIZES, image_sizes  # noqa: E402

from repro.compress import get_codec, percent_reduction  # noqa: E402
from repro.core import (  # noqa: E402
    PipelineConfig,
    render_timeline,
    simulate_pipeline,
)
from repro.data import turbulent_jet  # noqa: E402
from repro.net import XDisplayModel  # noqa: E402
from repro.render import Camera, TransferFunction, render_volume, to_display_rgb  # noqa: E402
from repro.sim.cluster import (  # noqa: E402
    NASA_O2K,
    NASA_TO_UCD,
    O2_CLIENT,
    RWCP_CLUSTER,
    RWCP_TO_UCD,
)
from repro.sim.costs import JET_PROFILE  # noqa: E402


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def figure6() -> None:
    banner("Figure 6 — overall time vs partitions (paper: optimum L=4)")
    for procs in (16, 32, 64):
        row = {}
        for l_groups in (1, 2, 4, 8, 16, 32, 64):
            if l_groups > procs:
                break
            row[l_groups] = simulate_pipeline(
                PipelineConfig(
                    n_procs=procs, n_groups=l_groups, n_steps=128,
                    profile=JET_PROFILE, machine=RWCP_CLUSTER,
                    image_size=(256, 256),
                )
            ).overall_time
        best = min(row, key=row.get)
        cells = "  ".join(f"L={l}:{t:7.1f}s" for l, t in row.items())
        print(f"P={procs:3d}  {cells}   -> best L={best}")


def figure7() -> None:
    banner("Figure 7 — the three metrics vs partitions, P=32")
    print(f"{'L':>4} {'startup':>9} {'overall':>9} {'inter-frame':>12}")
    for l_groups in (1, 2, 4, 8, 16, 32):
        m = simulate_pipeline(
            PipelineConfig(
                n_procs=32, n_groups=l_groups, n_steps=128,
                profile=JET_PROFILE, machine=RWCP_CLUSTER,
                image_size=(256, 256),
            )
        ).metrics
        print(
            f"{l_groups:>4} {m.start_up_latency:>8.2f}s {m.overall_time:>8.1f}s "
            f"{m.inter_frame_delay:>11.3f}s"
        )


def table1() -> None:
    banner("Table 1 — compressed image sizes (real codecs on real frames)")
    volume = turbulent_jet().volume(40)
    tf = TransferFunction.jet()
    paper = {
        "lzo": [16666, 63386, 235045, 848090],
        "bzip": [12743, 44867, 152492, 482787],
        "jpeg": [1509, 3310, 9184, 28764],
        "jpeg+lzo": [1282, 2667, 6705, 18484],
    }
    sizes = image_sizes()
    frames = {
        s: to_display_rgb(
            render_volume(volume, tf, Camera(image_size=(s, s)))
        )
        for s in sizes
    }
    header = "".join(f"{f'{s}^2':>18}" for s in sizes)
    print(f"{'method':>10}{header}")
    raw_cells = "".join(f"{frames[s].nbytes:>18}" for s in sizes)
    print(f"{'raw':>10}{raw_cells}")
    for method in ("lzo", "bzip", "jpeg", "jpeg+lzo"):
        codec = get_codec(method)
        cells = ""
        for i, s in enumerate(sizes):
            measured = len(codec.encode_image(frames[s]))
            cells += f"{f'{measured}|{paper[method][i]}':>18}"
        print(f"{method:>10}{cells}   (measured|paper)")
    jl = get_codec("jpeg+lzo")
    worst = min(
        percent_reduction(frames[s].nbytes, len(jl.encode_image(frames[s])))
        for s in sizes
    )
    print(f"JPEG+LZO reduction vs raw: >= {worst:.1f}%  (paper: '96% and up')")


def table2_and_fig8() -> None:
    banner("Table 2 / Figure 8 — X vs compression, NASA Ames -> UC Davis")
    x = XDisplayModel(route=NASA_TO_UCD, client=O2_CLIENT)
    paper_x = {128: 7.7, 256: 0.5, 512: 0.1, 1024: 0.03}
    paper_c = {128: 9.0, 256: 5.6, 512: 2.4, 1024: 0.7}
    print(f"{'size':>7} {'X fps (paper)':>16} {'daemon fps (paper)':>20}")
    for s in IMAGE_SIZES:
        px = s * s
        nbytes = NASA_O2K.costs.compressed_frame_bytes(px, JET_PROFILE)
        ct = (
            NASA_TO_UCD.transfer_s(nbytes)
            + O2_CLIENT.costs.decompress_s(px)
            + px * 3 / O2_CLIENT.local_display_bandwidth_Bps
            + O2_CLIENT.display_overhead_s
        )
        print(
            f"{s:>5}^2 {x.frame_rate(px):>8.2f} ({paper_x[s]:>4}) "
            f"{1 / ct:>12.2f} ({paper_c[s]:>4})"
        )


def figure10() -> None:
    banner("Figure 10 — decompressing N sub-images of a 512^2 frame (O2 model)")
    for n in (1, 2, 4, 8, 16, 32, 64):
        t = O2_CLIENT.costs.decompress_s(512 * 512, n)
        bar = "#" * int(t * 400)
        print(f"{n:>3} pieces  {t:6.3f}s  {bar}")


def figure11() -> None:
    banner("Figure 11 — Japan -> UC Davis (paper: X 'almost twice longer')")
    x_jp = XDisplayModel(route=RWCP_TO_UCD, client=O2_CLIENT)
    x_us = XDisplayModel(route=NASA_TO_UCD, client=O2_CLIENT)
    for s in IMAGE_SIZES:
        px = s * s
        nbytes = RWCP_CLUSTER.costs.compressed_frame_bytes(px, JET_PROFILE)
        daemon = RWCP_TO_UCD.transfer_s(nbytes) + O2_CLIENT.costs.decompress_s(px)
        print(
            f"{s:>5}^2  X: {x_jp.frame_time_s(px):7.2f}s "
            f"(vs NASA {x_us.frame_time_s(px):6.2f}s, "
            f"x{x_jp.frame_time_s(px) / x_us.frame_time_s(px):.2f})   "
            f"daemon: {daemon:6.3f}s"
        )


def timeline() -> None:
    banner("The core idea — the pipelined schedule itself (P=32, L=4)")
    result = simulate_pipeline(
        PipelineConfig(
            n_procs=32, n_groups=4, n_steps=24,
            profile=JET_PROFILE, machine=RWCP_CLUSTER,
            image_size=(256, 256),
        )
    )
    print(render_timeline(result, width=96))


def main() -> None:
    print("Reproducing: Ma & Camp, 'High Performance Visualization of")
    print("Time-Varying Volume Data over a Wide-Area Network' (SC 2000)")
    if os.environ.get("REPRO_BENCH_FAST"):
        print("(REPRO_BENCH_FAST set: image sizes capped at 512^2)")
    figure6()
    figure7()
    table1()
    table2_and_fig8()
    figure10()
    figure11()
    timeline()
    print("\nSee EXPERIMENTS.md for the full paper-vs-measured record.")


if __name__ == "__main__":
    main()
