#!/usr/bin/env python3
"""TCP deployment: renderer, daemon, and display as separate peers.

The paper's Figure 2 shows three programs on three machines — compute
nodes, an image-assembling/daemon host, and the remote user's
workstation.  This example runs that topology over real localhost
sockets: the daemon listens on a TCP port, a renderer peer and a display
peer dial in, frames flow forward and a view-change control flows back.

Run:  python examples/tcp_deployment.py
"""

import threading
import time

from repro.daemon import DisplayInterface, RendererInterface
from repro.daemon.tcp import TcpDaemonServer, connect_daemon
from repro.data import turbulent_jet
from repro.render import Camera, TransferFunction, render_volume, to_display_rgb


def renderer_program(address, n_frames):
    """The compute-side program: render, compress, ship."""
    renderer = RendererInterface(
        connection=connect_daemon(address, "renderer", name="o2k-render"),
        codec="jpeg+lzo",
    )
    dataset = turbulent_jet(scale=0.35, n_steps=n_frames + 1)
    camera = Camera(image_size=(96, 96))
    tf = TransferFunction.jet()
    for t in range(n_frames):
        view = renderer.pending_view()
        if view is not None:
            camera = camera.with_view(**view)
            print(f"  [renderer] applied remote view change: {view}")
        renderer.drain_controls()
        frame = to_display_rgb(render_volume(dataset.volume(t), tf, camera))
        nbytes = renderer.send_frame(frame, time_step=t)
        print(f"  [renderer] step {t}: shipped {nbytes} B")
    renderer.close()


def main() -> None:
    n_frames = 5
    with TcpDaemonServer() as server:
        host, port = server.address
        print(f"display daemon listening on {host}:{port}")

        render_thread = threading.Thread(
            target=renderer_program, args=(server.address, n_frames)
        )
        render_thread.start()

        display = DisplayInterface(
            connection=connect_daemon(server.address, "display", name="ucd-o2")
        )
        for k in range(n_frames):
            frame = display.next_frame(timeout=30)
            print(
                f"[display] received step {frame.time_step}: "
                f"{frame.image.shape[0]}x{frame.image.shape[1]}, "
                f"{frame.payload_bytes} B on the wire"
            )
            if k == 1:  # the remote user rotates the view mid-animation
                display.set_view(azimuth=140, elevation=40)
                print("[display] sent view change (azimuth=140)")
                time.sleep(0.1)
        render_thread.join(timeout=30)
        display.close()
    print("session complete: frames forward, control back, over real TCP")


if __name__ == "__main__":
    main()
