#!/usr/bin/env python3
"""Image-based remote exploration — the paper's §7.1 'other form of
remote viewing'.

The server renders a ring of views of one time step, compresses each
with JPEG+LZO, and ships the whole set once.  The client then explores
viewpoints locally by blending the nearest pre-rendered views: no WAN
round trip, no re-render.  We print the wire cost and the per-view
latency against the classic round-trip path, plus the reconstruction
quality at viewpoints between the stored ones.

Run:  python examples/ibr_explorer.py
"""

import numpy as np

from repro.compress import psnr
from repro.data import turbulent_jet
from repro.render import (
    Camera,
    IBRClient,
    TransferFunction,
    build_view_set,
    render_volume,
    to_display_rgb,
)
from repro.sim.cluster import NASA_TO_UCD, O2_CLIENT


def main() -> None:
    size = 128
    dataset = turbulent_jet(scale=0.5, n_steps=4)
    volume = dataset.volume(2)
    tf = TransferFunction.jet()

    view_set = build_view_set(
        volume,
        tf,
        time_step=2,
        image_size=(size, size),
        azimuths=tuple(range(0, 360, 30)),
        codec="jpeg+lzo",
    )
    upload_s = NASA_TO_UCD.transfer_s(view_set.total_bytes)
    print(
        f"view set: {view_set.n_views} views x {size}x{size}, "
        f"{view_set.total_bytes} bytes total -> one-time upload "
        f"{upload_s:.2f}s over NASA->UCD"
    )

    client = IBRClient(view_set)
    print(f"\n{'azimuth':>8} {'nearest stored':>15} {'psnr vs true':>13}")
    for az in (0.0, 15.0, 45.0, 100.0, 222.5):
        recon = client.reconstruct(az, 20.0)
        truth = to_display_rgb(
            render_volume(
                volume, tf, Camera(image_size=(size, size), azimuth=az, elevation=20.0)
            )
        )
        q = psnr(truth, recon)
        q_str = "exact" if q == float("inf") else f"{q:6.1f}dB"
        nearest = client.nearest_views(az, 20.0, k=1)[0][1]
        print(f"{az:>8.1f} {str(nearest):>15} {q_str:>13}")

    # per-interaction comparison
    per_frame = view_set.total_bytes / view_set.n_views
    roundtrip = NASA_TO_UCD.transfer_s(per_frame) + O2_CLIENT.costs.decompress_s(
        size * size
    )
    print(
        f"\nper-interaction: IBR reconstruct ~= local blend (no traffic); "
        f"round-trip path >= {roundtrip * 1e3:.0f} ms + render time"
    )
    print("after", int(np.ceil(view_set.n_views)), "interactions the set has paid for itself")


if __name__ == "__main__":
    main()
