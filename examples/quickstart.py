#!/usr/bin/env python3
"""Quickstart: remote visualization of a time-varying dataset, end to end.

This is the paper's whole system in ~40 lines: a time-varying turbulent
jet rendered by a (simulated-parallel) group of processors, composited,
compressed with JPEG+LZO, shipped through the display daemon, and
decompressed/assembled at the display interface — with a remote view
change applied mid-animation.

Run:  python examples/quickstart.py
"""

import time

from repro import Camera, RemoteVisualizationSession, turbulent_jet
from repro.compress import percent_reduction


def main() -> None:
    # A laptop-scale version of the paper's 129x129x104 x 150-step jet.
    dataset = turbulent_jet(scale=0.4, n_steps=12)
    print(f"dataset: {dataset.name}  grid={dataset.shape}  steps={dataset.n_steps}")
    print(f"         {dataset.total_nbytes / 1e6:.1f} MB of raw volume data")

    with RemoteVisualizationSession(
        dataset,
        group_size=4,                      # 4-processor rendering group
        camera=Camera(image_size=(128, 128), azimuth=30, elevation=20),
        codec="jpeg+lzo",                  # the paper's two-phase choice
        spmd=True,                         # real threads + binary swap
    ) as session:
        # Animate the first 6 steps.
        report = session.run(range(6))
        raw = report.raw_bytes_per_frame
        for frame, payload in zip(report.frames, report.payload_bytes):
            print(
                f"step {frame.time_step}: {payload:6d} B on the wire "
                f"({percent_reduction(raw, payload):.1f}% smaller than raw)"
            )
        print(report.metrics.summary())

        # The remote user rotates the view; the change is buffered and
        # applies to following frames only (paper §5).
        session.display.set_view(azimuth=120, elevation=45)
        deadline = time.time() + 2
        while session.renderer.pending_view() is None and time.time() < deadline:
            time.sleep(0.02)
        frame = session.step(6)
        print(
            f"after view change: step {frame.time_step} rendered from "
            f"azimuth={session.camera.azimuth} elevation={session.camera.elevation}"
        )


if __name__ == "__main__":
    main()
