"""Fixture: exactly one DT101 — a swallowed broad except."""


def swallow(channel):
    try:
        return channel.recv(timeout=1.0)
    except Exception:  # VIOLATION line 7: neither re-raises nor counts
        pass


def fine_reraise(channel):
    try:
        return channel.recv(timeout=1.0)
    except Exception as exc:
        raise RuntimeError("recv failed") from exc


class Counted:
    def __init__(self):
        self.rejects = 0

    def fine_counter(self, channel):
        try:
            return channel.recv(timeout=1.0)
        except Exception:
            self.rejects += 1
            return None

    def fine_narrow(self, channel):
        try:
            return channel.recv(timeout=1.0)
        except TimeoutError:
            return None
