"""DT801 fixture (overwrite shape): rebinding an owned connection
field without closing the previous value first — the reconnect leak."""

import socket


class Link:
    def __init__(self, addr):
        self.sock = socket.create_connection(addr)

    def reconnect(self, addr):
        self.sock = socket.create_connection(addr)

    def close(self):
        self.sock.close()
