"""DT803 fixture: sending on a connection after closing it."""


def send_shutdown(conn):
    conn.close()
    conn.send(b"bye")
