"""Fixture: exactly one DT901 — encoder and decoder disagree on the
field order of the same named wire record."""

import struct


def encode_header(frame_id, nbytes):
    # wire: hdr
    return struct.pack("<IQ", frame_id, nbytes)


def decode_header(blob):
    # wire: hdr
    return struct.unpack("<QI", blob)  # VIOLATION line 14: order flipped
