"""Fixture: exactly one DT301 — a thread neither daemonized nor joined."""

import threading


def leaky(work):
    t = threading.Thread(target=work)  # VIOLATION line 7: no daemon, no join
    t.start()


def fine_daemon(work):
    t = threading.Thread(target=work, daemon=True)
    t.start()


def fine_joined(work):
    t = threading.Thread(target=work)
    t.start()
    t.join(timeout=5.0)
