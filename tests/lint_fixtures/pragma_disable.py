"""Fixture: every violation here is silenced by a disable pragma."""

import time


def deliberate_poll(req):
    while True:
        done, value = req.test()
        if done:
            return value
        time.sleep(0.01)  # lint: disable=DT201


def deliberate_default(frame, acc=[]):  # lint: disable=all
    acc.append(frame)
    return acc
