"""Fixture: exactly one DT501 — a membership dispatch test naming an
unregistered control tag."""


def route(msg, camera, stats):
    if msg.tag in ("view", "zoon"):  # VIOLATION line 6: typo'd member
        camera.apply(msg)
    else:
        stats.unknown_controls += 1
