"""DT702 fixture: a bare write to an annotated guarded field."""

import threading


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0  # guarded-by: _lock

    def add(self, n):
        with self._lock:
            self._total += n

    def reset(self):
        self._total = 0

    def total(self):
        with self._lock:
            return self._total
