"""DT804 fixture: close() joins the pump thread but forgets the log
file __init__ opened — the close graph is incomplete."""

import threading


class Pump:
    def __init__(self, path):
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self.log = open(path, "a")

    def _run(self):
        while not self._stop.is_set():
            self._stop.wait(0.1)

    def close(self):
        self._stop.set()
        self._thread.join(timeout=1.0)
