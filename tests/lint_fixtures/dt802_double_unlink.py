"""DT802 fixture: a shared-memory segment unlinked twice — the second
unlink always fails or, worse, removes a segment someone else made."""

from multiprocessing import shared_memory


def drop(name):
    seg = shared_memory.SharedMemory(name=name)
    try:
        seg.close()
    finally:
        seg.unlink()
    seg.unlink()
