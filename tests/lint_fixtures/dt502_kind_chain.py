"""Fixture: exactly one DT502 — a message-kind isinstance chain with
no else fallback."""


def pump(msg, sink):
    if isinstance(msg, FrameMessage):  # VIOLATION line 6: silent drop
        sink.frame(msg)
    elif isinstance(msg, ControlMessage):
        sink.control(msg)
