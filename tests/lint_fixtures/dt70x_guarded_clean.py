"""Negative DT7xx fixture: annotated, consistently locked — zero findings.

Exercises every convention at once: the ``# guarded-by:`` comment, the
``guarded_by`` decorator on a helper only called under the lock, a
``# guarded-by: none`` single-writer field, and a spawned thread whose
shared state is always accessed with the lock held.
"""

import threading

from repro.devtools.lockset import guarded_by


class CleanBuffer:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # guarded-by: _lock
        self._high_water = 0  # guarded-by: _lock
        self._started = False  # guarded-by: none -- set once before start
        self._thread = None

    def start(self):
        self._started = True
        self._thread = threading.Thread(target=self._worker, daemon=True)
        self._thread.start()

    def _worker(self):
        for n in range(8):
            with self._lock:
                self._items.append(n)
                self._note_high_water()

    @guarded_by("_lock")
    def _note_high_water(self):
        self._high_water = max(self._high_water, len(self._items))

    def drain(self):
        with self._lock:
            items = list(self._items)
            self._items.clear()
        return items
