"""Fixture: exactly one DT201 — a time.sleep busy-wait poll."""

import threading
import time


def busy_wait(daemon):
    while daemon.dropped_frames == 0:
        time.sleep(0.01)  # VIOLATION line 9: busy-wait inside a while


def fine_event_wait(stop: threading.Event):
    while not stop.is_set():
        stop.wait(0.01)


def fine_plain_pause():
    time.sleep(0.1)  # not in a loop: a pacing sleep, not a poll
