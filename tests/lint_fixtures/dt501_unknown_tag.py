"""Fixture: exactly one DT501 — dispatch on an unregistered control tag."""


def handle(msg, camera):
    if msg.tag == "view":
        camera.set_view(**msg.params)
    elif msg.tag == "zomo":  # VIOLATION line 7: typo'd tag not in registry
        camera.set_zoom(**msg.params)
    else:
        pass
