"""Fixture: exactly one DT904 — a broker dispatch branch for 'tier',
a tag the spec says no broker state ever receives (brokers send tier
renegotiations; they do not take them)."""


class Broker:  # speaks: broker
    def pump(self, msg):
        if msg.tag == "ack":
            self.credit(msg)
        elif msg.tag == "seek":
            self.reposition(msg)
        elif msg.tag == "leave":
            self.depart(msg)
        elif msg.tag == "tier":  # VIOLATION line 14: dead branch
            self.retier(msg)
        else:
            self.unknown_controls += 1
