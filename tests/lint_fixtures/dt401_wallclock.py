"""Fixture: exactly one DT401 — wall clock in a deterministic path.

The file name carries no path marker; the test passes an explicit
``deterministic`` override so the rule fires outside ``repro/compress``.
"""

import random
import time


def jitter_delay(plan):
    return time.time() % plan.jitter_s  # VIOLATION line 12: wall clock


def fine_seeded(plan):
    rng = random.Random(plan.seed)
    return rng.random() * plan.jitter_s
