"""Fixture: exactly one DT502 — a tag dispatch chain with no else."""


def handle(msg, camera):
    if msg.tag == "view":  # VIOLATION line 5: chain silently drops unknowns
        camera.set_view(**msg.params)
    elif msg.tag == "zoom":
        camera.set_zoom(**msg.params)


def fine_handle(msg, camera, stats):
    if msg.tag == "view":
        camera.set_view(**msg.params)
    elif msg.tag == "zoom":
        camera.set_zoom(**msg.params)
    else:
        stats.unknown_controls += 1
