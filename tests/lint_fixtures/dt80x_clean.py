"""Negative fixture: every lifecycle shape the DT80x rules must
accept — context managers, try/finally, ownership transfer by return
and by container, release-before-rebind, pin/unpin pairing, annotated
ownership, and daemonized threads."""

import socket
import threading


def with_statement(path):
    with open(path, "rb") as fh:
        return fh.read()


def try_finally(path):
    fh = open(path, "rb")
    try:
        return fh.read()
    finally:
        fh.close()


def transfer_by_return(addr):
    sock = socket.create_connection(addr)
    return sock


class Pool:
    """Owns its connections; close() releases every one of them."""

    def __init__(self, addrs):
        self._conns = []
        for addr in addrs:
            conn = socket.create_connection(addr)
            self._conns.append(conn)
        self.primary = socket.create_connection(addrs[0])

    def swap(self, addr):
        self.primary.close()
        self.primary = socket.create_connection(addr)

    def close(self):
        self.primary.close()
        for conn in self._conns:
            conn.close()


class Cache:
    """Provides pin/unpin — the pin rule must not flag the provider."""

    def __init__(self):
        self._pins = {}

    def pin(self, key):
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key):
        self._pins[key] -= 1


class Client:
    """Pins entries and unpins them again."""

    def __init__(self, cache):
        self.cache = cache

    def hold(self, key):
        self.cache.pin(key)

    def drop(self, key):
        self.cache.unpin(key)


class Annotated:
    """An opaque factory resource the analyzer only knows via owns:."""

    # owns: _handle
    def __init__(self, factory):
        self._handle = factory()

    def close(self):
        self._handle.close()


def _tick():
    pass


def daemon_thread():
    t = threading.Thread(target=_tick, daemon=True)
    t.start()
    return t
