"""Fixture: exactly one DT601 — a mutable default argument."""


def collect(frame, acc=[]):  # VIOLATION line 4: shared list default
    acc.append(frame)
    return acc


def fine_collect(frame, acc=None):
    if acc is None:
        acc = []
    acc.append(frame)
    return acc
