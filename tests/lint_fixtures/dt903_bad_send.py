"""Fixture: exactly one DT903 — the client constructs a 'tier'
control, a tag no state of its spec automaton may send."""


class Player:  # speaks: client
    def renegotiate(self, conn, level):
        conn.send(ControlMessage(tag="tier", params={"tier": level}))  # VIOLATION line 7
