"""DT801 fixture: a file handle held across a raising call with no
try/finally leaks on the exception edge."""


def read_header(path):
    fh = open(path, "rb")
    header = fh.read(16)
    fh.close()
    return header
