"""DT704 fixture: manual acquire with an early return before release."""

import threading


class Gate:
    def __init__(self):
        self._lock = threading.Lock()
        self._open = False

    def try_open(self, ready):
        self._lock.acquire()
        if not ready:
            return False
        self._open = True
        self._lock.release()
        return True

    def open_safely(self):
        self._lock.acquire()
        try:
            self._open = True
        finally:
            self._lock.release()
