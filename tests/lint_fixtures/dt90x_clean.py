"""Negative fixture: a conformant broker scope plus a properly paired
wire record — the protoflow analyzer must report nothing here."""

import struct


def encode_piece(frame_id, piece, total):
    return struct.pack("<IHH", frame_id, piece, total)


def decode_piece(blob):
    return struct.unpack("<IHH", blob)


class Broker:  # speaks: broker
    def pump(self, msg):
        if msg.tag in ("ack", "seek"):
            self.advance(msg)
        elif msg.tag == "leave":
            self.depart(msg)
        else:
            self.unknown_controls += 1

    def renegotiate(self, conn, level):
        conn.send_control("tier", tier=level)
