"""DT703 fixture: mutable state shared with a thread, never locked."""

import threading


class Collector:
    def __init__(self):
        self._items = []
        self._done = threading.Event()

    def start(self):
        t = threading.Thread(target=self._worker, daemon=True)
        t.start()

    def _worker(self):
        while not self._done.is_set():
            self._items.append(1)

    def harvest(self):
        return list(self._items)
