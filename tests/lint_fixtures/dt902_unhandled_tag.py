"""Fixture: exactly one DT902 — a client scope that dispatches frames
and tier renegotiations but never handles the receivable 'gap' tag."""


class Player:  # speaks: client
    def pump(self, msg):
        if isinstance(msg, FrameMessage):  # VIOLATION line 7 (anchor)
            self.show(msg)
        elif msg.tag == "tier":
            self.level = msg.params["tier"]
        else:
            self.unknown_controls += 1
