"""DT701 fixture: a field written under a lock but read bare."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def increment(self):
        with self._lock:
            self._count += 1

    def peek(self):
        return self._count
