"""Breadth matrix: sessions across codecs, piece counts and render modes.

Every combination a user can configure must produce a frame whose image
matches (lossless) or closely tracks (lossy) the directly-rendered
reference.
"""

import numpy as np
import pytest

from repro.compress import psnr
from repro.core import RemoteVisualizationSession
from repro.data import turbulent_jet
from repro.render import Camera


@pytest.fixture(scope="module")
def dataset():
    return turbulent_jet(scale=0.25, n_steps=3)


CAM = Camera(image_size=(40, 40))


@pytest.mark.parametrize("codec", ["raw", "rle", "lzo", "deflate", "bzip"])
@pytest.mark.parametrize("n_pieces", [1, 3])
def test_lossless_matrix(dataset, codec, n_pieces):
    with RemoteVisualizationSession(
        dataset, group_size=2, camera=CAM, codec=codec, n_pieces=n_pieces
    ) as sess:
        frame = sess.step(1)
        reference = sess.render_step(1)
    assert np.array_equal(frame.image, reference)
    assert frame.n_pieces == n_pieces


@pytest.mark.parametrize("codec", ["jpeg", "jpeg+lzo", "jpeg+bzip"])
@pytest.mark.parametrize("n_pieces", [1, 2])
def test_lossy_matrix(dataset, codec, n_pieces):
    with RemoteVisualizationSession(
        dataset, group_size=2, camera=CAM, codec=codec, n_pieces=n_pieces
    ) as sess:
        frame = sess.step(1)
        reference = sess.render_step(1)
    assert psnr(reference, frame.image) > 25.0


@pytest.mark.parametrize("spmd", [False, True])
@pytest.mark.parametrize("shading", [False, True])
@pytest.mark.parametrize("cull", [False, True])
def test_render_mode_matrix(dataset, spmd, shading, cull):
    with RemoteVisualizationSession(
        dataset,
        group_size=2,
        camera=CAM,
        codec="raw",
        spmd=spmd,
        shading=shading,
        cull=cull,
    ) as sess:
        frame = sess.step(2)
    assert frame.image.shape == (40, 40, 3)
    assert frame.image.max() > 0  # the jet is visible in every mode


@pytest.mark.parametrize("projection", ["orthographic", "perspective"])
def test_projection_matrix(dataset, projection):
    cam = Camera(image_size=(40, 40), projection=projection)
    with RemoteVisualizationSession(
        dataset, group_size=3, camera=cam, codec="lzo", spmd=True
    ) as sess:
        frame = sess.step(0)
        reference = sess.render_step(0)
    assert np.array_equal(frame.image, reference)
