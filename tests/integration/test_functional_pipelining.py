"""Integration tests for functional inter-volume pipelining (§3, live).

The paper's processor-grouping thesis demonstrated on real threads: data
input (dataset generation / disk reads) of one time step overlaps the
rendering of another, so wall-clock beats the serial path.
"""

import time

import numpy as np
import pytest

from repro.core import RemoteVisualizationSession
from repro.data import TimeVaryingDataset
from repro.data.fields import jet_field
from repro.render import Camera

SHAPE = (32, 32, 26)


def slow_dataset(n_steps=8, latency=0.05):
    """A dataset whose generator sleeps — an I/O-bound input stage."""

    def gen(t):
        time.sleep(latency)
        return jet_field(SHAPE, float(t))

    return TimeVaryingDataset(
        name="slow", shape=SHAPE, n_steps=n_steps, generator=gen
    )


class TestRunPipelined:
    def test_frames_complete_and_ordered(self):
        ds = slow_dataset(latency=0.0)
        with RemoteVisualizationSession(
            ds, group_size=1, camera=Camera(image_size=(32, 32)), codec="lzo"
        ) as sess:
            report = sess.run_pipelined(range(6), n_groups=3)
        assert [f.time_step for f in report.frames] == list(range(6))
        assert report.metrics.n_frames == 6

    def test_images_match_serial_run(self):
        ds = slow_dataset(latency=0.0)
        cam = Camera(image_size=(40, 40))
        with RemoteVisualizationSession(
            ds, group_size=2, camera=cam, codec="lzo"
        ) as sess:
            serial = sess.run(range(4))
        with RemoteVisualizationSession(
            ds, group_size=2, camera=cam, codec="lzo"
        ) as sess:
            piped = sess.run_pipelined(range(4), n_groups=2)
        for a, b in zip(serial.frames, piped.frames):
            assert np.array_equal(a.image, b.image)

    def test_overlap_beats_serial_on_io_bound_input(self):
        """The headline: pipelining hides the input stage."""
        ds = slow_dataset(n_steps=8, latency=0.06)
        cam = Camera(image_size=(32, 32))
        with RemoteVisualizationSession(
            ds, group_size=1, camera=cam, codec="lzo"
        ) as sess:
            t0 = time.perf_counter()
            sess.run(range(8))
            t_serial = time.perf_counter() - t0
        with RemoteVisualizationSession(
            ds, group_size=1, camera=cam, codec="lzo"
        ) as sess:
            t0 = time.perf_counter()
            sess.run_pipelined(range(8), n_groups=4)
            t_piped = time.perf_counter() - t0
        assert t_piped < t_serial * 0.8

    def test_in_order_display_semantics(self):
        ds = slow_dataset(latency=0.0)
        with RemoteVisualizationSession(
            ds, group_size=1, camera=Camera(image_size=(24, 24)), codec="lzo"
        ) as sess:
            report = sess.run_pipelined(range(6), n_groups=3)
        displayed = [f.displayed for f in report.metrics.frames]
        assert displayed == sorted(displayed)
        assert report.metrics.start_up_latency <= report.metrics.overall_time

    def test_single_group_degenerates_to_serial_behaviour(self):
        ds = slow_dataset(latency=0.0, n_steps=3)
        with RemoteVisualizationSession(
            ds, group_size=1, camera=Camera(image_size=(24, 24)), codec="lzo"
        ) as sess:
            report = sess.run_pipelined(n_groups=1)
        assert [f.time_step for f in report.frames] == [0, 1, 2]

    def test_worker_error_propagates(self):
        def bad_gen(t):
            if t == 2:
                raise RuntimeError("disk died")
            return jet_field(SHAPE, float(t))

        ds = TimeVaryingDataset(
            name="bad", shape=SHAPE, n_steps=4, generator=bad_gen
        )
        with RemoteVisualizationSession(
            ds, group_size=1, camera=Camera(image_size=(24, 24)), codec="lzo"
        ) as sess:
            with pytest.raises((RuntimeError, TimeoutError)):
                sess.run_pipelined(range(4), n_groups=2)

    def test_validation(self):
        ds = slow_dataset(latency=0.0)
        with RemoteVisualizationSession(
            ds, group_size=1, camera=Camera(image_size=(24, 24)), codec="lzo"
        ) as sess:
            with pytest.raises(ValueError):
                sess.run_pipelined(n_groups=0)
            with pytest.raises(ValueError):
                sess.run_pipelined(range(0), n_groups=2)
