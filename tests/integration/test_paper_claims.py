"""Integration tests pinning the paper's headline experimental claims.

Each test corresponds to a table, figure, or quoted sentence from
Section 6; the benchmark harness regenerates the full artifacts, these
tests lock the *shapes* in CI.
"""

import numpy as np
import pytest

from repro.compress import get_codec, percent_reduction
from repro.core import PartitionPlan, PerformanceModel, PipelineConfig, simulate_pipeline
from repro.data import turbulent_jet
from repro.net import XDisplayModel
from repro.render import Camera, TransferFunction, render_volume, to_display_rgb
from repro.sim.cluster import (
    NASA_O2K,
    NASA_TO_UCD,
    O2_CLIENT,
    RWCP_CLUSTER,
    RWCP_TO_UCD,
)
from repro.sim.costs import JET_PROFILE, MIXING_PROFILE, VORTEX_PROFILE


def batch_overall(P, L, steps=128):
    return simulate_pipeline(
        PipelineConfig(
            n_procs=P,
            n_groups=L,
            n_steps=steps,
            profile=JET_PROFILE,
            machine=RWCP_CLUSTER,
            image_size=(256, 256),
        )
    ).overall_time


class TestFigure6:
    """Overall execution time vs L: optimum at L=4 for P in 16/32/64."""

    @pytest.mark.parametrize("procs", [16, 32, 64])
    def test_optimum_partition_is_four(self, procs):
        sweep = {
            l: batch_overall(procs, l)
            for l in [1, 2, 4, 8, 16, 32]
            if l <= procs
        }
        assert min(sweep, key=sweep.get) == 4

    def test_u_shape(self):
        sweep = [batch_overall(64, l) for l in (1, 4, 32)]
        assert sweep[1] < sweep[0]  # left side falls to the optimum
        assert sweep[1] < sweep[2]  # right side rises


class TestFigure7:
    """Start-up latency rises monotonically with L; inter-frame delay
    tracks overall time (P = 32)."""

    @pytest.fixture(scope="class")
    def sweep(self):
        out = {}
        for l in (1, 2, 4, 8, 16, 32):
            out[l] = simulate_pipeline(
                PipelineConfig(
                    n_procs=32,
                    n_groups=l,
                    n_steps=128,
                    profile=JET_PROFILE,
                    machine=RWCP_CLUSTER,
                    image_size=(256, 256),
                )
            )
        return out

    def test_startup_monotone(self, sweep):
        latencies = [sweep[l].start_up_latency for l in (1, 2, 4, 8, 16, 32)]
        assert all(a < b for a, b in zip(latencies, latencies[1:]))

    def test_interframe_tracks_overall(self, sweep):
        ls = [1, 2, 4, 8, 16, 32]
        overall = np.array([sweep[l].overall_time for l in ls])
        inter = np.array([sweep[l].inter_frame_delay for l in ls])
        corr = np.corrcoef(overall, inter)[0, 1]
        assert corr > 0.95


class TestTable1:
    """Measured compressed sizes with the real codecs on a real rendered
    jet frame: JPEG ≪ BZIP < LZO < raw, JPEG+LZO < JPEG, ≥96% reduction."""

    @pytest.fixture(scope="class")
    def frame(self):
        ds = turbulent_jet(scale=0.5, n_steps=3)
        cam = Camera(image_size=(128, 128))
        rgba = render_volume(ds.volume(1), TransferFunction.jet(), cam)
        return to_display_rgb(rgba)

    @pytest.fixture(scope="class")
    def sizes(self, frame):
        out = {"raw": frame.nbytes}
        for name in ("lzo", "bzip", "jpeg", "jpeg+lzo"):
            out[name] = len(get_codec(name).encode_image(frame))
        return out

    def test_ordering(self, sizes):
        assert sizes["jpeg"] < sizes["bzip"] <= sizes["lzo"] < sizes["raw"]

    def test_two_phase_gains(self, sizes):
        assert sizes["jpeg+lzo"] < sizes["jpeg"]

    def test_96_percent_reduction(self, sizes):
        assert percent_reduction(sizes["raw"], sizes["jpeg+lzo"]) > 96.0

    def test_within_factor_two_of_paper_row(self, sizes):
        """Paper 128² row: JPEG 1509, JPEG+LZO 1282 bytes."""
        assert 700 < sizes["jpeg+lzo"] < 2600
        assert 750 < sizes["jpeg"] < 3100


class TestTable2AndFigure8:
    """X vs compression-based display, NASA→UCD."""

    def test_x_frame_rates(self):
        x = XDisplayModel(route=NASA_TO_UCD, client=O2_CLIENT)
        paper = {128: 7.7, 256: 0.5, 512: 0.1, 1024: 0.03}
        for size, expected in paper.items():
            got = x.frame_rate(size * size)
            assert expected / 2 < got < expected * 2, size

    def test_compression_frame_rates(self):
        paper = {128: 9.0, 256: 5.6, 512: 2.4, 1024: 0.7}
        costs = NASA_O2K.costs
        for size, expected in paper.items():
            px = size * size
            t = (
                NASA_TO_UCD.transfer_s(costs.compressed_frame_bytes(px, JET_PROFILE))
                + O2_CLIENT.costs.decompress_s(px)
                + px * 3 / O2_CLIENT.local_display_bandwidth_Bps
                + O2_CLIENT.display_overhead_s
            )
            assert expected / 1.5 < 1 / t < expected * 1.5, size

    def test_compression_wins_more_at_larger_images(self):
        """Fig 8: 'as the image size increases, the benefit of using
        compression becomes even more dramatic'."""
        x = XDisplayModel(route=NASA_TO_UCD, client=O2_CLIENT)
        costs = NASA_O2K.costs
        ratios = []
        for size in (128, 256, 512, 1024):
            px = size * size
            xt = x.frame_time_s(px)
            ct = NASA_TO_UCD.transfer_s(
                costs.compressed_frame_bytes(px, JET_PROFILE)
            ) + O2_CLIENT.costs.decompress_s(px)
            ratios.append(xt / ct)
        assert all(a < b for a, b in zip(ratios, ratios[1:]))


class TestFigure9:
    """Time breakdown, 16 procs O2K: X display rivals render time; the
    daemon makes rendering dominant."""

    def params(self, transport):
        return PipelineConfig(
            n_procs=16,
            n_groups=4,
            n_steps=24,
            profile=JET_PROFILE,
            machine=NASA_O2K,
            image_size=(512, 512),
            transport=transport,
            route=NASA_TO_UCD,
            client=O2_CLIENT,
        )

    def test_x_display_dominates(self):
        result = simulate_pipeline(self.params("x"))
        m = result.metrics
        assert m.mean_display_seconds > m.mean_render_seconds

    def test_daemon_render_dominates(self):
        result = simulate_pipeline(self.params("daemon"))
        m = result.metrics
        assert m.mean_display_seconds < m.mean_render_seconds


class TestFigure10:
    """Sub-image decompression: 2–8 pieces good, ≥16 bad (tested directly
    on the real codecs, mirroring the cost-model unit test)."""

    def test_real_codec_sub_image_overhead(self, gradient_image):
        codec = get_codec("jpeg+lzo")
        from repro.render.image import split_tiles

        one = len(codec.encode_image(gradient_image))
        many = sum(
            len(codec.encode_image(np.ascontiguousarray(strip)))
            for _, strip in split_tiles(gradient_image, 16)
        )
        # "Compressing each image piece independent of other pieces would
        # result in poor compression rates."
        assert many > one


class TestFigure11:
    """Japan→UCD: X is far worse; the daemon keeps frames to a few
    seconds even at 1024²."""

    def test_x_transfer_roughly_twice_nasa(self):
        for size in (256, 512, 1024):
            n = size * size * 3
            ratio = RWCP_TO_UCD.transfer_s(n) / NASA_TO_UCD.transfer_s(n)
            assert 1.4 < ratio < 2.6

    def test_daemon_few_seconds_per_frame(self):
        """'the average transfer time is only about a few seconds per
        frame even for the larger images'."""
        costs = RWCP_CLUSTER.costs
        for size in (128, 256, 512, 1024):
            nbytes = costs.compressed_frame_bytes(size * size, JET_PROFILE)
            assert RWCP_TO_UCD.transfer_s(nbytes) < 3.0


class TestSection6Datasets:
    """Vortex: transport/display (0.325 s) exceeds render (0.178 s) at
    512²; mixing: render ≈ 4 s dwarfs transport (~1/10)."""

    def test_vortex_transport_exceeds_render(self):
        model = PerformanceModel(
            machine=RWCP_CLUSTER,
            profile=VORTEX_PROFILE,
            pixels=512 * 512,
            transport="daemon",
            route=RWCP_TO_UCD,
            client=O2_CLIENT,
        )
        plan = PartitionPlan(64, 4)
        render_per_frame = model.render_s(plan.group_size) / plan.n_groups
        transport = model.output_shared_s() + model.client_s()
        assert transport > render_per_frame
        assert 0.05 < render_per_frame < 0.6  # paper: 0.178 s
        assert 0.1 < transport < 1.0  # paper: 0.325 s

    def test_mixing_render_dominates(self):
        model = PerformanceModel(
            machine=RWCP_CLUSTER,
            profile=MIXING_PROFILE,
            pixels=512 * 512,
            transport="daemon",
            route=RWCP_TO_UCD,
            client=O2_CLIENT,
        )
        plan = PartitionPlan(64, 4)
        render_per_volume = model.render_s(plan.group_size)
        transport = model.output_shared_s()
        assert 2.0 < render_per_volume < 8.0  # paper: about 4 s
        assert transport < render_per_volume / 5


class TestApproachComparison:
    """§3: the hybrid (1 < L < P) beats both pure approaches."""

    def test_hybrid_beats_both_extremes(self):
        intra = batch_overall(32, 1)
        inter = batch_overall(32, 32)
        hybrid = batch_overall(32, 4)
        assert hybrid < intra
        assert hybrid < inter
