"""Integration tests: the full functional path, end to end.

dataset → brick decomposition → (SPMD) ray casting → binary-swap
compositing → codec → daemon → display interface → assembled frame,
including the backward user-control path.
"""

import time

import numpy as np
import pytest

from repro.compress import psnr
from repro.core import RemoteVisualizationSession
from repro.data import DatasetStore, turbulent_jet, turbulent_vortex
from repro.devtools.waiting import wait_until
from repro.render import Camera, TransferFunction


@pytest.fixture(scope="module")
def dataset():
    return turbulent_jet(scale=0.3, n_steps=6)


class TestSession:
    def test_full_run_lossless(self, dataset):
        with RemoteVisualizationSession(
            dataset,
            group_size=2,
            camera=Camera(image_size=(48, 48)),
            codec="lzo",
        ) as sess:
            report = sess.run(range(3))
        assert report.metrics.n_frames == 3
        assert [f.time_step for f in report.frames] == [0, 1, 2]
        # lossless transport: received image == locally rendered image
        local = sess.render_step(2)
        assert np.array_equal(report.frames[2].image, local)

    def test_full_run_jpeg(self, dataset):
        with RemoteVisualizationSession(
            dataset,
            group_size=4,
            camera=Camera(image_size=(64, 64)),
            codec="jpeg+lzo",
        ) as sess:
            report = sess.run(range(2))
            local = sess.render_step(1)
        assert psnr(local, report.frames[1].image) > 28.0
        assert report.mean_compression_ratio > 5.0

    def test_spmd_matches_sequential(self, dataset):
        cam = Camera(image_size=(48, 48))
        with RemoteVisualizationSession(
            dataset, group_size=4, camera=cam, codec="raw", spmd=False
        ) as seq, RemoteVisualizationSession(
            dataset, group_size=4, camera=cam, codec="raw", spmd=True
        ) as par:
            a = seq.step(0).image
            b = par.step(0).image
        # same bricks, same compositing order: pixel-identical up to
        # float-accumulation noise that vanishes in uint8
        assert np.abs(a.astype(int) - b.astype(int)).max() <= 1

    def test_parallel_compression_pieces(self, dataset):
        with RemoteVisualizationSession(
            dataset,
            group_size=2,
            camera=Camera(image_size=(48, 48)),
            codec="lzo",
            n_pieces=4,
        ) as sess:
            frame = sess.step(0)
            local = sess.render_step(0)
        assert frame.n_pieces == 4
        assert np.array_equal(frame.image, local)

    def test_view_change_applies_to_following_frames(self, dataset):
        with RemoteVisualizationSession(
            dataset,
            group_size=1,
            camera=Camera(image_size=(48, 48)),
            codec="raw",
        ) as sess:
            before = sess.step(0).image
            sess.display.set_view(azimuth=140, elevation=50)
            wait_until(lambda: sess.renderer.pending_view() is not None,
                       timeout=3, message="view control never arrived")
            after = sess.step(0).image  # same time step, new view
            assert sess.camera.azimuth == 140
            assert not np.array_equal(before, after)

    def test_colormap_change(self, dataset):
        with RemoteVisualizationSession(
            dataset,
            group_size=1,
            camera=Camera(image_size=(32, 32)),
            codec="raw",
        ) as sess:
            sess.display.set_colormap(
                [0.0, 1.0], [[1, 0, 0, 0.0], [1, 0, 0, 0.9]]
            )
            wait_until(sess.renderer.drain_controls, timeout=3,
                       message="colormap control never arrived")
            # message drained above; apply via a fresh send
            sess.display.set_colormap(
                [0.0, 1.0], [[1, 0, 0, 0.0], [1, 0, 0, 0.9]]
            )
            time.sleep(0.2)
            frame = sess.step(1)
            img = frame.image
            lit = img[img.sum(axis=2) > 30]
            if lit.size:  # red-only transfer function
                assert lit[:, 0].mean() > lit[:, 1].mean()
                assert lit[:, 0].mean() > lit[:, 2].mean()

    def test_codec_switch_mid_session(self, dataset):
        with RemoteVisualizationSession(
            dataset,
            group_size=1,
            camera=Camera(image_size=(32, 32)),
            codec="raw",
        ) as sess:
            raw_frame = sess.step(0)
            sess.display.set_codec("jpeg+lzo", quality=70)
            wait_until(lambda: sess.renderer.codec.name == "jpeg+lzo",
                       timeout=3, message="codec switch never applied")
            small_frame = sess.step(1)
            assert small_frame.payload_bytes < raw_frame.payload_bytes / 3

    def test_group_size_validation(self, dataset):
        with pytest.raises(ValueError):
            RemoteVisualizationSession(dataset, group_size=0)

    def test_spmd_non_power_of_two_group(self, dataset):
        cam = Camera(image_size=(48, 48))
        with RemoteVisualizationSession(
            dataset, group_size=3, camera=cam, codec="raw", spmd=False
        ) as seq, RemoteVisualizationSession(
            dataset, group_size=3, camera=cam, codec="raw", spmd=True
        ) as par:
            a = seq.step(0).image
            b = par.step(0).image
        assert np.abs(a.astype(int) - b.astype(int)).max() <= 1


class TestDiskToDisplay:
    def test_stored_dataset_through_session(self, tmp_path):
        src = turbulent_jet(scale=0.2, n_steps=3)
        store = DatasetStore(tmp_path / "ds")
        store.save(src)
        reopened = store.open()
        with RemoteVisualizationSession(
            reopened,
            group_size=2,
            camera=Camera(image_size=(32, 32)),
            codec="lzo",
        ) as sess:
            report = sess.run()
        assert report.metrics.n_frames == 3

    def test_vortex_frames_compress_worse_than_jet(self):
        """§6: vortex images 'cannot be compressed as well' as jet images."""
        cam = Camera(image_size=(64, 64))
        jet = turbulent_jet(scale=0.3, n_steps=2)
        vortex = turbulent_vortex(scale=0.3, n_steps=2)
        with RemoteVisualizationSession(
            jet, group_size=1, camera=cam, tf=TransferFunction.jet(),
            codec="jpeg+lzo",
        ) as s1:
            jet_bytes = s1.step(1).payload_bytes
        with RemoteVisualizationSession(
            vortex, group_size=1, camera=cam, tf=TransferFunction.vortex(),
            codec="jpeg+lzo",
        ) as s2:
            vortex_bytes = s2.step(1).payload_bytes
        assert vortex_bytes > jet_bytes


class TestZoomProjectionControls:
    def test_zoom_control(self, dataset):
        import time

        with RemoteVisualizationSession(
            dataset, group_size=1, camera=Camera(image_size=(32, 32)),
            codec="raw",
        ) as sess:
            wide = sess.step(0).image
            sess.display.set_zoom(3.0)

            def zoom_applied():
                sess._apply_controls()
                return sess.camera.zoom == 3.0

            wait_until(zoom_applied, timeout=3)
            tight = sess.render_step(0)
            assert sess.camera.zoom == 3.0
            assert not np.array_equal(wide, tight)

    def test_projection_control(self, dataset):
        import time

        with RemoteVisualizationSession(
            dataset, group_size=1, camera=Camera(image_size=(32, 32)),
            codec="raw",
        ) as sess:
            sess.display.set_projection("perspective")

            def projection_applied():
                sess._apply_controls()
                return sess.camera.projection == "perspective"

            wait_until(projection_applied, timeout=3)
            assert sess.camera.projection == "perspective"
            frame = sess.step(1)
            assert frame.image.shape == (32, 32, 3)
