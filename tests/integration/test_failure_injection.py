"""Failure-injection tests: corrupted payloads, dead peers, bad streams.

A WAN transport loses connections and corrupts data; these tests pin the
framework's behaviour at each failure point — errors must surface as
typed exceptions at the consuming side, never as hangs or silent wrong
images.
"""

import threading
import time

import numpy as np
import pytest

from repro.compress import CodecError, get_codec
from repro.daemon import DisplayDaemon, DisplayInterface, RendererInterface
from repro.daemon.protocol import FrameMessage, ProtocolError, decode_message
from repro.net.transport import ChannelClosed, FramedConnection


class TestCorruptedPayloads:
    def test_corrupt_frame_payload_raises_codec_error(self, gradient_image):
        with DisplayDaemon() as daemon:
            renderer = RendererInterface(daemon, codec="lzo")
            display = DisplayInterface(daemon)
            payload = get_codec("lzo").encode_image(gradient_image)
            corrupted = payload[:20] + b"\xff\xff\xff" + payload[23:]
            msg = FrameMessage(
                frame_id=0, time_step=0, codec="lzo", payload=corrupted
            )
            renderer.conn.send(msg.encode())
            with pytest.raises(CodecError):
                display.next_frame(timeout=5)

    def test_unknown_codec_name_raises(self, gradient_image):
        with DisplayDaemon() as daemon:
            renderer = RendererInterface(daemon, codec="lzo")
            display = DisplayInterface(daemon)
            msg = FrameMessage(
                frame_id=0, time_step=0, codec="not-a-codec", payload=b"x"
            )
            renderer.conn.send(msg.encode())
            with pytest.raises(KeyError):
                display.next_frame(timeout=5)

    def test_garbage_bytes_raise_protocol_error(self):
        with pytest.raises(ProtocolError):
            decode_message(b"\x00" * 64)

    def test_bzip_bitflip_detected(self, gradient_image):
        codec = get_codec("bzip")
        payload = bytearray(codec.encode_image(gradient_image))
        payload[len(payload) // 2] ^= 0xFF
        with pytest.raises((CodecError, ValueError)):
            out = codec.decode_image(bytes(payload))
            # a flipped bit that still parses must not silently pass
            # through unchanged
            assert not np.array_equal(out, gradient_image)


class TestPeerDeath:
    def test_display_times_out_when_renderer_silent(self):
        with DisplayDaemon() as daemon:
            RendererInterface(daemon, codec="raw")
            display = DisplayInterface(daemon)
            with pytest.raises(TimeoutError):
                display.next_frame(timeout=0.2)

    def test_renderer_close_does_not_break_display(self, gradient_image):
        with DisplayDaemon() as daemon:
            renderer = RendererInterface(daemon, codec="raw")
            display = DisplayInterface(daemon)
            renderer.send_frame(gradient_image, time_step=0)
            frame = display.next_frame(timeout=5)
            assert frame.time_step == 0
            renderer.close()
            time.sleep(0.1)
            # a second renderer can join the same daemon afterwards
            renderer2 = RendererInterface(daemon, codec="raw", name="r2")
            renderer2.send_frame(gradient_image, time_step=1)
            assert display.next_frame(timeout=5).time_step == 1

    def test_send_after_connection_close_raises(self, gradient_image):
        with DisplayDaemon() as daemon:
            renderer = RendererInterface(daemon, codec="raw")
            renderer.close()
            with pytest.raises(ChannelClosed):
                renderer.send_frame(gradient_image, time_step=0)

    def test_daemon_close_unblocks_display_reader(self):
        daemon = DisplayDaemon()
        display = DisplayInterface(daemon)
        errors = []

        def reader():
            try:
                display.next_frame(timeout=10)
            except (ChannelClosed, TimeoutError) as exc:
                errors.append(type(exc).__name__)

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.1)
        daemon.close()
        t.join(timeout=5)
        assert not t.is_alive()
        assert errors


class TestPartialFrames:
    def test_missing_piece_stalls_only_that_frame(self, gradient_image):
        """An incomplete multi-piece frame must not block later frames
        forever at the interface level — completed frames still decode."""
        with DisplayDaemon() as daemon:
            renderer = RendererInterface(daemon, codec="raw")
            display = DisplayInterface(daemon)
            h, w = gradient_image.shape[:2]
            # send only piece 0 of a 2-piece frame 0
            renderer.send_piece(
                gradient_image[: h // 2], 0, frame_id=0, piece_index=0,
                n_pieces=2, row_range=(0, h // 2), image_shape=(h, w),
            )
            # then a complete single-piece frame 1
            renderer.send_frame(gradient_image, time_step=1, frame_id=1)
            frame = display.next_frame(timeout=5)
            assert frame.frame_id == 1
            # completing frame 0 later delivers it
            renderer.send_piece(
                gradient_image[h // 2 :], 0, frame_id=0, piece_index=1,
                n_pieces=2, row_range=(h // 2, h), image_shape=(h, w),
            )
            late = display.next_frame(timeout=5)
            assert late.frame_id == 0
            assert np.array_equal(late.image, gradient_image)

    def test_inconsistent_strip_rows_raise(self, gradient_image):
        with DisplayDaemon() as daemon:
            renderer = RendererInterface(daemon, codec="raw")
            display = DisplayInterface(daemon)
            h, w = gradient_image.shape[:2]
            renderer.send_piece(
                gradient_image[:10], 0, frame_id=0, piece_index=0,
                n_pieces=2, row_range=(0, 10), image_shape=(h, w),
            )
            renderer.send_piece(
                gradient_image[10:30], 0, frame_id=0, piece_index=1,
                n_pieces=2, row_range=(10, h), image_shape=(h, w),
            )
            with pytest.raises(ValueError):
                display.next_frame(timeout=5)


class TestTransportEdgeCases:
    def test_connection_pair_isolated(self):
        a1, b1 = FramedConnection.pair()
        a2, b2 = FramedConnection.pair()
        a1.send(b"one")
        a2.send(b"two")
        assert b1.recv() == b"one"
        assert b2.recv() == b"two"

    def test_zero_length_frame(self):
        a, b = FramedConnection.pair()
        a.send(b"")
        assert b.recv() == b""
