"""Reconnect-with-resume over a faulty WAN link.

The acceptance scenario for the resilience layer: under an injected
lossy/jittery fault plan with a scheduled mid-stream disconnect, a
viewer that rejoins under its own name resumes from the frame after the
last one it consumed — the full stream arrives with no duplicate and no
skipped frame ids.
"""

import time

import numpy as np
import pytest

from repro.devtools.waiting import wait_until
from repro.net.faults import FaultPlan
from repro.net.transport import ChannelClosed, RetryPolicy
from repro.daemon.protocol import ControlMessage, FrameMessage
from repro.serve import QualityTier, SessionBroker, TierLadder

RETRY = RetryPolicy(max_attempts=8, backoff_s=0.001, max_backoff_s=0.01)

#: lossless, stride-free ladder so every published frame must arrive
#: bit-exact — any resume bug shows up as a wrong frame id, not noise
LOSSLESS = TierLadder(
    (QualityTier("full", "lzo"), QualityTier("low", "rle"))
)


def _frames(n, size=24):
    rng = np.random.default_rng(7)
    return [rng.integers(0, 255, (size, size, 3), dtype=np.uint8)
            for _ in range(n)]


def _rejoin(broker, name, plan, resume_from, deadline_s=5.0):
    """Rejoin under the same name, waiting out the pump-reap race."""

    def try_join():
        try:
            return broker.join(
                name,
                fault_plan=plan.reconnected(),
                retry=RETRY,
                resume_from=resume_from,
            )
        except ValueError:  # the pump has not reaped the dead session yet
            return None

    return wait_until(try_join, timeout=deadline_s, interval=0.005,
                      message=f"could not rejoin {name!r}")


class TestReconnectResume:
    def test_resume_after_midstream_disconnect_no_dup_no_skip(self):
        plan = FaultPlan(
            seed=5, loss_ratio=0.05, jitter_s=0.1, disconnect_after=8
        )
        broker = SessionBroker(
            ladder=LOSSLESS, credit_limit=32, history_frames=64
        )
        frames = _frames(24)
        got = []
        try:
            handle = broker.join("wan", fault_plan=plan, retry=RETRY)
            assert not handle.resumed
            for fid, image in enumerate(frames):
                broker.publish(image, time_step=fid, frame_id=fid)
                while len(got) <= fid:
                    try:
                        served = handle.next_frame(timeout=2.0)
                    except ConnectionError:
                        handle = _rejoin(broker, "wan", plan, len(got))
                        assert handle.resumed
                        continue
                    got.append(served.frame_id)
                    np.testing.assert_array_equal(
                        served.image, frames[served.frame_id]
                    )
        finally:
            handle.leave()
            stats = broker.stats()
            broker.close()

        assert got == list(range(24))  # no duplicates, no gaps
        assert stats.resumes == 1
        session = stats.sessions.get("wan") or next(
            s for s in stats.departed if s.name == "wan"
        )
        assert session.reconnects == 1

    def test_clean_leave_then_rejoin_is_a_fresh_session(self):
        broker = SessionBroker(ladder=LOSSLESS, credit_limit=8)
        try:
            first = broker.join("polite")
            broker.publish(_frames(1)[0], frame_id=0)
            assert first.next_frame(timeout=2.0).frame_id == 0
            first.leave()
            broker.drain(timeout=2.0, names=[])

            # a polite leave parks nothing: the rejoin starts over
            def try_rejoin():
                try:
                    return broker.join("polite")
                except ValueError:
                    return None

            second = wait_until(try_rejoin, timeout=2.0, interval=0.005)
            assert second is not None
            assert not second.resumed
            assert broker.stats().resumes == 0
            second.leave()
        finally:
            broker.close()


class TestMalformedControls:
    def _wait_malformed(self, broker, n, deadline_s=2.0):
        try:
            wait_until(lambda: broker.stats().malformed_controls >= n,
                       timeout=deadline_s)
            return True
        except TimeoutError:
            return False

    def test_bad_acks_are_counted_and_do_not_kill_the_pump(self):
        broker = SessionBroker(ladder=LOSSLESS, credit_limit=8)
        try:
            handle = broker.join("hostile")
            raw = handle.conn
            # undecodable bytes, acks without / with junk frame ids, and
            # a frame message where only control traffic is legal
            raw.send(b"\x00\xffnot a protocol frame")
            raw.send(ControlMessage(tag="ack", params={}).encode())
            raw.send(
                ControlMessage(tag="ack", params={"frame_id": "nan"}).encode()
            )
            raw.send(
                ControlMessage(tag="ack", params={"frame_id": -3}).encode()
            )
            raw.send(
                ControlMessage(tag="seek", params={"frame_id": True}).encode()
            )
            raw.send(
                FrameMessage(
                    frame_id=0, time_step=0, codec="raw", payload=b"x"
                ).encode()
            )
            assert self._wait_malformed(broker, 6)

            # the pump survived: real traffic still flows and acks count
            broker.publish(_frames(1)[0], frame_id=0)
            assert handle.next_frame(timeout=2.0).frame_id == 0
            broker.drain(timeout=2.0)
            assert broker.stats().sessions["hostile"].acks == 1
            handle.leave()
        finally:
            broker.close()
