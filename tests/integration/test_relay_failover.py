"""Relay failover end to end: kill a relay mid-playback, nobody notices.

These run under the autouse locktrace fixture (see ``conftest.py``), so
beyond the delivery assertions every scenario also proves the relay
tier is free of lock-order inversions and leaked threads under real
concurrent schedules.
"""

import threading
import time

from repro.net.faults import FaultPlan
from repro.relay import FrameRelay, PrefetchPolicy, RelayRing, run_relay_topology
from repro.serve.broker import SessionBroker
from repro.serve.fanout import synthetic_frames
from repro.serve.faultrun import run_with_faults


class TestRelayKillFailover:
    def test_viewers_resume_from_peer_with_no_dup_no_skip(self):
        """The headline scenario: one relay of two is killed abruptly
        while its viewers are mid-playback; they must fail over to the
        surviving peer and end with the exact frame sequence."""
        report = run_relay_topology(
            n_relays=2,
            n_viewers=4,
            n_frames=32,
            loops=3,
            size=24,
            pace_s=0.002,
            kill_relay_after=40,
            timeout_s=60.0,
        )
        assert report["completed"], report
        assert report["topology"]["killed"] == "relay0"
        assert report["failovers"] >= 1  # relay0's viewers moved
        assert report["duplicates"] == 0
        assert report["skips"] == 0
        assert report["delivered_ratio"] == 1.0
        # the survivor served the orphaned viewers to completion
        assert report["relays"]["relay1"]["frames_served"] > 0

    def test_killed_relay_drops_out_of_the_ownership_ring(self):
        ring = RelayRing(["relay0", "relay1"], chunk_frames=4)
        with SessionBroker(history_frames=64) as broker:
            r0 = FrameRelay("relay0", broker, ring=ring)
            r1 = FrameRelay("relay1", broker, ring=ring)
            r0.connect_peer(r1)
            r1.connect_peer(r0)
            for fid, image in enumerate(synthetic_frames(8, size=16)):
                broker.publish(image, time_step=fid, frame_id=fid)
            r0.kill()
            # r1's peer ingest notices the cut and removes the corpse
            poll = threading.Event()
            deadline = time.monotonic() + 5.0
            while "relay0" in ring and time.monotonic() < deadline:
                poll.wait(0.01)
            assert "relay0" not in ring
            assert ring.owner(0) == "relay1"  # survivor owns everything
            r1.close()


class TestUpstreamReconnect:
    def test_relay_survives_wan_cut_to_origin(self):
        """The relay→origin link dies mid-stream; the relay reconnects
        with resume and the viewer still sees every frame exactly once."""
        plan = FaultPlan(seed=11, disconnect_after=10)
        n = 32
        with SessionBroker(history_frames=n) as broker:
            relay = FrameRelay(
                "edge", broker, fault_plan=plan, upstream_credits=n + 8
            )
            handle = relay.join("viewer")
            ids = []
            for fid, image in enumerate(synthetic_frames(n, size=16)):
                broker.publish(image, time_step=fid, frame_id=fid)
                time.sleep(0.002)
            deadline = time.monotonic() + 20.0
            while len(ids) < n and time.monotonic() < deadline:
                try:
                    ids.append(relay_frame_id(handle))
                except TimeoutError:
                    continue
            assert ids == list(range(n))
            assert relay.stats_snapshot().upstream_reconnects >= 1
            handle.leave()
            relay.close()


def relay_frame_id(handle) -> int:
    return handle.next_frame(timeout=0.25).frame_id


class TestRelayUnderFaultGrid:
    def test_faultrun_cell_through_a_relay_hop(self):
        """The fault grid's relay cell: 5% loss + jitter on the
        relay→viewer hop, full delivery because the relay waits on
        credits instead of dropping."""
        report = run_with_faults(
            FaultPlan(seed=42, loss_ratio=0.05, jitter_s=0.01),
            n_frames=32,
            n_viewers=2,
            pace_s=0.01,
            relays=1,
        )
        assert report["relays"] == 1
        assert report["delivered_ratio"] >= 0.99, report
        for session in report["sessions"].values():
            assert session["observed_duplicates"] == 0
            assert session["dropped"] == 0

    def test_viewer_disconnect_rejoins_relay_and_resumes(self):
        report = run_with_faults(
            FaultPlan(seed=5, loss_ratio=0.02, disconnect_after=12),
            n_frames=32,
            n_viewers=2,
            pace_s=0.01,
            relays=2,
        )
        assert report["delivered_ratio"] >= 0.99, report
        assert any(
            s["reconnects"] >= 1 for s in report["sessions"].values()
        )
        for session in report["sessions"].values():
            assert session["observed_duplicates"] == 0


class TestPrefetchUnderPressure:
    def test_tiny_store_stays_correct_with_prefetch_and_eviction(self):
        """A store far smaller than the timeline forces constant
        eviction + refetch; delivery must stay exact and the prefetcher
        must never push out pinned in-flight frames."""
        report = run_relay_topology(
            n_relays=1,
            n_viewers=2,
            n_frames=24,
            loops=2,
            size=24,
            pace_s=0.002,
            store_bytes=4 << 10,  # a handful of encoded frames
            prefetch=PrefetchPolicy(lookahead=4, interval_s=0.01),
            timeout_s=60.0,
        )
        assert report["completed"], report
        assert report["delivered_ratio"] == 1.0
        assert report["duplicates"] == 0
        assert report["skips"] == 0
