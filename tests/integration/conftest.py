"""Every integration test runs under full concurrency instrumentation.

The :mod:`repro.devtools.locktrace` tracer replaces the threading
primitives for the duration of each test: a lock-order inversion, a
lock pinned across a blocking channel operation, or a leaked non-daemon
thread fails the test that caused it — here, where the offending
schedule is reproducible, not in production where it is not.

Opt out per test with ``@pytest.mark.no_locktrace`` (none needed so
far; the marker exists so a future deliberately-hazardous test can
assert on the tracer itself without the fixture interfering).
"""

import pytest

from repro.devtools.locktrace import checked


@pytest.fixture(autouse=True)
def concurrency_checked(request):
    if request.node.get_closest_marker("no_locktrace"):
        yield None
        return
    with checked() as tracer:
        yield tracer


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_locktrace: skip the autouse lock-order/thread-leak "
        "instrumentation for this test",
    )
