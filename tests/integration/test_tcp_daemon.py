"""Integration tests: the daemon framework over real TCP sockets.

The paper's deployment shape — renderer, daemon and display as separate
programs — exercised over localhost sockets with the same interfaces the
in-process tests use.
"""

import time

import numpy as np
import pytest

from repro.daemon import DisplayInterface, RendererInterface
from repro.daemon.tcp import TcpConnection, TcpDaemonServer, connect_daemon
from repro.devtools.waiting import wait_until
from repro.net.transport import ChannelClosed


@pytest.fixture
def server():
    with TcpDaemonServer() as srv:
        yield srv


class TestTcpTransport:
    def test_frame_roundtrip_over_sockets(self, server, gradient_image):
        renderer = RendererInterface(
            connection=connect_daemon(server.address, "renderer"), codec="lzo"
        )
        display = DisplayInterface(
            connection=connect_daemon(server.address, "display")
        )
        renderer.send_frame(gradient_image, time_step=5)
        frame = display.next_frame(timeout=10)
        assert frame.time_step == 5
        assert np.array_equal(frame.image, gradient_image)
        renderer.close()
        display.close()

    def test_jpeg_frames_and_pieces(self, server, gradient_image):
        renderer = RendererInterface(
            connection=connect_daemon(server.address, "renderer"),
            codec="jpeg+lzo",
        )
        display = DisplayInterface(
            connection=connect_daemon(server.address, "display")
        )
        renderer.send_frame_pieces(gradient_image, time_step=0, n_pieces=4)
        frame = display.next_frame(timeout=10)
        assert frame.n_pieces == 4
        mse = ((frame.image.astype(float) - gradient_image) ** 2).mean()
        assert mse < 200
        renderer.close()
        display.close()

    def test_control_path_over_sockets(self, server, gradient_image):
        renderer = RendererInterface(
            connection=connect_daemon(server.address, "renderer"), codec="raw"
        )
        display = DisplayInterface(
            connection=connect_daemon(server.address, "display")
        )
        display.set_view(azimuth=77, elevation=-5)
        wait_until(lambda: renderer.pending_view() is not None, timeout=5,
                   interval=0.02, message="view control never arrived")
        assert renderer.pending_view() == {"azimuth": 77, "elevation": -5}
        renderer.close()
        display.close()

    def test_multiple_renderers_one_display(self, server, gradient_image):
        r1 = RendererInterface(
            connection=connect_daemon(server.address, "renderer"), codec="raw"
        )
        r2 = RendererInterface(
            connection=connect_daemon(server.address, "renderer"), codec="raw"
        )
        display = DisplayInterface(
            connection=connect_daemon(server.address, "display")
        )
        r1.send_frame(gradient_image, time_step=0, frame_id=0)
        r2.send_frame(gradient_image, time_step=1, frame_id=1)
        steps = sorted(display.next_frame(timeout=10).time_step for _ in range(2))
        assert steps == [0, 1]
        for c in (r1, r2, display):
            c.close()

    def test_bad_role_rejected(self, server):
        with pytest.raises(ValueError):
            connect_daemon(server.address, "spectator")

    def test_traffic_logged(self, server, gradient_image):
        conn = connect_daemon(server.address, "renderer")
        renderer = RendererInterface(connection=conn, codec="raw")
        renderer.send_frame(gradient_image, time_step=0)
        assert conn.traffic.bytes_sent > gradient_image.nbytes
        renderer.close()

    def test_server_close_disconnects_peers(self, gradient_image):
        srv = TcpDaemonServer()
        conn = connect_daemon(srv.address, "display")
        srv.close()
        time.sleep(0.1)
        with pytest.raises((ChannelClosed, TimeoutError)):
            conn.recv(timeout=0.5)
            conn.recv(timeout=0.5)


class TestHandshakeRejects:
    """Broken or hostile peers are dropped and counted, never crash the
    accept loop, and never register with the daemon."""

    def _wait_reject(self, server, reason, n=1, deadline_s=5.0):
        try:
            wait_until(lambda: server.reject_reasons.get(reason, 0) >= n,
                       timeout=deadline_s, interval=0.02)
            return True
        except TimeoutError:
            return False

    def test_malformed_hello_counted(self, server):
        import socket as socket_mod

        sock = socket_mod.create_connection(server.address, timeout=5)
        conn = TcpConnection(sock)
        conn.send(b"this is not a protocol message")
        assert self._wait_reject(server, "malformed_hello")
        conn.close()

    def test_non_hello_first_message_counted(self, server):
        import socket as socket_mod

        from repro.daemon.protocol import ControlMessage

        sock = socket_mod.create_connection(server.address, timeout=5)
        conn = TcpConnection(sock)
        conn.send(ControlMessage(tag="view", params={}).encode())
        assert self._wait_reject(server, "not_a_hello")
        conn.close()

    def test_unknown_role_counted(self, server):
        import socket as socket_mod

        from repro.daemon.protocol import HelloMessage

        sock = socket_mod.create_connection(server.address, timeout=5)
        conn = TcpConnection(sock)
        conn.send(HelloMessage(role="spectator", name="x").encode())
        assert self._wait_reject(server, "bad_role")
        conn.close()

    def test_silent_peer_times_out(self):
        import socket as socket_mod

        with TcpDaemonServer(handshake_timeout_s=0.2) as srv:
            sock = socket_mod.create_connection(srv.address, timeout=5)
            assert self._wait_reject(srv, "hello_timeout")
            sock.close()

    def test_peer_that_hangs_up_counted(self, server):
        import socket as socket_mod

        sock = socket_mod.create_connection(server.address, timeout=5)
        sock.close()
        assert self._wait_reject(server, "peer_closed")

    def test_good_peer_still_admitted_after_rejects(self, server):
        import socket as socket_mod

        sock = socket_mod.create_connection(server.address, timeout=5)
        conn = TcpConnection(sock)
        conn.send(b"garbage")
        assert self._wait_reject(server, "malformed_hello")
        good = connect_daemon(server.address, "display")
        assert server.handshake_rejects == 1
        good.close()
        conn.close()

    def test_close_joins_accept_thread(self):
        srv = TcpDaemonServer()
        accept_thread = srv._accept_thread
        srv.close()
        assert not accept_thread.is_alive()


class TestFraming:
    def test_interface_requires_exactly_one_attachment(self):
        with pytest.raises(ValueError):
            RendererInterface()
        with pytest.raises(ValueError):
            DisplayInterface()

    def test_length_prefixed_frames(self, server):
        import socket as socket_mod

        sock = socket_mod.create_connection(server.address, timeout=5)
        conn = TcpConnection(sock)
        conn.send(b"\x00" * 10)
        sent = conn.traffic.sent
        assert sent == [10]
        conn.close()

    def test_oversized_frame_rejected(self):
        import socket as socket_mod

        a, b = socket_mod.socketpair()
        conn = TcpConnection(b)
        a.sendall((1 << 30).to_bytes(4, "big"))
        with pytest.raises(ChannelClosed):
            conn.recv(timeout=2)
        a.close()
        conn.close()
