"""Scenario tests for the pipeline simulation: bottlenecks, ordering,
buffering, and utilization behave like the queueing system they model."""

import pytest

from repro.core import PipelineConfig, simulate_pipeline
from repro.sim.cluster import NASA_O2K, NASA_TO_UCD, O2_CLIENT, RWCP_CLUSTER
from repro.sim.costs import JET_PROFILE, VORTEX_PROFILE


def run(**kw):
    base = dict(
        n_procs=32,
        n_groups=4,
        n_steps=32,
        profile=JET_PROFILE,
        machine=RWCP_CLUSTER,
        image_size=(256, 256),
        transport="store",
    )
    base.update(kw)
    return simulate_pipeline(PipelineConfig(**base))


class TestBottleneckBehaviour:
    def test_storage_saturates_when_disk_bound(self):
        """Many groups of few processors outrun the single storage path."""
        result = run(n_procs=64, n_groups=16, n_steps=64)
        assert result.storage_utilization > 0.9

    def test_storage_relaxed_when_render_bound(self):
        result = run(n_procs=8, n_groups=1, n_steps=32)
        assert result.storage_utilization < 0.3

    def test_parallel_io_lowers_storage_pressure(self):
        loaded = run(n_procs=64, n_groups=16, n_steps=64)
        relieved = run(n_procs=64, n_groups=16, n_steps=64, io_servers=4)
        assert relieved.overall_time < loaded.overall_time
        assert relieved.storage_utilization < loaded.storage_utilization

    def test_wan_contention_with_x_transport(self):
        """Raw X frames from 4 groups pile onto the single WAN link."""
        result = run(
            machine=NASA_O2K,
            transport="x",
            route=NASA_TO_UCD,
            client=O2_CLIENT,
            n_steps=16,
        )
        assert result.output_utilization > 0.9
        # inter-frame delay degenerates to the per-frame X transfer time
        assert result.metrics.inter_frame_delay >= NASA_TO_UCD.transfer_s(
            256 * 256 * 3
        ) * 0.95

    def test_daemon_relieves_wan(self):
        x = run(
            machine=NASA_O2K, transport="x", route=NASA_TO_UCD,
            client=O2_CLIENT, n_steps=16,
        )
        d = run(
            machine=NASA_O2K, transport="daemon", route=NASA_TO_UCD,
            client=O2_CLIENT, n_steps=16,
        )
        assert d.output_utilization < x.output_utilization
        assert d.metrics.inter_frame_delay < x.metrics.inter_frame_delay


class TestOrderingAndBuffers:
    def test_in_order_display_inflates_early_gaps(self):
        """Round-robin dealing means step t waits on group t mod L; the
        displayed sequence is still strictly ordered."""
        result = run(n_groups=8, n_steps=24)
        displayed = [f.displayed for f in result.metrics.frames]
        assert displayed == sorted(displayed)

    def test_deeper_prefetch_never_hurts(self):
        shallow = run(input_buffer=1)
        deep = run(input_buffer=4)
        assert deep.overall_time <= shallow.overall_time + 1e-9

    def test_steady_state_is_periodic_with_group_count(self):
        """Mid-stream the schedule repeats every L frames: the staggered
        groups release an L-burst per cycle, so the gap sequence is
        periodic with period L (pipelined steady state)."""
        l_groups = 4
        result = run(n_groups=l_groups, n_steps=64)
        displayed = [f.displayed for f in result.metrics.frames]
        gaps = [b - a for a, b in zip(displayed, displayed[1:])]
        mid = gaps[16:48]
        for i in range(len(mid) - l_groups):
            assert mid[i] == pytest.approx(mid[i + l_groups], abs=1e-6)


class TestDatasetDependence:
    def test_vortex_sustains_higher_rates_than_jet(self):
        """Dense data renders faster per frame (early termination)."""
        jet = run(n_steps=32)
        vortex = run(n_steps=32, profile=VORTEX_PROFILE)
        assert (
            vortex.metrics.inter_frame_delay < jet.metrics.inter_frame_delay
        )

    def test_larger_images_slower(self):
        small = run(image_size=(128, 128))
        large = run(image_size=(512, 512))
        assert large.overall_time > small.overall_time
