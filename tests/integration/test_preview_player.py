"""Integration tests for the preview/review player over a live session."""

import numpy as np
import pytest

from repro.core import PreviewPlayer, RemoteVisualizationSession
from repro.data import turbulent_jet
from repro.render import Camera


@pytest.fixture
def session():
    ds = turbulent_jet(scale=0.25, n_steps=12)
    with RemoteVisualizationSession(
        ds, group_size=2, camera=Camera(image_size=(32, 32)), codec="lzo"
    ) as s:
        yield s


class TestPreviewPlayer:
    def test_strided_playback(self, session):
        player = PreviewPlayer(session)
        frames = list(player.play(start=0, stop=12, stride=4))
        assert [f.time_step for f in frames] == [0, 4, 8]

    def test_preview_mode_default_stride(self, session):
        player = PreviewPlayer(session)
        frames = list(player.preview(stride=6))
        assert [f.time_step for f in frames] == [0, 6]

    def test_review_buffer(self, session):
        player = PreviewPlayer(session, review_capacity=2)
        list(player.play(stop=3))
        # capacity 2: oldest step evicted
        assert player.reviewable_steps() == [1, 2]
        replay = player.review(2)
        assert replay.time_step == 2

    def test_review_is_local(self, session):
        """Reviewing does not send anything: traffic stays constant."""
        player = PreviewPlayer(session)
        list(player.play(stop=2))
        sent_before = session.renderer.conn.traffic.bytes_sent
        player.review(0)
        player.review(1)
        assert session.renderer.conn.traffic.bytes_sent == sent_before

    def test_review_miss_raises(self, session):
        player = PreviewPlayer(session)
        list(player.play(stop=1))
        with pytest.raises(KeyError, match="not in review buffer"):
            player.review(7)

    def test_history_records(self, session):
        player = PreviewPlayer(session)
        list(player.play(stop=3))
        assert len(player.history) == 3
        steps, times, qualities = zip(*player.history)
        assert steps == (0, 1, 2)
        assert all(t > 0 for t in times)

    def test_adaptive_quality_steps_down_when_slow(self, session):
        player = PreviewPlayer(session, target_frame_seconds=1e-9)
        q0 = player.quality
        list(player.play(stop=3))
        assert player.quality < q0  # impossible target -> quality drops

    def test_adaptive_quality_recovers_when_fast(self, session):
        player = PreviewPlayer(session, target_frame_seconds=1e9)
        player._quality_idx = 0
        list(player.play(stop=3))
        assert player.quality > 35

    def test_validation(self, session):
        with pytest.raises(ValueError):
            PreviewPlayer(session, review_capacity=0)
        player = PreviewPlayer(session)
        with pytest.raises(ValueError):
            list(player.play(stride=0))
