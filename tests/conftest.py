"""Shared fixtures: small datasets, rendered images, reference codecs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import turbulent_jet, turbulent_vortex
from repro.render import Camera, TransferFunction, render_volume, to_display_rgb


@pytest.fixture(scope="session")
def jet_small():
    """A laptop-scale turbulent-jet dataset (~40^3, 8 steps)."""
    return turbulent_jet(scale=0.3, n_steps=8)


@pytest.fixture(scope="session")
def vortex_small():
    return turbulent_vortex(scale=0.25, n_steps=6)


@pytest.fixture(scope="session")
def jet_volume(jet_small):
    return jet_small.volume(3)


@pytest.fixture(scope="session")
def small_camera():
    return Camera(image_size=(64, 64), azimuth=30.0, elevation=20.0)


@pytest.fixture(scope="session")
def rendered_rgba(jet_volume, small_camera):
    """A premultiplied RGBA rendering of the small jet volume."""
    return render_volume(jet_volume, TransferFunction.jet(), small_camera)


@pytest.fixture(scope="session")
def rendered_rgb(rendered_rgba):
    """The same frame as displayable uint8 RGB."""
    return to_display_rgb(rendered_rgba)


@pytest.fixture(scope="session")
def gradient_image():
    """A smooth synthetic RGB image (JPEG-friendly)."""
    yy, xx = np.mgrid[0:96, 0:96].astype(np.float32)
    img = np.stack(
        [
            128 + 100 * np.sin(xx / 11.0),
            (yy * 255 / 95.0),
            (xx + yy) % 256,
        ],
        axis=-1,
    )
    return np.clip(img, 0, 255).astype(np.uint8)


@pytest.fixture(scope="session")
def noise_image():
    """Worst-case incompressible RGB image."""
    rng = np.random.default_rng(1234)
    return rng.integers(0, 256, (64, 64, 3), dtype=np.uint8)
