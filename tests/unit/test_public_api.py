"""Public-API integrity: every exported name imports and is real."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.compress",
    "repro.core",
    "repro.daemon",
    "repro.data",
    "repro.machine",
    "repro.net",
    "repro.render",
    "repro.serve",
    "repro.sim",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    mod = importlib.import_module(package)
    assert hasattr(mod, "__all__"), package
    for name in mod.__all__:
        assert hasattr(mod, name), f"{package}.{name} in __all__ but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_package_has_docstring(package):
    mod = importlib.import_module(package)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 40, package


def test_star_import_top_level():
    namespace: dict = {}
    exec("from repro import *", namespace)  # noqa: S102 - deliberate
    for expected in (
        "RemoteVisualizationSession",
        "PartitionPlan",
        "simulate_pipeline",
        "turbulent_jet",
        "get_codec",
        "Camera",
    ):
        assert expected in namespace


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_no_accidental_heavy_imports():
    """Importing repro must not drag in optional heavyweights."""
    import subprocess
    import sys

    code = (
        "import sys, repro; "
        "bad = [m for m in ('matplotlib', 'scipy.optimize', 'pandas') "
        "if m in sys.modules]; "
        "print(','.join(bad))"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert out.returncode == 0
    assert out.stdout.strip() == ""
