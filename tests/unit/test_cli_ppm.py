"""Unit tests for PPM image I/O and the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.render.ppm import read_ppm, write_ppm


class TestPPM:
    def test_color_roundtrip(self, tmp_path, gradient_image):
        path = tmp_path / "img.ppm"
        write_ppm(path, gradient_image)
        assert np.array_equal(read_ppm(path), gradient_image)

    def test_gray_roundtrip(self, tmp_path):
        img = (np.arange(48).reshape(6, 8) * 5 % 256).astype(np.uint8)
        path = tmp_path / "img.pgm"
        write_ppm(path, img)
        out = read_ppm(path)
        assert out.ndim == 2
        assert np.array_equal(out, img)

    def test_header_format(self, tmp_path):
        path = tmp_path / "t.ppm"
        write_ppm(path, np.zeros((2, 3, 3), dtype=np.uint8))
        data = path.read_bytes()
        assert data.startswith(b"P6\n3 2\n255\n")
        assert len(data) == len(b"P6\n3 2\n255\n") + 18

    def test_comment_skipped_on_read(self, tmp_path):
        path = tmp_path / "c.ppm"
        raster = bytes(range(27))
        path.write_bytes(b"P6\n# a comment\n3 3\n255\n" + raster)
        out = read_ppm(path)
        assert out.shape == (3, 3, 3)
        assert out.tobytes() == raster

    def test_rejects_bad_dtype(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "x.ppm", np.zeros((2, 2, 3), dtype=np.float32))

    def test_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "x.ppm", np.zeros((2, 2, 4), dtype=np.uint8))

    def test_rejects_truncated_raster(self, tmp_path):
        path = tmp_path / "t.ppm"
        path.write_bytes(b"P6\n4 4\n255\nshort")
        with pytest.raises(ValueError):
            read_ppm(path)

    def test_rejects_16bit(self, tmp_path):
        path = tmp_path / "t.ppm"
        path.write_bytes(b"P6\n1 1\n65535\n" + bytes(6))
        with pytest.raises(ValueError):
            read_ppm(path)


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        for command in ("render", "animate", "partition", "codecs", "simulate"):
            args = parser.parse_args([command])
            assert callable(args.func)

    def test_render_writes_ppm(self, tmp_path, capsys):
        out = tmp_path / "frame.ppm"
        rc = main(
            [
                "render", "--scale", "0.2", "--size", "32",
                "--step", "1", "--output", str(out),
            ]
        )
        assert rc == 0
        img = read_ppm(out)
        assert img.shape == (32, 32, 3)
        assert "wrote" in capsys.readouterr().out

    def test_partition_recommends_l4(self, capsys):
        rc = main(["partition", "--procs", "32", "--steps", "128"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recommended: L=4" in out

    def test_simulate_prints_metrics(self, capsys):
        rc = main(["simulate", "--procs", "16", "--groups", "2", "--steps", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overall" in out and "inter-frame" in out

    def test_simulate_daemon_transport(self, capsys):
        rc = main(
            [
                "simulate", "--transport", "daemon", "--route", "nasa-ucd",
                "--machine", "o2k", "--procs", "16", "--groups", "4",
                "--steps", "8",
            ]
        )
        assert rc == 0
        assert "daemon" in capsys.readouterr().out

    def test_codecs_table(self, capsys):
        rc = main(["codecs", "--scale", "0.2", "--size", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        for method in ("raw", "lzo", "bzip", "jpeg+lzo"):
            assert method in out

    def test_animate_writes_frames(self, tmp_path, capsys):
        rc = main(
            [
                "animate", "--scale", "0.2", "--size", "32", "--steps", "2",
                "--group-size", "2", "--codec", "lzo",
                "--output-dir", str(tmp_path / "anim"),
            ]
        )
        assert rc == 0
        frames = sorted((tmp_path / "anim").glob("*.ppm"))
        assert len(frames) == 2
        assert read_ppm(frames[0]).shape == (32, 32, 3)

    def test_animate_with_pieces(self, capsys):
        rc = main(
            [
                "animate", "--scale", "0.2", "--size", "32", "--steps", "2",
                "--group-size", "2", "--codec", "lzo", "--pieces", "4",
            ]
        )
        assert rc == 0
        assert "reduction" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["teleport"])


class TestNewCommands:
    def test_simulate_with_timeline(self, capsys):
        rc = main(
            [
                "simulate", "--procs", "16", "--groups", "4",
                "--steps", "8", "--timeline",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pipeline timeline" in out
        assert "group   0 |" in out

    def test_autotune_command(self, capsys):
        rc = main(["autotune", "--target-fps", "1.0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recommendation" in out
        assert "meets the target" in out

    def test_autotune_impossible_target(self, capsys):
        rc = main(["autotune", "--target-fps", "9999"])
        assert rc == 0
        assert "CANNOT meet" in capsys.readouterr().out
