"""Unit tests for the display daemon and its two interfaces."""

import time

import numpy as np
import pytest

from repro.daemon import DisplayDaemon, DisplayInterface, RendererInterface
from repro.devtools.waiting import wait_until


@pytest.fixture
def system():
    daemon = DisplayDaemon(buffer_frames=8)
    renderer = RendererInterface(daemon, codec="lzo")
    display = DisplayInterface(daemon)
    yield daemon, renderer, display
    renderer.close()
    display.close()
    daemon.close()


class TestFramePath:
    def test_single_frame_lossless(self, system, gradient_image):
        _, renderer, display = system
        renderer.send_frame(gradient_image, time_step=3)
        frame = display.next_frame(timeout=5)
        assert frame.time_step == 3
        assert np.array_equal(frame.image, gradient_image)

    def test_frames_arrive_in_order(self, system, gradient_image):
        _, renderer, display = system
        for t in range(5):
            renderer.send_frame(gradient_image, time_step=t)
        steps = [display.next_frame(timeout=5).time_step for _ in range(5)]
        assert steps == list(range(5))

    def test_pieces_reassembled(self, system, gradient_image):
        _, renderer, display = system
        sizes = renderer.send_frame_pieces(gradient_image, time_step=0, n_pieces=4)
        assert len(sizes) == 4
        frame = display.next_frame(timeout=5)
        assert frame.n_pieces == 4
        assert np.array_equal(frame.image, gradient_image)

    def test_manual_piece_sending(self, system, gradient_image):
        _, renderer, display = system
        h = gradient_image.shape[0]
        mid = h // 2
        shape = (h, gradient_image.shape[1])
        renderer.send_piece(
            gradient_image[:mid], 0, frame_id=9, piece_index=0, n_pieces=2,
            row_range=(0, mid), image_shape=shape,
        )
        renderer.send_piece(
            gradient_image[mid:], 0, frame_id=9, piece_index=1, n_pieces=2,
            row_range=(mid, h), image_shape=shape,
        )
        frame = display.next_frame(timeout=5)
        assert frame.frame_id == 9
        assert np.array_equal(frame.image, gradient_image)

    def test_jpeg_codec_through_daemon(self, gradient_image):
        with DisplayDaemon() as daemon:
            renderer = RendererInterface(daemon, codec="jpeg+lzo")
            display = DisplayInterface(daemon)
            payload = renderer.send_frame(gradient_image, time_step=0)
            frame = display.next_frame(timeout=5)
            assert frame.payload_bytes == payload
            assert payload < gradient_image.nbytes / 5
            mse = ((frame.image.astype(float) - gradient_image) ** 2).mean()
            assert mse < 200

    def test_payload_sizes_reported(self, system, rendered_rgb):
        _, renderer, display = system
        n = renderer.send_frame(rendered_rgb, time_step=0)
        frame = display.next_frame(timeout=5)
        assert frame.payload_bytes == n

    def test_multiple_displays_both_receive(self, gradient_image):
        with DisplayDaemon() as daemon:
            renderer = RendererInterface(daemon, codec="raw")
            d1 = DisplayInterface(daemon, name="d1")
            d2 = DisplayInterface(daemon, name="d2")
            renderer.send_frame(gradient_image, time_step=0)
            f1 = d1.next_frame(timeout=5)
            f2 = d2.next_frame(timeout=5)
            assert np.array_equal(f1.image, f2.image)


class TestBuffering:
    def test_buffer_drops_oldest_whole_frames(self, gradient_image):
        daemon = DisplayDaemon(buffer_frames=2)
        renderer = RendererInterface(daemon, codec="raw")
        display = DisplayInterface(daemon)
        # hold the drain pump busy by flooding before reading
        for t in range(30):
            renderer.send_frame(gradient_image, time_step=t, frame_id=t)
        time.sleep(0.5)
        got = []
        try:
            while True:
                got.append(display.next_frame(timeout=0.5).time_step)
        except TimeoutError:
            pass
        assert got, "expected at least one frame delivered"
        assert got == sorted(got)
        assert got[-1] == 29  # newest survives
        daemon.close()

    def test_unbounded_buffer_keeps_everything(self, gradient_image):
        daemon = DisplayDaemon(buffer_frames=0)
        renderer = RendererInterface(daemon, codec="raw")
        display = DisplayInterface(daemon)
        for t in range(10):
            renderer.send_frame(gradient_image, time_step=t)
        steps = [display.next_frame(timeout=5).time_step for _ in range(10)]
        assert steps == list(range(10))
        assert daemon.dropped_frames == 0
        daemon.close()


class TestControlPath:
    def test_view_callback_buffered(self, system):
        _, renderer, display = system
        display.set_view(azimuth=120, elevation=-15)
        pending = wait_until(renderer.pending_view, timeout=3,
                             message="view control never arrived")
        assert pending == {"azimuth": 120, "elevation": -15}

    def test_controls_drain_once(self, system):
        _, renderer, display = system
        display.send_control("custom", value=1)
        drained = wait_until(renderer.drain_controls, timeout=3,
                             message="control never arrived")
        assert [m.tag for m in drained] == ["custom"]
        assert renderer.drain_controls() == []

    def test_set_codec_switches_renderer(self, system):
        _, renderer, display = system
        assert renderer.codec.name == "lzo"
        display.set_codec("jpeg+bzip", quality=85)
        wait_until(lambda: renderer.codec.name == "jpeg+bzip", timeout=3,
                   message="codec switch never applied")
        assert renderer.codec.name == "jpeg+bzip"
        assert renderer.codec.first.quality == 85

    def test_colormap_message(self, system):
        _, renderer, display = system
        display.set_colormap([0.0, 1.0], [[0, 0, 0, 0], [1, 1, 1, 1]])
        msgs = wait_until(renderer.drain_controls, timeout=3,
                          message="colormap control never arrived")
        assert msgs[0].tag == "colormap"
        assert msgs[0].params["positions"] == [0.0, 1.0]

    def test_control_reaches_all_renderers(self, gradient_image):
        with DisplayDaemon() as daemon:
            r1 = RendererInterface(daemon, codec="raw", name="r1")
            r2 = RendererInterface(daemon, codec="raw", name="r2")
            display = DisplayInterface(daemon)
            display.set_view(azimuth=1, elevation=2)
            wait_until(
                lambda: r1.pending_view() is not None
                and r2.pending_view() is not None,
                timeout=3, message="view control never reached both renderers",
            )
            assert r1.pending_view() == {"azimuth": 1, "elevation": 2}
            assert r2.pending_view() == {"azimuth": 1, "elevation": 2}


class TestLifecycle:
    def test_daemon_context_manager(self):
        with DisplayDaemon() as daemon:
            assert daemon.dropped_frames == 0

    def test_unknown_role_rejected(self):
        from repro.net.transport import FramedConnection

        with DisplayDaemon() as daemon:
            conn, _ = FramedConnection.pair()
            with pytest.raises(ValueError):
                daemon.connect(conn, role="spectator")


class TestSlowConsumer:
    """A display that never drains must not stall anyone else."""

    def _bounded_display(self, daemon, maxsize=2):
        from repro.net.transport import FramedConnection

        local, remote = FramedConnection.pair("slow-local", "slow-daemon",
                                              maxsize=maxsize)
        daemon.connect(remote, role="display", name="slow")
        return local

    def test_never_draining_display_triggers_whole_frame_drops(
        self, gradient_image
    ):
        from repro.daemon import DisplayDaemon, DisplayInterface, RendererInterface

        n_frames, buffer_frames = 30, 2
        daemon = DisplayDaemon(buffer_frames=buffer_frames)
        renderer = RendererInterface(daemon, codec="raw")
        fast = DisplayInterface(daemon, name="fast")
        self._bounded_display(daemon)  # never recv'd from
        # paced stream: the fast display consumes each frame as it lands,
        # so any drop can only come from the wedged slow display
        steps = []
        for t in range(n_frames):
            renderer.send_frame(gradient_image, time_step=t, frame_id=t)
            steps.append(fast.next_frame(timeout=5).time_step)
        assert steps == list(range(n_frames))
        wait_until(lambda: daemon.dropped_frames > 0, timeout=5,
                   message="slow display never triggered a drop")
        # accounting: everything beyond the slow port's pipe + buffer
        # capacity was dropped whole, and only from the slow display
        assert daemon.dropped_frames > 0
        assert daemon.dropped_frames <= n_frames - buffer_frames
        daemon.close()

    def test_close_mid_stream_joins_all_pump_threads(self, gradient_image):
        from repro.daemon import DisplayDaemon, DisplayInterface, RendererInterface

        daemon = DisplayDaemon(buffer_frames=2)
        renderer = RendererInterface(daemon, codec="raw")
        DisplayInterface(daemon, name="fast")
        self._bounded_display(daemon)  # its frame pump blocks in send()
        for t in range(20):
            renderer.send_frame(gradient_image, time_step=t, frame_id=t)
        time.sleep(0.2)  # let pumps wedge against the full pipe
        daemon.close()
        for thread in daemon._threads:
            thread.join(timeout=1.0)
        assert all(not t.is_alive() for t in daemon._threads)


class TestLifecycleGuards:
    def test_connect_after_close_raises(self):
        from repro.daemon import DisplayDaemon
        from repro.net.transport import FramedConnection

        daemon = DisplayDaemon()
        daemon.close()
        conn, _ = FramedConnection.pair()
        with pytest.raises(RuntimeError):
            daemon.connect(conn, role="display")
        with pytest.raises(RuntimeError):
            daemon.connect(conn, role="renderer")


class TestDeliveryPolicy:
    def test_custom_policy_filters_displays(self, gradient_image):
        from repro.daemon import DisplayDaemon, DisplayInterface, RendererInterface
        from repro.daemon.display_daemon import DeliveryPolicy

        class EvenFramesOnly(DeliveryPolicy):
            def deliver(self, msg, ports):
                if msg.frame_id % 2:
                    return 0
                dropped = 0
                for port in ports:
                    dropped += port.offer(msg)
                return dropped

        with DisplayDaemon(policy=EvenFramesOnly()) as daemon:
            renderer = RendererInterface(daemon, codec="raw")
            display = DisplayInterface(daemon)
            for t in range(6):
                renderer.send_frame(gradient_image, time_step=t, frame_id=t)
            steps = [display.next_frame(timeout=5).time_step for _ in range(3)]
            assert steps == [0, 2, 4]

    def test_default_policy_is_broadcast(self):
        from repro.daemon import BroadcastPolicy, DisplayDaemon

        with DisplayDaemon() as daemon:
            assert isinstance(daemon.policy, BroadcastPolicy)
