"""Unit tests for gradient (Lambertian) shading in the ray caster."""

import numpy as np
import pytest

from repro.render import Camera, RayCaster, TransferFunction, render_volume


@pytest.fixture(scope="module")
def blob():
    n = 20
    x, y, z = np.mgrid[0:n, 0:n, 0:n].astype(np.float32) / (n - 1)
    r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2
    return np.exp(-r2 / 0.04).astype(np.float32)


class TestShading:
    def test_shading_changes_image(self, blob):
        tf = TransferFunction.grayscale(opacity=0.5)
        cam = Camera(image_size=(24, 24))
        flat = render_volume(blob, tf, cam, shading=False)
        lit = render_volume(blob, tf, cam, shading=True)
        assert not np.allclose(flat, lit)

    def test_shading_only_darkens_color(self, blob):
        """ambient + (1-ambient)*diffuse <= 1: shading cannot brighten,
        and alpha is untouched."""
        tf = TransferFunction.grayscale(opacity=0.5)
        cam = Camera(image_size=(24, 24))
        flat = render_volume(blob, tf, cam, shading=False)
        lit = render_volume(blob, tf, cam, shading=True)
        assert (lit[..., :3] <= flat[..., :3] + 1e-5).all()
        assert np.allclose(lit[..., 3], flat[..., 3], atol=1e-6)

    def test_ambient_one_equals_unshaded(self, blob):
        tf = TransferFunction.grayscale(opacity=0.5)
        cam = Camera(image_size=(16, 16))
        flat = render_volume(blob, tf, cam, shading=False)
        lit = render_volume(blob, tf, cam, shading=True, ambient=1.0)
        assert np.allclose(lit, flat, atol=1e-5)

    def test_light_direction_matters(self, blob):
        tf = TransferFunction.grayscale(opacity=0.5)
        cam = Camera(image_size=(24, 24))
        a = render_volume(
            blob, tf, cam, shading=True, light_direction=(1, 0, 0)
        )
        b = render_volume(
            blob, tf, cam, shading=True, light_direction=(0, 0, 1)
        )
        assert not np.allclose(a, b)

    def test_shading_asymmetric_for_offcenter_light(self, blob):
        """A light from +x darkens the side whose gradients are
        perpendicular to it: the image loses its left-right symmetry."""
        tf = TransferFunction.grayscale(opacity=0.5)
        cam = Camera(image_size=(25, 25), azimuth=0, elevation=0)
        flat = render_volume(blob, tf, cam, shading=False)[..., 0]
        # the blob is symmetric: unshaded halves match closely
        assert np.abs(flat - flat[:, ::-1]).max() < 0.02

    def test_bad_light_rejected(self, blob):
        tf = TransferFunction.jet()
        cam = Camera(image_size=(8, 8))
        with pytest.raises(ValueError):
            render_volume(blob, tf, cam, shading=True, light_direction=(0, 0, 0))
        with pytest.raises(ValueError):
            render_volume(blob, tf, cam, shading=True, ambient=1.5)

    def test_raycaster_shading_flag(self, blob):
        cam = Camera(image_size=(16, 16))
        tf = TransferFunction.grayscale(opacity=0.5)
        rc = RayCaster(tf=tf, camera=cam, shading=True)
        ref = render_volume(blob, tf, cam, shading=True)
        assert np.array_equal(rc.render(blob), ref)

    def test_empty_volume_still_transparent(self):
        vol = np.zeros((8, 8, 8), dtype=np.float32)
        img = render_volume(
            vol, TransferFunction.jet(), Camera(image_size=(8, 8)), shading=True
        )
        assert img.max() == 0.0
