"""Unit tests for the discrete-event simulation engine and resources."""

import pytest

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.resources import Pipe, Resource, hold


class TestEngine:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        log = []

        def proc():
            yield sim.timeout(2.5)
            log.append(sim.now)
            yield sim.timeout(1.0)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [2.5, 3.5]

    def test_deterministic_tie_break_by_creation_order(self):
        sim = Simulator()
        log = []

        def proc(name):
            yield sim.timeout(1.0)
            log.append(name)

        sim.process(proc("a"))
        sim.process(proc("b"))
        sim.run()
        assert log == ["a", "b"]

    def test_process_return_value(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1)
            return "done"

        def parent(results):
            value = yield sim.process(child())
            results.append(value)

        results = []
        sim.process(parent(results))
        sim.run()
        assert results == ["done"]

    def test_event_value_passed_to_yielder(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def waiter():
            value = yield ev
            got.append(value)

        def firer():
            yield sim.timeout(3)
            ev.succeed("payload")

        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert got == ["payload"]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_yield_non_event_rejected(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_all_of(self):
        sim = Simulator()
        done_at = []

        def worker(d):
            yield sim.timeout(d)

        def waiter():
            procs = [sim.process(worker(d)) for d in (1, 5, 3)]
            yield sim.all_of(procs)
            done_at.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert done_at == [5]

    def test_all_of_empty(self):
        sim = Simulator()
        fired = []

        def waiter():
            yield sim.all_of([])
            fired.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert fired == [0.0]

    def test_run_until(self):
        sim = Simulator()
        log = []

        def proc():
            for _ in range(10):
                yield sim.timeout(1)
                log.append(sim.now)

        sim.process(proc())
        sim.run(until=4.5)
        assert log == [1, 2, 3, 4]
        assert sim.now == 4.5

    def test_run_returns_final_time(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(7)

        sim.process(proc())
        assert sim.run() == 7.0


class TestResource:
    def test_serializes_access(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        spans = []

        def user(name):
            yield res.request()
            start = sim.now
            yield sim.timeout(2)
            res.release()
            spans.append((name, start, sim.now))

        for n in ("a", "b", "c"):
            sim.process(user(n))
        sim.run()
        assert spans == [("a", 0, 2), ("b", 2, 4), ("c", 4, 6)]

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        done = []

        def user():
            yield res.request()
            yield sim.timeout(2)
            res.release()
            done.append(sim.now)

        for _ in range(4):
            sim.process(user())
        sim.run()
        assert done == [2, 2, 4, 4]

    def test_fifo_order(self):
        sim = Simulator()
        res = Resource(sim)
        order = []

        def user(name, arrive):
            yield sim.timeout(arrive)
            yield res.request()
            order.append(name)
            yield sim.timeout(5)
            res.release()

        sim.process(user("late", 0.2))
        sim.process(user("early", 0.1))
        sim.run()
        assert order == ["early", "late"]

    def test_release_idle_rejected(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_utilization(self):
        sim = Simulator()
        res = Resource(sim)

        def user():
            yield sim.process(hold(sim, res, 3.0))
            yield sim.timeout(1.0)

        sim.process(user())
        horizon = sim.run()
        assert horizon == 4.0
        assert res.utilization(horizon) == pytest.approx(0.75)

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)


class TestPipe:
    def test_fifo_transfer(self):
        sim = Simulator()
        pipe = Pipe(sim)
        got = []

        def producer():
            for i in range(3):
                yield sim.timeout(1)
                yield pipe.put(i)

        def consumer():
            for _ in range(3):
                ev = pipe.get()
                yield ev
                got.append((sim.now, ev.value))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [(1, 0), (2, 1), (3, 2)]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        pipe = Pipe(sim)
        times = []

        def consumer():
            ev = pipe.get()
            yield ev
            times.append(sim.now)

        def producer():
            yield sim.timeout(5)
            yield pipe.put("x")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert times == [5]

    def test_bounded_put_blocks(self):
        sim = Simulator()
        pipe = Pipe(sim, capacity=1)
        log = []

        def producer():
            for i in range(2):
                yield pipe.put(i)
                log.append(("put", i, sim.now))

        def consumer():
            yield sim.timeout(4)
            ev = pipe.get()
            yield ev
            log.append(("got", ev.value, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        # second put must wait until the consumer drained the first item
        assert ("put", 0, 0.0) in log
        assert ("put", 1, 4.0) in log

    def test_len(self):
        sim = Simulator()
        pipe = Pipe(sim)
        pipe.put(1)
        pipe.put(2)
        assert len(pipe) == 2

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Pipe(Simulator(), capacity=-1)


class TestEngineEdgeCases:
    def test_all_of_with_already_fired_events(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("early")
        done = []

        def waiter():
            values = yield sim.all_of([ev])
            done.append(values)

        sim.process(waiter())
        sim.run()
        assert done == [["early"]]

    def test_process_exception_propagates_from_run(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1)
            raise RuntimeError("process crashed")

        sim.process(bad())
        with pytest.raises(RuntimeError, match="process crashed"):
            sim.run()

    def test_nested_processes(self):
        sim = Simulator()
        log = []

        def leaf(tag, d):
            yield sim.timeout(d)
            return tag

        def parent():
            a = yield sim.process(leaf("a", 2))
            b = yield sim.process(leaf("b", 3))
            log.append((a, b, sim.now))

        sim.process(parent())
        sim.run()
        assert log == [("a", "b", 5.0)]

    def test_event_value_none_is_valid(self):
        sim = Simulator()
        got = []

        def waiter(ev):
            value = yield ev
            got.append(value)

        ev = sim.event()
        sim.process(waiter(ev))
        sim._defer(ev.succeed, None)
        sim.run()
        assert got == [None]

    def test_zero_delay_timeout_runs_in_order(self):
        sim = Simulator()
        log = []

        def first():
            yield sim.timeout(0)
            log.append("first")

        def second():
            yield sim.timeout(0)
            log.append("second")

        sim.process(first())
        sim.process(second())
        sim.run()
        assert log == ["first", "second"]
