"""Unit tests for session auto-tuning and compressibility analysis."""

import numpy as np
import pytest

from repro.compress import (
    estimate_compressed_bytes,
    frame_statistics,
    get_codec,
    pixel_coverage,
    shannon_entropy_bits,
)
from repro.core import autotune
from repro.sim.cluster import NASA_O2K, NASA_TO_UCD, O2_CLIENT
from repro.sim.costs import JET_PROFILE


class TestCompressibilityAnalysis:
    def test_coverage_black_frame(self):
        assert pixel_coverage(np.zeros((8, 8, 3), dtype=np.uint8)) == 0.0

    def test_coverage_full_frame(self):
        assert pixel_coverage(np.full((8, 8, 3), 200, dtype=np.uint8)) == 1.0

    def test_coverage_partial(self):
        img = np.zeros((10, 10), dtype=np.uint8)
        img[:5] = 100
        assert pixel_coverage(img) == pytest.approx(0.5)

    def test_entropy_constant_is_zero(self):
        assert shannon_entropy_bits(np.full((16, 16), 7, dtype=np.uint8)) == 0.0

    def test_entropy_uniform_is_eight(self):
        img = np.arange(256, dtype=np.uint8).repeat(4)
        assert shannon_entropy_bits(img) == pytest.approx(8.0)

    def test_entropy_bounds(self, gradient_image):
        e = shannon_entropy_bits(gradient_image)
        assert 0.0 < e <= 8.0

    def test_jet_frames_lower_entropy_than_vortex(
        self, rendered_rgb, vortex_small, small_camera
    ):
        """The measurable mechanism behind §6's compression contrast."""
        from repro.render import TransferFunction, render_volume, to_display_rgb

        vortex_frame = to_display_rgb(
            render_volume(
                vortex_small.volume(2), TransferFunction.vortex(), small_camera
            )
        )
        assert pixel_coverage(rendered_rgb) < pixel_coverage(vortex_frame)
        assert shannon_entropy_bits(rendered_rgb) < shannon_entropy_bits(
            vortex_frame
        )

    def test_size_estimate_tracks_real_codec(self, rendered_rgb):
        est = estimate_compressed_bytes(rendered_rgb)
        real = len(get_codec("lzo").encode_image(rendered_rgb))
        assert real / 4 < est < real * 4

    def test_frame_statistics_keys(self, gradient_image):
        stats = frame_statistics(gradient_image)
        assert set(stats) == {
            "pixel_coverage",
            "entropy_bits_per_byte",
            "estimated_lossless_bytes",
            "raw_bytes",
        }
        assert stats["raw_bytes"] == gradient_image.size


class TestAutotune:
    def run(self, **kw):
        base = dict(n_procs=64, image_size=(256, 256), target_fps=2.0)
        base.update(kw)
        return autotune(
            NASA_O2K, JET_PROFILE, NASA_TO_UCD, O2_CLIENT, **base
        )

    def test_easy_target_met_at_high_quality(self):
        cfg = self.run(target_fps=1.0)
        assert cfg.meets_target
        assert cfg.quality == 90
        assert cfg.predicted_fps >= 1.0

    def test_impossible_target_returns_fastest(self):
        cfg = self.run(target_fps=1000.0)
        assert not cfg.meets_target
        assert cfg.predicted_fps > 0

    def test_valid_configuration_fields(self):
        cfg = self.run()
        assert 1 <= cfg.n_groups <= 64
        assert cfg.n_pieces in (1, 2, 4, 8)
        assert cfg.quality in (35, 50, 65, 75, 90)
        assert cfg.predicted_startup_s > 0

    def test_tighter_target_never_higher_quality(self):
        easy = self.run(target_fps=0.5)
        hard = self.run(target_fps=4.0)
        assert hard.quality <= easy.quality

    def test_prefers_quality_when_meeting(self):
        """Among meeting configs, quality dominates piece count and L."""
        cfg = self.run(target_fps=0.1)
        assert cfg.quality == 90

    def test_target_validation(self):
        with pytest.raises(ValueError):
            self.run(target_fps=0)

    def test_smaller_images_reach_higher_rates(self):
        big = self.run(image_size=(1024, 1024), target_fps=1000)
        small = self.run(image_size=(128, 128), target_fps=1000)
        assert small.predicted_fps > big.predicted_fps
