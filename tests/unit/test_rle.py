"""Unit tests for the PackBits-style RLE codec."""

import numpy as np
import pytest

from repro.compress.base import CodecError
from repro.compress.rle import RLECodec, find_runs


class TestFindRuns:
    def test_empty(self):
        starts, lengths = find_runs(np.array([], dtype=np.uint8))
        assert starts.size == 0 and lengths.size == 0

    def test_single_run(self):
        starts, lengths = find_runs(np.array([7, 7, 7], dtype=np.uint8))
        assert starts.tolist() == [0]
        assert lengths.tolist() == [3]

    def test_alternating(self):
        starts, lengths = find_runs(np.array([1, 2, 1, 2], dtype=np.uint8))
        assert starts.tolist() == [0, 1, 2, 3]
        assert lengths.tolist() == [1, 1, 1, 1]

    def test_lengths_cover_input(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 3, 500, dtype=np.uint8)
        starts, lengths = find_runs(data)
        assert lengths.sum() == data.size
        assert starts[0] == 0
        assert np.all(np.diff(starts) == lengths[:-1])


class TestRLECodec:
    @pytest.fixture
    def codec(self):
        return RLECodec()

    def test_empty(self, codec):
        assert codec.decode(codec.encode(b"")) == b""

    def test_single_byte(self, codec):
        assert codec.decode(codec.encode(b"Q")) == b"Q"

    def test_long_run_compresses(self, codec):
        data = b"\x00" * 5000
        enc = codec.encode(data)
        assert len(enc) < 100
        assert codec.decode(enc) == data

    def test_literals_roundtrip(self, codec):
        data = bytes(range(256)) * 3
        assert codec.decode(codec.encode(data)) == data

    def test_mixed_runs_and_literals(self, codec):
        data = b"abc" + b"x" * 40 + b"def" + b"y" * 200 + b"ghi"
        assert codec.decode(codec.encode(data)) == data

    def test_run_exactly_min_run(self, codec):
        data = b"ab" + b"c" * codec.min_run + b"de"
        assert codec.decode(codec.encode(data)) == data

    def test_run_below_min_run_stays_literal(self):
        codec = RLECodec(min_run=4)
        data = b"aaabbb"  # runs of 3, below threshold
        enc = codec.encode(data)
        assert codec.decode(enc) == data

    def test_max_length_run_boundaries(self, codec):
        for n in (127, 128, 129, 255, 256, 257):
            data = b"z" * n
            assert codec.decode(codec.encode(data)) == data, n

    def test_max_length_literal_boundaries(self, codec):
        base = bytes(range(250)) + bytes(range(250))
        for n in (127, 128, 129, 255, 300):
            data = base[:n]
            assert codec.decode(codec.encode(data)) == data, n

    def test_incompressible_expansion_bounded(self, codec):
        rng = np.random.default_rng(5)
        data = rng.integers(0, 256, 10000, dtype=np.uint8).tobytes()
        enc = codec.encode(data)
        assert len(enc) <= len(data) * 1.02 + 16
        assert codec.decode(enc) == data

    def test_reserved_control_byte_rejected(self, codec):
        with pytest.raises(CodecError):
            codec.decode(bytes([128, 0]))

    def test_truncated_literal_rejected(self, codec):
        with pytest.raises(CodecError):
            codec.decode(bytes([5, 1, 2]))  # promises 6 literals, has 2

    def test_truncated_repeat_rejected(self, codec):
        with pytest.raises(CodecError):
            codec.decode(bytes([200]))

    def test_min_run_validation(self):
        with pytest.raises(ValueError):
            RLECodec(min_run=1)

    def test_is_lossless_flag(self, codec):
        assert codec.lossless

    def test_image_interface(self, codec, rendered_rgb):
        enc = codec.encode_image(rendered_rgb)
        out = codec.decode_image(enc)
        assert np.array_equal(out, rendered_rgb)
