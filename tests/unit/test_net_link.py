"""Unit tests for the simulated WAN link resource."""

import pytest

from repro.net import SimLink, lan_route
from repro.sim.cluster import NASA_TO_UCD
from repro.sim.engine import Simulator


class TestSimLink:
    def test_single_transfer_time(self):
        sim = Simulator()
        link = SimLink(sim, lan_route(1e6, rtt_s=0.0))

        def sender():
            yield sim.process(link.transfer(500_000))

        sim.process(sender())
        horizon = sim.run()
        assert horizon == pytest.approx(0.5)
        assert len(link.completed) == 1
        assert link.completed[0] == (pytest.approx(0.5), 500_000)

    def test_transfers_serialize(self):
        sim = Simulator()
        link = SimLink(sim, lan_route(1e6, rtt_s=0.0))
        done = []

        def sender(nbytes):
            yield sim.process(link.transfer(nbytes))
            done.append(sim.now)

        for _ in range(3):
            sim.process(sender(1e6))
        sim.run()
        assert done == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]

    def test_multi_stream_link(self):
        sim = Simulator()
        link = SimLink(sim, lan_route(1e6, rtt_s=0.0), streams=2)
        done = []

        def sender():
            yield sim.process(link.transfer(1e6))
            done.append(sim.now)

        for _ in range(4):
            sim.process(sender())
        sim.run()
        assert done == [1.0, 1.0, 2.0, 2.0]

    def test_uses_route_burst_model(self):
        sim = Simulator()
        link = SimLink(sim, NASA_TO_UCD)

        def sender():
            yield sim.process(link.transfer(196_608))

        sim.process(sender())
        horizon = sim.run()
        assert horizon == pytest.approx(NASA_TO_UCD.transfer_s(196_608))

    def test_completion_log_order(self):
        sim = Simulator()
        link = SimLink(sim, lan_route(1e6, rtt_s=0.0))

        def sender(nbytes, delay):
            yield sim.timeout(delay)
            yield sim.process(link.transfer(nbytes))

        sim.process(sender(100, 0.5))
        sim.process(sender(200, 0.0))
        sim.run()
        assert [n for _, n in link.completed] == [200, 100]
