"""Decode-throughput smoke floors (``make bench-smoke``).

These run inside the normal unit suite but are additionally selectable with
``-m perf_smoke`` for a seconds-long guardrail.  The floors are set an
order of magnitude below what the vectorized decoders actually deliver, so
they only trip on a real fast-path regression (e.g. a per-symbol Python
loop sneaking back in), never on machine noise.
"""

import time

import numpy as np
import pytest

from repro.compress import get_codec

pytestmark = pytest.mark.perf_smoke

# (codec, decode-MB/s floor) — raw-image megabytes per decode second,
# set ~3-10x below what this frame actually measures on a laptop-class
# core so only structural regressions trip them.
FLOORS = [
    ("jpeg", 6.0),
    ("jpeg+lzo", 5.0),
    ("rle", 80.0),
    ("lzo", 4.0),
]

# (codec, encode-MB/s floor) — same philosophy for the vectorized encode
# path: the synthetic frame below measures jpeg ~74, jpeg+lzo ~52, rle ~43,
# lzo ~15, bzip ~1.7 MB/s on a laptop-class core, so these floors only trip
# when a per-token Python loop (or per-frame scratch churn) sneaks back in.
ENCODE_FLOORS = [
    ("jpeg", 15.0),
    ("jpeg+lzo", 10.0),
    ("rle", 10.0),
    ("lzo", 3.0),
    ("bzip", 0.4),
]


def _frame(size=192):
    yy, xx = np.mgrid[0:size, 0:size]
    r = np.sin(xx / 9.0) * np.cos(yy / 13.0) * 127 + 128
    g = (xx * 255) // size
    b = ((xx + yy) * 255) // (2 * size)
    return np.clip(np.stack([r, g, b], axis=-1), 0, 255).astype(np.uint8)


@pytest.mark.parametrize("name,floor", FLOORS, ids=[f[0] for f in FLOORS])
def test_decode_throughput_floor(name, floor):
    img = _frame()
    codec = get_codec(name)
    enc = codec.encode_image(img)
    codec.decode_image(enc)  # warm caches/LUTs outside the timed window
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        out = codec.decode_image(enc)
        best = min(best, time.perf_counter() - t0)
    assert out.shape == img.shape
    mbps = img.nbytes / best / 1e6
    assert mbps >= floor, f"{name}: {mbps:.1f} MB/s below {floor} MB/s floor"


@pytest.mark.parametrize(
    "name,floor", ENCODE_FLOORS, ids=[f[0] for f in ENCODE_FLOORS]
)
def test_encode_throughput_floor(name, floor):
    img = _frame()
    codec = get_codec(name)
    codec.encode_image(img)  # warm caches/LUTs outside the timed window
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        enc = codec.encode_image(img)
        best = min(best, time.perf_counter() - t0)
    assert len(enc) > 0
    mbps = img.nbytes / best / 1e6
    assert mbps >= floor, f"{name}: {mbps:.1f} MB/s below {floor} MB/s floor"
