"""Unit tests for the calibrated cost models and machine/route specs."""

import pytest

from repro.net import XDisplayModel, get_route, lan_route
from repro.sim.cluster import (
    NASA_O2K,
    NASA_TO_UCD,
    O2_CLIENT,
    RWCP_CLUSTER,
    RWCP_TO_UCD,
)
from repro.sim.costs import (
    JET_PROFILE,
    MIXING_PROFILE,
    VORTEX_PROFILE,
    CostModel,
    DatasetProfile,
)


class TestProfiles:
    def test_jet_bytes_per_step(self):
        assert JET_PROFILE.bytes_per_step == 129 * 129 * 104 * 4

    def test_mixing_counts_components(self):
        assert MIXING_PROFILE.bytes_per_step == 640 * 256 * 256 * 3 * 4

    def test_vortex_is_high_entropy(self):
        assert VORTEX_PROFILE.image_entropy > JET_PROFILE.image_entropy


class TestRenderCosts:
    def test_single_processor_jet_10_to_20s(self):
        """§6: '10 to 20 seconds … an image of 256x256 pixels using a
        single processor' — on both test machines."""
        for machine in (NASA_O2K, RWCP_CLUSTER):
            t1 = machine.costs.single_processor_render_s(JET_PROFILE, 256 * 256)
            assert 10.0 <= t1 <= 20.0, machine.name

    def test_imbalance_monotone_in_group_size(self):
        c = CostModel()
        values = [c.imbalance(g) for g in (1, 2, 4, 8, 16, 32, 64)]
        assert values[0] == 1.0
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_group_render_speedup_sublinear(self):
        c = CostModel()
        t1 = c.group_render_s(JET_PROFILE, 65536, 1)
        t16 = c.group_render_s(JET_PROFILE, 65536, 16)
        assert t1 / 16 < t16 < t1  # faster than serial, slower than ideal

    def test_composite_zero_for_single(self):
        assert CostModel().composite_s(65536, 1) == 0.0

    def test_composite_grows_with_group(self):
        c = CostModel()
        assert c.composite_s(65536, 16) > c.composite_s(65536, 4)

    def test_mixing_renders_slower_than_jet(self):
        """§6: the 16x-larger mixing dataset 'takes longer to render'."""
        c = NASA_O2K.costs
        jet = c.single_processor_render_s(JET_PROFILE, 512 * 512)
        mixing = c.single_processor_render_s(MIXING_PROFILE, 512 * 512)
        assert mixing > 1.3 * jet

    def test_vortex_renders_faster_than_jet(self):
        """High opacity → early ray termination → cheaper frames."""
        c = NASA_O2K.costs
        assert c.single_processor_render_s(
            VORTEX_PROFILE, 512 * 512
        ) < c.single_processor_render_s(JET_PROFILE, 512 * 512)


class TestIOCosts:
    def test_read_time_positive_and_scales(self):
        c = CostModel()
        assert c.volume_read_s(MIXING_PROFILE) > c.volume_read_s(JET_PROFILE)

    def test_stream_interference_grows_then_caps(self):
        c = CostModel()
        r1 = c.volume_read_s(JET_PROFILE, 1)
        r4 = c.volume_read_s(JET_PROFILE, 4)
        r13 = c.volume_read_s(JET_PROFILE, 13)
        r50 = c.volume_read_s(JET_PROFILE, 50)
        assert r1 < r4 < r13
        assert r13 == r50  # capped

    def test_stream_validation(self):
        with pytest.raises(ValueError):
            CostModel().volume_read_s(JET_PROFILE, 0)


class TestCompressionCosts:
    def test_compress_matches_paper_range(self):
        """§6: 6 ms at 128² … 500 ms at 1024²."""
        c = NASA_O2K.costs
        assert 0.003 <= c.compress_s(128 * 128) <= 0.012
        assert 0.3 <= c.compress_s(1024 * 1024) <= 0.7

    def test_decompress_matches_paper_range(self):
        """§6: 12 ms at 128² … 600 ms at 1024² on the O2."""
        c = O2_CLIENT.costs
        assert 0.008 <= c.decompress_s(128 * 128) <= 0.018
        assert 0.45 <= c.decompress_s(1024 * 1024) <= 0.75

    def test_parallel_compression_divides_work(self):
        c = CostModel()
        assert c.compress_s(65536, 8) < c.compress_s(65536, 1) / 4

    def test_figure10_shape(self):
        """2–8 pieces decode faster than 1; ≥16 pieces decode slower."""
        c = O2_CLIENT.costs
        px = 512 * 512
        one = c.decompress_s(px, 1)
        assert c.decompress_s(px, 2) < one
        assert c.decompress_s(px, 4) < one
        assert c.decompress_s(px, 8) < one
        assert c.decompress_s(px, 16) > one
        assert c.decompress_s(px, 64) > c.decompress_s(px, 16)

    def test_table1_anchor_sizes(self):
        """compressed_frame_bytes reproduces Table 1's JPEG+LZO row."""
        c = CostModel()
        for pixels, expected in [
            (128 * 128, 1282),
            (256 * 256, 2667),
            (512 * 512, 6705),
            (1024 * 1024, 18484),
        ]:
            assert c.compressed_frame_bytes(pixels, JET_PROFILE) == pytest.approx(
                expected, rel=0.01
            )

    def test_sub_images_compress_worse(self):
        c = CostModel()
        one = c.compressed_frame_bytes(65536, JET_PROFILE, 1)
        many = c.compressed_frame_bytes(65536, JET_PROFILE, 16)
        assert many > one

    def test_compression_over_96_percent(self):
        """The paper: 'The compression rates we have achieved are 96% and
        up' — raw 24-bit frames vs JPEG+LZO payloads."""
        c = CostModel()
        for pixels in (128 * 128, 256 * 256, 512 * 512, 1024 * 1024):
            raw = pixels * 3
            comp = c.compressed_frame_bytes(pixels, JET_PROFILE)
            assert 1 - comp / raw > 0.96


class TestRoutes:
    def test_transfer_monotone_in_bytes(self):
        for route in (NASA_TO_UCD, RWCP_TO_UCD):
            times = [route.transfer_s(n) for n in (0, 1e3, 1e5, 1e6)]
            assert all(a < b for a, b in zip(times, times[1:]))

    def test_japan_slower_than_nasa(self):
        """Fig 11: Japan route 'almost twice longer' per frame."""
        n = 256 * 256 * 3
        ratio = RWCP_TO_UCD.transfer_s(n) / NASA_TO_UCD.transfer_s(n)
        assert 1.5 < ratio < 2.6

    def test_burst_gives_small_frames_higher_throughput(self):
        small = 49152
        big = 786432
        tp_small = small / NASA_TO_UCD.transfer_s(small)
        tp_big = big / NASA_TO_UCD.transfer_s(big)
        assert tp_small > 2 * tp_big

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NASA_TO_UCD.transfer_s(-1)

    def test_route_registry(self):
        assert get_route("nasa-ucd") is NASA_TO_UCD
        assert get_route("RWCP-UCD") is RWCP_TO_UCD
        with pytest.raises(KeyError):
            get_route("mars")

    def test_lan_route_uniform(self):
        lan = lan_route(10e6)
        assert lan.transfer_s(1e6) == pytest.approx(0.001 + 0.1)

    def test_lan_validation(self):
        with pytest.raises(ValueError):
            lan_route(0)


class TestXDisplay:
    @pytest.fixture
    def model(self):
        return XDisplayModel(route=NASA_TO_UCD, client=O2_CLIENT)

    def test_table2_x_row(self, model):
        """X frame rates NASA→UCD: 7.7 / 0.5 / 0.1 / 0.03 fps."""
        assert model.frame_rate(128 * 128) == pytest.approx(7.7, rel=0.4)
        assert model.frame_rate(256 * 256) == pytest.approx(0.5, rel=0.25)
        assert model.frame_rate(512 * 512) == pytest.approx(0.1, rel=0.25)
        assert model.frame_rate(1024 * 1024) == pytest.approx(0.03, rel=0.45)

    def test_frame_bytes_24bit(self, model):
        assert model.frame_bytes(100) == 300

    def test_display_cost_included(self, model):
        assert model.frame_time_s(65536) > model.transfer_s(65536)
