"""Unit tests for two-phase compression and frame differencing."""

import numpy as np
import pytest

from repro.compress import (
    BZIPCodec,
    CodecError,
    FrameDifferencingCodec,
    JPEGCodec,
    LZOCodec,
    RLECodec,
    TwoPhaseCodec,
    get_codec,
    psnr,
)


class TestTwoPhase:
    def test_jpeg_lzo_shrinks_jpeg(self, rendered_rgb):
        """Table 1's key effect: LZO on JPEG output gains extra bytes."""
        jpeg = JPEGCodec(quality=75)
        combo = get_codec("jpeg+lzo", quality=75)
        solo = len(jpeg.encode_image(rendered_rgb))
        two = len(combo.encode_image(rendered_rgb))
        assert two < solo

    def test_decode_matches_jpeg_alone(self, gradient_image):
        jpeg = JPEGCodec(quality=75)
        combo = TwoPhaseCodec(JPEGCodec(quality=75), LZOCodec())
        direct = jpeg.decode_image(jpeg.encode_image(gradient_image))
        via = combo.decode_image(combo.encode_image(gradient_image))
        assert np.array_equal(direct, via)

    def test_lossless_pair_roundtrips_bytes(self):
        combo = TwoPhaseCodec(RLECodec(), LZOCodec())
        data = b"aa" * 500 + bytes(range(256))
        assert combo.decode(combo.encode(data)) == data
        assert combo.lossless

    def test_lossy_flag_propagates(self):
        combo = TwoPhaseCodec(JPEGCodec(), LZOCodec())
        assert not combo.lossless

    def test_second_stage_must_be_lossless(self):
        with pytest.raises(ValueError):
            TwoPhaseCodec(LZOCodec(), JPEGCodec())

    def test_name_composition(self):
        assert TwoPhaseCodec(JPEGCodec(), BZIPCodec()).name == "jpeg+bzip"

    def test_jpeg_bzip_roundtrip(self, gradient_image):
        combo = get_codec("jpeg+bzip", quality=80)
        out = combo.decode_image(combo.encode_image(gradient_image))
        assert psnr(gradient_image, out) > 30.0


class TestFrameDifferencing:
    def make_pair(self, **kw):
        return FrameDifferencingCodec(**kw), FrameDifferencingCodec(**kw)

    def test_first_frame_is_key(self, gradient_image):
        enc, dec = self.make_pair()
        payload = enc.encode_image(gradient_image)
        assert payload[0] == 0  # _KEY
        out = dec.decode_image(payload)
        assert np.array_equal(out, gradient_image)

    def test_static_scene_deltas_tiny(self, gradient_image):
        enc, dec = self.make_pair()
        first = enc.encode_image(gradient_image)
        second = enc.encode_image(gradient_image)
        assert len(second) < len(first) / 5
        dec.decode_image(first)
        out = dec.decode_image(second)
        assert np.array_equal(out, gradient_image)

    def test_small_change_stream(self, gradient_image):
        enc, dec = self.make_pair()
        frames = [gradient_image]
        for k in range(1, 4):
            f = gradient_image.copy()
            f[10 * k : 10 * k + 5, :5] += 7
            frames.append(f)
        for f in frames:
            out = dec.decode_image(enc.encode_image(f))
            assert np.array_equal(out, f)

    def test_wraparound_delta_exact(self):
        enc, dec = self.make_pair()
        a = np.full((8, 8, 3), 250, dtype=np.uint8)
        b = np.full((8, 8, 3), 5, dtype=np.uint8)  # wraps under uint8 delta
        dec.decode_image(enc.encode_image(a))
        out = dec.decode_image(enc.encode_image(b))
        assert np.array_equal(out, b)

    def test_shape_change_forces_key(self, gradient_image):
        enc, dec = self.make_pair()
        dec.decode_image(enc.encode_image(gradient_image))
        other = gradient_image[:48, :48]
        payload = enc.encode_image(other)
        assert payload[0] == 0  # key again
        assert np.array_equal(dec.decode_image(payload), other)

    def test_reset_forces_key(self, gradient_image):
        enc, dec = self.make_pair()
        dec.decode_image(enc.encode_image(gradient_image))
        enc.reset()
        payload = enc.encode_image(gradient_image)
        assert payload[0] == 0

    def test_key_interval(self, gradient_image):
        enc, dec = self.make_pair(key_interval=2)
        kinds = []
        for _ in range(5):
            payload = enc.encode_image(gradient_image)
            kinds.append(payload[0])
            dec.decode_image(payload)
        assert kinds == [0, 1, 1, 0, 1]

    def test_delta_without_reference_rejected(self, gradient_image):
        enc, _ = self.make_pair()
        enc.encode_image(gradient_image)
        delta = enc.encode_image(gradient_image)
        fresh = FrameDifferencingCodec()
        with pytest.raises(CodecError):
            fresh.decode_image(delta)

    def test_byte_interface_roundtrip(self):
        enc, dec = self.make_pair()
        a = bytes(range(200))
        b = bytes((x + 1) % 256 for x in range(200))
        assert dec.decode(enc.encode(a)) == a
        assert dec.decode(enc.encode(b)) == b

    def test_inner_must_be_lossless(self):
        with pytest.raises(ValueError):
            FrameDifferencingCodec(inner=JPEGCodec())

    def test_beats_independent_compression_on_coherent_animation(
        self, gradient_image
    ):
        """§7.1: temporal coherence beats per-frame compression when
        inter-frame changes are localized (a small feature moving over a
        complex but static background)."""
        frames = []
        for k in range(4):
            f = gradient_image.copy()
            f[20 + 4 * k : 30 + 4 * k, 40:50] = 255
            frames.append(f)
        fd = FrameDifferencingCodec()
        fd_total = sum(len(fd.encode_image(f)) for f in frames[1:])
        fd.reset()
        lzo = LZOCodec()
        indep_total = sum(len(lzo.encode_image(f)) for f in frames[1:])
        assert fd_total < indep_total / 2
