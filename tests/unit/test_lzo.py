"""Unit tests for the LZO-style LZSS codec."""

import numpy as np
import pytest

from repro.compress.base import CodecError
from repro.compress.lzo import LZOCodec


@pytest.fixture
def codec():
    return LZOCodec()


class TestRoundtrip:
    def test_empty(self, codec):
        assert codec.decode(codec.encode(b"")) == b""

    def test_tiny_inputs(self, codec):
        for n in range(1, 10):
            data = bytes(range(n))
            assert codec.decode(codec.encode(data)) == data

    def test_repetitive_text(self, codec):
        data = b"the quick brown fox jumps over the lazy dog " * 100
        enc = codec.encode(data)
        assert len(enc) < len(data) // 10
        assert codec.decode(enc) == data

    def test_all_zeros(self, codec):
        data = bytes(100000)
        enc = codec.encode(data)
        assert len(enc) < 2000
        assert codec.decode(enc) == data

    def test_random_data_survives(self, codec):
        rng = np.random.default_rng(11)
        data = rng.integers(0, 256, 20000, dtype=np.uint8).tobytes()
        enc = codec.encode(data)
        assert codec.decode(enc) == data
        # flag-byte overhead only: at most ~12.5% expansion plus header
        assert len(enc) <= len(data) * 1.13 + 16

    def test_overlapping_match_distance_one(self, codec):
        # "aaaa..." forces dist-1 overlapping copies
        data = b"x" + b"a" * 1000 + b"y"
        assert codec.decode(codec.encode(data)) == data

    def test_overlapping_match_short_period(self, codec):
        data = b"ab" * 5000
        enc = codec.encode(data)
        assert len(enc) < 500
        assert codec.decode(enc) == data

    def test_match_at_max_distance(self, codec):
        marker = b"HELLO-WORLD-MARKER"
        gap = np.random.default_rng(2).integers(0, 256, 60000, dtype=np.uint8)
        data = marker + gap.tobytes() + marker
        assert codec.decode(codec.encode(data)) == data

    def test_binary_patterns(self, codec):
        data = bytes([i % 7 for i in range(10000)])
        assert codec.decode(codec.encode(data)) == data


class TestLevels:
    def test_level_validation(self):
        with pytest.raises(ValueError):
            LZOCodec(level=0)
        with pytest.raises(ValueError):
            LZOCodec(level=10)

    def test_higher_level_compresses_at_least_as_well(self):
        data = (
            b"abcdefgh" * 200
            + bytes(np.random.default_rng(3).integers(0, 8, 3000, dtype=np.uint8))
        ) * 3
        fast = len(LZOCodec(level=1).encode(data))
        best = len(LZOCodec(level=9).encode(data))
        assert best <= fast

    @pytest.mark.parametrize("level", [1, 3, 5, 9])
    def test_all_levels_roundtrip(self, level):
        codec = LZOCodec(level=level)
        rng = np.random.default_rng(level)
        chunks = [rng.integers(0, 4, 500, dtype=np.uint8).tobytes()] * 5
        data = b"".join(chunks) + bytes(rng.integers(0, 256, 2000, dtype=np.uint8))
        assert codec.decode(codec.encode(data)) == data


class TestErrors:
    def test_bad_magic(self, codec):
        with pytest.raises(CodecError):
            codec.decode(b"XXXX\x00\x00\x00\x00")

    def test_truncated_stream(self, codec):
        enc = codec.encode(b"hello world, hello world, hello world")
        with pytest.raises(CodecError):
            codec.decode(enc[: len(enc) // 2])

    def test_corrupt_match_distance(self, codec):
        # hand-build a stream with a match pointing before the start
        import struct

        payload = b"RLZO" + struct.pack("<I", 10)
        payload += bytes([0b10000000]) + struct.pack("<HB", 5, 0)
        with pytest.raises(CodecError):
            codec.decode(payload)

    def test_name_and_losslessness(self, codec):
        assert codec.name == "lzo"
        assert codec.lossless


class TestOnRenderedFrames:
    def test_jet_frame_compresses_well(self, codec, rendered_rgb):
        raw = rendered_rgb.tobytes()
        enc = codec.encode(raw)
        # jet frames are mostly black background: strong compression
        assert len(enc) < len(raw) / 3
        assert codec.decode(enc) == raw
