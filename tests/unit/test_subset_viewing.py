"""Unit tests for client-side rendering from reduced volume data."""

import numpy as np
import pytest

from repro.compress import CodecError, psnr
from repro.core.subset_viewing import (
    ClientSideRenderer,
    pack_volume_subset,
    unpack_volume_subset,
)
from repro.render import Camera, TransferFunction, render_volume, to_display_rgb


class TestPackUnpack:
    def test_roundtrip_full_resolution(self, jet_volume):
        payload = pack_volume_subset(jet_volume, factor=1, codec="lzo")
        vol, factor = unpack_volume_subset(payload)
        assert factor == 1
        assert vol.shape == jet_volume.shape
        # 8-bit quantization: max error 1/510
        assert np.abs(vol - jet_volume).max() <= 0.5 / 255 + 1e-6

    def test_downsampling_reduces_dims(self, jet_volume):
        payload = pack_volume_subset(jet_volume, factor=2)
        vol, factor = unpack_volume_subset(payload)
        assert factor == 2
        assert vol.shape == tuple(s // 2 for s in jet_volume.shape)

    def test_downsample_is_block_average(self):
        base = np.zeros((4, 4, 4), dtype=np.float32)
        base[:2] = 1.0
        payload = pack_volume_subset(base, factor=2, codec="raw")
        vol, _ = unpack_volume_subset(payload)
        assert vol.shape == (2, 2, 2)
        assert vol[0, 0, 0] == pytest.approx(1.0, abs=1 / 255)
        assert vol[1, 0, 0] == pytest.approx(0.0, abs=1 / 255)

    def test_higher_factor_smaller_payload(self, jet_volume):
        p1 = pack_volume_subset(jet_volume, factor=1)
        p2 = pack_volume_subset(jet_volume, factor=2)
        p4 = pack_volume_subset(jet_volume, factor=4)
        assert len(p4) < len(p2) < len(p1)

    def test_subset_much_smaller_than_raw(self, jet_volume):
        payload = pack_volume_subset(jet_volume, factor=2)
        assert len(payload) < jet_volume.nbytes / 10

    def test_rejects_lossy_codec(self, jet_volume):
        with pytest.raises(ValueError):
            pack_volume_subset(jet_volume, codec="jpeg")

    def test_rejects_bad_inputs(self, jet_volume):
        with pytest.raises(ValueError):
            pack_volume_subset(np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            pack_volume_subset(jet_volume, factor=0)

    def test_truncated_payload(self, jet_volume):
        payload = pack_volume_subset(jet_volume, factor=4)
        with pytest.raises(CodecError):
            unpack_volume_subset(payload[:10])
        with pytest.raises(CodecError):
            unpack_volume_subset(b"XXXX" + payload[4:])


class TestClientSideRenderer:
    def test_render_requires_data(self):
        client = ClientSideRenderer()
        with pytest.raises(RuntimeError):
            client.render(Camera(image_size=(8, 8)))

    def test_receive_and_render(self, jet_volume):
        client = ClientSideRenderer(tf=TransferFunction.jet())
        payload = pack_volume_subset(jet_volume, factor=1, codec="lzo")
        client.receive(payload)
        assert client.has_data
        assert client.bytes_received == len(payload)
        cam = Camera(image_size=(48, 48))
        local = to_display_rgb(client.render(cam))
        server = to_display_rgb(
            render_volume(jet_volume, TransferFunction.jet(), cam)
        )
        # full-res 8-bit subset: near-identical to the server render
        assert psnr(server, local) > 35.0

    def test_reduced_data_degrades_gracefully(self, jet_volume):
        cam = Camera(image_size=(48, 48))
        tf = TransferFunction.jet()
        server = to_display_rgb(render_volume(jet_volume, tf, cam))
        quality = []
        for factor in (1, 2, 4):
            client = ClientSideRenderer(tf=tf)
            client.receive(pack_volume_subset(jet_volume, factor=factor))
            local = to_display_rgb(client.render(cam))
            quality.append(psnr(server, local))
        assert quality[0] > quality[1] > quality[2]
        assert quality[1] > 20.0  # half-res remains usable

    def test_view_changes_are_free(self, jet_volume):
        client = ClientSideRenderer()
        client.receive(pack_volume_subset(jet_volume, factor=2))
        received = client.bytes_received
        for az in (0, 45, 90, 135):
            client.render(Camera(image_size=(16, 16), azimuth=az))
        assert client.bytes_received == received
