"""Pinning tests for the DT90x protocol-conformance fixes.

The protoflow analyzer (docs/devtools.md has the triage log) found four
real conformance holes when it was introduced; each test here drives
the *actual* send/receive path of one fix so the behaviour cannot
silently regress:

- the relay's ingest dispatches upstream ``gap`` announcements and its
  players fast-skip the declared range instead of burning a fetch
  timeout per missing frame;
- ``ViewerHandle`` counts well-formed controls it has no handler for;
- the renderer applies the §4.1 ``start_renderer`` daemon command;
- ``DisplayInterface`` counts renderer-originated controls it cannot
  dispatch.
"""

import threading
import time

import numpy as np

from repro.compress import get_codec
from repro.compress.context import CodecContext
from repro.core import RemoteVisualizationSession
from repro.daemon import DisplayDaemon, DisplayInterface
from repro.daemon.protocol import ControlMessage, FrameMessage, decode_message
from repro.data import turbulent_jet
from repro.devtools.waiting import wait_until
from repro.net.transport import FramedConnection
from repro.relay import FrameRelay
from repro.render import Camera
from repro.serve.broker import SessionBroker
from repro.serve.fanout import synthetic_frames
from repro.serve.session import ViewerHandle


def consume(handle, n, timeout=10.0):
    """Read ``n`` frames; returns their ids in arrival order."""
    ids = []
    deadline = time.monotonic() + timeout
    while len(ids) < n and time.monotonic() < deadline:
        try:
            frame = handle.next_frame(timeout=0.25)
        except TimeoutError:
            continue
        ids.append(frame.frame_id)
    return ids


class GatedUpstream:
    """Broker wrapper that holds a relay's *rejoin* open — a WAN cut
    whose reconnect completes only when the test releases it, so frames
    published during the outage deterministically outrun the broker's
    retained history window."""

    def __init__(self, broker):
        self.broker = broker
        self.gate = threading.Event()
        self.gate.set()  # the construction-time join passes untouched
        self._joins = 0

    def join(self, name=None, **kwargs):
        self._joins += 1
        if self._joins > 1 and not self.gate.wait(timeout=10.0):
            raise RuntimeError("reconnect gate never opened")
        return self.broker.join(name, **kwargs)


class TestRelayGapFastSkip:
    def test_upstream_gap_is_dispatched_and_players_jump_it(self):
        """Broker loses history past the relay's resume point, declares
        [3, 6) unrecoverable; the relay must record the gap, re-announce
        it downstream, and serve frame 6 without waiting out the fetch
        timeout once per missing frame."""
        frames = synthetic_frames(10, size=16)
        with SessionBroker(history_frames=4) as broker:
            upstream = GatedUpstream(broker)
            relay = FrameRelay("edge", upstream, fetch_timeout=5.0)
            try:
                upstream.gate.clear()
                viewer = relay.join("v")
                for fid in range(3):
                    broker.publish(frames[fid], time_step=fid, frame_id=fid)
                assert consume(viewer, 3) == [0, 1, 2]
                wait_until(lambda: relay.max_seen() == 2,
                           message="relay ingested frames 0-2")
                # unclean WAN cut: the relay reconnects with
                # resume_from=3, but the gate holds the rejoin while the
                # stream moves on past the broker's 4-frame window
                broker.leave("relay:edge", resumable=True)
                for fid in range(3, 10):
                    broker.publish(frames[fid], time_step=fid, frame_id=fid)
                start = time.monotonic()
                upstream.gate.set()
                assert consume(viewer, 4, timeout=6.0) == [6, 7, 8, 9]
                elapsed = time.monotonic() - start
                # without the gap fast-skip this path burns one
                # fetch_timeout (5s) per missing frame id 3, 4, 5
                assert elapsed < 5.0, f"gap skip took {elapsed:.1f}s"
                assert viewer.gaps == [(3, 6)]
                snap = relay.stats_snapshot()
                assert snap.upstream_gaps == 1
                assert snap.upstream_reconnects == 1
                assert snap.unknown_controls == 0  # gap is dispatched
                viewer.leave()
            finally:
                relay.close()


class TestViewerHandleUnknownControls:
    def test_unhandled_controls_are_counted_not_dropped(self):
        broker_side, viewer_side = FramedConnection.pair("b", "v")
        handle = ViewerHandle("v", viewer_side, CodecContext())
        image = np.arange(8 * 8 * 3, dtype=np.uint8).reshape(8, 8, 3)
        payload = get_codec("raw").encode_image(image)
        broker_side.send(
            ControlMessage(tag="renderer_status", params={"fps": 24}).encode()
        )
        broker_side.send(
            ControlMessage(tag="gap", params={"from": 3, "to": 6}).encode()
        )
        broker_side.send(
            FrameMessage(
                frame_id=0, time_step=0, codec="raw", payload=payload,
                image_shape=(8, 8),
            ).encode()
        )
        frame = handle.next_frame(timeout=5.0)
        assert frame.frame_id == 0
        assert np.array_equal(frame.image, image)
        # the unknown control was counted, the known one dispatched
        assert handle.unknown_controls == 1
        assert handle.gaps == [(3, 6)]
        # and the frame was acked on the real wire
        ack = decode_message(broker_side.recv(timeout=5.0))
        assert ack.tag == "ack" and ack.params["frame_id"] == 0
        handle.close()
        broker_side.close()


class TestStartRendererCommand:
    def test_start_renderer_seeds_the_next_frames_parameters(self):
        dataset = turbulent_jet(scale=0.25, n_steps=2)
        with RemoteVisualizationSession(
            dataset, group_size=1, camera=Camera(image_size=(24, 24)),
            codec="raw",
        ) as sess:
            sess.step(0)
            az, el = sess.camera.azimuth, sess.camera.elevation
            sess.display.start_renderer(
                azimuth=az + 30.0, elevation=el - 10.0, zoom=1.5
            )
            wait_until(lambda: sess.renderer._controls,
                       message="start_renderer control buffered")
            sess.step(1)
            assert sess.renderer_starts == 1
            assert sess.camera.azimuth == az + 30.0
            assert sess.camera.elevation == el - 10.0
            assert sess.camera.zoom == 1.5
            assert sess.unknown_controls == 0


class TestDisplayInterfaceUnknownControls:
    def test_renderer_originated_controls_are_counted(self):
        with DisplayDaemon() as daemon:
            display = DisplayInterface(daemon)
            local, remote = FramedConnection.pair("fake-renderer", "daemon")
            daemon.connect(remote, role="renderer")
            image = np.zeros((8, 8, 3), dtype=np.uint8)
            payload = get_codec("raw").encode_image(image)
            # the renderer pump broadcasts the control to the display
            # port synchronously before it processes the frame, so the
            # display sees them in this order
            local.send(
                ControlMessage(
                    tag="renderer_status", params={"fps": 24}
                ).encode()
            )
            local.send(
                FrameMessage(
                    frame_id=0, time_step=0, codec="raw", payload=payload,
                    image_shape=(8, 8),
                ).encode()
            )
            frame = display.next_frame(timeout=5.0)
            assert frame.frame_id == 0
            assert display.unknown_controls == 1
            local.close()
            display.close()
