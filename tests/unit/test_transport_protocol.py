"""Unit tests for the functional transport and the daemon wire protocol."""

import threading

import pytest

from repro.daemon.protocol import (
    ControlMessage,
    FrameMessage,
    HelloMessage,
    ProtocolError,
    decode_message,
)
from repro.net.transport import (
    Channel,
    ChannelClosed,
    FramedConnection,
    TrafficLog,
)
from repro.sim.cluster import NASA_TO_UCD


class TestChannel:
    def test_fifo(self):
        ch = Channel()
        ch.send(b"one")
        ch.send(b"two")
        assert ch.recv() == b"one"
        assert ch.recv() == b"two"

    def test_recv_timeout(self):
        ch = Channel()
        with pytest.raises(TimeoutError):
            ch.recv(timeout=0.05)

    def test_close_unblocks_reader(self):
        ch = Channel()
        errors = []

        def reader():
            try:
                ch.recv(timeout=5)
            except ChannelClosed:
                errors.append("closed")

        t = threading.Thread(target=reader)
        t.start()
        ch.close()
        t.join(timeout=2)
        assert errors == ["closed"]

    def test_send_after_close_rejected(self):
        ch = Channel()
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.send(b"late")

    def test_close_idempotent(self):
        ch = Channel()
        ch.close()
        ch.close()


class TestFramedConnection:
    def test_pair_bidirectional(self):
        a, b = FramedConnection.pair()
        a.send(b"ping")
        assert b.recv() == b"ping"
        b.send(b"pong")
        assert a.recv() == b"pong"

    def test_traffic_logged(self):
        a, b = FramedConnection.pair()
        a.send(b"12345")
        a.send(b"123")
        b.recv()
        b.recv()
        assert a.traffic.sent == [5, 3]
        assert a.traffic.bytes_sent == 8
        assert b.traffic.received == [5, 3]

    def test_replay_transfer(self):
        log = TrafficLog(sent=[1000, 2000])
        expected = NASA_TO_UCD.transfer_s(1000) + NASA_TO_UCD.transfer_s(2000)
        assert log.replay_transfer_s(NASA_TO_UCD) == pytest.approx(expected)


class TestProtocol:
    def test_frame_roundtrip(self):
        msg = FrameMessage(
            frame_id=7,
            time_step=42,
            codec="jpeg+lzo",
            payload=b"\x01\x02\x03",
            piece_index=2,
            n_pieces=4,
            row_range=(10, 20),
            image_shape=(64, 64),
        )
        out = decode_message(msg.encode())
        assert isinstance(out, FrameMessage)
        assert out == msg

    def test_frame_defaults(self):
        msg = FrameMessage(frame_id=0, time_step=0, codec="raw", payload=b"")
        out = decode_message(msg.encode())
        assert out.n_pieces == 1
        assert out.row_range is None
        assert out.image_shape is None

    def test_control_roundtrip(self):
        msg = ControlMessage(tag="view", params={"azimuth": 30.5, "elevation": -2})
        out = decode_message(msg.encode())
        assert out == msg

    def test_control_empty_params(self):
        out = decode_message(ControlMessage(tag="start_renderer").encode())
        assert out.params == {}

    def test_hello_roundtrip(self):
        out = decode_message(HelloMessage(role="display", name="ucd-o2").encode())
        assert out.role == "display"
        assert out.name == "ucd-o2"

    def test_binary_payload_preserved(self):
        payload = bytes(range(256)) * 4
        msg = FrameMessage(frame_id=1, time_step=1, codec="raw", payload=payload)
        assert decode_message(msg.encode()).payload == payload

    def test_bad_magic(self):
        with pytest.raises(ProtocolError):
            decode_message(b"JUNK" + bytes(10))

    def test_truncated_header(self):
        msg = ControlMessage(tag="x").encode()
        with pytest.raises(ProtocolError):
            decode_message(msg[:10])

    def test_bad_json(self):
        frame = b"RVIZ" + bytes([2]) + (5).to_bytes(4, "little") + b"{oops"
        with pytest.raises(ProtocolError):
            decode_message(frame)

    def test_unknown_kind(self):
        frame = b"RVIZ" + bytes([9]) + (2).to_bytes(4, "little") + b"{}"
        with pytest.raises(ProtocolError):
            decode_message(frame)


class TestSizeWindow:
    def test_traffic_log_caps_retained_sizes(self):
        from repro.net.transport import SizeWindow

        log = TrafficLog(window=8)
        for i in range(100):
            log.sent.append(10)
        # the retained list is bounded, the aggregates are not
        assert len(log.sent) <= 2 * 8
        assert log.bytes_sent == 1000
        assert log.frames_sent == 100
        assert isinstance(log.sent, SizeWindow)

    def test_pop_rolls_back_aggregates(self):
        log = TrafficLog()
        log.received.append(7)
        log.received.append(5)
        assert log.received.pop() == 5
        assert log.bytes_received == 7
        assert log.frames_received == 1

    def test_plain_list_init_still_works(self):
        log = TrafficLog(sent=[1000, 2000])
        assert log.bytes_sent == 3000
        assert log.sent == [1000, 2000]

    def test_window_eviction_keeps_recent_sizes(self):
        log = TrafficLog(window=4)
        for i in range(20):
            log.sent.append(i)
        assert list(log.sent)[-1] == 19
        assert log.bytes_sent == sum(range(20))


class TestBoundedChannelClose:
    def test_send_on_full_channel_unblocks_on_close(self):
        ch = Channel(maxsize=1)
        ch.send(b"fill")
        errors = []

        def sender():
            try:
                ch.send(b"blocked")
            except ChannelClosed as exc:
                errors.append(exc)

        t = threading.Thread(target=sender)
        t.start()
        t.join(timeout=0.2)
        assert t.is_alive()  # genuinely blocked on the full queue
        ch.close()
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert len(errors) == 1

    def test_reader_drains_then_sees_close_on_full_channel(self):
        ch = Channel(maxsize=1)
        ch.send(b"data")
        ch.close()  # close marker cannot fit in the full queue
        assert ch.recv(timeout=1.0) == b"data"
        with pytest.raises(ChannelClosed):
            ch.recv(timeout=1.0)
