"""Unit tests for the serving layer: broker, cache, tiers, adaptation."""

import threading
import time

import numpy as np
import pytest

from repro.devtools.waiting import wait_until
from repro.serve import (
    AdaptiveQualityController,
    FrameCache,
    QualityTier,
    SessionBroker,
    TierLadder,
    default_ladder,
)
from repro.serve.fanout import synthetic_frames

#: an all-lossless ladder so image round-trips can be asserted exactly
LOSSLESS_LADDER = TierLadder(
    (
        QualityTier("full", "lzo"),
        QualityTier("lite", "rle"),
        QualityTier("skip", "rle", frame_stride=2),
    )
)


class TestFrameCache:
    def test_get_or_encode_encodes_once(self):
        cache = FrameCache(max_bytes=1 << 20)
        calls = []

        def encode():
            calls.append(1)
            return b"payload"

        key = (0, "jpeg", 75)
        assert cache.get_or_encode(key, encode) == b"payload"
        assert cache.get_or_encode(key, encode) == b"payload"
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_under_byte_budget(self):
        cache = FrameCache(max_bytes=100)
        cache.put((0, "c", None), b"x" * 40)
        cache.put((1, "c", None), b"x" * 40)
        cache.get((0, "c", None))  # 0 is now most recently used
        cache.put((2, "c", None), b"x" * 40)  # evicts 1, the LRU entry
        assert (0, "c", None) in cache
        assert (1, "c", None) not in cache
        assert (2, "c", None) in cache
        assert cache.evictions == 1
        assert cache.current_bytes == 80

    def test_oversized_entry_keeps_newest(self):
        cache = FrameCache(max_bytes=10)
        cache.put((0, "c", None), b"x" * 50)
        assert (0, "c", None) in cache  # never evict down to empty

    def test_replace_same_key_accounts_bytes(self):
        cache = FrameCache(max_bytes=100)
        cache.put((0, "c", None), b"x" * 30)
        cache.put((0, "c", None), b"x" * 50)
        assert cache.current_bytes == 50
        assert len(cache) == 1


class TestEncoderContextReuse:
    """Cold cache fills must reuse the broker's persistent encode state."""

    def test_cold_fills_do_not_churn_context_buffers(self):
        tier = QualityTier("hq", "jpeg", quality=75)
        frames = synthetic_frames(6)
        with SessionBroker() as broker:
            # First cold fill allocates the context scratch set for this
            # frame geometry; every later fill must hit those exact arrays.
            broker._payload(0, tier, frames[0])
            ctx = broker._encoder_context
            codec = broker._encoder(tier)
            allocs = ctx.stats["buffer_allocs"]
            assert allocs > 0  # the jpeg encoder really routes through ctx
            buffer_ids = {k: id(v) for k, v in ctx._buffers.items()}
            sink_ids = {k: id(v) for k, v in ctx._sinks.items()}

            for i, frame in enumerate(frames[1:], start=1):
                broker._payload(i, tier, frame)

            assert broker.encodes == len(frames)  # all cold, none cached
            assert broker._encoder(tier) is codec  # one codec per tier
            # No per-frame ndarray churn: zero new scratch allocations and
            # every pooled buffer/bit-sink is the same object as after the
            # warm-up frame.
            assert ctx.stats["buffer_allocs"] == allocs
            assert {k: id(v) for k, v in ctx._buffers.items()} == buffer_ids
            assert {k: id(v) for k, v in ctx._sinks.items()} == sink_ids

    def test_two_phase_tier_shares_one_context(self):
        tier = QualityTier("wan", "jpeg+lzo", quality=75)
        frames = synthetic_frames(4)
        with SessionBroker() as broker:
            broker._payload(0, tier, frames[0])
            ctx = broker._encoder_context
            codec = broker._encoder(tier)
            # The context-aware stage of the two-phase codec holds the
            # broker's context (use_context fans out to every stage that
            # supports one).
            assert codec.first._ctx is ctx
            allocs = ctx.stats["buffer_allocs"]
            for i, frame in enumerate(frames[1:], start=1):
                broker._payload(i, tier, frame)
            assert ctx.stats["buffer_allocs"] == allocs


class TestTiers:
    def test_default_ladder_degrades_monotonically(self):
        ladder = default_ladder()
        assert ladder[0].name == "full"
        qualities = [t.quality for t in ladder]
        assert qualities == sorted(qualities, reverse=True)
        assert ladder[len(ladder) - 1].frame_stride > 1

    def test_stride_admission(self):
        tier = QualityTier("skip", "jpeg", quality=30, frame_stride=3)
        admitted = [fid for fid in range(9) if tier.admits(fid)]
        assert admitted == [0, 3, 6]

    def test_ladder_validation(self):
        with pytest.raises(ValueError):
            TierLadder(())
        with pytest.raises(ValueError):
            TierLadder((QualityTier("a", "raw"), QualityTier("a", "lzo")))
        with pytest.raises(ValueError):
            QualityTier("bad", "raw", frame_stride=0)

    def test_clamp_and_index(self):
        ladder = LOSSLESS_LADDER
        assert ladder.clamp(-3) == 0
        assert ladder.clamp(99) == len(ladder) - 1
        assert ladder.index_of("lite") == 1
        with pytest.raises(KeyError):
            ladder.index_of("nope")


class TestController:
    def test_step_down_needs_consecutive_drops(self):
        c = AdaptiveQualityController(step_down_after=2, step_up_after=4)
        assert c.on_dropped() == 0
        assert c.on_ack() == 0  # streak broken
        assert c.on_dropped() == 0
        assert c.on_dropped() == +1  # two in a row

    def test_step_up_after_clean_streak(self):
        c = AdaptiveQualityController(step_down_after=2, step_up_after=3)
        assert [c.on_ack() for _ in range(3)] == [0, 0, -1]
        # streak counter reset: three more needed for the next step
        assert [c.on_ack() for _ in range(3)] == [0, 0, -1]


def _paced_publish(broker, frames, names=None):
    """Publish a sequence, draining between frames so healthy viewers
    never exhaust credits (a paced render loop, not a burst)."""
    for fid, image in enumerate(frames):
        broker.publish(image, time_step=fid, frame_id=fid)
        assert broker.drain(timeout=5.0, names=names)


class _Consumer:
    """Background viewer draining every frame it is sent."""

    def __init__(self, handle):
        self.handle = handle
        self.frames = []
        self._stop = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        while not self._stop.is_set():
            try:
                self.frames.append(self.handle.next_frame(timeout=0.2))
            except TimeoutError:
                continue
            except ConnectionError:
                return

    def stop(self):
        self._stop.set()
        self.thread.join(timeout=5.0)


class TestBroker:
    def test_single_viewer_lossless_roundtrip(self):
        frames = synthetic_frames(4, size=32)
        with SessionBroker(ladder=LOSSLESS_LADDER) as broker:
            handle = broker.join("v0")
            got = []
            for fid, image in enumerate(frames):
                broker.publish(image, time_step=fid, frame_id=fid)
                got.append(handle.next_frame(timeout=5.0))
            for frame, image in zip(got, frames):
                assert frame.codec == "lzo"
                assert np.array_equal(frame.image, image)
            assert [f.frame_id for f in got] == [0, 1, 2, 3]
            handle.leave()

    def test_encode_work_independent_of_viewer_count(self):
        """One rendered sequence, 1 vs 16 viewers: same encode total,
        and 16 viewers make the shared cache hit >= 80%."""
        frames = synthetic_frames(8, size=32)
        encode_totals = {}
        for n_viewers in (1, 16):
            with SessionBroker(ladder=LOSSLESS_LADDER, credit_limit=16) as broker:
                consumers = [
                    _Consumer(broker.join(f"v{i}")) for i in range(n_viewers)
                ]
                _paced_publish(broker, frames)
                stats = broker.stats()
                encode_totals[n_viewers] = stats.encodes
                if n_viewers == 16:
                    # first lookup of each frame misses, 15 viewers hit
                    assert stats.cache_hit_ratio >= 0.8
                    assert stats.total_frames_sent == 16 * len(frames)
                for c in consumers:
                    c.stop()
        assert encode_totals[1] == encode_totals[16] == len(frames)

    def test_slow_viewer_steps_down_without_hurting_fast(self):
        frames = synthetic_frames(20, size=32)
        with SessionBroker(
            ladder=LOSSLESS_LADDER,
            credit_limit=2,
            step_down_after=2,
            step_up_after=1000,  # no promotion during this test
        ) as broker:
            fast = _Consumer(broker.join("fast"))
            slow_handle = broker.join("slow")  # never consumes
            _paced_publish(broker, frames, names=["fast"])
            stats = broker.stats()
            # the fast viewer's frame rate is untouched by the slow one
            assert stats.sessions["fast"].frames_sent == len(frames)
            assert stats.sessions["fast"].frames_dropped == 0
            assert stats.sessions["fast"].tier == "full"
            # the slow one ran out of credits, dropped, and was demoted
            slow = stats.sessions["slow"]
            assert slow.frames_dropped > 0
            assert slow.tier != "full"
            assert len(slow.transitions) >= 1
            assert slow.transitions[0].reason == "congestion"
            fast.stop()
            slow_handle.leave()

    def test_demoted_viewer_recovers_tier(self):
        frames = synthetic_frames(30, size=32)
        with SessionBroker(
            ladder=LOSSLESS_LADDER,
            credit_limit=1,
            step_down_after=1,
            step_up_after=4,
        ) as broker:
            handle = broker.join("v0")
            # burst with nobody consuming: immediate demotion
            for fid in range(4):
                broker.publish(frames[fid], time_step=fid, frame_id=fid)
            wait_until(
                lambda: broker.stats().sessions["v0"].transitions,
                timeout=5, message="burst never demoted the viewer",
            )
            # now consume everything: acks stream back, tier recovers
            consumer = _Consumer(handle)
            for fid in range(4, 30):
                broker.publish(frames[fid], time_step=fid, frame_id=fid)
                broker.drain(timeout=5.0)
            wait_until(
                lambda: broker.stats().sessions["v0"].tier == "full",
                timeout=5, message="viewer never promoted back",
            )
            reasons = {t.reason for t in broker.stats().sessions["v0"].transitions}
            assert "recovered" in reasons
            consumer.stop()

    def test_seek_replays_recent_history_from_cache(self):
        frames = synthetic_frames(10, size=32)
        with SessionBroker(ladder=LOSSLESS_LADDER, credit_limit=16) as broker:
            viewer = _Consumer(broker.join("v0"))
            _paced_publish(broker, frames)
            encodes_before = broker.stats().encodes
            late = broker.join("late")
            late.seek(6)
            got = [late.next_frame(timeout=5.0) for _ in range(4)]
            assert [f.frame_id for f in got] == [6, 7, 8, 9]
            assert np.array_equal(got[0].image, frames[6])
            # the replay came straight out of the shared cache
            assert broker.stats().encodes == encodes_before
            viewer.stop()
            late.leave()

    def test_leave_preserves_stats_and_frees_session(self):
        frames = synthetic_frames(3, size=32)
        with SessionBroker(ladder=LOSSLESS_LADDER) as broker:
            handle = broker.join("v0")
            consumer = _Consumer(handle)
            _paced_publish(broker, frames)
            consumer.stop()
            handle.leave()
            wait_until(lambda: "v0" not in broker.sessions(), timeout=5,
                       message="departed session never reaped")
            stats = broker.stats()
            assert stats.sessions["v0"].frames_sent == 3
            assert not stats.sessions["v0"].active
            # the name is reusable after departure
            broker.join("v0").leave()

    def test_join_after_close_raises(self):
        broker = SessionBroker()
        broker.close()
        with pytest.raises(RuntimeError):
            broker.join()
        with pytest.raises(RuntimeError):
            broker.publish(np.zeros((4, 4, 3), dtype=np.uint8))

    def test_duplicate_name_rejected(self):
        with SessionBroker() as broker:
            broker.join("dup")
            with pytest.raises(ValueError):
                broker.join("dup")

    def test_stride_tier_skips_frames(self):
        frames = synthetic_frames(6, size=32)
        with SessionBroker(ladder=LOSSLESS_LADDER) as broker:
            handle = broker.join("v0")
            session = broker._sessions["v0"]
            session.tier_index = 2  # "skip", stride 2
            consumer = _Consumer(handle)
            _paced_publish(broker, frames)
            stats = broker.stats()
            assert stats.sessions["v0"].frames_sent == 3  # fids 0, 2, 4
            assert stats.sessions["v0"].frames_skipped == 3
            consumer.stop()

    def test_stats_summary_renders(self):
        with SessionBroker() as broker:
            broker.join("v0")
            broker.publish(synthetic_frames(1, size=32)[0])
            text = broker.stats().summary()
        assert "v0" in text
        assert "cache hit ratio" in text

    def test_tier_notification_reaches_viewer(self):
        frames = synthetic_frames(6, size=32)
        with SessionBroker(
            ladder=LOSSLESS_LADDER, credit_limit=1, step_down_after=1
        ) as broker:
            handle = broker.join("v0")  # not consuming yet: demotion
            for fid in range(4):
                broker.publish(frames[fid], time_step=fid, frame_id=fid)
            wait_until(
                lambda: broker.stats().sessions["v0"].transitions,
                timeout=5, message="burst never demoted the viewer",
            )
            # the queued tier control message is seen while consuming
            handle.next_frame(timeout=5.0)

            def saw_tier():
                if handle.current_tier is not None:
                    return True
                try:
                    handle.next_frame(timeout=0.2)
                except TimeoutError:
                    pass
                return handle.current_tier is not None

            wait_until(saw_tier, timeout=5,
                       message="tier notification never reached the viewer")
            assert handle.current_tier in ("lite", "skip")
            handle.leave()
