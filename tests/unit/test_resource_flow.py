"""The DT80x resource-flow analyzer is itself under test: every rule
is pinned to a fixture that violates it exactly once, the annotation
and pragma escape hatches are exercised, the baseline workflow
round-trips, and HEAD of ``src/`` is asserted clean with no baseline
help inside the runtime bound `repro lint` pays on every run."""

import json
import time
from pathlib import Path

import pytest

from repro.devtools.lockset import Baseline
from repro.devtools.resource_flow import (
    DEFAULT_BASELINE,
    RESOURCE_RULES,
    analyze_paths,
    analyze_source,
    load_baseline,
    main as resource_flow_main,
)

pytestmark = pytest.mark.lint

FIXTURES = Path(__file__).parent.parent / "lint_fixtures"
REPO = Path(__file__).parent.parent.parent

#: fixture file -> (rule id, line of the single expected violation)
EXPECTED = {
    "dt801_exception_leak.py": ("DT801", 6),
    "dt801_overwrite.py": ("DT801", 12),
    "dt802_double_unlink.py": ("DT802", 13),
    "dt803_use_after_close.py": ("DT803", 6),
    "dt804_close_incomplete.py": ("DT804", 12),
}


def _analyze_fixture(name):
    path = FIXTURES / name
    return analyze_source(path.read_text(), str(path))


class TestRuleCorpus:
    @pytest.mark.parametrize("name,expected", sorted(EXPECTED.items()),
                             ids=sorted(EXPECTED))
    def test_fixture_violates_exactly_its_rule(self, name, expected):
        rule, line = expected
        findings = _analyze_fixture(name)
        assert [(f.rule, f.line) for f in findings] == [(rule, line)], (
            f"{name}: expected exactly one {rule} at line {line}, "
            f"got {findings}"
        )

    def test_corpus_covers_every_rule(self):
        assert {rule for rule, _ in EXPECTED.values()} == set(RESOURCE_RULES)

    def test_negative_fixture_is_clean(self):
        findings = _analyze_fixture("dt80x_clean.py")
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_finding_renders_path_line_rule(self):
        (f,) = _analyze_fixture("dt801_exception_leak.py")
        assert str(f).startswith(
            str(FIXTURES / "dt801_exception_leak.py") + ":6: DT801"
        )
        assert f.key.endswith(":DT801:read_header.fh")


class TestAnnotations:
    OWNS = (
        "class Holder:\n"
        "    # owns: _handle\n"
        "    def __init__(self, factory):\n"
        "        self._handle = factory()\n"
        "    def close(self):\n"
        "        pass\n"
    )

    def test_owns_annotation_enters_the_close_graph(self):
        findings = analyze_source(self.OWNS)
        assert [f.rule for f in findings] == ["DT804"]
        assert "_handle" in findings[0].message

    def test_owns_is_satisfied_by_a_release_on_the_close_graph(self):
        src = self.OWNS.replace("        pass\n",
                                "        self._handle.close()\n")
        assert analyze_source(src) == []

    def test_borrows_annotation_silences_field_tracking(self):
        src = (
            "import socket\n"
            "class Wrapper:\n"
            "    # borrows: sock -- the registry owns it\n"
            "    def __init__(self, addr, registry):\n"
            "        self.sock = socket.create_connection(addr)\n"
            "        registry.adopt(self.sock)\n"
            "    def close(self):\n"
            "        pass\n"
        )
        assert analyze_source(src) == []


class TestPragma:
    def test_disable_pragma_silences_the_line(self):
        src = (FIXTURES / "dt801_exception_leak.py").read_text()
        src = src.replace("fh = open(path, \"rb\")",
                          "fh = open(path, \"rb\")  # lint: disable=DT801")
        assert analyze_source(src) == []

    def test_disable_all_silences_the_line(self):
        src = (FIXTURES / "dt803_use_after_close.py").read_text()
        src = src.replace("conn.send(b\"bye\")",
                          "conn.send(b\"bye\")  # lint: disable=all")
        assert analyze_source(src) == []


class TestBaseline:
    def _fixture_findings(self):
        return analyze_paths([FIXTURES / "dt801_exception_leak.py"])

    def test_write_filter_roundtrip(self, tmp_path):
        findings = self._fixture_findings()
        path = tmp_path / "baseline.json"
        Baseline.write(path, findings)
        loaded = load_baseline(path)
        fresh, matched = loaded.filter(findings)
        assert fresh == [] and matched == [findings[0].key]
        data = json.loads(path.read_text())
        assert "justify" in data["grandfathered"][findings[0].key]

    def test_stale_entries_are_reported(self):
        baseline = Baseline(entries={"repro/gone.py:DT801:Gone.x": "old"})
        assert baseline.stale_keys(self._fixture_findings()) == [
            "repro/gone.py:DT801:Gone.x"
        ]

    def test_disabled_and_missing_baselines_are_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json").entries == {}
        assert load_baseline(None, disabled=True).entries == {}

    def test_committed_baseline_has_no_unjustified_entries(self):
        data = json.loads((REPO / DEFAULT_BASELINE).read_text())
        entries = data["grandfathered"]
        assert len(entries) <= 5
        assert not any("TODO" in just for just in entries.values())


class TestTreeIsClean:
    def test_src_has_zero_nonbaselined_findings_at_head(self):
        findings = analyze_paths([REPO / "src"])
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_analyzer_is_fast_enough_for_every_lint_run(self):
        start = time.monotonic()
        analyze_paths([REPO / "src"])
        elapsed = time.monotonic() - start
        assert elapsed < 10.0, f"resource-flow took {elapsed:.1f}s over src/"

    def test_fixture_corpus_is_excluded_from_tree_analysis(self):
        findings = analyze_paths([FIXTURES.parent])
        assert findings == []


class TestCli:
    def test_exit_nonzero_on_violation(self, capsys):
        rc = resource_flow_main([str(FIXTURES / "dt802_double_unlink.py"),
                                 "--no-baseline"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "DT802" in out and "dt802_double_unlink.py:13" in out

    def test_exit_zero_on_clean_file(self, capsys):
        rc = resource_flow_main([str(FIXTURES / "dt80x_clean.py"),
                                 "--no-baseline"])
        assert rc == 0
        assert "0 new findings" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        rc = resource_flow_main(["--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rule_id in RESOURCE_RULES:
            assert rule_id in out
