"""Unit tests for the DCT/quantization and color-space building blocks."""

import numpy as np
import pytest

from repro.compress.color import (
    downsample_420,
    pad_to_multiple,
    rgb_to_ycbcr,
    upsample_420,
    ycbcr_to_rgb,
)
from repro.compress.dct import (
    BLOCK,
    STD_LUMA_QUANT,
    blockize,
    dct2_blocks,
    idct2_blocks,
    quant_tables,
    unblockize,
    zigzag_indices,
)


class TestDCT:
    def test_inverse_is_exact(self):
        rng = np.random.default_rng(0)
        blocks = rng.normal(0, 50, (10, 8, 8)).astype(np.float32)
        back = idct2_blocks(dct2_blocks(blocks))
        assert np.allclose(back, blocks, atol=1e-3)

    def test_constant_block_has_only_dc(self):
        blocks = np.full((1, 8, 8), 17.0, dtype=np.float32)
        coeffs = dct2_blocks(blocks)
        assert abs(coeffs[0, 0, 0] - 17.0 * 8) < 1e-3
        rest = coeffs.copy()
        rest[0, 0, 0] = 0
        assert np.abs(rest).max() < 1e-3

    def test_energy_preservation(self):
        """Orthonormal transform preserves the L2 norm (Parseval)."""
        rng = np.random.default_rng(1)
        blocks = rng.normal(0, 10, (5, 8, 8)).astype(np.float32)
        coeffs = dct2_blocks(blocks)
        assert np.allclose(
            (blocks**2).sum(axis=(1, 2)),
            (coeffs**2).sum(axis=(1, 2)),
            rtol=1e-4,
        )

    def test_smooth_block_concentrates_low_frequencies(self):
        x = np.linspace(0, 1, 8, dtype=np.float32)
        block = (x[:, None] + x[None, :])[None] * 100
        coeffs = np.abs(dct2_blocks(block))[0]
        low_energy = (coeffs[:2, :2] ** 2).sum()
        assert low_energy > 0.99 * (coeffs**2).sum()


class TestBlockize:
    def test_roundtrip(self):
        rng = np.random.default_rng(2)
        plane = rng.normal(size=(24, 40)).astype(np.float32)
        blocks, bh, bw = blockize(plane)
        assert blocks.shape == (bh * bw, 8, 8) == (15, 8, 8)
        assert np.array_equal(unblockize(blocks, bh, bw), plane)

    def test_block_content_matches_region(self):
        plane = np.arange(16 * 16, dtype=np.float32).reshape(16, 16)
        blocks, bh, bw = blockize(plane)
        assert np.array_equal(blocks[0], plane[:8, :8])
        assert np.array_equal(blocks[1], plane[:8, 8:16])
        assert np.array_equal(blocks[2], plane[8:, :8])

    def test_rejects_non_multiple_dims(self):
        with pytest.raises(ValueError):
            blockize(np.zeros((10, 16), dtype=np.float32))


class TestZigzag:
    def test_permutation_of_64(self):
        zz = zigzag_indices()
        assert sorted(zz.tolist()) == list(range(64))

    def test_standard_prefix(self):
        zz = zigzag_indices()
        # (0,0) (0,1) (1,0) (2,0) (1,1) (0,2) ...
        assert zz[:6].tolist() == [0, 1, 8, 16, 9, 2]

    def test_ends_at_bottom_right(self):
        assert zigzag_indices()[-1] == 63


class TestQuantTables:
    def test_quality_50_is_reference(self):
        luma, _ = quant_tables(50)
        assert np.array_equal(luma, STD_LUMA_QUANT)

    def test_higher_quality_is_finer(self):
        q30, _ = quant_tables(30)
        q90, _ = quant_tables(90)
        assert (q90 <= q30).all()
        assert q90.sum() < q30.sum()

    def test_quality_100_is_all_ones(self):
        luma, chroma = quant_tables(100)
        assert luma.min() >= 1 and luma.max() == 1
        assert chroma.max() == 1

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            quant_tables(0)
        with pytest.raises(ValueError):
            quant_tables(101)


class TestColor:
    def test_roundtrip_close(self):
        rng = np.random.default_rng(3)
        rgb = rng.integers(0, 256, (16, 16, 3), dtype=np.uint8)
        back = ycbcr_to_rgb(rgb_to_ycbcr(rgb))
        assert np.abs(back.astype(int) - rgb.astype(int)).max() <= 1

    def test_gray_has_neutral_chroma(self):
        gray = np.full((4, 4, 3), 77, dtype=np.uint8)
        ycc = rgb_to_ycbcr(gray)
        assert np.allclose(ycc[..., 1], 128, atol=0.5)
        assert np.allclose(ycc[..., 2], 128, atol=0.5)
        assert np.allclose(ycc[..., 0], 77, atol=0.5)

    def test_downsample_halves_dims(self):
        plane = np.arange(8 * 6, dtype=np.float32).reshape(8, 6)
        down = downsample_420(plane)
        assert down.shape == (4, 3)
        assert down[0, 0] == pytest.approx(plane[:2, :2].mean())

    def test_downsample_odd_dims(self):
        plane = np.ones((5, 7), dtype=np.float32)
        assert downsample_420(plane).shape == (3, 4)

    def test_upsample_inverts_shape(self):
        plane = np.arange(12, dtype=np.float32).reshape(3, 4)
        up = upsample_420(plane, (6, 8))
        assert up.shape == (6, 8)
        assert up[0, 0] == up[1, 1] == plane[0, 0]

    def test_upsample_crops_to_odd(self):
        plane = np.ones((3, 4), dtype=np.float32)
        assert upsample_420(plane, (5, 7)).shape == (5, 7)

    def test_pad_to_multiple(self):
        plane = np.arange(6, dtype=np.float32).reshape(2, 3)
        padded = pad_to_multiple(plane, 8)
        assert padded.shape == (8, 8)
        assert np.array_equal(padded[:2, :3], plane)
        # edge replication
        assert padded[0, 3] == plane[0, 2]
        assert padded[5, 0] == plane[1, 0]

    def test_pad_noop_when_aligned(self):
        plane = np.zeros((16, 8), dtype=np.float32)
        assert pad_to_multiple(plane, 8) is plane
