"""Unit tests for the scalability analysis module."""

import pytest

from repro.core import bottleneck_report, strong_scaling, weak_scaling
from repro.sim.cluster import RWCP_CLUSTER
from repro.sim.costs import JET_PROFILE


class TestStrongScaling:
    @pytest.fixture(scope="class")
    def points(self):
        return strong_scaling(
            RWCP_CLUSTER, JET_PROFILE, proc_counts=(1, 4, 16, 64), n_steps=32
        )

    def test_monotone_speedup(self, points):
        speedups = [p.speedup for p in points]
        assert all(a < b for a, b in zip(speedups, speedups[1:]))

    def test_baseline_normalized(self, points):
        assert points[0].speedup == pytest.approx(1.0)
        assert points[0].efficiency == pytest.approx(1.0)

    def test_efficiency_degrades_sublinearly(self, points):
        effs = [p.efficiency for p in points]
        assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))
        assert effs[-1] > 0.5  # the pipeline scales respectably

    def test_speedup_bounded_by_procs(self, points):
        for p in points:
            assert p.speedup <= p.n_procs * 1.05

    def test_best_partition_recorded(self, points):
        for p in points:
            assert 1 <= p.best_partition <= p.n_procs


class TestWeakScaling:
    def test_near_flat_overall_time(self):
        points = weak_scaling(
            RWCP_CLUSTER, JET_PROFILE, proc_counts=(4, 16, 64), steps_per_proc=2
        )
        times = [p.overall_time for p in points]
        assert max(times) / min(times) < 1.5  # within 50% of flat

    def test_efficiency_definition(self):
        points = weak_scaling(
            RWCP_CLUSTER, JET_PROFILE, proc_counts=(4, 16), steps_per_proc=2
        )
        assert points[0].efficiency == pytest.approx(1.0)
        assert points[1].efficiency == pytest.approx(
            points[0].overall_time / points[1].overall_time
        )


class TestBottleneckReport:
    @pytest.fixture(scope="class")
    def report(self):
        return bottleneck_report(RWCP_CLUSTER, JET_PROFILE, n_procs=64)

    def test_all_partitions_covered(self, report):
        assert sorted(report) == [1, 2, 4, 8, 16, 32, 64]

    def test_bottleneck_is_max_stage(self, report):
        for row in report.values():
            stages = {k: v for k, v in row.items() if k != "bottleneck"}
            assert row["bottleneck"] == pytest.approx(max(stages.values()))

    def test_small_L_render_bound_large_L_storage_bound(self, report):
        """The mechanism behind Figure 6's U-shape."""
        def limiting(l):
            row = report[l]
            return max(
                (k for k in row if k != "bottleneck"), key=row.get
            )

        assert limiting(1) == "render"
        assert limiting(32) == "storage"

    def test_store_mode_has_no_client_cost(self, report):
        for row in report.values():
            assert row["client"] == 0.0


class TestControlResponseLatency:
    def test_positive_and_finite(self):
        from repro.core import control_response_latency

        lat = control_response_latency(RWCP_CLUSTER, JET_PROFILE, 32, 4)
        assert 0 < lat < 60

    def test_grows_with_partition_count(self):
        """§5's 'certain delay is expected' worsens with deeper
        pipelining: more frames are committed ahead of the input."""
        from repro.core import control_response_latency

        lats = [
            control_response_latency(RWCP_CLUSTER, JET_PROFILE, 32, l)
            for l in (1, 2, 4, 8, 16)
        ]
        assert all(a < b for a, b in zip(lats, lats[1:]))

    def test_more_processors_respond_faster(self):
        from repro.core import control_response_latency

        slow = control_response_latency(RWCP_CLUSTER, JET_PROFILE, 8, 2)
        fast = control_response_latency(RWCP_CLUSTER, JET_PROFILE, 64, 2)
        assert fast < slow
