"""Unit tests for brick decomposition, the over operator, and compositing."""

import numpy as np
import pytest

from repro.machine import run_spmd
from repro.render import (
    Camera,
    TransferFunction,
    binary_swap,
    composite_bricks,
    decompose,
    over,
    render_volume,
    visibility_order,
)


class TestDecompose:
    def test_single_brick_is_whole_volume(self):
        dec = decompose((10, 12, 14), 1)
        assert len(dec) == 1
        assert dec[0].shape == (10, 12, 14)
        assert dec[0].box == ((0, 0, 0), (1, 1, 1))

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 8, 16])
    def test_brick_count(self, n):
        dec = decompose((32, 32, 32), n)
        assert len(dec) == n

    def test_bricks_cover_volume(self):
        shape = (20, 24, 16)
        vol = np.zeros(shape, dtype=np.int32)
        for brick in decompose(shape, 8):
            vol[brick.slices] += 1
        assert (vol >= 1).all()  # full coverage (shared planes overlap)

    def test_interior_overlap_is_only_shared_planes(self):
        shape = (16, 16, 16)
        dec = decompose(shape, 4)
        total = sum(b.n_voxels for b in dec)
        overlap = total - 16**3
        assert 0 < overlap <= 3 * 16 * 16  # at most one plane per cut

    def test_balanced_sizes(self):
        dec = decompose((64, 64, 64), 8)
        sizes = [b.n_voxels for b in dec]
        assert max(sizes) / min(sizes) < 1.5

    def test_splits_longest_axis_first(self):
        dec = decompose((100, 10, 10), 2)
        (a0, a1), _, _ = dec[0].index_ranges
        assert a1 < 100  # split along axis 0
        assert dec[0].index_ranges[1] == (0, 10)

    def test_box_bounds_in_unit_cube(self):
        for brick in decompose((17, 23, 9), 6):
            lo, hi = brick.box
            assert all(0.0 <= a < b <= 1.0 for a, b in zip(lo, hi))

    def test_extract_matches_slices(self):
        vol = np.arange(8 * 8 * 8, dtype=np.float32).reshape(8, 8, 8)
        brick = decompose((8, 8, 8), 4)[2]
        assert np.array_equal(brick.extract(vol), vol[brick.slices])

    def test_validation(self):
        with pytest.raises(ValueError):
            decompose((8, 8, 8), 0)
        with pytest.raises(ValueError):
            decompose((1, 8, 8), 2)
        with pytest.raises(ValueError):
            decompose((2, 2, 2), 100)


class TestOver:
    def test_opaque_front_wins(self):
        front = np.array([[[0.8, 0.1, 0.2, 1.0]]], dtype=np.float32)
        back = np.array([[[0.0, 0.9, 0.0, 1.0]]], dtype=np.float32)
        out = over(front, back)
        assert np.allclose(out, front)

    def test_transparent_front_passes_back(self):
        front = np.zeros((1, 1, 4), dtype=np.float32)
        back = np.array([[[0.3, 0.2, 0.1, 0.7]]], dtype=np.float32)
        assert np.allclose(over(front, back), back)

    def test_alpha_accumulates(self):
        a = np.array([[[0.25, 0.25, 0.25, 0.5]]], dtype=np.float32)
        out = over(a, a)
        assert out[0, 0, 3] == pytest.approx(0.75)

    def test_associative(self):
        rng = np.random.default_rng(0)
        imgs = []
        for _ in range(3):
            alpha = rng.random((4, 4, 1)).astype(np.float32)
            rgb = rng.random((4, 4, 3)).astype(np.float32) * alpha
            imgs.append(np.concatenate([rgb, alpha], axis=2))
        left = over(over(imgs[0], imgs[1]), imgs[2])
        right = over(imgs[0], over(imgs[1], imgs[2]))
        assert np.allclose(left, right, atol=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            over(np.zeros((2, 2, 4)), np.zeros((3, 3, 4)))


class TestVisibilityOrder:
    def test_front_to_back_along_view(self):
        dec = decompose((16, 16, 16), 4)
        cam = Camera(azimuth=0, elevation=0)
        order = visibility_order(list(dec), cam)
        d = cam.view_direction
        keys = [float(np.dot(dec[i].center, d)) for i in order]
        assert keys == sorted(keys)

    def test_permutation(self):
        dec = decompose((16, 16, 16), 8)
        order = visibility_order(list(dec), Camera(azimuth=123, elevation=-40))
        assert sorted(order) == list(range(8))

    def test_reverses_with_opposite_view(self):
        dec = decompose((32, 8, 8), 2)  # split along x
        fwd = visibility_order(list(dec), Camera(azimuth=0, elevation=0))
        back = visibility_order(list(dec), Camera(azimuth=180, elevation=0))
        assert fwd == list(reversed(back))


class TestCompositeBricks:
    @pytest.mark.parametrize("n_bricks", [2, 3, 4, 6])
    def test_matches_monolithic_render(self, jet_volume, small_camera, n_bricks):
        tf = TransferFunction.jet()
        full = render_volume(jet_volume, tf, small_camera)
        dec = decompose(jet_volume.shape, n_bricks)
        partials = [
            render_volume(b.extract(jet_volume), tf, small_camera, box=b.box)
            for b in dec
        ]
        combined = composite_bricks(partials, list(dec), small_camera)
        # sampling phases differ per brick: allow small pointwise error
        assert np.abs(combined - full).mean() < 0.01
        assert np.abs(combined - full).max() < 0.2

    def test_requires_matching_lengths(self, small_camera):
        dec = decompose((8, 8, 8), 2)
        with pytest.raises(ValueError):
            composite_bricks([np.zeros((4, 4, 4))], list(dec), small_camera)


class TestBinarySwap:
    @pytest.mark.parametrize("nprocs", [2, 3, 4, 5, 6, 7, 8])
    def test_equals_sequential_composite(self, jet_volume, small_camera, nprocs):
        tf = TransferFunction.jet()
        dec = decompose(jet_volume.shape, nprocs)
        bricks = list(dec)
        partials = [
            render_volume(b.extract(jet_volume), tf, small_camera, box=b.box)
            for b in bricks
        ]
        reference = composite_bricks(partials, bricks, small_camera)
        order = visibility_order(bricks, small_camera)

        def worker(comm):
            piece, rows = binary_swap(comm, partials[order[comm.rank]])
            gathered = comm.gather((rows, piece))
            if comm.rank == 0:
                out = np.zeros_like(partials[0])
                for (r0, r1), p in gathered:
                    out[r0:r1] = p
                return out

        result = run_spmd(nprocs, worker)[0]
        assert np.allclose(result, reference, atol=1e-5)

    def test_pieces_partition_rows(self):
        h = 16
        imgs = [np.random.default_rng(r).random((h, 8, 4)).astype(np.float32) for r in range(4)]

        def worker(comm):
            _, rows = binary_swap(comm, imgs[comm.rank])
            return rows

        ranges = run_spmd(4, worker)
        covered = sorted(ranges)
        assert covered[0][0] == 0 and covered[-1][1] == h
        for (a0, a1), (b0, b1) in zip(covered, covered[1:]):
            assert a1 == b0  # contiguous, disjoint

    @pytest.mark.parametrize("nprocs", [3, 5, 6])
    def test_non_power_of_two_strips_cover_image(self, nprocs):
        h = 16
        rng = np.random.default_rng(7)
        imgs = []
        for _ in range(nprocs):
            alpha = rng.random((h, 8, 1)).astype(np.float32)
            rgb = rng.random((h, 8, 3)).astype(np.float32) * alpha
            imgs.append(np.concatenate([rgb, alpha], axis=2))

        def worker(comm):
            _, rows = binary_swap(comm, imgs[comm.rank])
            return rows

        ranges = [r for r in run_spmd(nprocs, worker) if r != (0, 0)]
        covered = sorted(ranges)
        assert covered[0][0] == 0 and covered[-1][1] == h
        for (a0, a1), (b0, b1) in zip(covered, covered[1:]):
            assert a1 == b0

    def test_single_rank_identity(self):
        img = np.random.default_rng(0).random((8, 8, 4)).astype(np.float32)

        def worker(comm):
            piece, rows = binary_swap(comm, img)
            return piece, rows

        piece, rows = run_spmd(1, worker)[0]
        assert rows == (0, 8)
        assert np.array_equal(piece, img)
