"""Unit tests for the ASCII pipeline-timeline renderer."""

import pytest

from repro.core import PipelineConfig, render_timeline, simulate_pipeline
from repro.sim.cluster import RWCP_CLUSTER
from repro.sim.costs import JET_PROFILE


@pytest.fixture(scope="module")
def result():
    return simulate_pipeline(
        PipelineConfig(
            n_procs=16,
            n_groups=4,
            n_steps=16,
            profile=JET_PROFILE,
            machine=RWCP_CLUSTER,
            image_size=(128, 128),
        )
    )


class TestTimeline:
    def test_one_row_per_group(self, result):
        text = render_timeline(result, width=80)
        rows = [l for l in text.splitlines() if l.startswith("group")]
        assert len(rows) == 4

    def test_rows_have_requested_width(self, result):
        text = render_timeline(result, width=60)
        for line in text.splitlines():
            if line.startswith("group"):
                body = line.split("|")[1]
                assert len(body) == 60

    def test_contains_all_stage_glyphs(self, result):
        text = render_timeline(result, width=120)
        body = "".join(
            l.split("|")[1] for l in text.splitlines() if l.startswith("group")
        )
        assert "r" in body and "#" in body and "o" in body

    def test_staggered_starts(self, result):
        """Later groups begin with idle columns (storage serializes the
        initial reads) — the pipeline-fill phase made visible."""
        text = render_timeline(result, width=100)
        rows = [
            l.split("|")[1] for l in text.splitlines() if l.startswith("group")
        ]
        leading_idle = [len(r) - len(r.lstrip(".")) for r in rows]
        assert leading_idle[0] == 0
        assert leading_idle == sorted(leading_idle)
        assert leading_idle[-1] > 0

    def test_busy_footer(self, result):
        text = render_timeline(result, width=50)
        assert text.splitlines()[-1].startswith("busy:")

    def test_width_validation(self, result):
        with pytest.raises(ValueError):
            render_timeline(result, width=5)

    def test_header_mentions_configuration(self, result):
        text = render_timeline(result)
        assert "P=16" in text and "L=4" in text and "steps=16" in text


class TestTraceExport:
    def test_stage_intervals_complete(self, result):
        from repro.core.timeline import stage_intervals

        rows = stage_intervals(result)
        # 16 steps x 3 stages
        assert len(rows) == 48
        steps = {r[0] for r in rows}
        assert steps == set(range(16))
        for _, _, stage, start, end in rows:
            assert stage in ("input", "render", "output")
            assert end >= start >= 0.0

    def test_intervals_sorted_by_start(self, result):
        from repro.core.timeline import stage_intervals

        starts = [r[3] for r in stage_intervals(result)]
        assert starts == sorted(starts)

    def test_csv_format(self, result):
        from repro.core.timeline import export_trace_csv

        csv = export_trace_csv(result)
        lines = csv.strip().splitlines()
        assert lines[0] == "step,group,stage,start,end,duration"
        assert len(lines) == 49
        step, group, stage, start, end, duration = lines[1].split(",")
        assert stage in ("input", "render", "output")
        assert float(end) - float(start) == pytest.approx(float(duration), abs=1e-5)

    def test_stage_durations_match_records(self, result):
        from repro.core.timeline import stage_intervals

        frame = result.metrics.frames[3]
        rows = {
            (r[0], r[2]): (r[3], r[4]) for r in stage_intervals(result)
        }
        assert rows[(3, "render")] == (frame.render_start, frame.render_end)


class TestResultErgonomics:
    def test_result_timeline_method(self, result):
        text = result.timeline(width=40)
        assert "pipeline timeline" in text

    def test_result_trace_csv_method(self, result):
        csv = result.trace_csv()
        assert csv.startswith("step,group,stage")
