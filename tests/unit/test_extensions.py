"""Unit tests for the §7.1 extensions: fast decode, parallel I/O, IBR,
preview mode, and the co-processing scenario analysis."""

import numpy as np
import pytest

from repro.compress import JPEGCodec, psnr
from repro.compress.dct import BLOCK, dct2_blocks, partial_idct_blocks
from repro.core import (
    CoprocessConfig,
    PipelineConfig,
    simulate_pipeline,
    simulate_scenario,
)
from repro.render import Camera, IBRClient, TransferFunction, build_view_set, render_volume, to_display_rgb
from repro.sim.cluster import RWCP_CLUSTER
from repro.sim.costs import JET_PROFILE


class TestPartialIDCT:
    def test_k8_is_exact_inverse(self):
        rng = np.random.default_rng(0)
        blocks = rng.normal(0, 40, (6, 8, 8)).astype(np.float32)
        coeffs = dct2_blocks(blocks)
        assert np.allclose(partial_idct_blocks(coeffs, 8), blocks, atol=1e-3)

    def test_k1_returns_block_mean(self):
        rng = np.random.default_rng(1)
        blocks = rng.normal(0, 40, (4, 8, 8)).astype(np.float32)
        coeffs = dct2_blocks(blocks)
        means = partial_idct_blocks(coeffs, 1)
        assert means.shape == (4, 1, 1)
        assert np.allclose(means[:, 0, 0], blocks.mean(axis=(1, 2)), atol=1e-3)

    def test_k4_approximates_downsample(self):
        # a smooth ramp: the 4-point reconstruction should be close to
        # 2x2 block averages
        x = np.linspace(0, 100, 8, dtype=np.float32)
        block = (x[:, None] + x[None, :])[None]
        coeffs = dct2_blocks(block)
        small = partial_idct_blocks(coeffs, 4)[0]
        down = block[0].reshape(4, 2, 4, 2).mean(axis=(1, 3))
        # truncating the cosine series ripples at block edges (~3 units
        # on a 0-200 ramp); interior and mean stay tight
        assert np.abs(small - down).max() < 4.0
        assert np.abs(small - down).mean() < 2.0

    def test_mean_preserved_at_all_k(self):
        rng = np.random.default_rng(2)
        blocks = rng.normal(10, 30, (3, 8, 8)).astype(np.float32)
        coeffs = dct2_blocks(blocks)
        for k in (1, 2, 4, 8):
            out = partial_idct_blocks(coeffs, k)
            assert np.allclose(
                out.mean(axis=(1, 2)), blocks.mean(axis=(1, 2)), atol=0.01
            )

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            partial_idct_blocks(np.zeros((1, 8, 8)), 3)


class TestJPEGFastDecode:
    def test_quality_ladder(self, gradient_image):
        payload = JPEGCodec(quality=80).encode_image(gradient_image)
        quality = []
        for level in (0, 1, 2, 3):
            out = JPEGCodec(quality=80, fast_decode=level).decode_image(payload)
            assert out.shape == gradient_image.shape  # dims preserved
            quality.append(psnr(gradient_image, out))
        assert quality[0] > quality[1] > quality[2] > quality[3]
        assert quality[3] > 15.0  # DC-only is still recognizable

    def test_same_payload_both_decoders(self, gradient_image):
        """Fast decode is a decoder-side knob: the stream is unchanged."""
        exact = JPEGCodec(quality=70)
        fast = JPEGCodec(quality=70, fast_decode=2)
        payload = exact.encode_image(gradient_image)
        assert fast.encode_image(gradient_image) == payload
        fast.decode_image(payload)  # no error

    def test_validation(self):
        with pytest.raises(ValueError):
            JPEGCodec(fast_decode=4)


class TestParallelIO:
    def config(self, io_servers, n_groups=8):
        return PipelineConfig(
            n_procs=64,
            n_groups=n_groups,
            n_steps=64,
            profile=JET_PROFILE,
            machine=RWCP_CLUSTER,
            image_size=(256, 256),
            io_servers=io_servers,
        )

    def test_parallel_io_improves_overall(self):
        """§7.1: 'Parallel I/O, if available … would improve the overall
        system performance.'"""
        serial = simulate_pipeline(self.config(1)).overall_time
        parallel = simulate_pipeline(self.config(4)).overall_time
        assert parallel < serial

    def test_more_servers_monotone(self):
        times = [
            simulate_pipeline(self.config(n)).overall_time for n in (1, 2, 4, 8)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(times, times[1:]))

    def test_no_effect_when_not_io_bound(self):
        slow_render = simulate_pipeline(self.config(1, n_groups=1)).overall_time
        with_io = simulate_pipeline(self.config(8, n_groups=1)).overall_time
        assert with_io == pytest.approx(slow_render, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.config(0)


class TestIBR:
    @pytest.fixture(scope="class")
    def view_set(self, jet_volume):
        return build_view_set(
            jet_volume,
            TransferFunction.jet(),
            time_step=0,
            image_size=(48, 48),
            azimuths=(0.0, 45.0, 90.0, 135.0),
            elevation=20.0,
            codec="lzo",  # lossless so stored views are exact
        )

    def test_view_set_structure(self, view_set):
        assert view_set.n_views == 4
        assert view_set.total_bytes > 0
        assert view_set.angles()[0] == (0.0, 20.0)

    def test_reconstruct_at_stored_angle_is_exact(self, view_set, jet_volume):
        client = IBRClient(view_set)
        out = client.reconstruct(45.0, 20.0)
        cam = Camera(image_size=(48, 48), azimuth=45.0, elevation=20.0)
        direct = to_display_rgb(
            render_volume(jet_volume, TransferFunction.jet(), cam)
        )
        assert np.array_equal(out, direct)

    def test_reconstruct_between_angles(self, view_set, jet_volume):
        client = IBRClient(view_set)
        out = client.reconstruct(22.0, 20.0)
        cam = Camera(image_size=(48, 48), azimuth=22.0, elevation=20.0)
        truth = to_display_rgb(
            render_volume(jet_volume, TransferFunction.jet(), cam)
        ).astype(np.float64)
        corr = np.corrcoef(out.astype(np.float64).ravel(), truth.ravel())[0, 1]
        assert corr > 0.7  # blended views approximate the true render

    def test_nearest_views(self, view_set):
        client = IBRClient(view_set)
        nearest = client.nearest_views(40.0, 20.0, k=2)
        assert nearest[0][1] == (45.0, 20.0)
        assert nearest[1][1] == (0.0, 20.0) or nearest[1][1] == (90.0, 20.0)

    def test_wire_cost_amortizes_over_views(self, view_set):
        """One set upload vs per-interaction frames: the set pays for
        itself after n_views interactions."""
        per_frame = view_set.total_bytes / view_set.n_views
        client = IBRClient(view_set)
        # 20 interactions cost nothing beyond the initial set
        for az in np.linspace(0, 130, 20):
            client.reconstruct(float(az), 20.0)
        assert view_set.total_bytes < per_frame * 21


class TestCoprocess:
    def config(self, **kw):
        base = dict(
            n_procs=64,
            n_steps=32,
            profile=JET_PROFILE,
            machine=RWCP_CLUSTER,
            sim_step_seconds=2.0,
            image_size=(256, 256),
            viz_procs=8,
        )
        base.update(kw)
        return CoprocessConfig(**base)

    def test_postprocess_minimal_slowdown(self):
        r = simulate_scenario(self.config(), "postprocess")
        assert r.simulation_slowdown < 1.2
        assert r.metrics is None

    def test_share_slows_simulation(self):
        """The paper's objection: competing for the same processors."""
        r = simulate_scenario(self.config(), "coprocess-share")
        assert r.simulation_slowdown > simulate_scenario(
            self.config(), "postprocess"
        ).simulation_slowdown
        assert r.metrics is not None
        assert r.metrics.n_frames == 32

    def test_partition_slowdown_scales_with_viz_share(self):
        small = simulate_scenario(self.config(viz_procs=4), "coprocess-partition")
        big = simulate_scenario(self.config(viz_procs=32), "coprocess-partition")
        assert small.simulation_slowdown < big.simulation_slowdown
        # static split costs at least its processor share
        assert small.simulation_slowdown >= 64 / 60 - 1e-6

    def test_partition_renders_all_frames(self):
        r = simulate_scenario(self.config(), "coprocess-partition")
        assert r.metrics.n_frames == 32
        assert r.last_frame_time >= r.simulation_time - 1e-9

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            simulate_scenario(self.config(), "magic")

    def test_validation(self):
        with pytest.raises(ValueError):
            self.config(viz_procs=64)
        with pytest.raises(ValueError):
            self.config(sim_step_seconds=0)
