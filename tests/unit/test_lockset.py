"""The DT7xx lockset analyzer is itself under test: every rule is
pinned to a fixture that violates it exactly once, the annotation and
pragma escape hatches are exercised, the baseline workflow round-trips,
and HEAD of ``src/`` is asserted clean with no baseline help."""

import json
import time
from pathlib import Path

import pytest

from repro.devtools.lint import main as lint_main
from repro.devtools.lockset import (
    DEFAULT_BASELINE,
    LOCKSET_RULES,
    Baseline,
    analyze_paths,
    analyze_source,
    guarded_by,
    load_baseline,
    main as lockset_main,
)

pytestmark = pytest.mark.lint

FIXTURES = Path(__file__).parent.parent / "lint_fixtures"
REPO = Path(__file__).parent.parent.parent

#: fixture file -> (rule id, line of the single expected violation)
EXPECTED = {
    "dt701_inconsistent_lockset.py": ("DT701", 16),
    "dt702_bare_write.py": ("DT702", 16),
    "dt703_unannotated_shared.py": ("DT703", 17),
    "dt704_scope_leak.py": ("DT704", 12),
}


def _analyze_fixture(name):
    path = FIXTURES / name
    return analyze_source(path.read_text(), str(path))


class TestRuleCorpus:
    @pytest.mark.parametrize("name,expected", sorted(EXPECTED.items()),
                             ids=sorted(EXPECTED))
    def test_fixture_violates_exactly_its_rule(self, name, expected):
        rule, line = expected
        findings = _analyze_fixture(name)
        assert [(f.rule, f.line) for f in findings] == [(rule, line)], (
            f"{name}: expected exactly one {rule} at line {line}, "
            f"got {findings}"
        )

    def test_corpus_covers_every_rule(self):
        assert {rule for rule, _ in EXPECTED.values()} == set(LOCKSET_RULES)

    def test_negative_fixture_is_clean(self):
        findings = _analyze_fixture("dt70x_guarded_clean.py")
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_finding_renders_path_line_rule(self):
        (f,) = _analyze_fixture("dt701_inconsistent_lockset.py")
        assert str(f).startswith(
            str(FIXTURES / "dt701_inconsistent_lockset.py") + ":16: DT701"
        )
        assert f.key.endswith(":DT701:Counter._count")


class TestPragma:
    def test_disable_pragma_silences_the_line(self):
        src = (FIXTURES / "dt701_inconsistent_lockset.py").read_text()
        src = src.replace("return self._count",
                          "return self._count  # lint: disable=DT701")
        assert analyze_source(src) == []

    def test_disable_all_silences_the_line(self):
        src = (FIXTURES / "dt702_bare_write.py").read_text()
        src = src.replace("self._total = 0\n",
                          "self._total = 0  # lint: disable=all\n")
        assert analyze_source(src) == []


class TestGuardedByDecorator:
    def test_records_lock_names(self):
        @guarded_by("_lock", "_cond")
        def helper(self):
            pass

        assert helper.__guarded_by__ == ("_lock", "_cond")

    def test_is_a_runtime_noop(self):
        calls = []

        @guarded_by("_lock")
        def helper():
            calls.append(1)
            return 7

        assert helper() == 7 and calls == [1]

    def test_rejects_missing_or_nonstring_locks(self):
        with pytest.raises(TypeError):
            guarded_by()
        with pytest.raises(TypeError):
            guarded_by(42)

    def test_analyzer_checks_decorated_call_sites(self):
        src = (
            "import threading\n"
            "from repro.devtools.lockset import guarded_by\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    @guarded_by('_lock')\n"
            "    def _bump(self):\n"
            "        self._n += 1\n"
            "    def outside(self):\n"
            "        self._bump()\n"
        )
        findings = analyze_source(src)
        assert [f.rule for f in findings] == ["DT701"]
        assert "without self._lock" in findings[0].message


class TestBaseline:
    def _fixture_findings(self):
        return analyze_paths([FIXTURES / "dt701_inconsistent_lockset.py"])

    def test_write_filter_roundtrip(self, tmp_path):
        findings = self._fixture_findings()
        path = tmp_path / "baseline.json"
        Baseline.write(path, findings)
        loaded = load_baseline(path)
        fresh, matched = loaded.filter(findings)
        assert fresh == [] and matched == [findings[0].key]
        data = json.loads(path.read_text())
        assert "justify" in data["grandfathered"][findings[0].key]

    def test_write_keeps_existing_justifications(self, tmp_path):
        findings = self._fixture_findings()
        path = tmp_path / "baseline.json"
        prev = Baseline(entries={findings[0].key: "known benign: test-only"})
        Baseline.write(path, findings, previous=prev)
        assert (json.loads(path.read_text())["grandfathered"][findings[0].key]
                == "known benign: test-only")

    def test_stale_entries_are_reported(self):
        baseline = Baseline(entries={"repro/gone.py:DT701:Gone._x": "old"})
        assert baseline.stale_keys(self._fixture_findings()) == [
            "repro/gone.py:DT701:Gone._x"
        ]

    def test_disabled_and_missing_baselines_are_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json").entries == {}
        assert load_baseline(None, disabled=True).entries == {}

    def test_committed_baseline_has_no_unjustified_entries(self):
        data = json.loads((REPO / DEFAULT_BASELINE).read_text())
        entries = data["grandfathered"]
        assert len(entries) <= 5
        assert not any("TODO" in just for just in entries.values())


class TestTreeIsClean:
    def test_src_has_zero_nonbaselined_findings_at_head(self):
        findings = analyze_paths([REPO / "src"])
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_analyzer_is_fast_enough_for_every_lint_run(self):
        start = time.monotonic()
        analyze_paths([REPO / "src"])
        elapsed = time.monotonic() - start
        assert elapsed < 5.0, f"lockset pass took {elapsed:.1f}s over src/"

    def test_fixture_corpus_is_excluded_from_tree_analysis(self):
        findings = analyze_paths([FIXTURES.parent])
        assert findings == []


class TestCli:
    def test_exit_nonzero_on_violation(self, capsys):
        rc = lockset_main([str(FIXTURES / "dt704_scope_leak.py"),
                           "--no-baseline"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "DT704" in out and "dt704_scope_leak.py:12" in out

    def test_exit_zero_on_clean_file(self, capsys):
        rc = lockset_main([str(FIXTURES / "dt70x_guarded_clean.py"),
                           "--no-baseline"])
        assert rc == 0
        assert "0 new findings" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        rc = lockset_main(["--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rule_id in LOCKSET_RULES:
            assert rule_id in out

    def test_update_baseline_writes_and_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        rc = lockset_main([str(FIXTURES / "dt701_inconsistent_lockset.py"),
                           "--baseline", str(path), "--update-baseline"])
        assert rc == 0
        assert len(json.loads(path.read_text())["grandfathered"]) == 1
        # with the baseline applied, the same run is now clean
        rc = lockset_main([str(FIXTURES / "dt701_inconsistent_lockset.py"),
                           "--baseline", str(path)])
        assert rc == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_lint_cli_runs_the_lockset_pass(self, capsys):
        rc = lint_main([str(FIXTURES / "dt701_inconsistent_lockset.py"),
                        "--no-baseline"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "DT701" in out

    def test_lint_cli_no_lockset_skips_the_pass(self, capsys):
        rc = lint_main([str(FIXTURES / "dt701_inconsistent_lockset.py"),
                        "--no-lockset"])
        assert rc == 0
        assert "DT701" not in capsys.readouterr().out

    def test_lint_list_rules_includes_lockset_catalogue(self, capsys):
        rc = lint_main(["--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rule_id in LOCKSET_RULES:
            assert rule_id in out

    def test_repro_cli_forwards_baseline_flags(self, capsys):
        from repro.cli import main as repro_main

        rc = repro_main(["lint",
                         str(FIXTURES / "dt702_bare_write.py"),
                         "--no-baseline"])
        assert rc == 1
        assert "DT702" in capsys.readouterr().out
