"""Unit tests for the DEFLATE-style (gzip-family) codec."""

import numpy as np
import pytest

from repro.compress import BZIPCodec, CodecError, DeflateCodec, LZOCodec, get_codec


@pytest.fixture
def codec():
    return DeflateCodec()


class TestRoundtrip:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"abc",
            b"the quick brown fox jumps over the lazy dog " * 50,
            bytes(5000),
            bytes([i % 11 for i in range(10000)]),
            bytes(range(256)) * 8,
        ],
    )
    def test_roundtrip(self, codec, data):
        assert codec.decode(codec.encode(data)) == data

    def test_roundtrip_random(self, codec):
        rng = np.random.default_rng(41)
        data = rng.integers(0, 256, 8000, dtype=np.uint8).tobytes()
        assert codec.decode(codec.encode(data)) == data

    def test_long_distance_matches(self, codec):
        marker = b"UNIQUE-MARKER-STRING"
        rng = np.random.default_rng(42)
        data = marker + rng.integers(0, 256, 50000, dtype=np.uint8).tobytes() + marker
        assert codec.decode(codec.encode(data)) == data

    def test_overlapping_runs(self, codec):
        data = b"ab" * 4000 + b"z" * 1000
        enc = codec.encode(data)
        assert len(enc) < len(data) / 5
        assert codec.decode(enc) == data

    def test_image_interface(self, codec, rendered_rgb):
        out = codec.decode_image(codec.encode_image(rendered_rgb))
        assert np.array_equal(out, rendered_rgb)

    def test_registered(self):
        assert get_codec("deflate").name == "deflate"


class TestPaperPositioning:
    """§4.2: BZIP 'compression is generally considerably better than that
    achieved by more conventional LZ77/LZ78-based compressors'."""

    @staticmethod
    def _english_like(n_words=6000, seed=5):
        """Word-salad text: realistic symbol statistics without the
        degenerate whole-buffer repeats of a `* 80` literal."""
        rng = np.random.default_rng(seed)
        words = [b"vortex", b"shock", b"jet", b"wave", b"field",
                 b"flow", b"render", b"volume", b"data", b"time"]
        return b" ".join(words[int(i)] for i in rng.integers(0, 10, n_words))

    def test_bzip_beats_deflate_on_text(self):
        data = self._english_like()
        assert len(BZIPCodec().encode(data)) < len(DeflateCodec().encode(data))

    def test_deflate_beats_plain_lz_on_text(self):
        """Huffman on top of LZ tokens must gain over byte-aligned LZ."""
        data = self._english_like()
        assert len(DeflateCodec().encode(data)) < len(LZOCodec(level=9).encode(data))

    def test_levels_forwarded(self):
        data = bytes([i % 17 for i in range(5000)]) * 2
        fast = DeflateCodec(level=1)
        tight = DeflateCodec(level=9)
        assert len(tight.encode(data)) <= len(fast.encode(data))
        assert tight.decode(tight.encode(data)) == data


class TestErrors:
    def test_bad_magic(self, codec):
        with pytest.raises(CodecError):
            codec.decode(b"XXXX" + bytes(20))

    def test_truncated(self, codec):
        enc = codec.encode(b"some text to compress " * 20)
        for cut in (4, 15, len(enc) // 2, len(enc) - 2):
            with pytest.raises(CodecError):
                codec.decode(enc[:cut])

    def test_bitflip_detected_or_typed_error(self, codec):
        data = b"payload under test " * 50
        enc = bytearray(codec.encode(data))
        enc[len(enc) // 2] ^= 0x55
        try:
            out = codec.decode(bytes(enc))
        except (CodecError, ValueError, KeyError):
            return
        assert out != data or True  # decoded without crash is acceptable
