"""Unit tests for the baseline-JPEG-style codec."""

import numpy as np
import pytest

from repro.compress.base import CodecError
from repro.compress.jpeg import JPEGCodec
from repro.compress.metrics import psnr


@pytest.fixture
def codec():
    return JPEGCodec(quality=75)


class TestRoundtripQuality:
    def test_smooth_image_high_psnr(self, codec, gradient_image):
        out = codec.decode_image(codec.encode_image(gradient_image))
        assert out.shape == gradient_image.shape
        assert out.dtype == np.uint8
        assert psnr(gradient_image, out) > 30.0

    def test_flat_image_near_perfect(self, codec):
        img = np.full((32, 32, 3), 90, dtype=np.uint8)
        out = codec.decode_image(codec.encode_image(img))
        assert psnr(img, out) > 40.0

    def test_rendered_frame(self, codec, rendered_rgb):
        out = codec.decode_image(codec.encode_image(rendered_rgb))
        assert psnr(rendered_rgb, out) > 28.0

    def test_grayscale_image(self, codec):
        yy, xx = np.mgrid[0:40, 0:48]
        img = ((yy + xx) * 2 % 256).astype(np.uint8)
        out = codec.decode_image(codec.encode_image(img))
        assert out.shape == img.shape
        assert psnr(img, out) > 25.0

    def test_single_channel_3d(self, codec):
        img = np.full((24, 24, 1), 200, dtype=np.uint8)
        out = codec.decode_image(codec.encode_image(img))
        assert out.shape == (24, 24)

    def test_non_multiple_of_8_dims(self, codec, gradient_image):
        img = gradient_image[:41, :51]
        out = codec.decode_image(codec.encode_image(img))
        assert out.shape == img.shape
        assert psnr(img, out) > 28.0

    def test_tiny_image(self, codec):
        img = np.full((3, 5, 3), 128, dtype=np.uint8)
        out = codec.decode_image(codec.encode_image(img))
        assert out.shape == img.shape

    def test_no_subsampling_mode(self, gradient_image):
        c = JPEGCodec(quality=75, subsample=False)
        out = c.decode_image(c.encode_image(gradient_image))
        assert psnr(gradient_image, out) > 30.0

    def test_subsampling_encodes_smaller(self, gradient_image):
        with_sub = len(JPEGCodec(subsample=True).encode_image(gradient_image))
        without = len(JPEGCodec(subsample=False).encode_image(gradient_image))
        assert with_sub < without


class TestQualityKnob:
    def test_quality_tradeoff(self, gradient_image):
        sizes = {}
        errors = {}
        for q in (20, 50, 90):
            c = JPEGCodec(quality=q)
            payload = c.encode_image(gradient_image)
            sizes[q] = len(payload)
            errors[q] = psnr(gradient_image, c.decode_image(payload))
        assert sizes[20] < sizes[50] < sizes[90]
        assert errors[20] < errors[50] < errors[90]

    def test_compression_is_substantial(self, codec, rendered_rgb):
        payload = codec.encode_image(rendered_rgb)
        assert len(payload) < rendered_rgb.nbytes / 8

    def test_marked_lossy(self, codec):
        assert not codec.lossless
        assert codec.name == "jpeg"


class TestErrors:
    def test_byte_interface_unsupported(self, codec):
        with pytest.raises(CodecError):
            codec.encode(b"abc")
        with pytest.raises(CodecError):
            codec.decode(b"abc")

    def test_rejects_float_image(self, codec):
        with pytest.raises(CodecError):
            codec.encode_image(np.zeros((8, 8, 3), dtype=np.float32))

    def test_rejects_bad_shape(self, codec):
        with pytest.raises(CodecError):
            codec.encode_image(np.zeros((8, 8, 2), dtype=np.uint8))

    def test_rejects_bad_magic(self, codec):
        with pytest.raises(CodecError):
            codec.decode_image(b"WRONGHEADER" + bytes(50))

    def test_rejects_truncated_payload(self, codec, gradient_image):
        payload = codec.encode_image(gradient_image)
        with pytest.raises(CodecError):
            codec.decode_image(payload[: len(payload) // 2])

    def test_rejects_bad_quality(self):
        with pytest.raises(ValueError):
            JPEGCodec(quality=0)


class TestDeterminism:
    def test_encode_is_deterministic(self, codec, gradient_image):
        assert codec.encode_image(gradient_image) == codec.encode_image(
            gradient_image
        )

    def test_decoder_independent_instance(self, gradient_image):
        payload = JPEGCodec(quality=60).encode_image(gradient_image)
        out = JPEGCodec(quality=10).decode_image(payload)  # quality from header
        assert psnr(gradient_image, out) > 28.0
