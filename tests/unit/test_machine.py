"""Unit tests for the SPMD runtime and communicator."""

import numpy as np
import pytest

from repro.machine import CommError, run_spmd
from repro.machine.spmd import SpmdError


class TestPointToPoint:
    def test_send_recv(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send({"x": 42}, dest=1)
                return None
            return comm.recv(source=0)

        assert run_spmd(2, worker)[1] == {"x": 42}

    def test_tag_matching(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send("b", dest=1, tag=2)
                comm.send("a", dest=1, tag=1)
                return None
            first = comm.recv(source=0, tag=1)
            second = comm.recv(source=0, tag=2)
            return first, second

        assert run_spmd(2, worker)[1] == ("a", "b")

    def test_non_overtaking_same_tag(self):
        def worker(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(i, dest=1)
                return None
            return [comm.recv(source=0) for _ in range(10)]

        assert run_spmd(2, worker)[1] == list(range(10))

    def test_any_source(self):
        def worker(comm):
            if comm.rank == 2:
                got = sorted(comm.recv() for _ in range(2))
                return got
            comm.send(comm.rank, dest=2)

        assert run_spmd(3, worker)[2] == [0, 1]

    def test_recv_with_status(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send("hi", dest=1, tag=9)
                return None
            return comm.recv_with_status()

        payload, src, tag = run_spmd(2, worker)[1]
        assert (payload, src, tag) == ("hi", 0, 9)

    def test_sendrecv_exchange(self):
        def worker(comm):
            partner = comm.rank ^ 1
            return comm.sendrecv(comm.rank * 10, partner)

        assert run_spmd(2, worker) == [10, 0]

    def test_numpy_payload(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(np.arange(100), dest=1)
                return None
            return comm.recv(source=0).sum()

        assert run_spmd(2, worker)[1] == 4950

    def test_bad_dest_rejected(self):
        def worker(comm):
            comm.send(1, dest=5)

        with pytest.raises(SpmdError):
            run_spmd(2, worker)


class TestCollectives:
    def test_bcast(self):
        def worker(comm):
            data = [1, 2, 3] if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        assert run_spmd(4, worker) == [[1, 2, 3]] * 4

    def test_bcast_nonzero_root(self):
        def worker(comm):
            return comm.bcast("v" if comm.rank == 2 else None, root=2)

        assert run_spmd(3, worker) == ["v"] * 3

    def test_scatter_gather(self):
        def worker(comm):
            part = comm.scatter(
                [i * i for i in range(comm.size)] if comm.rank == 0 else None
            )
            return comm.gather(part + 1, root=0)

        results = run_spmd(4, worker)
        assert results[0] == [1, 2, 5, 10]
        assert results[1] is None

    def test_scatter_wrong_length(self):
        def worker(comm):
            comm.scatter([1] if comm.rank == 0 else None)

        with pytest.raises(SpmdError):
            run_spmd(2, worker)

    def test_allgather(self):
        def worker(comm):
            return comm.allgather(comm.rank)

        assert run_spmd(3, worker) == [[0, 1, 2]] * 3

    def test_alltoall(self):
        def worker(comm):
            return comm.alltoall([f"{comm.rank}->{j}" for j in range(comm.size)])

        results = run_spmd(3, worker)
        assert results[1] == ["0->1", "1->1", "2->1"]

    def test_reduce(self):
        def worker(comm):
            return comm.reduce(comm.rank + 1, op=lambda a, b: a * b, root=0)

        results = run_spmd(4, worker)
        assert results[0] == 24
        assert results[1] is None

    def test_allreduce(self):
        def worker(comm):
            return comm.allreduce(comm.rank, op=lambda a, b: a + b)

        assert run_spmd(5, worker) == [10] * 5

    def test_barrier_synchronizes(self):
        import threading

        flag = threading.Event()

        def worker(comm):
            if comm.rank == 0:
                flag.set()
            comm.barrier()
            return flag.is_set()

        assert all(run_spmd(4, worker))

    def test_collective_sequence(self):
        """Multiple collectives in a row stay correctly paired."""

        def worker(comm):
            a = comm.allgather(comm.rank)
            b = comm.allgather(comm.rank * 2)
            c = comm.bcast(99 if comm.rank == 0 else None)
            return a, b, c

        for a, b, c in run_spmd(3, worker):
            assert a == [0, 1, 2]
            assert b == [0, 2, 4]
            assert c == 99


class TestSplit:
    def test_split_into_groups(self):
        def worker(comm):
            color = comm.rank // 2
            sub = comm.split(color)
            return color, sub.rank, sub.size, sub.allgather(comm.rank)

        results = run_spmd(4, worker)
        assert results[0] == (0, 0, 2, [0, 1])
        assert results[3] == (1, 1, 2, [2, 3])

    def test_split_with_key_reorders(self):
        def worker(comm):
            sub = comm.split(0, key=-comm.rank)  # reverse order
            return sub.rank

        assert run_spmd(3, worker) == [2, 1, 0]

    def test_subgroup_point_to_point(self):
        def worker(comm):
            sub = comm.split(comm.rank % 2)
            if sub.size == 2:
                return sub.sendrecv(comm.rank, partner=sub.rank ^ 1)

        results = run_spmd(4, worker)
        assert results[0] == 2 and results[2] == 0
        assert results[1] == 3 and results[3] == 1


class TestErrors:
    def test_worker_exception_propagates_with_rank(self):
        def worker(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(SpmdError) as info:
            run_spmd(3, worker)
        assert info.value.rank == 1
        assert isinstance(info.value.original, ValueError)

    def test_deadlock_times_out(self):
        def worker(comm):
            comm.recv(source=comm.rank)  # nobody ever sends

        with pytest.raises(SpmdError) as info:
            run_spmd(2, worker, timeout=0.2)
        assert isinstance(info.value.original, TimeoutError)

    def test_nprocs_validation(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)

    def test_single_rank_works(self):
        def worker(comm):
            assert comm.size == 1
            comm.barrier()
            return comm.allgather("only")

        assert run_spmd(1, worker) == [["only"]]

    def test_comm_error_on_bad_rank(self):
        from repro.machine.communicator import Communicator, _World

        with pytest.raises(CommError):
            Communicator(_World(2), 5)


class TestNonblocking:
    def test_irecv_wait(self):
        def worker(comm):
            if comm.rank == 0:
                req = comm.isend({"k": 1}, dest=1)
                req.wait()
                return None
            req = comm.irecv(source=0)
            return req.wait()

        assert run_spmd(2, worker)[1] == {"k": 1}

    def test_irecv_test_polls(self):
        import time

        def worker(comm):
            if comm.rank == 0:
                time.sleep(0.1)
                comm.send("late", dest=1)
                return None
            req = comm.irecv(source=0)
            done_first, _ = req.test()
            while True:
                done, value = req.test()
                if done:
                    return done_first, value
                # polling IS the behaviour under test: req.test() must be
                # callable repeatedly without consuming the message
                time.sleep(0.01)  # lint: disable=DT201

        done_first, value = run_spmd(2, worker)[1]
        assert done_first is False  # nothing buffered immediately
        assert value == "late"

    def test_isend_completes_immediately(self):
        def worker(comm):
            if comm.rank == 0:
                req = comm.isend("x", dest=1)
                done, _ = req.test()
                comm.barrier()
                return done
            comm.barrier()
            return comm.recv(source=0)

        results = run_spmd(2, worker)
        assert results[0] is True
        assert results[1] == "x"

    def test_overlap_compute_and_communication(self):
        """The classic use: post the receive, compute, then wait."""

        def worker(comm):
            if comm.rank == 0:
                comm.send(list(range(50)), dest=1)
                return None
            req = comm.irecv(source=0)
            local = sum(i * i for i in range(100))  # "compute"
            data = req.wait()
            return local + sum(data)

        assert run_spmd(2, worker)[1] == sum(i * i for i in range(100)) + 1225
