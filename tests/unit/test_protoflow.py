"""The DT90x protocol-conformance analyzer is itself under test: every
rule is pinned to a fixture that violates it exactly once, the
``# speaks:`` / ``# wire:`` annotations and the pragma escape hatch are
exercised, the baseline workflow round-trips, the committed spec and
its checked-in diagram are asserted consistent and fresh, and HEAD of
``src/`` is asserted clean — with no baseline help — inside the runtime
bound ``repro lint`` pays on every run."""

import json
import time
from pathlib import Path

import pytest

from repro.daemon.protocol_spec import spec_errors
from repro.devtools.lockset import Baseline
from repro.devtools.protoflow import (
    DEFAULT_BASELINE,
    PROTOFLOW_RULES,
    analyze_paths,
    analyze_source,
    load_baseline,
    main as protoflow_main,
    render_dot,
)

pytestmark = pytest.mark.lint

FIXTURES = Path(__file__).parent.parent / "lint_fixtures"
REPO = Path(__file__).parent.parent.parent

#: fixture file -> (rule id, line of the single expected violation)
EXPECTED = {
    "dt901_schema_mismatch.py": ("DT901", 14),
    "dt902_unhandled_tag.py": ("DT902", 7),
    "dt903_bad_send.py": ("DT903", 7),
    "dt904_dead_state.py": ("DT904", 14),
}


def _analyze_fixture(name):
    path = FIXTURES / name
    return analyze_source(path.read_text(), str(path))


class TestRuleCorpus:
    @pytest.mark.parametrize("name,expected", sorted(EXPECTED.items()),
                             ids=sorted(EXPECTED))
    def test_fixture_violates_exactly_its_rule(self, name, expected):
        rule, line = expected
        findings = _analyze_fixture(name)
        assert [(f.rule, f.line) for f in findings] == [(rule, line)], (
            f"{name}: expected exactly one {rule} at line {line}, "
            f"got {findings}"
        )

    def test_corpus_covers_every_rule(self):
        assert {rule for rule, _ in EXPECTED.values()} \
            == set(PROTOFLOW_RULES)

    def test_negative_fixture_is_clean(self):
        findings = _analyze_fixture("dt90x_clean.py")
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_finding_renders_path_line_rule(self):
        (f,) = _analyze_fixture("dt903_bad_send.py")
        assert str(f).startswith(
            str(FIXTURES / "dt903_bad_send.py") + ":7: DT903"
        )
        assert f.key.endswith(":DT903:send.client.*.tier")


class TestAnnotations:
    ONE_SIDED = (
        "import struct\n"
        "def emit(k, size):\n"
        "    # wire: k-size (one-sided byte-indexed decoder)\n"
        "    return struct.pack(\"<BB\", k, size)\n"
    )

    def test_one_sided_wire_annotation_exempts_the_record(self):
        assert analyze_source(self.ONE_SIDED) == []

    def test_unpaired_record_without_the_exemption_is_reported(self):
        src = self.ONE_SIDED.replace(
            " (one-sided byte-indexed decoder)", "")
        findings = analyze_source(src)
        assert [f.rule for f in findings] == ["DT901"]
        assert "no unpack" in findings[0].message

    def test_unknown_speaks_endpoint_is_dead_surface(self):
        src = (
            "class Peer:  # speaks: observer\n"
            "    def pump(self, msg):\n"
            "        if msg.tag == \"ack\":\n"
            "            self.handle(msg)\n"
        )
        findings = analyze_source(src)
        assert [f.rule for f in findings] == ["DT904"]
        assert "observer" in findings[0].message

    def test_state_pinned_scope_tightens_the_send_check(self):
        # gap is broker-sendable, but only from the resuming state;
        # pinning the scope to serving must flag it
        src = (
            "class Broker:  # speaks: broker@serving\n"
            "    def announce(self, conn):\n"
            "        conn.send_control(\"gap\", start=0, stop=1)\n"
        )
        findings = analyze_source(src)
        assert [(f.rule, f.line) for f in findings] == [("DT903", 3)]

    def test_native_endianness_is_flagged_even_when_paired(self):
        src = (
            "import struct\n"
            "def roundtrip(v):\n"
            "    return struct.unpack(\"I\", struct.pack(\"I\", v))\n"
        )
        findings = analyze_source(src)
        assert [f.rule for f in findings] == ["DT901", "DT901"]
        assert "native byte order" in findings[0].message


class TestPragma:
    def test_disable_pragma_silences_the_line(self):
        src = (FIXTURES / "dt903_bad_send.py").read_text()
        src = src.replace("# VIOLATION line 7", "# lint: disable=DT903")
        assert analyze_source(src) == []

    def test_disable_all_silences_the_line(self):
        src = (FIXTURES / "dt904_dead_state.py").read_text()
        src = src.replace("# VIOLATION line 14", "# lint: disable=all")
        assert analyze_source(src) == []


class TestBaseline:
    def _fixture_findings(self):
        return analyze_paths([FIXTURES / "dt903_bad_send.py"])

    def test_write_filter_roundtrip(self, tmp_path):
        findings = self._fixture_findings()
        path = tmp_path / "baseline.json"
        Baseline.write(path, findings)
        loaded = load_baseline(path)
        fresh, matched = loaded.filter(findings)
        assert fresh == [] and matched == [findings[0].key]
        data = json.loads(path.read_text())
        assert "justify" in data["grandfathered"][findings[0].key]

    def test_stale_entries_are_reported(self):
        baseline = Baseline(
            entries={"repro/gone.py:DT903:send.client.*.tier": "old"})
        assert baseline.stale_keys(self._fixture_findings()) == [
            "repro/gone.py:DT903:send.client.*.tier"
        ]

    def test_disabled_and_missing_baselines_are_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json").entries == {}
        assert load_baseline(None, disabled=True).entries == {}

    def test_committed_baseline_is_empty(self):
        # every finding at introduction was fixed or taught as a false
        # positive (docs/devtools.md has the triage log); keep it that way
        data = json.loads((REPO / DEFAULT_BASELINE).read_text())
        assert data["grandfathered"] == {}


class TestSpec:
    def test_spec_is_internally_consistent(self):
        assert spec_errors() == []

    def test_spec_module_alone_passes_the_exercise_checks(self):
        spec = REPO / "src" / "repro" / "daemon" / "protocol_spec.py"
        findings = analyze_paths([spec])
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_checked_in_dot_diagram_is_fresh(self):
        committed = (REPO / "docs" / "protocol_states.dot").read_text()
        assert committed == render_dot(), (
            "docs/protocol_states.dot is stale; regenerate with "
            "`repro lint --emit-proto-dot docs/protocol_states.dot`"
        )


class TestTreeIsClean:
    def test_src_has_zero_nonbaselined_findings_at_head(self):
        findings = analyze_paths([REPO / "src"])
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_analyzer_is_fast_enough_for_every_lint_run(self):
        start = time.monotonic()
        analyze_paths([REPO / "src"])
        elapsed = time.monotonic() - start
        assert elapsed < 10.0, f"protoflow took {elapsed:.1f}s over src/"

    def test_fixture_corpus_is_excluded_from_tree_analysis(self):
        findings = analyze_paths([FIXTURES.parent])
        assert findings == []


class TestCli:
    def test_exit_nonzero_on_violation(self, capsys):
        rc = protoflow_main([str(FIXTURES / "dt901_schema_mismatch.py"),
                             "--no-baseline"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "DT901" in out and "dt901_schema_mismatch.py:14" in out

    def test_exit_zero_on_clean_file(self, capsys):
        rc = protoflow_main([str(FIXTURES / "dt90x_clean.py"),
                             "--no-baseline"])
        assert rc == 0
        assert "0 new findings" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        rc = protoflow_main(["--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rule_id in PROTOFLOW_RULES:
            assert rule_id in out

    def test_emit_dot_writes_the_diagram(self, tmp_path, capsys):
        target = tmp_path / "states.dot"
        rc = protoflow_main(["--emit-dot", str(target)])
        assert rc == 0
        assert target.read_text() == render_dot()
