"""Relay-tier smoke guardrail (``make relay-smoke``).

The replay-heavy workload at small scale — viewers looping a published
timeline through edge relays — asserting the structural properties any
relay change must preserve: complete in-order delivery, the ≥90%
origin-offload contract (each timeline crosses the WAN once per relay,
not once per viewer pass), and a store that serves replays without
re-fetching.
"""

import pytest

from repro.relay import run_relay_topology

pytestmark = pytest.mark.perf_smoke

SMOKE_RELAYS = 2
SMOKE_VIEWERS = 8
SMOKE_FRAMES = 32
SMOKE_LOOPS = 3


def test_relay_replay_offload_smoke():
    report = run_relay_topology(
        n_relays=SMOKE_RELAYS,
        n_viewers=SMOKE_VIEWERS,
        n_frames=SMOKE_FRAMES,
        loops=SMOKE_LOOPS,
        size=24,
        pace_s=0.002,
        timeout_s=60.0,
    )
    assert report["completed"], report
    # every viewer played every loop completely, in order
    assert report["delivered_ratio"] == 1.0
    assert report["duplicates"] == 0
    assert report["skips"] == 0
    # the offload contract: N viewers × loops cost ~one WAN pass per
    # relay.  Exact floor would be 1 - 2/(8·3) ≈ 0.9167; the ≥0.90 gate
    # leaves room for a few duplicate WAN frames from seek/live races.
    assert report["offload_ratio"] >= 0.90, report["offload_ratio"]
    # replays were store hits, not upstream waits
    for name, relay in report["relays"].items():
        assert relay["frames_unavailable"] == 0, (name, relay)
        assert relay["store_hits"] >= relay["store_waits"], (name, relay)
