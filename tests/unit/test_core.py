"""Unit tests for partitioning, metrics, the analytic model and the DES."""

import math

import pytest

from repro.core import (
    FrameRecord,
    PartitionPlan,
    PerformanceModel,
    PipelineConfig,
    RenderingMetrics,
    candidate_partitions,
    simulate_pipeline,
)
from repro.sim.cluster import NASA_O2K, NASA_TO_UCD, O2_CLIENT, RWCP_CLUSTER
from repro.sim.costs import JET_PROFILE


class TestPartitionPlan:
    def test_uniform_groups(self):
        plan = PartitionPlan(16, 4)
        assert plan.group_sizes == (4, 4, 4, 4)
        assert plan.uniform
        assert plan.group_size == 4

    def test_non_uniform_groups(self):
        plan = PartitionPlan(10, 3)
        assert plan.group_sizes == (4, 3, 3)
        assert not plan.uniform

    def test_members_contiguous_and_complete(self):
        plan = PartitionPlan(10, 3)
        all_ranks = []
        for g in range(3):
            all_ranks.extend(plan.members(g))
        assert all_ranks == list(range(10))

    def test_group_of_rank(self):
        plan = PartitionPlan(10, 3)
        for g in range(3):
            for r in plan.members(g):
                assert plan.group_of_rank(r) == g

    def test_round_robin_steps(self):
        plan = PartitionPlan(8, 4)
        assert list(plan.steps_of_group(1, 10)) == [1, 5, 9]
        assert plan.group_of_step(7) == 3

    def test_steps_partition_exactly(self):
        plan = PartitionPlan(8, 3)
        seen = sorted(
            t for g in range(3) for t in plan.steps_of_group(g, 20)
        )
        assert seen == list(range(20))

    def test_kind_classification(self):
        assert PartitionPlan(8, 1).kind == "intra-volume"
        assert PartitionPlan(8, 8).kind == "inter-volume"
        assert PartitionPlan(8, 4).kind == "hybrid"

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionPlan(0, 1)
        with pytest.raises(ValueError):
            PartitionPlan(4, 5)
        with pytest.raises(ValueError):
            PartitionPlan(4, 0)
        with pytest.raises(IndexError):
            PartitionPlan(4, 2).members(2)
        with pytest.raises(IndexError):
            PartitionPlan(4, 2).group_of_rank(4)

    def test_candidate_partitions_powers(self):
        assert candidate_partitions(64) == [1, 2, 4, 8, 16, 32, 64]
        assert candidate_partitions(48) == [1, 2, 4, 8, 16, 32]

    def test_candidate_partitions_divisors(self):
        assert candidate_partitions(12, powers_of_two=False) == [1, 2, 3, 4, 6, 12]


class TestMetrics:
    def make_frames(self, displayed):
        return [
            FrameRecord(time_step=t, group=0, displayed=d)
            for t, d in enumerate(displayed)
        ]

    def test_three_metrics(self):
        m = RenderingMetrics.from_frames(self.make_frames([2.0, 3.0, 5.0]))
        assert m.start_up_latency == 2.0
        assert m.overall_time == 5.0
        assert m.inter_frame_delay == pytest.approx(1.5)
        assert m.frame_rate == pytest.approx(1 / 1.5)

    def test_single_frame(self):
        m = RenderingMetrics.from_frames(self.make_frames([4.0]))
        assert m.start_up_latency == m.overall_time == 4.0
        assert m.inter_frame_delay == 0.0

    def test_frames_sorted_by_step(self):
        frames = list(reversed(self.make_frames([1.0, 2.0, 3.0])))
        m = RenderingMetrics.from_frames(frames)
        assert [f.time_step for f in m.frames] == [0, 1, 2]

    def test_rejects_missing_timestamps(self):
        with pytest.raises(ValueError):
            RenderingMetrics.from_frames(
                [FrameRecord(time_step=0, group=0)]
            )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RenderingMetrics.from_frames([])

    def test_summary_format(self):
        m = RenderingMetrics.from_frames(self.make_frames([1.0, 2.0]))
        s = m.summary()
        assert "start-up=1.000s" in s and "overall=2.000s" in s


class TestPerformanceModel:
    @pytest.fixture
    def model(self):
        return PerformanceModel(
            machine=RWCP_CLUSTER, profile=JET_PROFILE, pixels=256 * 256
        )

    def test_predicts_optimum_L4(self, model):
        for procs in (16, 32, 64):
            best, _ = model.optimal_partition(procs, 128)
            assert best == 4, procs

    def test_startup_monotone_in_L(self, model):
        startups = [
            model.predict(PartitionPlan(32, l), 128).start_up_latency
            for l in (1, 2, 4, 8, 16, 32)
        ]
        assert all(a < b for a, b in zip(startups, startups[1:]))

    def test_overall_bounds(self, model):
        m = model.predict(PartitionPlan(32, 4), 64)
        assert m.start_up_latency <= m.overall_time
        assert m.inter_frame_delay > 0

    def test_single_step(self, model):
        m = model.predict(PartitionPlan(16, 2), 1)
        assert m.overall_time == m.start_up_latency

    def test_agrees_with_simulation_within_tolerance(self, model):
        """The analytic model tracks the DES within ~25% at moderate L."""
        for l_groups in (1, 2, 4, 8):
            predicted = model.predict(PartitionPlan(32, l_groups), 64)
            simulated = simulate_pipeline(
                PipelineConfig(
                    n_procs=32,
                    n_groups=l_groups,
                    n_steps=64,
                    profile=JET_PROFILE,
                    machine=RWCP_CLUSTER,
                    image_size=(256, 256),
                )
            ).metrics
            rel = abs(predicted.overall_time - simulated.overall_time)
            rel /= simulated.overall_time
            assert rel < 0.25, (l_groups, predicted.overall_time, simulated.overall_time)

    def test_transport_validation(self):
        with pytest.raises(ValueError):
            PerformanceModel(
                machine=NASA_O2K,
                profile=JET_PROFILE,
                pixels=65536,
                transport="daemon",
            ).output_shared_s()


class TestSimulatePipeline:
    def make_config(self, **kw):
        base = dict(
            n_procs=16,
            n_groups=4,
            n_steps=32,
            profile=JET_PROFILE,
            machine=RWCP_CLUSTER,
            image_size=(256, 256),
            transport="store",
        )
        base.update(kw)
        return PipelineConfig(**base)

    def test_deterministic(self):
        a = simulate_pipeline(self.make_config())
        b = simulate_pipeline(self.make_config())
        assert a.overall_time == b.overall_time
        assert a.metrics.inter_frame_delay == b.metrics.inter_frame_delay

    def test_all_frames_complete_in_order(self):
        result = simulate_pipeline(self.make_config())
        displayed = [f.displayed for f in result.metrics.frames]
        assert len(displayed) == 32
        assert all(a <= b for a, b in zip(displayed, displayed[1:]))

    def test_stage_ordering_per_frame(self):
        result = simulate_pipeline(self.make_config())
        for f in result.metrics.frames:
            assert f.read_start <= f.read_end <= f.render_start
            assert f.render_start <= f.render_end <= f.output_start
            assert f.output_start <= f.displayed

    def test_pipelining_beats_serial_execution(self):
        """Overlapped stages finish faster than the sum of stage times."""
        result = simulate_pipeline(self.make_config(n_groups=1))
        f = result.metrics.frames[1]
        serial_per_frame = (
            (f.read_end - f.read_start)
            + (f.render_end - f.render_start)
            + (f.displayed - f.output_start)
        )
        assert result.metrics.inter_frame_delay < serial_per_frame

    def test_more_processors_faster(self):
        slow = simulate_pipeline(self.make_config(n_procs=8, n_groups=2))
        fast = simulate_pipeline(self.make_config(n_procs=32, n_groups=4))
        assert fast.overall_time < slow.overall_time

    def test_utilization_probes(self):
        result = simulate_pipeline(self.make_config())
        assert 0.0 < result.storage_utilization <= 1.0
        assert 0.0 <= result.output_utilization <= 1.0

    def test_daemon_transport_runs(self):
        result = simulate_pipeline(
            self.make_config(
                machine=NASA_O2K,
                transport="daemon",
                route=NASA_TO_UCD,
                client=O2_CLIENT,
                n_steps=16,
            )
        )
        assert result.overall_time > 0
        assert math.isfinite(result.metrics.inter_frame_delay)

    def test_x_transport_much_slower_than_daemon(self):
        common = dict(
            machine=NASA_O2K, route=NASA_TO_UCD, client=O2_CLIENT, n_steps=16
        )
        x = simulate_pipeline(self.make_config(transport="x", **common))
        d = simulate_pipeline(self.make_config(transport="daemon", **common))
        assert x.overall_time > 1.5 * d.overall_time

    def test_config_validation(self):
        with pytest.raises(ValueError):
            self.make_config(transport="daemon")  # no route
        with pytest.raises(ValueError):
            self.make_config(transport="carrier-pigeon")
        with pytest.raises(ValueError):
            self.make_config(n_steps=0)
        with pytest.raises(ValueError):
            self.make_config(input_buffer=0)

    def test_single_step_single_group(self):
        result = simulate_pipeline(self.make_config(n_steps=1, n_groups=1))
        assert result.metrics.n_frames == 1
        assert result.start_up_latency == result.overall_time
