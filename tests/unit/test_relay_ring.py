"""RelayRing: deterministic ownership, minimal remap, thread safety."""

import threading

import pytest

from repro.devtools.locktrace import checked
from repro.relay.ring import RelayRing

NAMES = ["relay0", "relay1", "relay2", "relay3"]
N_FRAMES = 512


class TestOwnership:
    def test_owner_is_deterministic_across_instances(self):
        a = RelayRing(NAMES)
        b = RelayRing(list(reversed(NAMES)))  # insertion order irrelevant
        assert [a.owner(f) for f in range(N_FRAMES)] == [
            b.owner(f) for f in range(N_FRAMES)
        ]

    def test_every_frame_has_exactly_one_owner(self):
        ring = RelayRing(NAMES)
        owners = {f: ring.owner(f) for f in range(N_FRAMES)}
        assert all(o in NAMES for o in owners.values())

    def test_chunks_are_contiguous_frame_runs(self):
        ring = RelayRing(NAMES, chunk_frames=16)
        for f in range(N_FRAMES):
            assert ring.owner(f) == ring.owner((f // 16) * 16)

    def test_ownership_spreads_across_relays(self):
        ring = RelayRing(NAMES, chunk_frames=1)
        owners = {ring.owner(f) for f in range(N_FRAMES)}
        # with vnodes, four relays over 512 chunks all own something
        assert owners == set(NAMES)

    def test_owned_chunks_partition_the_timeline(self):
        ring = RelayRing(NAMES, chunk_frames=16)
        all_chunks = sorted(
            c for name in NAMES for c in ring.owned_chunks(name, N_FRAMES)
        )
        assert all_chunks == list(range(N_FRAMES // 16))

    def test_empty_ring_owns_nothing(self):
        assert RelayRing().owner(0) is None


class TestRemap:
    def test_removal_only_moves_the_dead_relays_chunks(self):
        ring = RelayRing(NAMES, chunk_frames=1)
        before = {f: ring.owner(f) for f in range(N_FRAMES)}
        ring.remove("relay2")
        after = {f: ring.owner(f) for f in range(N_FRAMES)}
        for f in range(N_FRAMES):
            if before[f] != "relay2":
                # the consistent-hash guarantee: survivors keep theirs
                assert after[f] == before[f]
            else:
                assert after[f] != "relay2"
        assert "relay2" not in ring

    def test_add_restores_prior_assignment(self):
        ring = RelayRing(NAMES, chunk_frames=1)
        before = {f: ring.owner(f) for f in range(N_FRAMES)}
        ring.remove("relay1")
        ring.add("relay1")
        assert {f: ring.owner(f) for f in range(N_FRAMES)} == before

    def test_duplicate_add_and_missing_remove_are_noops(self):
        ring = RelayRing(NAMES)
        ring.add("relay0")
        assert len(ring) == len(NAMES)
        ring.remove("ghost")
        assert ring.relays() == tuple(sorted(NAMES))


class TestValidationAndConcurrency:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RelayRing(chunk_frames=0)
        with pytest.raises(ValueError):
            RelayRing(vnodes=0)

    def test_concurrent_lookup_during_membership_churn(self):
        ring = RelayRing(NAMES)
        stop = threading.Event()
        bad: list[str] = []

        def lookups():
            while not stop.is_set():
                for f in range(0, N_FRAMES, 7):
                    owner = ring.owner(f)
                    if owner is not None and owner not in NAMES + ["extra"]:
                        bad.append(owner)

        def churn():
            for _ in range(200):
                ring.remove("relay3")
                ring.add("relay3")
                ring.add("extra")
                ring.remove("extra")
            stop.set()

        with checked(patch_channel=False):
            threads = [
                threading.Thread(target=lookups),
                threading.Thread(target=lookups),
                threading.Thread(target=churn),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert not bad
        assert ring.relays() == tuple(sorted(NAMES))
