"""Unit tests: §3 memory feasibility and §4.1 per-rank parallel compression."""

import numpy as np
import pytest

from repro.core import PipelineConfig, RemoteVisualizationSession
from repro.data import turbulent_jet
from repro.render import Camera
from repro.sim.cluster import RWCP_CLUSTER
from repro.sim.costs import JET_PROFILE, MIXING_PROFILE, CostModel


class TestMemoryFeasibility:
    def test_memory_model_scales_with_group(self):
        c = CostModel()
        m1 = c.memory_per_node_bytes(MIXING_PROFILE, 512 * 512, 1)
        m16 = c.memory_per_node_bytes(MIXING_PROFILE, 512 * 512, 16)
        assert m1 > 10 * m16

    def test_jet_inter_volume_feasible(self):
        """The small jet fits one node — pure inter-volume works."""
        PipelineConfig(
            n_procs=64, n_groups=64, n_steps=4,
            profile=JET_PROFILE, machine=RWCP_CLUSTER,
            image_size=(256, 256),
        )

    def test_mixing_inter_volume_infeasible(self):
        """§3: inter-volume parallelism 'is limited by each processor's
        main memory space' — the 201 MB/step mixing dataset cannot run
        one-volume-per-node on 256 MB nodes."""
        with pytest.raises(ValueError, match="memory limit"):
            PipelineConfig(
                n_procs=64, n_groups=64, n_steps=4,
                profile=MIXING_PROFILE, machine=RWCP_CLUSTER,
                image_size=(512, 512),
            )

    def test_mixing_hybrid_feasible(self):
        PipelineConfig(
            n_procs=64, n_groups=4, n_steps=4,
            profile=MIXING_PROFILE, machine=RWCP_CLUSTER,
            image_size=(512, 512),
        )


class TestParallelCompressionSession:
    @pytest.fixture(scope="class")
    def dataset(self):
        return turbulent_jet(scale=0.25, n_steps=4)

    @pytest.mark.parametrize("group_size", [1, 2, 3, 4])
    def test_matches_sequential_path(self, dataset, group_size):
        cam = Camera(image_size=(48, 48))
        with RemoteVisualizationSession(
            dataset, group_size=group_size, camera=cam, codec="lzo",
            spmd=True, parallel_compression=True,
        ) as par, RemoteVisualizationSession(
            dataset, group_size=group_size, camera=cam, codec="lzo",
        ) as seq:
            a = par.step(1)
            b = seq.step(1)
        assert np.array_equal(a.image, b.image)

    def test_piece_count_matches_active_ranks(self, dataset):
        cam = Camera(image_size=(48, 48))
        with RemoteVisualizationSession(
            dataset, group_size=4, camera=cam, codec="lzo",
            spmd=True, parallel_compression=True,
        ) as sess:
            frame = sess.step(0)
        assert frame.n_pieces == 4

    def test_folded_group_has_fewer_pieces(self, dataset):
        """Non-power-of-two groups fold donors away: 3 ranks -> 2 strips."""
        cam = Camera(image_size=(48, 48))
        with RemoteVisualizationSession(
            dataset, group_size=3, camera=cam, codec="lzo",
            spmd=True, parallel_compression=True,
        ) as sess:
            frame = sess.step(0)
        assert frame.n_pieces == 2

    def test_lossy_codec_through_parallel_path(self, dataset):
        from repro.compress import psnr

        cam = Camera(image_size=(64, 64))
        with RemoteVisualizationSession(
            dataset, group_size=4, camera=cam, codec="jpeg+lzo",
            spmd=True, parallel_compression=True,
        ) as sess:
            frame = sess.step(2)
            reference = sess.render_step(2)
        assert psnr(reference, frame.image) > 25.0

    def test_validation(self, dataset):
        with pytest.raises(ValueError, match="requires spmd"):
            RemoteVisualizationSession(
                dataset, group_size=2, parallel_compression=True
            )
        with pytest.raises(ValueError, match="n_pieces"):
            RemoteVisualizationSession(
                dataset, group_size=2, spmd=True,
                parallel_compression=True, n_pieces=4,
            )
