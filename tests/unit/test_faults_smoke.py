"""Fault-resilience smoke guardrail (``make faults-smoke``).

One tiny WAN cell — 2 viewers, 32 frames, 5% loss with 50 ms jitter —
asserting the structural properties any resilience change must keep:
every viewer handles (acks or deliberately stride-skips) nearly all of
the stream, no client ever observes a duplicate frame, and loss never
surfaces to the application as an error.
"""

import pytest

from repro.net.faults import FaultPlan
from repro.serve.faultrun import run_with_faults

pytestmark = pytest.mark.perf_smoke

#: floor well under the ~0.97+ a healthy stack delivers at this cell, so
#: only a structural regression (credit leak, dead retry, resume dup)
#: trips it
RATIO_FLOOR = 0.90


def test_faults_delivery_smoke():
    plan = FaultPlan(seed=99, loss_ratio=0.05, jitter_s=0.05)
    report = run_with_faults(plan, n_frames=32, n_viewers=2, pace_s=0.02)

    assert report["delivered_ratio"] >= RATIO_FLOOR
    for name, session in report["sessions"].items():
        assert session["observed_duplicates"] == 0, name
        assert session["decode_errors"] == 0, name
        assert session["acks"] > 0, name
