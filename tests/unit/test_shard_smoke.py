"""Sharded-serving smoke guardrail (``make serve-shard-smoke``).

The fan-out harness through a 2-shard router with a 2-worker encode
pool, at 4 and 64 viewers.  Asserts the structural properties of the
scale-out layer — complete delivery through the shard pumps, one pool
encode per (frame, tier) per shard cache, warm passes that never
re-encode — and the scaling property the sharding exists for: warm
delivered-fps must not collapse as the viewer count grows 16x.

Viewer counts beyond the audit handful ack without decoding (see
``run_fanout``'s ``audit_viewers``): every viewer shares this one
process, so a decode-everything crowd would measure its own CPU, not
the router's.
"""

import pytest

from repro.serve.fanout import run_fanout, synthetic_frames

pytestmark = pytest.mark.perf_smoke

SMOKE_SHARDS = 2
SMOKE_ENCODE_WORKERS = 2
SMOKE_FRAMES = 16
SMOKE_AUDIT_VIEWERS = 2
#: the growth step the guardrail checks: 4 -> 64 viewers
SMOKE_VIEWERS_LOW = 4
SMOKE_VIEWERS_HIGH = 64
#: warm fps at 64 viewers must stay within this factor of 4 viewers —
#: measured headroom is ~8x *above* 1.0, so only a real scaling
#: collapse (per-viewer work back on one lock, O(V^2) drains) trips it
SCALE_TOLERANCE = 0.9
#: absolute floor, far below a laptop-class core's measured rate
FPS_FLOOR = 20.0


def _run(n_viewers, frames):
    return run_fanout(
        n_viewers,
        frames,
        credit_limit=32,
        shards=SMOKE_SHARDS,
        encode_workers=SMOKE_ENCODE_WORKERS,
        audit_viewers=SMOKE_AUDIT_VIEWERS,
    )


def test_shard_fanout_smoke():
    frames = synthetic_frames(SMOKE_FRAMES, size=64)
    results = {
        n: _run(n, frames)
        for n in (SMOKE_VIEWERS_LOW, SMOKE_VIEWERS_HIGH)
    }

    for n, r in results.items():
        # complete delivery through the shard pumps, nobody dropped
        assert r["cold"]["delivered_frames"] == n * SMOKE_FRAMES
        assert r["dropped_frames"] == 0
        # each shard fills its own cache exactly once per frame ...
        assert r["cold"]["encodes"] == SMOKE_SHARDS * SMOKE_FRAMES
        # ... but the pool never encodes more than the shards requested,
        # and coalescing means concurrent shard misses can share work
        assert SMOKE_FRAMES <= r["pool"]["encodes"] <= (
            SMOKE_SHARDS * SMOKE_FRAMES
        )
        # the warm pass re-serves from the shard caches, no re-encode
        assert r["warm"]["encodes"] == 0
        assert r["warm"]["cache_hit_ratio"] == 1.0
        for label in ("cold", "warm"):
            fps = r[label]["delivered_fps"]
            assert fps >= FPS_FLOOR, (
                f"{n} viewers {label}: {fps:.1f} f/s below {FPS_FLOOR}"
            )

    # the scaling guardrail: 16x the viewers must not collapse warm
    # throughput (the single-broker curve this layer replaced did)
    warm_low = results[SMOKE_VIEWERS_LOW]["warm"]["delivered_fps"]
    warm_high = results[SMOKE_VIEWERS_HIGH]["warm"]["delivered_fps"]
    assert warm_high >= SCALE_TOLERANCE * warm_low, (
        f"warm fps collapsed under fan-out: {warm_high:.1f} f/s @"
        f"{SMOKE_VIEWERS_HIGH} viewers vs {warm_low:.1f} f/s @"
        f"{SMOKE_VIEWERS_LOW} (tolerance {SCALE_TOLERANCE})"
    )
