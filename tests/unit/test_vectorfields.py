"""Unit tests for vector fields and derived-quantity operators."""

import numpy as np
import pytest

from repro.data.vectorfields import (
    abc_flow,
    curl,
    divergence,
    gradient_magnitude,
    normalize_scalar,
    velocity_magnitude,
    vorticity_magnitude,
)


@pytest.fixture(scope="module")
def flow():
    return abc_flow((24, 24, 24), t=1.0)


class TestABCFlow:
    def test_shape_and_dtype(self, flow):
        assert flow.shape == (24, 24, 24, 3)
        assert flow.dtype == np.float32

    def test_divergence_free(self, flow):
        """ABC flow is exactly incompressible; discretization noise only."""
        div = divergence(flow)
        scale = velocity_magnitude(flow).mean()
        interior = div[2:-2, 2:-2, 2:-2]
        assert np.abs(interior).mean() < 0.15 * scale

    def test_beltrami_property(self, flow):
        """ABC flow is a Beltrami flow: curl(v) is parallel to v (equal,
        for unit wavenumber) — check alignment on the interior."""
        w = curl(flow)[3:-3, 3:-3, 3:-3]
        v = flow[3:-3, 3:-3, 3:-3]
        # account for the 2π domain mapped onto the unit cube: curl picks
        # up a 2π factor per derivative
        cos = (w * v).sum(axis=3) / (
            np.linalg.norm(w, axis=3) * np.linalg.norm(v, axis=3) + 1e-9
        )
        assert cos.mean() > 0.95

    def test_time_coherence(self):
        a = abc_flow((12, 12, 12), t=0.0)
        b = abc_flow((12, 12, 12), t=0.5)
        c = abc_flow((12, 12, 12), t=5.0)
        assert not np.array_equal(a, b)
        # small dt -> small change; large dt -> larger change
        assert np.abs(a - b).mean() < np.abs(a - c).mean()


class TestOperators:
    def test_magnitude_of_unit_x(self):
        field = np.zeros((4, 4, 4, 3), dtype=np.float32)
        field[..., 0] = 3.0
        field[..., 1] = 4.0
        assert np.allclose(velocity_magnitude(field), 5.0)

    def test_curl_of_constant_is_zero(self):
        field = np.ones((8, 8, 8, 3), dtype=np.float32)
        assert np.abs(curl(field)).max() < 1e-5

    def test_curl_of_rigid_rotation(self):
        """v = Ω × r has curl 2Ω; use Ω = ẑ."""
        n = 16
        x = np.linspace(0, 1, n, dtype=np.float32)
        X, Y, _ = np.meshgrid(x, x, x, indexing="ij")
        field = np.zeros((n, n, n, 3), dtype=np.float32)
        field[..., 0] = -(Y - 0.5)
        field[..., 1] = X - 0.5
        w = curl(field)
        interior = w[2:-2, 2:-2, 2:-2]
        assert np.allclose(interior[..., 2], 2.0, atol=0.05)
        assert np.abs(interior[..., :2]).max() < 0.05

    def test_divergence_of_linear_field(self):
        n = 12
        x = np.linspace(0, 1, n, dtype=np.float32)
        X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
        field = np.stack([2 * X, 3 * Y, -1 * Z], axis=3)
        div = divergence(field)
        assert np.allclose(div[1:-1, 1:-1, 1:-1], 4.0, atol=0.05)

    def test_vorticity_magnitude_nonnegative(self, flow):
        assert (vorticity_magnitude(flow) >= 0).all()

    def test_gradient_magnitude_flat_is_zero(self):
        assert gradient_magnitude(np.full((6, 6, 6), 3.0)).max() == 0.0

    def test_gradient_magnitude_highlights_interface(self):
        vol = np.zeros((16, 16, 16), dtype=np.float32)
        vol[8:] = 1.0  # sharp front at x=8
        g = gradient_magnitude(vol)
        front = g[7:9].mean()
        away = g[:4].mean()
        assert front > 10 * (away + 1e-9)

    def test_operators_validate_shapes(self):
        with pytest.raises(ValueError):
            velocity_magnitude(np.zeros((4, 4, 4)))
        with pytest.raises(ValueError):
            curl(np.zeros((4, 4, 4, 2)))
        with pytest.raises(ValueError):
            gradient_magnitude(np.zeros((4, 4)))

    def test_normalize_scalar(self):
        vol = np.linspace(-5, 5, 27, dtype=np.float32).reshape(3, 3, 3)
        out = normalize_scalar(vol)
        assert out.min() == 0.0 and out.max() == 1.0
        assert normalize_scalar(np.full((2, 2, 2), 9.0)).max() == 0.0


class TestRenderableDerivedQuantities:
    def test_vorticity_renders(self):
        """End to end: vorticity magnitude of a real vector field through
        the renderer — the jet/vortex datasets' construction."""
        from repro.render import Camera, TransferFunction, render_volume

        field = abc_flow((20, 20, 20), t=0.0)
        scalar = normalize_scalar(vorticity_magnitude(field))
        img = render_volume(
            scalar, TransferFunction.vortex(), Camera(image_size=(24, 24))
        )
        assert img[..., 3].max() > 0.1
