"""Unit tests for the vectorized bit packer/unpacker."""

import numpy as np
import pytest

from repro.compress.bitio import (
    bits_to_bytes,
    pack_values,
    sliding_code_windows,
    unpack_bits,
)


class TestPackValues:
    def test_single_byte_msb_first(self):
        payload, nbits = pack_values(np.array([0b101]), np.array([3]))
        assert nbits == 3
        assert payload == bytes([0b10100000])

    def test_two_values_concatenate(self):
        payload, nbits = pack_values(np.array([0b1, 0b01]), np.array([1, 2]))
        assert nbits == 3
        assert payload == bytes([0b10100000])

    def test_crosses_byte_boundary(self):
        payload, nbits = pack_values(np.array([0xAB, 0xCD]), np.array([8, 8]))
        assert nbits == 16
        assert payload == bytes([0xAB, 0xCD])

    def test_zero_length_entries_contribute_nothing(self):
        payload, nbits = pack_values(np.array([7, 0, 3]), np.array([3, 0, 2]))
        assert nbits == 5
        assert payload == bytes([0b11111000])

    def test_empty_input(self):
        payload, nbits = pack_values(np.array([], dtype=np.uint64), np.array([], dtype=np.int64))
        assert payload == b""
        assert nbits == 0

    def test_all_zero_lengths(self):
        payload, nbits = pack_values(np.zeros(5), np.zeros(5))
        assert payload == b""
        assert nbits == 0

    def test_32_bit_value(self):
        v = 0xDEADBEEF
        payload, nbits = pack_values(np.array([v]), np.array([32]))
        assert nbits == 32
        assert payload == v.to_bytes(4, "big")

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            pack_values(np.array([1, 2]), np.array([3]))

    def test_rejects_over_wide_lengths(self):
        with pytest.raises(ValueError):
            pack_values(np.array([1]), np.array([33]))

    def test_rejects_negative_lengths(self):
        with pytest.raises(ValueError):
            pack_values(np.array([1]), np.array([-1]))

    def test_roundtrip_with_unpack(self):
        rng = np.random.default_rng(0)
        lengths = rng.integers(1, 17, 100)
        values = np.array(
            [rng.integers(0, 1 << l) for l in lengths], dtype=np.uint64
        )
        payload, nbits = pack_values(values, lengths)
        bits = unpack_bits(payload, nbits)
        pos = 0
        for v, l in zip(values, lengths):
            got = 0
            for k in range(l):
                got = (got << 1) | int(bits[pos + k])
            assert got == int(v)
            pos += l


class TestUnpackBits:
    def test_empty(self):
        assert unpack_bits(b"", 0).size == 0

    def test_exact_bits(self):
        bits = unpack_bits(bytes([0b10110000]), 4)
        assert bits.tolist() == [1, 0, 1, 1]

    def test_too_short_payload_raises(self):
        with pytest.raises(ValueError):
            unpack_bits(bytes([0xFF]), 9)


class TestSlidingWindows:
    def test_window_values(self):
        bits = np.array([1, 0, 1, 1], dtype=np.uint8)
        win = sliding_code_windows(bits, 2)
        assert win.tolist() == [0b10, 0b01, 0b11, 0b10]  # last is zero-padded

    def test_width_one_is_identity(self):
        bits = np.array([1, 0, 1], dtype=np.uint8)
        assert sliding_code_windows(bits, 1).tolist() == [1, 0, 1]

    def test_zero_padding_at_end(self):
        bits = np.array([1], dtype=np.uint8)
        win = sliding_code_windows(bits, 4)
        assert win.tolist() == [0b1000]

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            sliding_code_windows(np.array([1], dtype=np.uint8), 0)
        with pytest.raises(ValueError):
            sliding_code_windows(np.array([1], dtype=np.uint8), 33)


class TestBitsToBytes:
    def test_pads_to_byte(self):
        assert bits_to_bytes(np.array([1, 1, 1], dtype=np.uint8)) == bytes(
            [0b11100000]
        )
