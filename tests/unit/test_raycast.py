"""Unit tests for the ray-casting renderer."""

import numpy as np
import pytest

from repro.render import Camera, RayCaster, TransferFunction, render_volume
from repro.render.raycast import sample_trilinear


class TestTrilinear:
    def test_exact_at_grid_points(self):
        rng = np.random.default_rng(0)
        vol = rng.random((5, 6, 7)).astype(np.float32)
        coords = np.array([[0, 0, 0], [4, 5, 6], [2, 3, 1]], dtype=np.float64)
        vals = sample_trilinear(vol, coords)
        assert vals[0] == pytest.approx(vol[0, 0, 0])
        assert vals[1] == pytest.approx(vol[4, 5, 6], abs=1e-5)
        assert vals[2] == pytest.approx(vol[2, 3, 1])

    def test_midpoint_average(self):
        vol = np.zeros((2, 2, 2), dtype=np.float32)
        vol[1, :, :] = 1.0
        val = sample_trilinear(vol, np.array([[0.5, 0.5, 0.5]]))
        assert val[0] == pytest.approx(0.5)

    def test_clamping_outside(self):
        vol = np.arange(8, dtype=np.float32).reshape(2, 2, 2)
        vals = sample_trilinear(vol, np.array([[-5.0, -5.0, -5.0], [9.0, 9.0, 9.0]]))
        assert vals[0] == pytest.approx(vol[0, 0, 0])
        assert vals[1] == pytest.approx(vol[1, 1, 1], abs=1e-4)

    def test_linearity_along_axis(self):
        vol = np.zeros((3, 2, 2), dtype=np.float32)
        vol[2] = 2.0
        vol[1] = 1.0
        xs = np.linspace(0, 2, 9)
        coords = np.stack([xs, np.full(9, 0.0), np.full(9, 0.0)], axis=1)
        assert np.allclose(sample_trilinear(vol, coords), xs, atol=1e-5)


class TestRenderVolume:
    def make_blob(self, n=24):
        x, y, z = np.mgrid[0:n, 0:n, 0:n].astype(np.float32) / (n - 1)
        r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2
        return np.exp(-r2 / 0.02).astype(np.float32)

    def test_output_shape_and_range(self):
        img = render_volume(
            self.make_blob(),
            TransferFunction.grayscale(opacity=0.4),
            Camera(image_size=(32, 48)),
        )
        assert img.shape == (32, 48, 4)
        assert img.dtype == np.float32
        assert img.min() >= 0.0
        assert img[..., 3].max() <= 1.0

    def test_premultiplied_invariant(self):
        img = render_volume(
            self.make_blob(),
            TransferFunction.jet(),
            Camera(image_size=(32, 32)),
        )
        assert (img[..., :3] <= img[..., 3:4] + 1e-5).all()

    def test_empty_volume_transparent(self):
        vol = np.zeros((8, 8, 8), dtype=np.float32)
        img = render_volume(vol, TransferFunction.jet(), Camera(image_size=(16, 16)))
        assert img.max() == 0.0

    def test_blob_is_centered(self):
        img = render_volume(
            self.make_blob(),
            TransferFunction.grayscale(opacity=0.5),
            Camera(image_size=(33, 33)),
        )
        alpha = img[..., 3]
        cy, cx = np.unravel_index(np.argmax(alpha), alpha.shape)
        assert abs(cy - 16) <= 2 and abs(cx - 16) <= 2

    def test_view_independence_of_symmetric_blob(self):
        vol = self.make_blob()
        tf = TransferFunction.grayscale(opacity=0.4)
        totals = []
        for az in (0, 45, 90):
            img = render_volume(vol, tf, Camera(image_size=(32, 32), azimuth=az))
            totals.append(img[..., 3].sum())
        assert max(totals) / min(totals) < 1.15

    def test_subvolume_box_renders_into_correct_region(self):
        vol = self.make_blob(16)
        tf = TransferFunction.grayscale(opacity=0.5)
        cam = Camera(image_size=(32, 32))
        # left-half box only: image coverage shifts off-centre
        left = render_volume(vol, tf, cam, box=((0, 0, 0), (0.5, 1, 1)))
        full = render_volume(vol, tf, cam)
        assert 0 < left[..., 3].sum() < full[..., 3].sum()

    def test_early_termination_changes_little(self):
        vol = np.clip(self.make_blob() * 4, 0, 1)
        tf = TransferFunction.grayscale(opacity=0.9)
        cam = Camera(image_size=(24, 24))
        strict = render_volume(vol, tf, cam, early_termination=1.1)
        loose = render_volume(vol, tf, cam, early_termination=0.95)
        assert np.abs(strict - loose).max() < 0.06

    def test_smaller_step_converges(self):
        vol = self.make_blob()
        tf = TransferFunction.grayscale(opacity=0.4)
        cam = Camera(image_size=(16, 16))
        coarse = render_volume(vol, tf, cam, step=0.05)
        fine = render_volume(vol, tf, cam, step=0.01)
        finest = render_volume(vol, tf, cam, step=0.005)
        assert np.abs(fine - finest).mean() < np.abs(coarse - finest).mean()

    def test_validation(self):
        tf = TransferFunction.jet()
        cam = Camera(image_size=(8, 8))
        with pytest.raises(ValueError):
            render_volume(np.zeros((4, 4), dtype=np.float32), tf, cam)
        with pytest.raises(ValueError):
            render_volume(
                np.zeros((4, 4, 4), dtype=np.float32), tf, cam, step=-1.0
            )
        with pytest.raises(ValueError):
            render_volume(
                np.zeros((4, 4, 4), dtype=np.float32),
                tf,
                cam,
                box=((0, 0, 0), (0, 1, 1)),
            )

    def test_raycaster_wrapper(self, jet_volume, small_camera):
        rc = RayCaster(tf=TransferFunction.jet(), camera=small_camera)
        img = rc.render(jet_volume)
        ref = render_volume(jet_volume, rc.tf, rc.camera)
        assert np.array_equal(img, ref)
