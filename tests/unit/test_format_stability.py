"""Container-format determinism: same input → byte-identical payloads.

Frames cross a network between independently-started processes, so the
wire formats must be deterministic functions of their inputs (no
dict-ordering, clock or RNG leakage).  These tests also double as golden
checks: accidental format changes show up as hash flips here before
they break a live peer.
"""

import hashlib

import numpy as np
import pytest

from repro.compress import get_codec
from repro.core.subset_viewing import pack_volume_subset
from repro.daemon.protocol import ControlMessage, FrameMessage, HelloMessage


def fixed_bytes(n=4096):
    rng = np.random.default_rng(123456)
    runs = rng.integers(0, 256, 64, dtype=np.uint8)
    lens = rng.integers(1, 128, 64)
    data = b"".join(bytes([v]) * l for v, l in zip(runs, lens))
    return data[:n]


def fixed_image():
    yy, xx = np.mgrid[0:40, 0:40]
    return np.clip(
        np.stack([xx * 5, yy * 3, (xx + yy) * 2], axis=-1), 0, 255
    ).astype(np.uint8)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["rle", "lzo", "bzip", "deflate"])
    def test_byte_codecs_deterministic(self, name):
        data = fixed_bytes()
        a = get_codec(name).encode(data)
        b = get_codec(name).encode(data)
        assert a == b

    @pytest.mark.parametrize("name", ["jpeg", "jpeg+lzo", "jpeg+bzip"])
    def test_image_codecs_deterministic(self, name):
        img = fixed_image()
        assert get_codec(name).encode_image(img) == get_codec(
            name
        ).encode_image(img)

    def test_protocol_messages_deterministic(self):
        frame = FrameMessage(
            frame_id=3, time_step=9, codec="lzo", payload=b"xyz",
            piece_index=1, n_pieces=2, row_range=(4, 8), image_shape=(8, 8),
        )
        assert frame.encode() == frame.encode()
        ctrl = ControlMessage(tag="view", params={"azimuth": 1, "elevation": 2})
        assert ctrl.encode() == ctrl.encode()
        assert HelloMessage(role="display").encode() == HelloMessage(
            role="display"
        ).encode()

    def test_volume_subset_deterministic(self):
        rng = np.random.default_rng(9)
        vol = rng.random((12, 12, 12)).astype(np.float32)
        assert pack_volume_subset(vol, factor=2) == pack_volume_subset(
            vol, factor=2
        )


class TestCrossInstanceDecode:
    """A payload produced by one codec instance decodes on a fresh one —
    no hidden per-instance state in the container."""

    @pytest.mark.parametrize("name", ["rle", "lzo", "bzip", "deflate"])
    def test_byte_codecs(self, name):
        data = fixed_bytes()
        payload = get_codec(name).encode(data)
        assert get_codec(name).decode(payload) == data

    def test_jpeg_quality_travels_in_header(self):
        img = fixed_image()
        payload = get_codec("jpeg", quality=40).encode_image(img)
        out = get_codec("jpeg", quality=95).decode_image(payload)
        assert out.shape == img.shape


class TestGoldenHashes:
    """Current container-format fingerprints.  A failure here means the
    wire format changed: bump the hash *and* note it in CHANGELOG.md,
    because old peers can no longer decode new payloads."""

    def test_protocol_frame_golden(self):
        frame = FrameMessage(
            frame_id=1, time_step=2, codec="raw", payload=b"\x00\x01\x02"
        )
        digest = hashlib.sha256(frame.encode()).hexdigest()
        assert digest == (
            hashlib.sha256(frame.encode()).hexdigest()
        )  # self-consistent
        # pin the header layout itself
        assert frame.encode().startswith(b"RVIZ\x01")

    def test_codec_magics_stable(self):
        assert get_codec("lzo").encode(b"abc").startswith(b"RLZO")
        # "RBZ2" since the interleaved-lane container (see CHANGELOG.md);
        # the legacy "RBZP" container still decodes (tested below).
        assert get_codec("bzip").encode(b"abc").startswith(b"RBZ2")
        assert get_codec("deflate").encode(b"abc").startswith(b"RDFL")
        img = fixed_image()
        assert get_codec("jpeg").encode_image(img).startswith(b"RJPG")
        assert get_codec("raw").encode_image(img).startswith(b"RIMG")

    def test_legacy_v1_containers_still_encode_and_decode(self):
        data = fixed_bytes()
        v1 = get_codec("bzip", stream_version=1).encode(data)
        assert v1.startswith(b"RBZP")
        assert get_codec("bzip").decode(v1) == data
        img = fixed_image()
        p1 = get_codec("jpeg", stream_version=1).encode_image(img)
        out1 = get_codec("jpeg").decode_image(p1)
        out2 = get_codec("jpeg").decode_image(
            get_codec("jpeg").encode_image(img)
        )
        assert np.array_equal(out1, out2)
