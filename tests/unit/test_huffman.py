"""Unit tests for canonical Huffman coding."""

import numpy as np
import pytest

from repro.compress.base import CodecError
from repro.compress.huffman import (
    MAX_BITS,
    HuffmanCode,
    build_code,
    decode_symbols,
    encode_symbols,
)


def roundtrip(symbols, alphabet):
    symbols = np.asarray(symbols)
    freqs = np.bincount(symbols, minlength=alphabet)
    code = build_code(freqs)
    payload, nbits = encode_symbols(symbols, code)
    out = decode_symbols(payload, nbits, symbols.size, code)
    return out, code


class TestBuildCode:
    def test_two_symbols_get_one_bit(self):
        code = build_code(np.array([5, 3]))
        assert sorted(code.lengths.tolist()) == [1, 1]

    def test_single_symbol_gets_length_one(self):
        code = build_code(np.array([0, 9, 0]))
        assert code.lengths[1] == 1
        assert code.lengths[0] == 0 and code.lengths[2] == 0

    def test_empty_frequencies(self):
        code = build_code(np.zeros(4, dtype=int))
        assert code.lengths.max(initial=0) == 0

    def test_skewed_frequencies_give_short_code_to_common(self):
        freqs = np.array([1000, 10, 10, 10, 1])
        code = build_code(freqs)
        assert code.lengths[0] == code.lengths.min() or code.lengths[0] == 1
        assert code.lengths[4] == code.lengths[code.lengths > 0].max()

    def test_kraft_inequality_holds(self):
        rng = np.random.default_rng(3)
        freqs = rng.integers(0, 100, 64)
        code = build_code(freqs)
        used = code.lengths[code.lengths > 0].astype(int)
        assert sum(2.0 ** -l for l in used) <= 1.0 + 1e-12

    def test_length_limit_enforced(self):
        # Fibonacci-like frequencies force deep trees without limiting.
        n = 40
        freqs = np.ones(n, dtype=np.int64)
        a, b = 1, 2
        for i in range(n):
            freqs[i] = a
            a, b = b, a + b
        code = build_code(freqs)
        assert code.max_length <= MAX_BITS

    def test_rejects_2d_frequencies(self):
        with pytest.raises(ValueError):
            build_code(np.ones((2, 2)))

    def test_canonical_codes_are_prefix_free(self):
        freqs = np.array([50, 30, 10, 5, 3, 2])
        code = build_code(freqs)
        words = [
            format(int(code.codes[s]), f"0{int(code.lengths[s])}b")
            for s in range(6)
            if code.lengths[s]
        ]
        for i, w1 in enumerate(words):
            for j, w2 in enumerate(words):
                if i != j:
                    assert not w2.startswith(w1)


class TestSerialization:
    def test_roundtrip_table(self):
        code = build_code(np.array([10, 0, 5, 1]))
        blob = code.to_bytes()
        restored, offset = HuffmanCode.from_bytes(blob)
        assert offset == len(blob)
        assert np.array_equal(restored.lengths, code.lengths)
        assert np.array_equal(restored.codes, code.codes)

    def test_from_bytes_with_offset(self):
        code = build_code(np.array([4, 4]))
        blob = b"xyz" + code.to_bytes() + b"rest"
        restored, offset = HuffmanCode.from_bytes(blob, 3)
        assert np.array_equal(restored.lengths, code.lengths)
        assert blob[offset:] == b"rest"

    def test_truncated_header_raises(self):
        with pytest.raises(CodecError):
            HuffmanCode.from_bytes(b"\x01\x02")

    def test_truncated_body_raises(self):
        code = build_code(np.array([4, 4]))
        blob = code.to_bytes()
        with pytest.raises(CodecError):
            HuffmanCode.from_bytes(blob[:-2])


class TestEncodeDecode:
    def test_roundtrip_uniform(self):
        rng = np.random.default_rng(7)
        syms = rng.integers(0, 16, 500)
        out, _ = roundtrip(syms, 16)
        assert np.array_equal(out, syms)

    def test_roundtrip_skewed(self):
        rng = np.random.default_rng(8)
        syms = rng.choice([0, 1, 2, 255], size=1000, p=[0.7, 0.2, 0.09, 0.01])
        out, code = roundtrip(syms, 256)
        assert np.array_equal(out, syms)
        assert code.lengths[0] < code.lengths[255]

    def test_roundtrip_single_symbol_stream(self):
        syms = np.full(100, 3)
        out, _ = roundtrip(syms, 8)
        assert np.array_equal(out, syms)

    def test_decode_zero_count(self):
        code = build_code(np.array([1, 1]))
        assert decode_symbols(b"", 0, 0, code).size == 0

    def test_encode_rejects_uncoded_symbol(self):
        code = build_code(np.array([5, 5, 0]))
        with pytest.raises(ValueError):
            encode_symbols(np.array([2]), code)

    def test_encode_rejects_out_of_range(self):
        code = build_code(np.array([5, 5]))
        with pytest.raises(ValueError):
            encode_symbols(np.array([9]), code)

    def test_decode_exhausted_stream_raises(self):
        code = build_code(np.array([5, 5]))
        payload, nbits = encode_symbols(np.array([0, 1]), code)
        with pytest.raises(CodecError):
            decode_symbols(payload, nbits, 100, code)

    def test_compression_beats_raw_on_skewed_data(self):
        rng = np.random.default_rng(9)
        syms = rng.choice(4, size=4000, p=[0.85, 0.1, 0.04, 0.01])
        freqs = np.bincount(syms, minlength=4)
        code = build_code(freqs)
        payload, _ = encode_symbols(syms, code)
        assert len(payload) < 4000 / 4  # far below 8 bits/symbol
