"""Unit tests for WAN fault injection and the transport resilience layer.

Fault plans are seeded and deterministic: the same plan over the same
operation sequence must yield the identical delivery trace, so failure
scenarios are reproducible fixtures, never flaky luck.
"""

import time

import pytest

from repro.net.faults import (
    FaultInjector,
    FaultPlan,
    FaultyChannel,
    FaultyConnection,
)
from repro.net.transport import (
    Channel,
    ChannelClosed,
    FramedConnection,
    RetryPolicy,
    TransientNetworkError,
)


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(loss_ratio=1.0)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_ratio=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(latency_s=-1)
        with pytest.raises(ValueError):
            FaultPlan(bandwidth_Bps=0)
        with pytest.raises(ValueError):
            FaultPlan(disconnect_after=-1)
        with pytest.raises(ValueError):
            FaultPlan(delay_on="middle")

    def test_reconnected_plan_drops_disconnect(self):
        plan = FaultPlan(seed=3, loss_ratio=0.1, disconnect_after=5)
        again = plan.reconnected()
        assert again.disconnect_after is None
        assert again.loss_ratio == plan.loss_ratio
        assert again.seed != plan.seed


class TestDeterminism:
    def _trace(self, seed):
        injector = FaultInjector(
            FaultPlan(seed=seed, loss_ratio=0.3, corrupt_ratio=0.1)
        )
        return tuple(injector.send_verdict(i) for i in range(200))

    def test_same_seed_same_trace(self):
        assert self._trace(42) == self._trace(42)

    def test_different_seed_different_trace(self):
        assert self._trace(42) != self._trace(43)

    def test_connection_trace_reproducible(self):
        """The full send path (retries included) replays identically."""

        def run():
            plan = FaultPlan(seed=9, loss_ratio=0.25)
            a, b = FaultyConnection.pair(
                plan, retry=RetryPolicy(max_attempts=8, backoff_s=0.0)
            )
            for i in range(50):
                a.send(bytes([i]) * 8)
            got = [b.recv(timeout=1.0) for _ in range(50)]
            return a.delivery_trace(), got

        trace1, got1 = run()
        trace2, got2 = run()
        assert trace1 == trace2
        assert got1 == got2
        assert any(event == "lost" for event, _ in trace1)


class TestLossAndRetry:
    def test_lossy_link_delivers_via_retransmit(self):
        plan = FaultPlan(seed=1, loss_ratio=0.3)
        a, b = FaultyConnection.pair(
            plan, retry=RetryPolicy(max_attempts=10, backoff_s=0.0)
        )
        for i in range(40):
            a.send(f"frame{i}".encode())
        frames = [b.recv(timeout=1.0) for _ in range(40)]
        assert frames == [f"frame{i}".encode() for i in range(40)]
        assert a.traffic.retransmits > 0
        assert a.injector.lost == a.traffic.retransmits

    def test_retry_exhaustion_raises_channel_closed(self):
        # seed 0 loses the first three attempts at 90% loss, so a
        # 3-attempt policy deterministically gives up
        plan = FaultPlan(seed=0, loss_ratio=0.9)
        a, _b = FaultyConnection.pair(
            plan, retry=RetryPolicy(max_attempts=3, backoff_s=0.0)
        )
        with pytest.raises(ChannelClosed):
            a.send(b"doomed")
        assert a.traffic.retransmits == 2

    def test_retry_policy_validation_and_backoff(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        policy = RetryPolicy(backoff_s=0.01, multiplier=2.0, max_backoff_s=0.05)
        assert policy.delay_before(1) == pytest.approx(0.01)
        assert policy.delay_before(2) == pytest.approx(0.02)
        assert policy.delay_before(10) == pytest.approx(0.05)  # capped
        assert RetryPolicy.none().max_attempts == 1


class TestCorruption:
    def test_corruption_flips_exactly_one_byte(self):
        plan = FaultPlan(seed=2, corrupt_ratio=0.99)
        a, b = FaultyConnection.pair(plan)
        original = bytes(range(200))
        a.send(original)
        got = b.recv(timeout=1.0)
        assert len(got) == len(original)
        diffs = [i for i, (x, y) in enumerate(zip(original, got)) if x != y]
        assert len(diffs) == 1
        assert a.injector.corrupted == 1


class TestDisconnect:
    def test_disconnect_after_n_frames_cuts_both_directions(self):
        plan = FaultPlan(seed=0, disconnect_after=3)
        a, b = FaultyConnection.pair(plan)
        for i in range(3):
            a.send(bytes([i]))
        with pytest.raises(ChannelClosed):
            a.send(b"cut")
        # delivered frames are still readable, then the cut surfaces
        for i in range(3):
            assert b.recv(timeout=1.0) == bytes([i])
        with pytest.raises(ChannelClosed):
            b.recv(timeout=1.0)
        with pytest.raises(ChannelClosed):
            a.send(b"still down")


class TestDelays:
    def test_recv_side_latency_applied(self):
        plan = FaultPlan(seed=0, latency_s=0.05)
        a, b = FaultyConnection.pair(plan)
        # a is the fault-wrapped side: its sends are not delayed
        # (delay_on="recv"), its recvs are.
        t0 = time.perf_counter()
        a.send(b"payload")
        send_elapsed = time.perf_counter() - t0
        assert send_elapsed < 0.04
        assert b.recv(timeout=1.0) == b"payload"
        b.send(b"reply")
        t0 = time.perf_counter()
        assert a.recv(timeout=1.0) == b"reply"
        assert time.perf_counter() - t0 >= 0.04

    def test_bandwidth_cap_scales_with_size(self):
        plan = FaultPlan(seed=0, bandwidth_Bps=100_000, delay_on="send")
        a, b = FaultyConnection.pair(plan)
        t0 = time.perf_counter()
        a.send(b"x" * 10_000)  # 0.1 s at 100 kB/s
        elapsed = time.perf_counter() - t0
        assert elapsed >= 0.08
        assert b.recv(timeout=1.0) == b"x" * 10_000


class TestFaultyChannel:
    def test_loss_surfaces_as_transient_error(self):
        # seed 0 at 90% loss: first send attempt is lost
        ch = FaultyChannel(Channel(), FaultPlan(seed=0, loss_ratio=0.9))
        with pytest.raises(TransientNetworkError):
            ch.send(b"gone")

    def test_disconnect_closes_inner_channel(self):
        inner = Channel()
        ch = FaultyChannel(inner, FaultPlan(seed=0, disconnect_after=0))
        with pytest.raises(ChannelClosed):
            ch.send(b"never")
        assert inner.closed
        assert ch.closed

    def test_clean_channel_roundtrip(self):
        ch = FaultyChannel(Channel(), FaultPlan(seed=0))
        ch.send(b"ok")
        assert ch.recv(timeout=1.0) == b"ok"
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.recv(timeout=1.0)


class TestTransportResilience:
    def test_channel_send_timeout_on_full_pipe(self):
        ch = Channel(maxsize=1)
        ch.send(b"fill")
        with pytest.raises(TimeoutError):
            ch.send(b"blocked", timeout=0.05)

    def test_op_timeout_default_applies_to_recv(self):
        a, b = FramedConnection.pair()
        b.op_timeout = 0.05
        with pytest.raises(TimeoutError):
            b.recv()

    def test_explicit_timeout_overrides_op_timeout(self):
        a, b = FramedConnection.pair()
        b.op_timeout = 10.0
        with pytest.raises(TimeoutError):
            b.recv(timeout=0.05)
