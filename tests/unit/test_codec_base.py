"""Unit tests for the codec registry, base image interface, and metrics."""

import numpy as np
import pytest

from repro.compress import (
    CodecError,
    available_codecs,
    compression_ratio,
    get_codec,
    percent_reduction,
    psnr,
)


class TestRegistry:
    def test_paper_codecs_registered(self):
        names = available_codecs()
        for required in ("raw", "lzo", "bzip", "jpeg", "jpeg+lzo", "jpeg+bzip"):
            assert required in names

    def test_case_insensitive(self):
        assert get_codec("LZO").name == "lzo"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            get_codec("gzip")

    def test_kwargs_forwarded(self):
        c = get_codec("jpeg", quality=30)
        assert c.quality == 30

    def test_two_phase_kwargs(self):
        c = get_codec("jpeg+lzo", quality=42)
        assert c.first.quality == 42
        assert c.name == "jpeg+lzo"

    def test_fresh_instances(self):
        assert get_codec("lzo") is not get_codec("lzo")


class TestRawCodec:
    def test_identity(self):
        raw = get_codec("raw")
        data = b"untouched bytes"
        assert raw.encode(data) == data
        assert raw.decode(data) == data
        assert raw.lossless


class TestImageInterface:
    @pytest.mark.parametrize("name", ["raw", "rle", "lzo", "bzip"])
    def test_roundtrip_color(self, name, gradient_image):
        c = get_codec(name)
        out = c.decode_image(c.encode_image(gradient_image))
        assert np.array_equal(out, gradient_image)

    @pytest.mark.parametrize("name", ["raw", "lzo"])
    def test_roundtrip_grayscale(self, name):
        img = (np.arange(64).reshape(8, 8) * 3 % 256).astype(np.uint8)
        c = get_codec(name)
        out = c.decode_image(c.encode_image(img))
        assert np.array_equal(out, img)
        assert out.ndim == 2

    def test_rejects_float(self):
        with pytest.raises(CodecError):
            get_codec("raw").encode_image(np.zeros((4, 4, 3)))

    def test_rejects_bad_magic(self):
        with pytest.raises(CodecError):
            get_codec("raw").decode_image(b"nope" + bytes(20))

    def test_rejects_size_mismatch(self, gradient_image):
        raw = get_codec("raw")
        payload = bytearray(raw.encode_image(gradient_image))
        del payload[-5:]
        with pytest.raises(CodecError):
            raw.decode_image(bytes(payload))


class TestMetrics:
    def test_compression_ratio(self):
        assert compression_ratio(1000, 100) == 10.0

    def test_ratio_rejects_zero(self):
        with pytest.raises(ValueError):
            compression_ratio(10, 0)

    def test_percent_reduction_96(self):
        # the paper: "compression rates we have achieved are 96% and up"
        assert percent_reduction(196608, 2667) > 96.0

    def test_percent_reduction_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percent_reduction(0, 5)

    def test_psnr_identical_is_inf(self):
        img = np.zeros((4, 4))
        assert psnr(img, img) == float("inf")

    def test_psnr_known_value(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 16.0)
        # MSE = 256 -> PSNR = 10 log10(255^2/256) = 24.05
        assert psnr(a, b) == pytest.approx(24.05, abs=0.01)

    def test_psnr_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.zeros((3, 3)))
