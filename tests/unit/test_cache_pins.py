"""FrameCache pinning: refcounts, eviction exemption, speculative fills.

The relay tier shares one store between in-flight deliveries and a
speculative prefetcher, so the cache grew a pin API: a pinned entry is
never evicted (a frame mid-send cannot vanish under the sender), and a
speculative fill that could only fit by displacing pinned entries is
rejected instead.  The stress tests drive concurrent fill/evict/pin
traffic under the runtime lock tracer, asserting the invariants a racy
interleaving would break.
"""

import threading

import pytest

from repro.devtools.locktrace import checked
from repro.serve.cache import FrameCache

KB = 1024


def k(i: int) -> tuple:
    return (i, "rle", None)


class TestPinSemantics:
    def test_pin_exempts_from_eviction(self):
        cache = FrameCache(max_bytes=4 * KB)
        cache.put(k(0), b"a" * KB)
        assert cache.pin(k(0))
        # flood far past the budget: everything else churns out, the
        # pinned entry stays
        for i in range(1, 32):
            cache.put(k(i), b"b" * KB)
        assert k(0) in cache
        assert cache.get(k(0)) == b"a" * KB
        cache.unpin(k(0))
        for i in range(32, 64):
            cache.put(k(i), b"c" * KB)
        assert k(0) not in cache  # evictable again once unpinned

    def test_pin_is_a_refcount(self):
        cache = FrameCache(max_bytes=4 * KB)
        cache.put(k(0), b"a" * KB)
        assert cache.pin(k(0))
        assert cache.pin(k(0))
        assert cache.pin_count(k(0)) == 2
        cache.unpin(k(0))
        assert cache.pin_count(k(0)) == 1
        for i in range(1, 16):
            cache.put(k(i), b"b" * KB)
        assert k(0) in cache  # one pin is enough
        cache.unpin(k(0))
        assert cache.pin_count(k(0)) == 0

    def test_pin_missing_key_returns_false(self):
        cache = FrameCache(max_bytes=KB)
        assert not cache.pin(k(99))
        assert cache.pin_count(k(99)) == 0

    def test_unbalanced_unpin_raises(self):
        cache = FrameCache(max_bytes=KB)
        cache.put(k(0), b"x")
        with pytest.raises(ValueError):
            cache.unpin(k(0))
        cache.pin(k(0))
        cache.unpin(k(0))
        with pytest.raises(ValueError):
            cache.unpin(k(0))

    def test_get_pinned_is_atomic_lookup_and_pin(self):
        cache = FrameCache(max_bytes=4 * KB)
        cache.put(k(0), b"a" * KB)
        before = cache.stats_snapshot()
        assert cache.get_pinned(k(0)) == b"a" * KB
        assert cache.pin_count(k(0)) == 1
        assert cache.get_pinned(k(1)) is None  # miss: no pin taken
        assert cache.pin_count(k(1)) == 0
        after = cache.stats_snapshot()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses + 1
        cache.unpin(k(0))

    def test_non_speculative_put_overshoots_when_all_pinned(self):
        cache = FrameCache(max_bytes=2 * KB)
        cache.put(k(0), b"a" * KB)
        cache.put(k(1), b"b" * KB)
        cache.pin(k(0))
        cache.pin(k(1))
        # delivery correctness beats the budget: the fill lands anyway
        assert cache.put(k(2), b"c" * KB)
        assert k(2) in cache
        snap = cache.stats_snapshot()
        assert snap.current_bytes == 3 * KB > snap.max_bytes

    def test_speculative_put_rejected_when_unpayable(self):
        cache = FrameCache(max_bytes=2 * KB)
        cache.put(k(0), b"a" * KB)
        cache.put(k(1), b"b" * KB)
        cache.pin(k(0))
        cache.pin(k(1))
        assert not cache.put(k(2), b"c" * KB, speculative=True)
        assert k(2) not in cache
        snap = cache.stats_snapshot()
        assert snap.speculative_rejects == 1
        assert snap.current_bytes == 2 * KB  # rolled back, not overshot

    def test_speculative_put_admitted_by_evicting_unpinned(self):
        cache = FrameCache(max_bytes=2 * KB)
        cache.put(k(0), b"a" * KB)
        cache.put(k(1), b"b" * KB)
        cache.pin(k(0))
        assert cache.put(k(2), b"c" * KB, speculative=True)
        assert k(2) in cache
        assert k(0) in cache  # pinned survivor
        assert k(1) not in cache  # the unpinned victim paid for it

    def test_rejected_speculative_refill_restores_old_payload(self):
        cache = FrameCache(max_bytes=2 * KB)
        cache.put(k(0), b"old" * 128)  # 384 B, unpinned
        cache.put(k(1), b"b" * KB)
        cache.pin(k(1))
        # a bigger speculative refill of k(0) cannot be paid for (the
        # only other entry is pinned): rejected, old payload restored
        assert not cache.put(k(0), b"new" * 512, speculative=True)
        assert cache.get(k(0)) == b"old" * 128
        snap = cache.stats_snapshot()
        assert snap.speculative_rejects == 1
        assert snap.current_bytes == 384 + KB

    def test_stats_snapshot_reports_pins(self):
        cache = FrameCache(max_bytes=8 * KB)
        cache.put(k(0), b"a" * KB)
        cache.put(k(1), b"b" * (2 * KB))
        cache.pin(k(0))
        cache.pin(k(1))
        cache.pin(k(1))
        snap = cache.stats_snapshot()
        assert snap.pinned_entries == 2
        assert snap.pinned_bytes == 3 * KB
        cache.unpin(k(0))
        cache.unpin(k(1))
        cache.unpin(k(1))
        assert cache.stats_snapshot().pinned_entries == 0

    def test_clear_drops_pins(self):
        cache = FrameCache(max_bytes=8 * KB)
        cache.put(k(0), b"a")
        cache.pin(k(0))
        cache.clear()
        assert cache.pin_count(k(0)) == 0
        with pytest.raises(ValueError):
            cache.unpin(k(0))


class TestPinStress:
    """Concurrent fill/evict/pin traffic under the lock tracer."""

    def test_pinned_entries_survive_concurrent_eviction_pressure(self):
        cache = FrameCache(max_bytes=16 * KB)
        payload = b"p" * KB
        stop = threading.Event()
        start = threading.Barrier(7)
        failures: list[str] = []

        def pinner(rank: int):
            # each pinner owns one key: pin it, verify it stays
            # resident while pinned, unpin, repeat
            key = k(1000 + rank)
            start.wait()
            for _ in range(300):
                cache.put(key, payload)
                if not cache.pin(key):
                    continue  # evicted between put and pin: legal
                got = cache.get_pinned(key)
                if got is None:
                    failures.append(f"pinned {key} evicted")
                    cache.unpin(key)
                    break
                cache.unpin(key)  # the explicit pin
                cache.unpin(key)  # the get_pinned pin
            stop.set()

        def filler(rank: int):
            # churn the keyspace well past the budget the whole time
            start.wait()
            i = 0
            while not stop.is_set():
                cache.put(k(rank * 100000 + i), payload)
                i += 1

        def prefetcher(rank: int):
            start.wait()
            i = 0
            while not stop.is_set():
                cache.put(k(-(rank * 100000 + i) - 1), payload,
                          speculative=True)
                i += 1

        with checked(patch_channel=False):
            threads = (
                [threading.Thread(target=pinner, args=(r,)) for r in range(2)]
                + [threading.Thread(target=filler, args=(r,)) for r in range(2)]
                + [threading.Thread(target=prefetcher, args=(r,)) for r in range(2)]
            )
            for t in threads:
                t.start()
            start.wait()
            for t in threads:
                t.join(timeout=30)
        assert not failures, failures
        assert cache.stats_snapshot().pinned_entries == 0

    def test_budget_respected_modulo_pins_under_contention(self):
        cache = FrameCache(max_bytes=8 * KB)
        payload = b"q" * KB
        start = threading.Barrier(4)

        def worker(rank: int):
            start.wait()
            for i in range(500):
                key = k(rank * 100000 + i)
                cache.put(key, payload, speculative=(i % 3 == 0))
                if cache.pin(key):
                    cache.unpin(key)

        with checked(patch_channel=False):
            threads = [
                threading.Thread(target=worker, args=(r,)) for r in range(3)
            ]
            for t in threads:
                t.start()
            start.wait()
            for t in threads:
                t.join(timeout=30)
        snap = cache.stats_snapshot()
        # nothing is pinned at rest, so the budget must hold exactly
        assert snap.pinned_entries == 0
        assert snap.current_bytes <= snap.max_bytes
        assert snap.current_bytes == sum(
            len(cache.get(key) or b"")
            for key in list(cache._entries)
        )
