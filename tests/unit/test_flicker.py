"""Unit tests for the temporal-stability (flicker) analyzer."""

import numpy as np
import pytest

from repro.compress import get_codec
from repro.compress.flicker import FlickerReport, measure_flicker


def make_animation(n=3, size=48, move=True):
    frames = []
    for k in range(n):
        yy, xx = np.mgrid[0:size, 0:size].astype(np.float32)
        img = np.clip(
            np.stack(
                [120 + 90 * np.sin(xx / 7), yy * 2, (xx + yy) % 256], axis=-1
            ),
            0,
            255,
        ).astype(np.uint8)
        if move:
            img[10 + 3 * k : 18 + 3 * k, 5:13] = 255
        frames.append(img)
    return frames


class TestMeasureFlicker:
    def test_lossless_codec_has_zero_flicker(self):
        rep = measure_flicker(make_animation(), get_codec("lzo"))
        assert rep.excess_temporal_rms == 0.0
        assert rep.static_region_rms == 0.0
        assert rep.psnr_std == 0.0
        assert not rep.visible

    def test_lossy_codec_has_some_flicker(self):
        rep = measure_flicker(make_animation(), get_codec("jpeg", quality=50))
        assert rep.excess_temporal_rms > 0.0

    def test_lower_quality_more_flicker(self):
        frames = make_animation()
        hi = measure_flicker(frames, get_codec("jpeg", quality=90))
        lo = measure_flicker(frames, get_codec("jpeg", quality=15))
        assert lo.static_region_rms > hi.static_region_rms

    def test_static_scene_flicker_is_zero_even_for_lossy(self):
        """Identical frames decode identically: deterministic codecs add
        constant loss, not temporal noise."""
        frames = make_animation(move=False)
        rep = measure_flicker(frames, get_codec("jpeg", quality=40))
        assert rep.excess_temporal_rms == pytest.approx(0.0, abs=1e-9)

    def test_frame_count_recorded(self):
        rep = measure_flicker(make_animation(n=5), get_codec("lzo"))
        assert rep.n_frames == 5

    def test_needs_two_frames(self):
        with pytest.raises(ValueError):
            measure_flicker(make_animation(n=1), get_codec("lzo"))

    def test_report_visibility_threshold(self):
        quiet = FlickerReport(0.1, 0.5, 0.0, 2)
        loud = FlickerReport(3.0, 1.5, 0.2, 2)
        assert not quiet.visible
        assert loud.visible
