"""The lint pass is itself under test: every rule is pinned to a
fixture file that violates it exactly once, the pragma escape hatch is
exercised, and HEAD of ``src/``+``tests/`` is asserted clean."""

from pathlib import Path

import pytest

from repro.devtools.lint import (
    RULES,
    Finding,
    lint_paths,
    lint_source,
    main as lint_main,
)

pytestmark = pytest.mark.lint

FIXTURES = Path(__file__).parent.parent / "lint_fixtures"
REPO = Path(__file__).parent.parent.parent

#: fixture file -> (rule id, line of the single expected violation)
EXPECTED = {
    "dt101_broad_except.py": ("DT101", 7),
    "dt201_sleep_poll.py": ("DT201", 9),
    "dt301_thread_leak.py": ("DT301", 7),
    "dt401_wallclock.py": ("DT401", 12),
    "dt501_membership.py": ("DT501", 6),
    "dt501_unknown_tag.py": ("DT501", 7),
    "dt502_kind_chain.py": ("DT502", 6),
    "dt502_no_else.py": ("DT502", 5),
    "dt601_mutable_default.py": ("DT601", 4),
}


def _lint_fixture(name):
    path = FIXTURES / name
    # DT401 is path-scoped; the fixture forces it on explicitly
    deterministic = True if name.startswith("dt401") else None
    return lint_source(path.read_text(), str(path),
                       deterministic=deterministic)


class TestRuleCorpus:
    @pytest.mark.parametrize("name,expected", sorted(EXPECTED.items()),
                             ids=sorted(EXPECTED))
    def test_fixture_violates_exactly_its_rule(self, name, expected):
        rule, line = expected
        findings = _lint_fixture(name)
        assert [(f.rule, f.line) for f in findings] == [(rule, line)], (
            f"{name}: expected exactly one {rule} at line {line}, "
            f"got {findings}"
        )

    def test_corpus_covers_every_rule(self):
        assert {rule for rule, _ in EXPECTED.values()} == set(RULES)

    def test_finding_renders_path_line_rule(self):
        f = Finding(path="a/b.py", line=12, rule="DT101", message="m")
        assert str(f) == "a/b.py:12: DT101 m"


class TestPragma:
    def test_disable_pragma_silences_the_line(self):
        findings = _lint_fixture("pragma_disable.py")
        assert findings == []

    def test_pragma_is_line_scoped(self):
        src = (
            "import time\n"
            "def f(flag):\n"
            "    while flag():\n"
            "        time.sleep(0.01)  # lint: disable=DT201\n"
            "    while flag():\n"
            "        time.sleep(0.01)\n"
        )
        findings = lint_source(src)
        assert [(f.rule, f.line) for f in findings] == [("DT201", 6)]

    def test_disabling_one_rule_keeps_others(self):
        src = "def f(acc=[]):  # lint: disable=DT101\n    return acc\n"
        assert [f.rule for f in lint_source(src)] == ["DT601"]


class TestTreeIsClean:
    def test_src_and_tests_lint_clean_at_head(self):
        findings = lint_paths([REPO / "src", REPO / "tests"])
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_fixture_corpus_is_excluded_from_tree_lint(self):
        findings = lint_paths([FIXTURES.parent])
        assert not any("lint_fixtures" in f.path for f in findings)


class TestCli:
    def test_exit_nonzero_on_violation(self, capsys):
        # lint the fixture file directly: exclusion only applies to dirs
        rc = lint_main([str(FIXTURES / "dt601_mutable_default.py")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "DT601" in out
        assert "1 finding(s)" in out

    def test_exit_zero_on_clean_tree(self, capsys):
        rc = lint_main([str(REPO / "src" / "repro" / "devtools")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 findings" in out

    def test_list_rules(self, capsys):
        rc = lint_main(["--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rule_id in RULES:
            assert rule_id in out

    def test_repro_cli_has_lint_subcommand(self, capsys):
        from repro.cli import main as repro_main

        rc = repro_main(["lint", str(REPO / "src" / "repro" / "devtools")])
        assert rc == 0
        assert "0 findings" in capsys.readouterr().out


class TestRegistryRules:
    def test_registered_tag_is_clean(self):
        src = (
            "def handle(msg):\n"
            "    if msg.tag == 'view':\n"
            "        return 1\n"
            "    else:\n"
            "        return 0\n"
        )
        assert lint_source(src) == []

    def test_unknown_tag_names_the_registry(self):
        src = (
            "def handle(msg):\n"
            "    if msg.tag == 'warp_drive':\n"
            "        return 1\n"
            "    else:\n"
            "        return 0\n"
        )
        findings = lint_source(src)
        assert [f.rule for f in findings] == ["DT501"]
        assert "warp_drive" in findings[0].message
