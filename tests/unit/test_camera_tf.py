"""Unit tests for the camera and transfer functions."""

import numpy as np
import pytest

from repro.render import Camera, TransferFunction


class TestCamera:
    def test_view_direction_is_unit(self):
        for az, el in [(0, 0), (45, 30), (180, -60), (270, 89)]:
            cam = Camera(azimuth=az, elevation=el)
            assert np.linalg.norm(cam.view_direction) == pytest.approx(1.0)

    def test_basis_orthonormal(self):
        cam = Camera(azimuth=33, elevation=21)
        right, up, fwd = cam.basis()
        for v in (right, up, fwd):
            assert np.linalg.norm(v) == pytest.approx(1.0)
        assert abs(right @ up) < 1e-12
        assert abs(right @ fwd) < 1e-12
        assert abs(up @ fwd) < 1e-12

    def test_straight_down_view_does_not_degenerate(self):
        cam = Camera(azimuth=0, elevation=90)
        right, up, fwd = cam.basis()
        assert np.isfinite(right).all() and np.linalg.norm(right) > 0.9

    def test_rays_shape_and_direction(self):
        cam = Camera(image_size=(16, 24))
        origins, direction = cam.rays()
        assert origins.shape == (16 * 24, 3)
        assert direction.shape == (3,)
        assert np.allclose(direction, cam.view_direction)

    def test_origins_behind_volume(self):
        cam = Camera(image_size=(8, 8))
        origins, direction = cam.rays()
        center = np.array([0.5, 0.5, 0.5])
        # every origin is on the far side of the cube centre
        assert np.all((center - origins) @ direction > 1.0)

    def test_zoom_shrinks_footprint(self):
        wide = Camera(image_size=(8, 8), zoom=1.0).rays()[0]
        tight = Camera(image_size=(8, 8), zoom=4.0).rays()[0]
        assert tight.std(axis=0).max() < wide.std(axis=0).max()

    def test_with_view(self):
        cam = Camera(azimuth=10, elevation=5)
        moved = cam.with_view(azimuth=50, elevation=-10)
        assert moved.azimuth == 50 and moved.elevation == -10
        assert moved.image_size == cam.image_size
        assert cam.azimuth == 10  # original untouched (frozen)

    def test_validation(self):
        with pytest.raises(ValueError):
            Camera(image_size=(0, 5))
        with pytest.raises(ValueError):
            Camera(zoom=0)


class TestTransferFunction:
    def test_sample_shape(self):
        tf = TransferFunction.jet()
        vals = np.random.default_rng(0).random((5, 6))
        rgba = tf.sample(vals)
        assert rgba.shape == (5, 6, 4)

    def test_interpolation_endpoints(self):
        tf = TransferFunction.grayscale(opacity=0.5)
        rgba = tf.sample(np.array([0.0, 1.0]))
        assert np.allclose(rgba[0], [0, 0, 0, 0])
        assert np.allclose(rgba[1], [1, 1, 1, 0.5])

    def test_interpolation_midpoint(self):
        tf = TransferFunction(
            positions=(0.0, 1.0),
            colors=((0, 0, 0, 0), (1.0, 0.5, 0.0, 1.0)),
        )
        rgba = tf.sample(np.array([0.5]))
        assert np.allclose(rgba[0], [0.5, 0.25, 0.0, 0.5])

    def test_values_clipped_to_unit_range(self):
        tf = TransferFunction.jet()
        rgba = tf.sample(np.array([-3.0, 7.0]))
        assert np.allclose(rgba[0], tf.sample(np.array([0.0]))[0])
        assert np.allclose(rgba[1], tf.sample(np.array([1.0]))[0])

    def test_opacity_correction_identity_at_base_step(self):
        tf = TransferFunction.jet()
        a = tf.sample(np.array([0.7]))
        b = tf.sample(np.array([0.7]), step=tf.base_step)
        assert np.allclose(a, b)

    def test_opacity_correction_smaller_step_less_opaque(self):
        tf = TransferFunction.jet()
        full = tf.sample(np.array([0.8]))[0, 3]
        half = tf.sample(np.array([0.8]), step=tf.base_step / 2)[0, 3]
        assert 0 < half < full

    def test_opacity_correction_preserves_total_opacity(self):
        """Two half-steps compose to one full step: 1-(1-a)^2 relation."""
        tf = TransferFunction.jet()
        a1 = float(tf.sample(np.array([0.6]), step=tf.base_step)[0, 3])
        ah = float(tf.sample(np.array([0.6]), step=tf.base_step / 2)[0, 3])
        assert 1 - (1 - ah) ** 2 == pytest.approx(a1, rel=1e-4)

    def test_presets_valid(self):
        for preset in (
            TransferFunction.jet(),
            TransferFunction.vortex(),
            TransferFunction.mixing(),
            TransferFunction.grayscale(),
        ):
            rgba = preset.sample(np.linspace(0, 1, 64))
            assert rgba.min() >= 0 and rgba.max() <= 1

    def test_jet_sparse_vortex_dense_classification(self):
        vals = np.linspace(0, 1, 101)
        jet_alpha = TransferFunction.jet().sample(vals)[:, 3]
        vortex_alpha = TransferFunction.vortex().sample(vals)[:, 3]
        # jet leaves low scalars fully transparent; vortex does not
        assert jet_alpha[:12].max() == 0.0
        assert vortex_alpha[10] > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferFunction(positions=(0.0,), colors=((0, 0, 0, 0),))
        with pytest.raises(ValueError):
            TransferFunction(
                positions=(0.5, 0.5), colors=((0, 0, 0, 0), (1, 1, 1, 1))
            )
        with pytest.raises(ValueError):
            TransferFunction(
                positions=(0.0, 1.0), colors=((0, 0, 0, 0), (2, 0, 0, 1))
            )
        with pytest.raises(ValueError):
            TransferFunction(positions=(0.0, 1.0), colors=((0, 0, 0, 0),))
