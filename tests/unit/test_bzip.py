"""Unit tests for the BZIP (BWT block-sorting) codec."""

import struct

import numpy as np
import pytest

from repro.compress.base import CodecError
from repro.compress.bzip import (
    BZIPCodec,
    _symbols_to_zero_runs,
    _zero_runs_to_symbols,
)


@pytest.fixture
def codec():
    return BZIPCodec(block_size=16 * 1024)


class TestZeroRunCoding:
    def test_roundtrip_simple(self):
        data = b"\x00\x00\x00ab\x00c"
        syms = _zero_runs_to_symbols(data)
        assert _symbols_to_zero_runs(syms) == data

    @pytest.mark.parametrize("run", [1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 255])
    def test_roundtrip_run_lengths(self, run):
        data = b"\x00" * run + b"\x01"
        syms = _zero_runs_to_symbols(data)
        assert _symbols_to_zero_runs(syms) == data

    def test_trailing_zero_run(self):
        data = b"ab" + b"\x00" * 37
        syms = _zero_runs_to_symbols(data)
        assert _symbols_to_zero_runs(syms) == data

    def test_empty(self):
        syms = _zero_runs_to_symbols(b"")
        assert _symbols_to_zero_runs(syms) == b""

    def test_ends_with_eob(self):
        syms = _zero_runs_to_symbols(b"xyz")
        assert syms[-1] == 257

    def test_bijective_encoding_is_compact(self):
        # a run of 2^k zeros takes ~k symbols
        syms = _zero_runs_to_symbols(b"\x00" * 1024 + b"\x01")
        assert syms.size < 15

    def test_missing_eob_rejected(self):
        with pytest.raises(CodecError):
            _symbols_to_zero_runs(np.array([5, 6]))


class TestBZIPRoundtrip:
    def test_empty(self, codec):
        assert codec.decode(codec.encode(b"")) == b""

    def test_single_byte(self, codec):
        assert codec.decode(codec.encode(b"z")) == b"z"

    def test_text(self, codec):
        data = b"it was the best of times, it was the worst of times " * 50
        enc = codec.encode(data)
        assert len(enc) < len(data) / 4
        assert codec.decode(enc) == data

    def test_zeros(self, codec):
        data = bytes(50000)
        enc = codec.encode(data)
        assert len(enc) < 250
        assert codec.decode(enc) == data

    def test_random(self, codec):
        rng = np.random.default_rng(31)
        data = rng.integers(0, 256, 8000, dtype=np.uint8).tobytes()
        assert codec.decode(codec.encode(data)) == data

    def test_multi_block(self):
        codec = BZIPCodec(block_size=1024)
        data = (b"block sorting burrows wheeler " * 300)[:8000]
        enc = codec.encode(data)
        assert codec.decode(enc) == data

    def test_block_boundary_exact(self):
        codec = BZIPCodec(block_size=1024)
        for n in (1023, 1024, 1025, 2048):
            data = bytes([i % 251 for i in range(n)])
            assert codec.decode(codec.encode(data)) == data, n

    def test_beats_rle_on_text(self, codec):
        from repro.compress.rle import RLECodec

        data = b"a man a plan a canal panama " * 100
        assert len(codec.encode(data)) < len(RLECodec().encode(data))

    def test_better_than_lzo_on_text(self, codec):
        """The paper: BZIP has 'very good lossless compression' — better
        ratio than the speed-oriented LZ family on structured data."""
        from repro.compress.lzo import LZOCodec

        rng = np.random.default_rng(5)
        words = [b"vortex", b"shock", b"jet", b"wave", b"field", b"flow"]
        data = b" ".join(words[int(i)] for i in rng.integers(0, 6, 4000))
        assert len(codec.encode(data)) < len(LZOCodec().encode(data))


class TestBZIPErrors:
    def test_bad_magic(self, codec):
        with pytest.raises(CodecError):
            codec.decode(b"NOPE" + bytes(8))

    def test_truncated_block(self, codec):
        enc = codec.encode(b"some reasonable amount of text " * 20)
        with pytest.raises(CodecError):
            codec.decode(enc[: len(enc) - 10])

    def test_length_mismatch_detected(self, codec):
        enc = bytearray(codec.encode(b"hello world " * 10))
        # corrupt the recorded original length
        enc[4:8] = struct.pack("<I", 5)
        with pytest.raises(CodecError):
            codec.decode(bytes(enc))

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            BZIPCodec(block_size=100)

    def test_image_interface(self, codec, rendered_rgb):
        out = codec.decode_image(codec.encode_image(rendered_rgb))
        assert np.array_equal(out, rendered_rgb)
