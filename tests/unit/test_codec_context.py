"""Persistent codec contexts: cross-frame table reuse and buffer pooling.

The regression these tests pin: decode-side Huffman tables must be built
exactly once per *distinct* serialized table, no matter how many frames,
planes, or blocks carry a byte-identical copy.  ``repro.compress.huffman``
exposes a module-level ``TABLE_BUILDS`` counter incremented by the real
LUT construction, so the tests count actual work, not cache bookkeeping.
"""

import numpy as np
import pytest

from repro.compress import get_codec
from repro.compress import huffman
from repro.compress.base import CodecError
from repro.compress.context import CodecContext
from repro.compress.huffman import build_code


@pytest.fixture
def ctx():
    return CodecContext()


def _table_payload(data=b"abracadabra" * 20):
    freqs = np.bincount(np.frombuffer(data, dtype=np.uint8), minlength=256)
    code = build_code(freqs)
    return code.to_bytes(), code


class TestHuffmanDedup:
    def test_identical_tables_share_one_instance(self, ctx):
        payload, _ = _table_payload()
        a, end_a = ctx.huffman_from_bytes(payload)
        b, end_b = ctx.huffman_from_bytes(payload)
        assert a is b
        assert end_a == end_b == len(payload)
        assert ctx.stats["huffman_code_builds"] == 1
        assert ctx.stats["huffman_code_hits"] == 1

    def test_distinct_tables_build_separately(self, ctx):
        p1, _ = _table_payload(b"aaaabbbbcc" * 30)
        p2, _ = _table_payload(b"the quick brown fox" * 15)
        ctx.huffman_from_bytes(p1)
        ctx.huffman_from_bytes(p2)
        assert ctx.stats["huffman_code_builds"] == 2

    def test_decode_lut_built_once_per_distinct_table(self, ctx):
        """One LUT build per distinct table across repeated decodes."""
        payload, _ = _table_payload()
        before = huffman.TABLE_BUILDS
        for _ in range(5):
            code, _ = ctx.huffman_from_bytes(payload)
            code.decode_tables()
        assert huffman.TABLE_BUILDS - before == 1

    def test_truncated_table_rejected(self, ctx):
        payload, _ = _table_payload()
        with pytest.raises(CodecError):
            ctx.huffman_from_bytes(payload[:2])

    def test_fifo_eviction_bounded(self):
        small = CodecContext(max_codes=4)
        for seed in range(10):
            rng = np.random.default_rng(seed)
            data = rng.integers(0, 8, 200, dtype=np.uint8).tobytes()
            p, _ = _table_payload(data)
            small.huffman_from_bytes(p)
        assert len(small._codes) <= 4


class TestSteadyStateDecode:
    """A stream of same-shaped frames stops building tables after frame 1."""

    @pytest.mark.parametrize("name", ["jpeg", "bzip", "jpeg+bzip"])
    def test_repeat_decode_builds_no_new_tables(self, ctx, name):
        rng = np.random.default_rng(7)
        img = rng.integers(0, 256, (48, 48, 3), dtype=np.uint8)
        codec = get_codec(name)
        codec.use_context(ctx)
        enc = codec.encode_image(img)
        first = codec.decode_image(enc)
        builds_after_first = ctx.stats["huffman_code_builds"]
        lut_after_first = huffman.TABLE_BUILDS
        for _ in range(3):
            again = codec.decode_image(enc)
        assert ctx.stats["huffman_code_builds"] == builds_after_first
        assert huffman.TABLE_BUILDS == lut_after_first
        assert ctx.stats["huffman_code_hits"] > 0
        assert np.array_equal(first, again)

    def test_context_shared_across_codecs(self, ctx):
        data = b"shared-table payload " * 50
        a = get_codec("bzip")
        b = get_codec("bzip")
        a.use_context(ctx)
        b.use_context(ctx)
        enc = a.encode(data)
        assert a.decode(enc) == data
        builds = ctx.stats["huffman_code_builds"]
        assert b.decode(enc) == data
        assert ctx.stats["huffman_code_builds"] == builds


class TestQuantAndScratch:
    def test_quant_tables_cached_per_quality(self, ctx):
        t1 = ctx.quant_tables(75)
        t2 = ctx.quant_tables(75)
        assert t1[0] is t2[0]
        ctx.quant_tables(30)
        assert ctx.stats["quant_builds"] == 2
        assert ctx.stats["quant_hits"] == 1

    def test_scratch_reuses_buffer(self, ctx):
        a = ctx.scratch("zz", (16, 64), np.int64)
        b = ctx.scratch("zz", (16, 64), np.int64)
        assert a is b
        c = ctx.scratch("zz", (32, 64), np.int64)
        assert c is not a
        assert ctx.stats["buffer_allocs"] == 2
        assert ctx.stats["buffer_hits"] == 1

    def test_clear_drops_caches_keeps_stats(self, ctx):
        payload, _ = _table_payload()
        ctx.huffman_from_bytes(payload)
        ctx.clear()
        assert len(ctx._codes) == 0
        assert ctx.stats["huffman_code_builds"] == 1
        ctx.huffman_from_bytes(payload)
        assert ctx.stats["huffman_code_builds"] == 2


class TestDisplayInterfaceWiring:
    def test_display_interface_shares_context(self):
        from repro.daemon.display_interface import DisplayInterface
        from repro.net.transport import FramedConnection

        local, _remote = FramedConnection.pair("a", "b")
        di = DisplayInterface(connection=local)
        jpeg = di._decoder("jpeg")
        combo = di._decoder("jpeg+bzip")
        assert jpeg._ctx is di.codec_context
        assert combo.first._ctx is di.codec_context
        assert combo.second._ctx is di.codec_context
