"""Regression tests for the races the DT7xx lockset analyzer found.

Each test drives the once-racy access pattern from multiple threads
under the runtime lock tracer (:func:`repro.devtools.locktrace.checked`)
and asserts the invariant that an unsynchronized interleaving would
break: snapshots must be internally consistent, not a mix of counter
values from different moments.  CPython's allocator rarely crashes on
these races — the symptom is torn aggregate numbers, which is exactly
what the assertions target.
"""

import threading

import numpy as np

from repro.devtools.locktrace import checked
from repro.net.transport import Channel, TrafficLog
from repro.serve import FrameCache, SessionBroker

FRAME_BYTES = 100
FRAMES_PER_WRITER = 400


class TestTrafficLogSnapshot:
    def test_snapshot_is_atomic_under_concurrent_senders(self):
        log = TrafficLog()
        start = threading.Barrier(5)

        def writer():
            start.wait()
            for _ in range(FRAMES_PER_WRITER):
                log.note_sent(FRAME_BYTES)

        with checked(patch_channel=False):
            threads = [threading.Thread(target=writer) for _ in range(4)]
            for t in threads:
                t.start()
            start.wait()
            # every frame is FRAME_BYTES, so in any atomic snapshot the
            # byte and frame totals agree; reading the live properties
            # one by one while writers run would tear them
            for _ in range(2000):
                snap = log.snapshot()
                assert snap.bytes_sent == snap.frames_sent * FRAME_BYTES, (
                    f"torn snapshot: {snap.frames_sent} frames but "
                    f"{snap.bytes_sent} bytes"
                )
            for t in threads:
                t.join()
        assert log.snapshot().frames_sent == 4 * FRAMES_PER_WRITER

    def test_retransmits_count_exactly_under_contention(self):
        log = TrafficLog()

        def bump():
            for _ in range(FRAMES_PER_WRITER):
                log.note_retransmit()

        with checked(patch_channel=False):
            threads = [threading.Thread(target=bump) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert log.retransmits == 4 * FRAMES_PER_WRITER


class TestFrameCacheCounters:
    def test_stats_snapshot_consistent_under_concurrent_encodes(self):
        cache = FrameCache(max_bytes=64 << 20)
        payload = b"x" * FRAME_BYTES
        start = threading.Barrier(5)

        def worker(rank):
            start.wait()
            for i in range(200):
                # half the keys collide across workers (cache hits),
                # half are private (misses + inserts)
                cache.get_or_encode((i % 50, "rle", rank % 2),
                                    lambda: payload)

        with checked(patch_channel=False):
            threads = [
                threading.Thread(target=worker, args=(r,)) for r in range(4)
            ]
            for t in threads:
                t.start()
            start.wait()
            for _ in range(2000):
                snap = cache.stats_snapshot()
                # fixed-size payloads: entry count and byte total move
                # together inside one critical section or not at all
                assert snap.current_bytes == snap.entries * FRAME_BYTES
                assert 0.0 <= snap.hit_ratio <= 1.0
                assert len(cache) == snap.entries or len(cache) >= 0
            for t in threads:
                t.join()
        snap = cache.stats_snapshot()
        assert snap.entries == 100
        assert snap.current_bytes == 100 * FRAME_BYTES
        assert snap.hits + snap.misses == 4 * 200

    def test_repr_and_hit_ratio_race_free(self):
        cache = FrameCache(max_bytes=1 << 20)

        def churn():
            for i in range(300):
                cache.get_or_encode((i, "rle", None), lambda: b"p" * 10)

        with checked(patch_channel=False):
            t = threading.Thread(target=churn)
            t.start()
            for _ in range(300):
                assert "FrameCache" in repr(cache)
                assert 0.0 <= cache.hit_ratio() <= 1.0
            t.join()


class TestBrokerStats:
    def test_stats_under_concurrent_publish(self):
        broker = SessionBroker(history_frames=4)
        image = np.zeros((4, 4, 3), dtype=np.uint8)
        total = 60

        def publisher():
            for fid in range(total):
                broker.publish(image, time_step=fid, frame_id=fid)

        with checked():
            broker.join(name="watcher")
            t = threading.Thread(target=publisher)
            t.start()
            try:
                last = 0
                for _ in range(500):
                    stats = broker.stats()
                    # the published counter is copied under the broker
                    # lock: monotone and never ahead of the publisher
                    assert last <= stats.frames_published <= total
                    last = stats.frames_published
                    assert stats.encodes >= 0
            finally:
                t.join()
                broker.close()
        assert broker.stats().frames_published == total

    def test_departed_snapshot_recorded_once_per_close(self):
        broker = SessionBroker()
        with checked():
            for i in range(4):
                broker.join(name=f"v{i}")
            broker.publish(np.zeros((4, 4, 3), dtype=np.uint8))
            broker.close()
        stats = broker.stats()
        assert len(stats.sessions) == 4
        assert all(not s.active for s in stats.sessions.values())


class TestChannelClosed:
    def test_closed_flag_reads_race_free_against_close(self):
        chan = Channel(maxsize=4)

        def closer():
            chan.send(b"last")
            chan.close()

        with checked(patch_channel=False):
            t = threading.Thread(target=closer)
            t.start()
            seen_open_after_closed = False
            was_closed = False
            for _ in range(2000):
                closed = chan.closed
                if was_closed and not closed:
                    seen_open_after_closed = True
                was_closed = closed
            t.join()
        assert not seen_open_after_closed
        assert chan.closed
