"""Unit tests for dataset generators, the dataset abstraction, and storage."""

import numpy as np
import pytest

from repro.data import (
    DATASET_REGISTRY,
    DatasetStore,
    TimeVaryingDataset,
    get_dataset,
    shock_mixing,
    turbulent_jet,
    turbulent_vortex,
)
from repro.data.fields import jet_field, mixing_field, vortex_field


class TestFields:
    @pytest.mark.parametrize("field_fn", [jet_field, vortex_field])
    def test_shape_dtype_range(self, field_fn):
        vol = field_fn((20, 22, 18), t=3.0)
        assert vol.shape == (20, 22, 18)
        assert vol.dtype == np.float32
        assert vol.min() >= 0.0 and vol.max() <= 1.0

    def test_mixing_field_shape(self):
        vol = mixing_field((32, 16, 16), t=10, n_steps=50)
        assert vol.shape == (32, 16, 16)
        assert 0.0 <= vol.min() and vol.max() <= 1.0

    def test_time_evolution_changes_field(self):
        a = jet_field((24, 24, 20), t=0.0)
        b = jet_field((24, 24, 20), t=5.0)
        assert not np.allclose(a, b)

    def test_deterministic_per_time(self):
        a = vortex_field((16, 16, 16), t=2.0)
        b = vortex_field((16, 16, 16), t=2.0)
        assert np.array_equal(a, b)

    def test_seed_changes_structure(self):
        a = vortex_field((16, 16, 16), t=1.0, seed=1)
        b = vortex_field((16, 16, 16), t=1.0, seed=2)
        assert not np.allclose(a, b)

    def test_jet_is_sparse_vortex_is_dense(self):
        """The paper's compression-relevant contrast between datasets."""
        jet = jet_field((32, 32, 26), t=4.0)
        vortex = vortex_field((32, 32, 32), t=4.0)
        assert (jet > 0.1).mean() < 0.15
        assert (vortex > 0.1).mean() > 0.5

    def test_mixing_shock_progresses(self):
        early = mixing_field((40, 16, 16), t=20, n_steps=100)
        late = mixing_field((40, 16, 16), t=80, n_steps=100)
        # shocked (high-value) region grows along x over time
        assert (late > 0.2).mean() > (early > 0.2).mean()


class TestDatasetFactories:
    def test_paper_dimensions(self):
        assert turbulent_jet().shape == (129, 129, 104)
        assert turbulent_jet().n_steps == 150
        assert turbulent_vortex().shape == (128, 128, 128)
        assert turbulent_vortex().n_steps == 100
        assert shock_mixing().shape == (640, 256, 256)
        assert shock_mixing().n_steps == 265
        assert shock_mixing().components == 3

    def test_mixing_total_size_exceeds_44gb(self):
        # "the overall size of the data set is over 44 gigabytes"
        assert shock_mixing().total_nbytes > 44e9

    def test_scaling(self):
        ds = turbulent_jet(scale=0.5)
        assert ds.shape == (64, 64, 52)  # round-half-even on 64.5

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            turbulent_jet(scale=0.0)
        with pytest.raises(ValueError):
            turbulent_jet(scale=1.5)

    def test_registry(self):
        assert set(DATASET_REGISTRY) == {
            "turbulent-jet",
            "turbulent-vortex",
            "shock-mixing",
        }
        ds = get_dataset("turbulent-jet", scale=0.2, n_steps=5)
        assert ds.n_steps == 5

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            get_dataset("nonexistent")


class TestTimeVaryingDataset:
    def test_volume_access(self, jet_small):
        vol = jet_small.volume(0)
        assert vol.shape == jet_small.shape
        assert vol.dtype == np.float32

    def test_out_of_range(self, jet_small):
        with pytest.raises(IndexError):
            jet_small.volume(jet_small.n_steps)
        with pytest.raises(IndexError):
            jet_small.volume(-1)

    def test_len_and_iter(self, jet_small):
        assert len(jet_small) == jet_small.n_steps
        count = sum(1 for _ in turbulent_jet(scale=0.15, n_steps=3))
        assert count == 3

    def test_byte_accounting(self):
        ds = turbulent_jet(scale=0.25, n_steps=10)
        nx, ny, nz = ds.shape
        assert ds.points_per_step == nx * ny * nz
        assert ds.nbytes_per_step == ds.points_per_step * 4
        assert ds.total_nbytes == ds.nbytes_per_step * 10

    def test_subset(self, jet_small):
        sub = jet_small.subset(3)
        assert sub.n_steps == 3
        assert np.array_equal(sub.volume(1), jet_small.volume(1))

    def test_subset_validation(self, jet_small):
        with pytest.raises(ValueError):
            jet_small.subset(0)
        with pytest.raises(ValueError):
            jet_small.subset(jet_small.n_steps + 1)

    def test_cache(self):
        calls = []

        def gen(t):
            calls.append(t)
            return np.zeros((8, 8, 8), dtype=np.float32)

        ds = TimeVaryingDataset(
            name="x", shape=(8, 8, 8), n_steps=5, generator=gen, cache_steps=2
        )
        ds.volume(0)
        ds.volume(0)
        assert calls == [0]
        ds.volume(1)
        ds.volume(2)  # evicts 0
        ds.volume(0)
        assert calls == [0, 1, 2, 0]

    def test_generator_shape_validated(self):
        ds = TimeVaryingDataset(
            name="bad",
            shape=(4, 4, 4),
            n_steps=1,
            generator=lambda t: np.zeros((2, 2, 2), dtype=np.float32),
        )
        with pytest.raises(ValueError):
            ds.volume(0)


class TestDatasetStore:
    def test_save_and_reopen(self, tmp_path):
        ds = turbulent_jet(scale=0.15, n_steps=4)
        store = DatasetStore(tmp_path / "jet")
        store.save(ds)
        reopened = store.open()
        assert reopened.shape == ds.shape
        assert reopened.n_steps == 4
        for t in range(4):
            assert np.allclose(reopened.volume(t), ds.volume(t), atol=1e-6)

    def test_save_subrange(self, tmp_path):
        ds = turbulent_jet(scale=0.15, n_steps=10)
        store = DatasetStore(tmp_path / "sub")
        store.save(ds, steps=range(2, 5))
        reopened = store.open()
        assert reopened.n_steps == 3
        assert np.allclose(reopened.volume(0), ds.volume(2), atol=1e-6)

    def test_open_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DatasetStore(tmp_path / "empty").open()

    def test_corrupt_step_detected(self, tmp_path):
        ds = turbulent_jet(scale=0.15, n_steps=2)
        store = DatasetStore(tmp_path / "c")
        store.save(ds)
        (tmp_path / "c" / "step_00001.raw").write_bytes(b"short")
        reopened = store.open()
        reopened.volume(0)  # fine
        with pytest.raises(ValueError):
            reopened.volume(1)


class TestCompressedStore:
    def test_lzo_store_roundtrip(self, tmp_path):
        ds = turbulent_jet(scale=0.15, n_steps=3)
        store = DatasetStore(tmp_path / "z", codec="lzo")
        store.save(ds)
        reopened = store.open()
        for t in range(3):
            assert np.allclose(reopened.volume(t), ds.volume(t), atol=1e-6)

    def test_float_volumes_barely_compress(self, tmp_path):
        """Byte-oriented LZ gains little on float32 CFD data (mantissa
        noise) — the realistic reason facilities quantize before
        archiving."""
        ds = turbulent_jet(scale=0.2, n_steps=2)
        raw = DatasetStore(tmp_path / "raw")
        packed = DatasetStore(tmp_path / "packed", codec="lzo")
        raw.save(ds)
        packed.save(ds)
        assert packed.stored_bytes() < raw.stored_bytes() * 1.15

    def test_quantized_lzo_store_much_smaller(self, tmp_path):
        ds = turbulent_jet(scale=0.2, n_steps=2)
        raw = DatasetStore(tmp_path / "raw3")
        packed = DatasetStore(tmp_path / "qlz", codec="lzo", quantize=True)
        raw.save(ds)
        packed.save(ds)
        assert packed.stored_bytes() < raw.stored_bytes() / 8

    def test_quantized_store_quarter_size_half_level_error(self, tmp_path):
        ds = turbulent_jet(scale=0.2, n_steps=2)
        raw = DatasetStore(tmp_path / "raw2")
        q = DatasetStore(tmp_path / "q", quantize=True)
        raw.save(ds)
        q.save(ds)
        assert q.stored_bytes() * 3.9 < raw.stored_bytes() * 1.01
        reopened = q.open()
        assert np.abs(reopened.volume(1) - ds.volume(1)).max() <= 0.5 / 255 + 1e-6

    def test_quantized_plus_codec(self, tmp_path):
        ds = turbulent_jet(scale=0.2, n_steps=2)
        store = DatasetStore(tmp_path / "qz", codec="bzip", quantize=True)
        store.save(ds)
        reopened = store.open()
        assert np.abs(reopened.volume(0) - ds.volume(0)).max() <= 0.5 / 255 + 1e-6
        # sparse quantized jet crushes down
        assert store.stored_bytes() < ds.nbytes_per_step / 4

    def test_lossy_codec_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DatasetStore(tmp_path / "bad", codec="jpeg")
