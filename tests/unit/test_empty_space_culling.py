"""Unit tests for data-dependent empty-space culling."""

import time

import numpy as np
import pytest

from repro.render import (
    Camera,
    TransferFunction,
    cull_empty_space,
    render_volume,
)


class TestCullEmptySpace:
    def test_returns_none_for_empty_volume(self):
        assert cull_empty_space(np.zeros((8, 8, 8), dtype=np.float32)) is None

    def test_crop_covers_occupied_region(self):
        vol = np.zeros((20, 20, 20), dtype=np.float32)
        vol[5:9, 10:12, 3:15] = 0.7
        cropped, box = cull_empty_space(vol)
        # one voxel padding on each side
        assert cropped.shape == (6, 4, 14)
        assert cropped.max() == np.float32(0.7)
        lo, hi = box
        assert lo[0] == pytest.approx(4 / 19)
        assert hi[0] == pytest.approx(9 / 19)

    def test_full_volume_is_identity_box(self):
        vol = np.ones((10, 10, 10), dtype=np.float32)
        cropped, box = cull_empty_space(vol)
        assert cropped.shape == vol.shape
        assert box == ((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))

    def test_nested_boxes_compose(self):
        vol = np.zeros((16, 16, 16), dtype=np.float32)
        vol[8:12, 8:12, 8:12] = 1.0
        sub_box = ((0.5, 0.5, 0.5), (1.0, 1.0, 1.0))
        cropped, box = cull_empty_space(vol, box=sub_box)
        lo, hi = box
        assert all(0.5 <= l < h <= 1.0 for l, h in zip(lo, hi))

    def test_threshold_respected(self):
        vol = np.full((12, 12, 12), 0.05, dtype=np.float32)
        vol[4:6, 4:6, 4:6] = 0.9
        result = cull_empty_space(vol, threshold=0.1)
        cropped, _ = result
        assert cropped.shape[0] <= 4

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            cull_empty_space(np.zeros((4, 4), dtype=np.float32))


class TestCulledRendering:
    def test_culled_render_matches_full(self, jet_volume, small_camera):
        """The jet's TF maps sub-threshold values to zero opacity, so the
        culled render is (nearly) exact."""
        tf = TransferFunction.jet()
        full = render_volume(jet_volume, tf, small_camera)
        cropped, box = cull_empty_space(jet_volume, threshold=0.1)
        culled = render_volume(cropped, tf, small_camera, box=box)
        assert np.abs(full - culled).max() < 0.06
        assert np.abs(full - culled).mean() < 0.003

    def test_culling_reduces_work(self, jet_volume, small_camera):
        tf = TransferFunction.jet()
        cropped, box = cull_empty_space(jet_volume, threshold=0.1)
        assert cropped.size < jet_volume.size * 0.7

        def clock(fn, repeat=3):
            best = float("inf")
            for _ in range(repeat):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            return best

        t_full = clock(lambda: render_volume(jet_volume, tf, small_camera))
        t_culled = clock(
            lambda: render_volume(cropped, tf, small_camera, box=box)
        )
        assert t_culled < t_full * 1.05  # never meaningfully slower


class TestSessionCulling:
    def test_culled_session_matches_plain(self):
        from repro.core import RemoteVisualizationSession
        from repro.data import turbulent_jet

        ds = turbulent_jet(scale=0.3, n_steps=3)
        cam = Camera(image_size=(48, 48))
        for group_size in (1, 4):
            with RemoteVisualizationSession(
                ds, group_size=group_size, camera=cam, codec="raw"
            ) as plain, RemoteVisualizationSession(
                ds, group_size=group_size, camera=cam, codec="raw", cull=True
            ) as culled:
                a = plain.step(1).image.astype(int)
                b = culled.step(1).image.astype(int)
            # sampling phases shift slightly inside the tight box
            assert np.abs(a - b).mean() < 1.0
            assert (np.abs(a - b) > 20).mean() < 0.01

    def test_empty_step_yields_blank_frame(self):
        from repro.core import RemoteVisualizationSession
        from repro.data import TimeVaryingDataset

        ds = TimeVaryingDataset(
            name="void", shape=(8, 8, 8), n_steps=1,
            generator=lambda t: np.zeros((8, 8, 8), dtype=np.float32),
        )
        with RemoteVisualizationSession(
            ds, group_size=2, camera=Camera(image_size=(16, 16)),
            codec="raw", cull=True,
        ) as sess:
            frame = sess.step(0)
        assert frame.image.max() == 0

    def test_opacity_threshold_presets(self):
        # jet leaves low scalars fully transparent; vortex does not
        assert TransferFunction.jet().opacity_threshold() > 0.05
        assert TransferFunction.vortex().opacity_threshold() < 0.01
        assert TransferFunction.grayscale().opacity_threshold() < 0.01
