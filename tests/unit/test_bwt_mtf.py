"""Unit tests for the Burrows–Wheeler transform and move-to-front coder."""

import numpy as np
import pytest

from repro.compress.base import CodecError
from repro.compress.bwt import bwt_forward, bwt_inverse
from repro.compress.mtf import mtf_forward, mtf_inverse


def naive_bwt(data: bytes) -> tuple[bytes, int]:
    """Reference O(n^2 log n) rotation sort."""
    n = len(data)
    rotations = sorted(range(n), key=lambda i: data[i:] + data[:i])
    last = bytes(data[(i - 1) % n] for i in rotations)
    return last, rotations.index(0)


class TestBWTForward:
    def test_empty(self):
        assert bwt_forward(b"") == (b"", 0)

    def test_single_byte(self):
        assert bwt_forward(b"a") == (b"a", 0)

    def test_banana(self):
        last, primary = bwt_forward(b"banana")
        ref_last, ref_primary = naive_bwt(b"banana")
        assert last == ref_last
        assert primary == ref_primary

    @pytest.mark.parametrize(
        "data",
        [
            b"mississippi",
            b"abracadabra",
            b"aaaa",
            b"abab",
            b"the quick brown fox",
            bytes(range(256)),
        ],
    )
    def test_matches_naive(self, data):
        assert bwt_forward(data) == naive_bwt(data)

    def test_matches_naive_random(self):
        rng = np.random.default_rng(17)
        for trial in range(10):
            n = int(rng.integers(2, 60))
            data = rng.integers(0, 4, n, dtype=np.uint8).tobytes()
            assert bwt_forward(data) == naive_bwt(data), data

    def test_groups_like_characters(self):
        # BWT of English-like text clusters identical bytes
        data = b"she sells sea shells by the sea shore " * 20
        last, _ = bwt_forward(data)
        runs = sum(1 for a, b in zip(last, last[1:]) if a != b)
        runs_orig = sum(1 for a, b in zip(data, data[1:]) if a != b)
        assert runs < runs_orig / 2


class TestBWTInverse:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"x",
            b"banana",
            b"mississippi",
            b"aaaaaaaaaa",
            b"abcabcabc",
            bytes(range(256)) * 2,
        ],
    )
    def test_roundtrip(self, data):
        last, primary = bwt_forward(data)
        assert bwt_inverse(last, primary) == data

    def test_roundtrip_random(self):
        rng = np.random.default_rng(23)
        data = rng.integers(0, 256, 5000, dtype=np.uint8).tobytes()
        last, primary = bwt_forward(data)
        assert bwt_inverse(last, primary) == data

    def test_roundtrip_large_runs(self):
        data = b"\x00" * 3000 + b"\x01" * 3000 + b"\x00" * 3000
        last, primary = bwt_forward(data)
        assert bwt_inverse(last, primary) == data

    def test_bad_primary_rejected(self):
        with pytest.raises(CodecError):
            bwt_inverse(b"abc", 5)
        with pytest.raises(CodecError):
            bwt_inverse(b"abc", -1)


class TestMTF:
    def test_empty(self):
        assert mtf_forward(b"") == b""
        assert mtf_inverse(b"") == b""

    def test_first_occurrence_is_identity_index(self):
        # alphabet starts as 0..255, so byte b first maps to b itself
        assert mtf_forward(b"\x05") == b"\x05"

    def test_repeat_maps_to_zero(self):
        out = mtf_forward(b"\x41\x41\x41")
        assert out[1:] == b"\x00\x00"

    def test_roundtrip(self):
        data = b"move to front coding clusters repeats" * 10
        assert mtf_inverse(mtf_forward(data)) == data

    def test_roundtrip_all_bytes(self):
        data = bytes(range(256)) + bytes(reversed(range(256)))
        assert mtf_inverse(mtf_forward(data)) == data

    def test_roundtrip_random(self):
        rng = np.random.default_rng(29)
        data = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        assert mtf_inverse(mtf_forward(data)) == data

    def test_post_bwt_data_becomes_small_values(self):
        data = b"she sells sea shells by the sea shore " * 30
        last, _ = bwt_forward(data)
        mtf = mtf_forward(last)
        small = sum(1 for b in mtf if b < 8)
        assert small / len(mtf) > 0.75
