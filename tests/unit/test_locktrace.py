"""The lock-order / thread-leak detector is itself under test: seeded
inversions, blocking holds, and leaked threads must all be caught, and
clean concurrent code must not trip it."""

import threading

import pytest

from repro.devtools.locktrace import (
    LockTracer,
    ThreadLeakGuard,
    checked,
)

pytestmark = pytest.mark.lint


class TestLockOrderInversion:
    def test_two_lock_inversion_detected_without_deadlock(self):
        """A takes a->b, B takes b->a, serialized so no real deadlock
        occurs — the tracer must still report the inversion."""
        tracer = LockTracer()
        a = tracer.lock(site="Lock@fixture:a")
        b = tracer.lock(site="Lock@fixture:b")
        tracer._active = True  # trace without monkeypatching threading

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        t1 = threading.Thread(target=forward)
        t1.start()
        t1.join(timeout=5.0)
        t2 = threading.Thread(target=backward)
        t2.start()
        t2.join(timeout=5.0)

        report = tracer.report()
        assert not report.clean
        assert len(report.inversions) == 1
        inv = report.inversions[0]
        assert {inv.first, inv.second} == {
            "Lock@fixture:a", "Lock@fixture:b"
        }
        assert "inversion" in str(inv)
        assert "INVERSION" in report.summary()

    def test_consistent_order_is_clean(self):
        tracer = LockTracer()
        a = tracer.lock(site="Lock@fixture:a")
        b = tracer.lock(site="Lock@fixture:b")
        tracer._active = True
        for _ in range(3):
            with a:
                with b:
                    pass
        report = tracer.report()
        assert report.clean
        assert report.n_edges == 1
        assert "no inversions" in report.summary()

    def test_three_lock_cycle_detected(self):
        """a->b, b->c, c->a: no pair inverts directly, the cycle only
        exists through the transitive edge set."""
        tracer = LockTracer()
        locks = {s: tracer.lock(site=f"Lock@fixture:{s}") for s in "abc"}
        tracer._active = True
        for first, second in (("a", "b"), ("b", "c"), ("c", "a")):
            with locks[first]:
                with locks[second]:
                    pass
        report = tracer.report()
        assert len(report.inversions) == 1
        assert len(report.inversions[0].cycle) >= 2

    def test_reentrant_rlock_is_not_an_inversion(self):
        tracer = LockTracer()
        r = tracer.rlock(site="RLock@fixture:r")
        tracer._active = True
        with r:
            with r:
                pass
        assert tracer.report().clean

    def test_same_site_different_instances_flagged(self):
        """Two locks born at one site acquired nested: session A locking
        session B's lock — order between peers is undefined."""
        tracer = LockTracer()
        one = tracer.lock(site="Lock@fixture:peer")
        two = tracer.lock(site="Lock@fixture:peer")
        tracer._active = True
        with one:
            with two:
                pass
        report = tracer.report()
        assert len(report.inversions) == 1


class TestBlockingHold:
    def test_lock_held_across_blocking_op_flagged(self):
        tracer = LockTracer()
        lock = tracer.lock(site="Lock@fixture:held")
        tracer._active = True
        with lock:
            tracer.note_blocking("Channel.recv")
        report = tracer.report()
        assert len(report.blocking_holds) == 1
        hold = report.blocking_holds[0]
        assert hold.operation == "Channel.recv"
        assert hold.locks == ("Lock@fixture:held",)
        assert "BLOCKING-HOLD" in report.summary()

    def test_exempt_lock_is_not_flagged(self):
        tracer = LockTracer()
        lock = tracer.lock(site="Lock@fixture:own")
        tracer._active = True
        with lock:
            tracer.note_blocking("Channel.recv", exempt=(lock,))
        assert tracer.report().clean

    def test_condition_wait_suspends_its_own_lock(self):
        """cond.wait releases the underlying lock, so waiting while
        holding only that lock is legal and must not be flagged."""
        tracer = LockTracer()
        cond = tracer.condition(site="Condition@fixture:c")
        tracer._active = True
        with cond:
            cond.wait(timeout=0.01)
        assert tracer.report().clean

    def test_condition_wait_flags_other_held_locks(self):
        tracer = LockTracer()
        outer = tracer.lock(site="Lock@fixture:outer")
        cond = tracer.condition(site="Condition@fixture:c")
        tracer._active = True
        with outer:
            with cond:
                cond.wait(timeout=0.01)
        report = tracer.report()
        assert len(report.blocking_holds) == 1
        assert report.blocking_holds[0].locks == ("Lock@fixture:outer",)


class TestInstall:
    def test_install_patches_and_uninstall_restores(self):
        orig_lock = threading.Lock
        tracer = LockTracer()
        tracer.install(patch_channel=False)
        try:
            lock = threading.Lock()
            with lock:
                pass
            assert hasattr(lock, "site")
        finally:
            tracer.uninstall()
        assert threading.Lock is orig_lock
        assert tracer.report().n_acquisitions >= 1

    def test_double_install_rejected(self):
        tracer = LockTracer()
        tracer.install(patch_channel=False)
        try:
            with pytest.raises(RuntimeError):
                tracer.install(patch_channel=False)
        finally:
            tracer.uninstall()

    def test_channel_recv_under_lock_is_flagged(self):
        from repro.net.transport import FramedConnection

        tracer = LockTracer()
        guard = tracer.lock(site="Lock@fixture:guard")
        tracer.install(patch_channel=True)
        try:
            local, remote = FramedConnection.pair()
            remote.send(b"payload")
            with guard:
                assert local.recv(timeout=2.0) == b"payload"
        finally:
            tracer.uninstall()
        report = tracer.report()
        assert any(
            h.operation == "Channel.recv" and "guard" in h.locks[0]
            for h in report.blocking_holds
        )

    def test_channel_recv_without_lock_is_clean(self):
        from repro.net.transport import FramedConnection

        tracer = LockTracer()
        tracer.install(patch_channel=True)
        try:
            local, remote = FramedConnection.pair()
            remote.send(b"payload")
            assert local.recv(timeout=2.0) == b"payload"
        finally:
            tracer.uninstall()
        assert not tracer.report().blocking_holds


class TestThreadLeakGuard:
    def test_leaked_non_daemon_thread_detected(self):
        stop = threading.Event()
        guard = ThreadLeakGuard(join_timeout_s=0.05).start()
        stray = threading.Thread(
            target=stop.wait, name="stray", daemon=False
        )
        stray.start()
        try:
            leaked = guard.leaked()
            assert [t.name for t in leaked] == ["stray"]
        finally:
            stop.set()
            stray.join(timeout=5.0)

    def test_daemon_threads_are_tolerated(self):
        stop = threading.Event()
        guard = ThreadLeakGuard(join_timeout_s=0.05).start()
        t = threading.Thread(target=stop.wait, daemon=True)
        t.start()
        try:
            assert guard.leaked() == []
        finally:
            stop.set()
            t.join(timeout=5.0)

    def test_joined_thread_is_not_a_leak(self):
        guard = ThreadLeakGuard().start()
        t = threading.Thread(target=lambda: None, daemon=False)
        t.start()
        t.join(timeout=5.0)
        assert guard.leaked() == []

    def test_start_required(self):
        with pytest.raises(RuntimeError):
            ThreadLeakGuard().leaked()


class TestCheckedScope:
    def test_checked_raises_on_seeded_inversion(self):
        with pytest.raises(AssertionError, match="inversion"):
            with checked(patch_channel=False) as tracer:
                a = tracer.lock(site="Lock@fixture:a")
                b = tracer.lock(site="Lock@fixture:b")
                with a:
                    with b:
                        pass
                with b:
                    with a:
                        pass

    def test_checked_raises_on_leaked_thread(self):
        stop = threading.Event()
        stray = None
        try:
            with pytest.raises(AssertionError, match="leaked non-daemon"):
                with checked(patch_channel=False):
                    stray = threading.Thread(
                        target=stop.wait, name="leaker", daemon=False
                    )
                    stray.start()
        finally:
            stop.set()
            if stray is not None:
                stray.join(timeout=5.0)

    def test_checked_passes_clean_scope(self):
        with checked(patch_channel=False):
            lock = threading.Lock()
            with lock:
                pass

    def test_checked_does_not_mask_test_failure(self):
        """An exception from the body propagates; the tracer still
        uninstalls so later tests see real primitives."""
        orig = threading.Lock
        with pytest.raises(ValueError):
            with checked(patch_channel=False):
                raise ValueError("body failure")
        assert threading.Lock is orig
