"""FrameRelay unit tests: fan-out, local replay, pull mode, peer fetch.

Each scenario stands up a real origin broker and drives real frames
through in-memory framed connections — the relay is a byte forwarder,
so these tests also pin down that payloads survive the store round trip
bit-exactly (viewers decode them)."""

import time

import pytest

from repro.relay import FrameRelay, RelayRing
from repro.serve.broker import SessionBroker
from repro.serve.fanout import synthetic_frames

N_FRAMES = 12
SIZE = 16


def publish_all(broker, n=N_FRAMES, size=SIZE):
    for fid, image in enumerate(synthetic_frames(n, size=size)):
        broker.publish(image, time_step=fid, frame_id=fid)


def consume(handle, n, timeout=10.0):
    """Read ``n`` frames; returns their ids in arrival order."""
    ids = []
    deadline = time.monotonic() + timeout
    while len(ids) < n and time.monotonic() < deadline:
        try:
            frame = handle.next_frame(timeout=0.25)
        except TimeoutError:
            continue
        ids.append(frame.frame_id)
    return ids


class TestFanout:
    def test_live_stream_fans_to_many_viewers_one_upstream(self):
        with SessionBroker() as broker, FrameRelay("edge", broker) as relay:
            a = relay.join("a")
            b = relay.join("b")
            publish_all(broker)
            assert consume(a, N_FRAMES) == list(range(N_FRAMES))
            assert consume(b, N_FRAMES) == list(range(N_FRAMES))
            assert relay.drain(timeout=5.0)
            snap = relay.stats_snapshot()
            # the frame crossed the WAN once, was served twice
            assert snap.origin_frames == N_FRAMES
            assert snap.frames_served == 2 * N_FRAMES
            assert snap.offload_ratio == pytest.approx(0.5)
            a.leave()
            b.leave()

    def test_viewers_see_decodable_payloads(self):
        with SessionBroker() as broker, FrameRelay("edge", broker) as relay:
            handle = relay.join()
            publish_all(broker, n=3)
            deadline = time.monotonic() + 10.0
            images = []
            while len(images) < 3 and time.monotonic() < deadline:
                try:
                    images.append(handle.next_frame(timeout=0.25).image)
                except TimeoutError:
                    continue
            assert len(images) == 3
            assert all(img.shape[:2] == (SIZE, SIZE) for img in images)
            handle.leave()


class TestLocalReplay:
    def test_seek_is_served_from_the_store_not_the_origin(self):
        with SessionBroker() as broker, FrameRelay("edge", broker) as relay:
            handle = relay.join("looper")
            publish_all(broker)
            assert consume(handle, N_FRAMES) == list(range(N_FRAMES))
            origin_before = relay.stats_snapshot().origin_frames
            handle.seek(0)
            assert consume(handle, N_FRAMES) == list(range(N_FRAMES))
            snap = relay.stats_snapshot()
            assert snap.origin_frames == origin_before  # zero WAN cost
            assert snap.frames_served == 2 * N_FRAMES
            assert snap.store_hits >= N_FRAMES
            handle.leave()

    def test_resume_from_starts_midway_no_dup_no_skip(self):
        with SessionBroker() as broker, FrameRelay("edge", broker) as relay:
            warm = relay.join("warm")
            publish_all(broker)
            assert consume(warm, N_FRAMES) == list(range(N_FRAMES))
            late = relay.join("late", resume_from=5)
            assert late.resumed
            assert consume(late, N_FRAMES - 5) == list(range(5, N_FRAMES))
            warm.leave()
            late.leave()


class TestPullMode:
    def test_pull_session_is_paused_until_seek(self):
        with SessionBroker() as broker, FrameRelay("edge", broker) as relay:
            handle = relay.join("peer:test", mode="pull")
            publish_all(broker)
            # a follow viewer proves the stream is flowing...
            probe = relay.join("probe")
            assert consume(probe, N_FRAMES) == list(range(N_FRAMES))
            # ...while the pull session stays silent
            with pytest.raises(TimeoutError):
                handle.next_frame(timeout=0.2)
            handle.seek(4)
            assert consume(handle, N_FRAMES - 4) == list(range(4, N_FRAMES))
            # one burst only: paused again after reaching the seek head
            with pytest.raises(TimeoutError):
                handle.next_frame(timeout=0.2)
            probe.leave()
            handle.leave()


class TestPeerFetch:
    def test_cold_relay_pulls_owned_frames_from_peer_not_origin(self):
        ring = RelayRing(["warm"])  # every chunk owned by the warm relay
        with SessionBroker() as broker:
            warm = FrameRelay("warm", broker, ring=ring)
            probe = warm.join("probe")
            publish_all(broker)
            assert consume(probe, N_FRAMES) == list(range(N_FRAMES))
            probe.leave()
            # joins after the stream ended: its upstream session never
            # sees a live frame, so everything must come from the peer
            cold = FrameRelay("cold", broker, ring=ring)
            cold.connect_peer(warm)
            viewer = cold.join("viewer")
            assert consume(viewer, N_FRAMES) == list(range(N_FRAMES))
            snap = cold.stats_snapshot()
            assert snap.peer_frames >= N_FRAMES
            assert snap.origin_frames == 0
            viewer.leave()
            cold.close()
            warm.close()


class TestMembership:
    def test_duplicate_active_name_rejected(self):
        with SessionBroker() as broker, FrameRelay("edge", broker) as relay:
            handle = relay.join("dup")
            with pytest.raises(ValueError):
                relay.join("dup")
            handle.leave()

    def test_join_after_close_raises(self):
        broker = SessionBroker()
        relay = FrameRelay("edge", broker)
        relay.close()
        with pytest.raises(RuntimeError):
            relay.join("x")
        broker.close()

    def test_invalid_mode_rejected(self):
        with SessionBroker() as broker, FrameRelay("edge", broker) as relay:
            with pytest.raises(ValueError):
                relay.join("x", mode="push")


class TestStats:
    def test_snapshot_and_summary(self):
        with SessionBroker() as broker, FrameRelay("edge", broker) as relay:
            handle = relay.join("v")
            publish_all(broker, n=4)
            assert consume(handle, 4) == [0, 1, 2, 3]
            assert relay.drain(timeout=5.0)  # let the acks land
            snap = relay.stats_snapshot()
            assert snap.name == "edge"
            assert snap.sessions == 1
            assert snap.store is not None
            assert snap.store.entries >= 4
            assert "v" in snap.session_stats
            assert snap.session_stats["v"].acks == 4
            text = snap.summary()
            assert "edge" in text and "offload" in text
            handle.leave()
