"""Unit tests for histogram analysis and automatic transfer functions."""

import numpy as np
import pytest

from repro.render import Camera, render_volume
from repro.render.histogram import (
    opacity_profile,
    suggest_transfer_function,
    volume_histogram,
)


class TestVolumeHistogram:
    def test_counts_sum_to_voxels(self, jet_volume):
        counts, edges = volume_histogram(jet_volume)
        assert counts.sum() == jet_volume.size
        assert edges[0] == 0.0 and edges[-1] == 1.0

    def test_bins_respected(self, jet_volume):
        counts, edges = volume_histogram(jet_volume, bins=17)
        assert counts.size == 17
        assert edges.size == 18

    def test_constant_volume_single_bin(self):
        vol = np.full((8, 8, 8), 0.5, dtype=np.float32)
        counts, _ = volume_histogram(vol, bins=10)
        assert counts[5] == vol.size
        assert counts.sum() == vol.size


class TestOpacityProfile:
    def test_range_and_shape(self, jet_volume):
        w = opacity_profile(jet_volume, bins=32)
        assert w.shape == (32,)
        assert w.min() >= 0.0 and w.max() <= 1.0

    def test_background_suppressed(self, jet_volume):
        """The jet's dominant near-zero background must stay transparent."""
        counts, _ = volume_histogram(jet_volume, bins=32)
        w = opacity_profile(jet_volume, bins=32)
        assert w[np.argmax(counts)] == 0.0

    def test_rare_values_emphasized(self, jet_volume):
        counts, _ = volume_histogram(jet_volume, bins=32)
        w = opacity_profile(jet_volume, bins=32)
        occupied = counts > 0
        rare_bin = np.argmin(np.where(occupied, counts, np.iinfo(np.int64).max))
        assert w[rare_bin] == w.max()

    def test_empty_bins_zero(self):
        vol = np.full((6, 6, 6), 0.25, dtype=np.float32)
        w = opacity_profile(vol, bins=8)
        assert w[0] == 0.0 and w[-1] == 0.0


class TestSuggestTransferFunction:
    def test_produces_valid_tf(self, jet_volume):
        tf = suggest_transfer_function(jet_volume)
        rgba = tf.sample(np.linspace(0, 1, 50))
        assert rgba.min() >= 0.0 and rgba.max() <= 1.0

    def test_renderable_and_shows_features(self, jet_volume, small_camera):
        tf = suggest_transfer_function(jet_volume)
        img = render_volume(jet_volume, tf, small_camera)
        alpha = img[..., 3]
        # features visible, background dominated by transparency
        assert alpha.max() > 0.05
        assert (alpha < 0.02).mean() > 0.4

    def test_max_opacity_respected(self, jet_volume):
        tf = suggest_transfer_function(jet_volume, max_opacity=0.25)
        rgba = tf.sample(np.linspace(0, 1, 200))
        assert rgba[:, 3].max() <= 0.25 + 1e-6

    def test_gray_mode(self, jet_volume):
        tf = suggest_transfer_function(jet_volume, warm=False)
        rgba = tf.sample(np.asarray([0.9]))
        r, g, b, _ = rgba[0]
        assert r == pytest.approx(g, abs=1e-5)
        assert g == pytest.approx(b, abs=1e-5)

    def test_validation(self, jet_volume):
        with pytest.raises(ValueError):
            suggest_transfer_function(jet_volume, max_opacity=0.0)
