"""Sharded-serving invariants: routing, resume, encode pool, merged stats.

The properties the scale-out layer promises:

- a session name routes to the same shard every time — including a
  reconnect-with-resume, which must land where the parked resume state
  lives;
- changing the shard count moves a *bounded* slice of the keyspace
  (consistent hashing, not modulo);
- a resume that fell off the retained history window gets an explicit
  ``gap`` signal, never a silent skip;
- an encode-pool worker crash is retried on a live worker without the
  caller noticing and without a duplicate cache fill;
- merged stats never divide by zero and never multiply-count the
  frames the router offered to every shard.
"""

import os
import signal
import threading

import numpy as np
import pytest

from repro.compress import get_codec
from repro.devtools.locktrace import checked
from repro.devtools.waiting import wait_until
from repro.serve import (
    EncodeFailed,
    EncodePool,
    FrameCache,
    QualityTier,
    ServeStats,
    SessionBroker,
    SessionRouter,
    TierLadder,
    shard_for,
)
from repro.serve.stats import SessionStats

#: lossless, stride-free ladder so frame identity can be asserted exactly
LOSSLESS = TierLadder(
    (QualityTier("full", "lzo"), QualityTier("low", "rle"))
)


def _frames(n, size=16):
    rng = np.random.default_rng(11)
    return [rng.integers(0, 255, (size, size, 3), dtype=np.uint8)
            for _ in range(n)]


class TestShardFor:
    def test_deterministic_and_matches_router(self):
        names = [f"viewer{i}" for i in range(50)]
        with SessionRouter(shards=3, ladder=LOSSLESS) as router:
            for name in names:
                owner = shard_for(name, router.shard_names())
                assert owner == shard_for(name, router.shard_names())
                assert owner == router.shard_of(name)

    def test_scale_out_moves_bounded_slice_to_new_shard_only(self):
        names = [f"session-{i}" for i in range(1000)]
        four = [f"shard{i}" for i in range(4)]
        five = four + ["shard4"]
        before = {n: shard_for(n, four) for n in names}
        after = {n: shard_for(n, five) for n in names}
        moved = [n for n in names if before[n] != after[n]]
        # consistent hashing: the only sessions that move are the ones
        # the *new* shard now owns — survivors keep every other key
        assert all(after[n] == "shard4" for n in moved)
        # and the moved slice is roughly 1/5 of the keyspace, not all
        # of it (modulo hashing would reshuffle ~80%)
        assert 0.05 < len(moved) / len(names) < 0.40

    def test_every_shard_owns_sessions(self):
        names = [f"s{i}" for i in range(2000)]
        shard_names = [f"shard{i}" for i in range(8)]
        owners = {shard_for(n, shard_names) for n in names}
        assert owners == set(shard_names)

    def test_empty_shard_set_rejected(self):
        with pytest.raises(ValueError):
            shard_for("viewer0", [])


class TestSessionRouter:
    def test_sessions_land_on_owning_shard_and_stats_merge(self):
        frames = _frames(4)
        names = [f"viewer{i:02d}" for i in range(8)]
        with checked(patch_channel=False):
            with SessionRouter(
                shards=3, ladder=LOSSLESS, credit_limit=16
            ) as router:
                handles = {name: router.join(name) for name in names}
                for name in names:
                    owner = router.shard_of(name)
                    assert name in router.shard(owner).sessions()
                for fid, image in enumerate(frames):
                    router.publish(image, time_step=fid, frame_id=fid)
                for name, handle in handles.items():
                    got = [handle.next_frame(timeout=5.0).frame_id
                           for _ in range(len(frames))]
                    assert got == [0, 1, 2, 3], name
                assert router.drain(timeout=5.0)
                stats = router.stats()
        # the router offered each frame to every shard: merged count
        # must not multiply by the shard count
        assert stats.frames_published == len(frames)
        assert stats.shards == 3
        assert set(stats.sessions) == set(names)
        per_shard = router.shard_stats()
        assert sum(len(s.sessions) for s in per_shard.values()) == len(names)

    def test_rejoin_resumes_on_the_same_shard(self):
        frames = _frames(3)
        with checked(patch_channel=False):
            with SessionRouter(
                shards=3, ladder=LOSSLESS, credit_limit=8
            ) as router:
                handle = router.join("wanA")
                owner = router.shard_of("wanA")
                for fid, image in enumerate(frames):
                    router.publish(image, time_step=fid, frame_id=fid)
                for _ in frames:
                    handle.next_frame(timeout=5.0)
                router.drain(timeout=5.0)
                # unclean departure parks resume state on the owner
                router.leave("wanA", resumable=True)
                resumed = router.join("wanA", resume_from=len(frames))
                assert resumed.resumed
                assert router.shard_of("wanA") == owner
                router.publish(frames[0], time_step=3, frame_id=3)
                assert resumed.next_frame(timeout=5.0).frame_id == 3
                assert router.shard(owner).stats().resumes == 1
                for name, snap in router.shard_stats().items():
                    if name != owner:
                        assert snap.resumes == 0

    def test_auto_names_are_unique_across_shards(self):
        with SessionRouter(shards=2, ladder=LOSSLESS) as router:
            handles = [router.join() for _ in range(6)]
            assert len({h.name for h in handles}) == 6
            assert sorted(router.sessions()) == sorted(h.name for h in handles)

    def test_close_is_idempotent_and_rejects_new_work(self):
        router = SessionRouter(shards=2, ladder=LOSSLESS)
        router.close()
        router.close()
        with pytest.raises(RuntimeError):
            router.join("late")
        with pytest.raises(RuntimeError):
            router.publish(_frames(1)[0])


class TestResumeGapSignal:
    def _run_to_history_loss(self, broker):
        """Publish past the retention window with a consuming viewer.

        The broker's credit limit must cover all 12 frames: acks return
        credits asynchronously (the session pump thread), so a tighter
        limit would let a loaded machine drop a frame mid-setup.
        """
        frames = _frames(12)
        handle = broker.join("v")
        for fid, image in enumerate(frames):
            broker.publish(image, time_step=fid, frame_id=fid)
            assert handle.next_frame(timeout=5.0).frame_id == fid
        broker.leave("v", resumable=True)
        return frames

    def test_resume_past_history_gets_explicit_gap(self):
        with SessionBroker(
            ladder=LOSSLESS, history_frames=4, credit_limit=16
        ) as broker:
            self._run_to_history_loss(broker)
            # ids 0..7 were evicted; resuming from 0 is unrecoverable
            handle = broker.join("v", resume_from=0)
            frame = handle.next_frame(timeout=5.0)
            assert frame.frame_id == 8  # oldest retained frame
            assert handle.gaps == [(0, 8)]
            assert broker.stats().resume_gaps == 1

    def test_resume_inside_history_has_no_gap(self):
        with SessionBroker(
            ladder=LOSSLESS, history_frames=4, credit_limit=16
        ) as broker:
            self._run_to_history_loss(broker)
            handle = broker.join("v", resume_from=10)
            assert handle.next_frame(timeout=5.0).frame_id == 10
            assert handle.gaps == []
            assert broker.stats().resume_gaps == 0

    def test_resume_beyond_newest_waits_without_gap(self):
        with SessionBroker(
            ladder=LOSSLESS, history_frames=4, credit_limit=16
        ) as broker:
            frames = self._run_to_history_loss(broker)
            handle = broker.join("v", resume_from=12)
            broker.publish(frames[0], time_step=12, frame_id=12)
            assert handle.next_frame(timeout=5.0).frame_id == 12
            assert handle.gaps == []
            assert broker.stats().resume_gaps == 0


class TestEncodePool:
    def test_worker_crash_retried_without_duplicate_fill(self):
        image = _frames(1, size=24)[0]
        key = (0, "rle", None)
        with checked(patch_channel=False):
            with EncodePool(2) as pool:
                victim = pool._workers[0].process
                victim.kill()
                wait_until(lambda: not victim.is_alive(), timeout=5.0,
                           message="victim worker did not die")
                cache = FrameCache(max_bytes=1 << 20)
                fills = []

                def fill():
                    fills.append(1)
                    # pinned onto the dead worker: the collector must
                    # respawn it and replay the task on a live one
                    return pool.encode(image, "rle", key=key, _worker=0)

                payload = cache.get_or_encode(key, fill)
                assert np.array_equal(
                    get_codec("rle").decode_image(payload), image
                )
                # the crash stayed invisible: one fill, one completed
                # encode, no duplicate cache entry
                assert len(fills) == 1
                assert cache.get_or_encode(key, fill) == payload
                assert len(fills) == 1
                snap = pool.stats_snapshot()
                assert snap["worker_restarts"] >= 1
                assert snap["retries"] >= 1
                assert snap["encodes"] == 1

    def test_concurrent_same_key_coalesces_to_one_encode(self):
        image = _frames(1, size=48)[0]
        key = (7, "lzo", None)
        with EncodePool(1) as pool:
            # freeze the lone worker: the first keyed request provably
            # stays in flight until we thaw it, so the second request
            # must piggyback instead of winning a submission race
            worker = pool._workers[0].process
            os.kill(worker.pid, signal.SIGSTOP)
            results = []

            def request():
                results.append(pool.encode(image, "lzo", key=key))

            threads = [threading.Thread(target=request) for _ in range(2)]
            try:
                threads[0].start()
                wait_until(lambda: key in pool._inflight, timeout=5.0,
                           message="keyed encode never became in-flight")
                threads[1].start()
                wait_until(
                    lambda: pool.stats_snapshot()["coalesced"] == 1,
                    timeout=5.0,
                    message="second request never coalesced",
                )
            finally:
                os.kill(worker.pid, signal.SIGCONT)
            for t in threads:
                t.join(timeout=30.0)
            assert results[0] == results[1]
            snap = pool.stats_snapshot()
            assert snap["coalesced"] == 1
            assert snap["encodes"] == 1

    def test_worker_codec_error_raises_typed(self):
        image = _frames(1)[0]
        with EncodePool(1) as pool:
            with pytest.raises(EncodeFailed):
                pool.encode(image, "no-such-codec")

    def test_timeout_falls_back_inline(self):
        image = _frames(1)[0]
        with EncodePool(1) as pool:
            payload = pool.encode(image, "rle", timeout=0.0)
            assert np.array_equal(
                get_codec("rle").decode_image(payload), image
            )
            assert pool.stats_snapshot()["inline_fallbacks"] == 1

    def test_closed_pool_rejects_encodes(self):
        pool = EncodePool(1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError):
            pool.encode(_frames(1)[0], "rle")


class TestServeStatsMerge:
    def test_empty_merge_never_divides_by_zero(self):
        merged = ServeStats.merge([])
        assert merged.shards == 1
        assert merged.cache_hit_ratio == 0.0
        assert "published 0 frames" in merged.summary()

    def test_merge_sums_counters_and_maxes_published(self):
        a = ServeStats(
            sessions={"v0": SessionStats(name="v0", frames_sent=4)},
            frames_published=10, encodes=3, cache_hits=6, cache_misses=2,
            resumes=1, resume_gaps=1,
        )
        b = ServeStats(
            sessions={"v1": SessionStats(name="v1", frames_sent=9)},
            frames_published=10, encodes=5, cache_hits=0, cache_misses=0,
            malformed_controls=2,
        )
        merged = ServeStats.merge([a, b])
        assert merged.shards == 2
        # each shard saw the same router-published frames: max, not sum
        assert merged.frames_published == 10
        assert merged.encodes == 8
        assert merged.cache_hits == 6 and merged.cache_misses == 2
        assert merged.cache_hit_ratio == pytest.approx(0.75)
        assert merged.resumes == 1 and merged.resume_gaps == 1
        assert merged.malformed_controls == 2
        assert set(merged.sessions) == {"v0", "v1"}
        assert merged.total_frames_sent == 13
        assert "across 2 shards" in merged.summary()
