"""Unit tests for perspective projection."""

import numpy as np
import pytest

from repro.render import (
    Camera,
    TransferFunction,
    composite_bricks,
    decompose,
    render_volume,
    visibility_order,
)


@pytest.fixture(scope="module")
def blob():
    n = 24
    x, y, z = np.mgrid[0:n, 0:n, 0:n].astype(np.float32) / (n - 1)
    r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2
    return np.exp(-r2 / 0.02).astype(np.float32)


def persp(**kw):
    defaults = dict(image_size=(32, 32), projection="perspective")
    defaults.update(kw)
    return Camera(**defaults)


class TestPerspectiveCamera:
    def test_rays_per_pixel_directions(self):
        cam = persp(image_size=(8, 12))
        origins, directions = cam.rays()
        assert origins.shape == (96, 3)
        assert directions.shape == (96, 3)
        assert np.allclose(np.linalg.norm(directions, axis=1), 1.0)

    def test_all_rays_from_eye(self):
        cam = persp()
        origins, _ = cam.rays()
        assert np.allclose(origins, origins[0])
        assert np.allclose(origins[0], cam.eye_position)

    def test_rays_diverge(self):
        cam = persp(image_size=(16, 16))
        _, directions = cam.rays()
        spread = directions.max(axis=0) - directions.min(axis=0)
        assert spread.max() > 0.1

    def test_center_ray_is_forward(self):
        cam = persp(image_size=(15, 15))
        _, directions = cam.rays()
        center = directions[15 * 7 + 7]
        assert np.allclose(center, cam.view_direction, atol=1e-6)

    def test_orthographic_has_no_eye(self):
        assert Camera().eye_position is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Camera(projection="isometric")
        with pytest.raises(ValueError):
            persp(distance=0)
        with pytest.raises(ValueError):
            persp(fov=0)
        with pytest.raises(ValueError):
            persp(fov=200)


class TestPerspectiveRendering:
    def test_blob_visible_and_centered(self, blob):
        tf = TransferFunction.grayscale(opacity=0.5)
        img = render_volume(blob, tf, persp(image_size=(33, 33)))
        alpha = img[..., 3]
        assert alpha.max() > 0.2
        cy, cx = np.unravel_index(np.argmax(alpha), alpha.shape)
        assert abs(cy - 16) <= 2 and abs(cx - 16) <= 2

    def test_closer_eye_magnifies(self, blob):
        tf = TransferFunction.grayscale(opacity=0.5)
        far = render_volume(blob, tf, persp(distance=4.0))
        near = render_volume(blob, tf, persp(distance=1.5))
        assert (near[..., 3] > 0.05).sum() > (far[..., 3] > 0.05).sum()

    def test_roughly_matches_orthographic_at_long_distance(self, blob):
        """Perspective converges to orthographic as the eye recedes."""
        tf = TransferFunction.grayscale(opacity=0.5)
        ortho = render_volume(blob, tf, Camera(image_size=(24, 24)))
        # match footprints: ortho frames sqrt(3)/zoom; at distance D the
        # perspective frame is 2 D tan(fov/2); solve fov for equality
        distance = 50.0
        fov = float(np.degrees(2 * np.arctan(np.sqrt(3.0) / 2 / distance)))
        tele = render_volume(
            blob,
            tf,
            Camera(
                image_size=(24, 24),
                projection="perspective",
                distance=distance,
                fov=fov,
            ),
        )
        corr = np.corrcoef(ortho[..., 3].ravel(), tele[..., 3].ravel())[0, 1]
        assert corr > 0.98

    def test_brick_compositing_matches_full_render(self, blob):
        tf = TransferFunction.grayscale(opacity=0.4)
        cam = persp(image_size=(24, 24), azimuth=40, elevation=25)
        full = render_volume(blob, tf, cam)
        dec = decompose(blob.shape, 4)
        partials = [
            render_volume(b.extract(blob), tf, cam, box=b.box) for b in dec
        ]
        combined = composite_bricks(partials, list(dec), cam)
        assert np.abs(combined - full).mean() < 0.01

    def test_visibility_order_uses_eye(self):
        dec = decompose((16, 16, 16), 2)  # split along x
        cam = persp(azimuth=0, elevation=0)  # eye on -x side... check
        order = visibility_order(list(dec), cam)
        eye = cam.eye_position
        d0 = np.linalg.norm(dec[order[0]].center - eye)
        d1 = np.linalg.norm(dec[order[1]].center - eye)
        assert d0 <= d1
