"""Unit tests for image assembly and the shear-warp baseline renderer."""

import numpy as np
import pytest

from repro.render import (
    Camera,
    ShearWarpRenderer,
    TransferFunction,
    assemble_tiles,
    render_volume,
    split_tiles,
    to_display_rgb,
)


class TestDisplayConversion:
    def test_black_background_default(self):
        rgba = np.zeros((4, 4, 4), dtype=np.float32)
        rgb = to_display_rgb(rgba)
        assert rgb.dtype == np.uint8
        assert rgb.max() == 0

    def test_background_shows_through_transparent(self):
        rgba = np.zeros((2, 2, 4), dtype=np.float32)
        rgb = to_display_rgb(rgba, background=(1.0, 0.5, 0.0))
        assert rgb[0, 0].tolist() == [255, 128, 0]

    def test_opaque_foreground_hides_background(self):
        rgba = np.zeros((1, 1, 4), dtype=np.float32)
        rgba[0, 0] = [0.2, 0.4, 0.6, 1.0]
        rgb = to_display_rgb(rgba, background=(1.0, 1.0, 1.0))
        assert rgb[0, 0].tolist() == [51, 102, 153]

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            to_display_rgb(np.zeros((4, 4, 3), dtype=np.float32))


class TestTiles:
    def test_split_assemble_roundtrip(self, gradient_image):
        for n in (1, 2, 3, 5, 96):
            tiles = split_tiles(gradient_image, n)
            assert len(tiles) == n
            out = assemble_tiles(tiles)
            assert np.array_equal(out, gradient_image)

    def test_strip_heights_balanced(self, gradient_image):
        tiles = split_tiles(gradient_image, 5)
        heights = [t.shape[0] for _, t in tiles]
        assert max(heights) - min(heights) <= 1
        assert sum(heights) == gradient_image.shape[0]

    def test_split_validation(self, gradient_image):
        with pytest.raises(ValueError):
            split_tiles(gradient_image, 0)
        with pytest.raises(ValueError):
            split_tiles(gradient_image, 1000)

    def test_assemble_out_of_order(self, gradient_image):
        tiles = split_tiles(gradient_image, 4)
        out = assemble_tiles(list(reversed(tiles)))
        assert np.array_equal(out, gradient_image)

    def test_assemble_detects_gap(self, gradient_image):
        tiles = split_tiles(gradient_image, 4)[1:]
        with pytest.raises(ValueError):
            assemble_tiles(tiles, height=gradient_image.shape[0])

    def test_assemble_detects_wrong_strip(self, gradient_image):
        tiles = split_tiles(gradient_image, 2)
        bad = [(tiles[0][0], tiles[0][1][:-1]), tiles[1]]
        with pytest.raises(ValueError):
            assemble_tiles(bad)

    def test_assemble_empty(self):
        with pytest.raises(ValueError):
            assemble_tiles([])


class TestShearWarp:
    @pytest.fixture(scope="class")
    def blob(self):
        n = 24
        x, y, z = np.mgrid[0:n, 0:n, 0:n].astype(np.float32) / (n - 1)
        r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2
        return np.exp(-r2 / 0.03).astype(np.float32)

    def test_preprocess_structure(self, blob):
        sw = ShearWarpRenderer(TransferFunction.grayscale(0.4), Camera())
        pre = sw.preprocess(blob)
        assert pre.rgba.shape == blob.shape + (4,)
        assert 0.0 < pre.opaque_fraction <= 1.0
        assert pre.run_starts.size == pre.run_lengths.size
        assert (pre.run_lengths > 0).all()

    def test_run_lengths_sum_to_opaque_count(self, blob):
        sw = ShearWarpRenderer(TransferFunction.grayscale(0.4), Camera())
        pre = sw.preprocess(blob)
        opaque_count = int((pre.rgba[..., 3] > 0).sum())
        assert int(pre.run_lengths.sum()) == opaque_count

    def test_sparse_volume_has_low_opaque_fraction(self, jet_volume):
        sw = ShearWarpRenderer(TransferFunction.jet(), Camera())
        pre = sw.preprocess(jet_volume)
        assert pre.opaque_fraction < 0.3

    def test_render_shape(self, blob):
        cam = Camera(image_size=(40, 40), azimuth=10, elevation=15)
        sw = ShearWarpRenderer(TransferFunction.grayscale(0.4), cam)
        img = sw.render(sw.preprocess(blob))
        assert img.shape == (40, 40, 4)
        assert img[..., 3].max() > 0.1

    def test_roughly_matches_raycast_axis_aligned(self, blob):
        """2-D filtered quality: correlated with ray casting, not equal."""
        cam = Camera(image_size=(32, 32), azimuth=5, elevation=3)
        tf = TransferFunction.grayscale(0.4)
        ref = render_volume(blob, tf, cam)[..., 3]
        sw = ShearWarpRenderer(tf, cam)
        img = sw.render(sw.preprocess(blob))[..., 3]
        # both images must light up a central blob; demand correlation
        corr = np.corrcoef(ref.ravel(), img.ravel())[0, 1]
        assert corr > 0.6

    def test_oblique_view_does_not_crash(self, blob):
        cam = Camera(image_size=(24, 24), azimuth=40, elevation=35)
        sw = ShearWarpRenderer(TransferFunction.grayscale(0.3), cam)
        img = sw.render(sw.preprocess(blob))
        assert np.isfinite(img).all()

    def test_preprocess_required_per_timestep(self, jet_small):
        """The paper's argument: classification depends on the volume, so
        two different time steps need two preprocess passes."""
        sw = ShearWarpRenderer(TransferFunction.jet(), Camera(image_size=(16, 16)))
        pre0 = sw.preprocess(jet_small.volume(0))
        pre5 = sw.preprocess(jet_small.volume(5))
        assert not np.array_equal(pre0.rgba, pre5.rgba)

    def test_perspective_camera_rejected(self):
        cam = Camera(image_size=(16, 16), projection="perspective")
        with pytest.raises(ValueError, match="parallel projection"):
            ShearWarpRenderer(TransferFunction.jet(), cam)
