"""Regression tests for the leaks the DT80x resource-flow analyzer found.

Each test drives the once-leaky path — a failed submit, a constructor
that dies halfway, a dead upstream session, a bogus daemon handshake —
and asserts the resource actually came back: slots recycled, sockets
closed, worker processes reaped.  Where threads are involved the scope
runs under the runtime tracer (:func:`repro.devtools.locktrace.checked`)
so a stranded non-daemon thread fails the test that leaked it.
"""

import socket
import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.daemon import tcp
from repro.daemon.protocol import HelloMessage
from repro.devtools.locktrace import checked
from repro.net.transport import ChannelClosed
from repro.relay.daemon import FrameRelay
from repro.relay.topology import _teardown as topology_teardown
from repro.serve import encode_pool as encode_pool_mod
from repro.serve.encode_pool import EncodePool
from repro.serve.faultrun import _ResilientViewer
from repro.serve.faultrun import _teardown as faultrun_teardown


class TestEncodePoolSubmit:
    def test_bad_image_recycles_the_slot(self):
        """A submit that dies copying the image must return its
        shared-memory slot to the free list, not strand it: before the
        fix every failed submit grew a fresh segment."""
        lying = SimpleNamespace(nbytes=16, shape=(1 << 20,), dtype=np.uint8)
        with checked(patch_channel=False):
            pool = EncodePool(workers=1)
            try:
                with pool._lock:
                    with pytest.raises(TypeError):
                        # slot sized for 16 bytes, copy wants 1 MiB
                        pool._submit_locked(lying, "rle", None, None, None)
                    assert pool._slot_of == {}
                    assert pool._pending == {}
                    assert len(pool._all_slots) == 1
                    assert pool._free_slots == pool._all_slots
                    # the recycled slot satisfies the next submit
                    slot = pool._acquire_slot_locked(16)
                    assert slot is pool._all_slots[0]
                    pool._free_slots.append(slot)
            finally:
                pool.close()

    def test_failed_spawn_reaps_already_forked_workers(self, monkeypatch):
        """When worker N fails to spawn, workers 0..N-1 are already live
        processes; the constructor must tear them down before raising."""
        survivors = []
        real_worker = encode_pool_mod._Worker

        class FlakyWorker(real_worker):
            def __init__(self, ctx, worker_id, results, shared_tracker):
                if worker_id == 1:
                    raise RuntimeError("spawn failed")
                super().__init__(ctx, worker_id, results, shared_tracker)
                survivors.append(self)

        monkeypatch.setattr(encode_pool_mod, "_Worker", FlakyWorker)
        with checked(patch_channel=False):
            with pytest.raises(RuntimeError, match="spawn failed"):
                EncodePool(workers=2)
        assert len(survivors) == 1
        assert not survivors[0].process.is_alive()


class TestConnectDaemon:
    def test_bogus_ack_closes_the_connection(self):
        """A peer that answers the hello with a non-daemon message gets
        a ChannelClosed — and the half-registered socket must be closed,
        not left dangling on the rejected dial."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        outcome: list[str] = []

        def serve():
            sock, _ = listener.accept()
            conn = tcp.TcpConnection(sock, name="impostor")
            try:
                conn.recv(timeout=5.0)  # the client's hello
                conn.send(HelloMessage(role="renderer", name="nope").encode())
                try:
                    conn.recv(timeout=5.0)
                    outcome.append("still-open")
                except TimeoutError:
                    outcome.append("still-open")
                except Exception:  # EOF: the client hung up
                    outcome.append("closed")
            finally:
                conn.close()

        with checked(patch_channel=False):
            server = threading.Thread(target=serve, daemon=True)
            server.start()
            try:
                with pytest.raises(ChannelClosed,
                                   match="did not acknowledge"):
                    tcp.connect_daemon(listener.getsockname(), "display",
                                       timeout=5.0)
                server.join(timeout=10.0)
            finally:
                listener.close()
        assert outcome == ["closed"]


class TestTcpServerInit:
    def test_listener_closed_when_bind_fails(self, monkeypatch):
        """A bind failure (port in use, bad interface) must not leak the
        listening fd the constructor already created."""
        created = []
        real_socket = socket.socket

        class RecordingSocket(real_socket):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

        monkeypatch.setattr(tcp.socket, "socket", RecordingSocket)
        with pytest.raises(OSError):
            # TEST-NET-3 address: never a local interface, bind fails
            tcp.TcpDaemonServer(host="203.0.113.1", port=1)
        assert len(created) == 1
        assert created[0].fileno() == -1  # closed


class _CloseRecorder:
    def __init__(self, fail: bool = False, name: str = ""):
        self.fail = fail
        self.name = name
        self.stops = 0
        self.closes = 0
        self.leaves = 0

    def stop(self):
        self.stops += 1
        if self.fail:
            raise RuntimeError(f"stop({self.name}) failed")

    def close(self):
        self.closes += 1
        if self.fail:
            raise RuntimeError(f"close({self.name}) failed")

    def leave(self):
        self.leaves += 1


class TestViewerConstruction:
    def test_thread_start_failure_returns_the_session(self, monkeypatch):
        """If the consumer thread never starts, the freshly joined
        session must be handed back (leave), not parked broker-side
        forever."""
        handle = _CloseRecorder()
        broker = SimpleNamespace(
            join=lambda name, fault_plan=None, retry=None: handle)

        def explode(*args, **kwargs):
            raise RuntimeError("no threads left")

        monkeypatch.setattr(
            "repro.serve.faultrun.threading.Thread", explode)
        with pytest.raises(RuntimeError, match="no threads left"):
            _ResilientViewer(broker, "v0", plan=None)
        assert handle.leaves == 1


class TestRelayReconnect:
    def test_stale_upstream_conn_is_closed_before_redial(self):
        """The dead session's viewer-side fd survives the cut; the
        reconnect path must close it before dialing again."""
        stale_conn = _CloseRecorder()
        stub = SimpleNamespace(
            fault_plan=None,
            _lock=threading.Lock(),
            _upstream_handle=SimpleNamespace(conn=stale_conn),
            _closing=threading.Event(),
            reconnect_timeout=0.01,
        )
        stub._closing.set()  # skip the redial loop: closed mid-reconnect
        assert FrameRelay._reconnect_upstream(stub) is None
        assert stale_conn.closes == 1


class TestTeardownHelpers:
    def test_faultrun_teardown_releases_every_tier_on_failure(self):
        """One viewer blowing up on stop() must not strand the relays or
        the broker behind it; the first failure propagates afterwards."""
        bad_viewer = _CloseRecorder(fail=True, name="v0")
        good_viewer = _CloseRecorder()
        relay = _CloseRecorder()
        broker = _CloseRecorder()
        with pytest.raises(RuntimeError, match=r"stop\(v0\)"):
            faultrun_teardown([bad_viewer, good_viewer], [relay], broker)
        assert good_viewer.stops == 1
        assert relay.closes == 1
        assert broker.closes == 1

    def test_faultrun_teardown_tolerates_unbuilt_broker(self):
        faultrun_teardown([], [], None)  # construction died before tier 1

    def test_topology_teardown_skips_the_killed_relay(self):
        """kill_relay_after already tore one relay down mid-scenario;
        closing it again would be the DT802 double-close the analyzer
        flags."""
        killed = _CloseRecorder(name="relay-0")
        alive = _CloseRecorder(name="relay-1")
        broker = _CloseRecorder()
        topology_teardown([], [killed, alive], "relay-0", broker)
        assert killed.closes == 0
        assert alive.closes == 1
        assert broker.closes == 1
