"""Serving-layer smoke guardrail (``make serve-smoke``).

The fan-out benchmark at tiny scale — 4 viewers, 16 frames — asserting
the structural properties that must survive any broker change: complete
delivery to healthy viewers, encode-once sharing, a warm cache that
actually hits, and a delivered rate floor far below what the broker
really does (so only a structural regression trips it).
"""

import pytest

from repro.serve.fanout import run_fanout, synthetic_frames

pytestmark = pytest.mark.perf_smoke

SMOKE_VIEWERS = 4
SMOKE_FRAMES = 16
#: delivered frames/sec floor, ~10x below a laptop-class core's measured rate
FPS_FLOOR = 20.0


def test_serve_fanout_smoke():
    frames = synthetic_frames(SMOKE_FRAMES, size=64)
    result = run_fanout(SMOKE_VIEWERS, frames, credit_limit=32)

    # every healthy viewer got every frame, encoded exactly once each
    assert result["cold"]["delivered_frames"] == SMOKE_VIEWERS * SMOKE_FRAMES
    assert result["cold"]["encodes"] == SMOKE_FRAMES
    assert result["dropped_frames"] == 0

    # the warm pass re-serves from the cache without re-encoding
    assert result["warm"]["encodes"] == 0
    assert result["warm"]["cache_hit_ratio"] == 1.0

    for label in ("cold", "warm"):
        fps = result[label]["delivered_fps"]
        assert fps >= FPS_FLOOR, f"{label}: {fps:.1f} f/s below {FPS_FLOOR} floor"
