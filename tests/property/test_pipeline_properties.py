"""Property-based tests on scheduling, simulation, and metric invariants."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import PartitionPlan, PerformanceModel, PipelineConfig, simulate_pipeline
from repro.sim.cluster import RWCP_CLUSTER
from repro.sim.costs import JET_PROFILE
from repro.sim.engine import Simulator
from repro.sim.resources import Resource, hold


@given(p=st.integers(1, 128), l=st.integers(1, 128))
@settings(max_examples=100, deadline=None)
def test_partition_plan_invariants(p, l):
    assume(l <= p)
    plan = PartitionPlan(p, l)
    sizes = plan.group_sizes
    assert sum(sizes) == p
    assert max(sizes) - min(sizes) <= 1
    ranks = [r for g in range(l) for r in plan.members(g)]
    assert sorted(ranks) == list(range(p))


@given(p=st.integers(1, 64), l=st.integers(1, 64), steps=st.integers(1, 300))
@settings(max_examples=100, deadline=None)
def test_round_robin_dealing_partitions_steps(p, l, steps):
    assume(l <= p)
    plan = PartitionPlan(p, l)
    dealt = sorted(t for g in range(l) for t in plan.steps_of_group(g, steps))
    assert dealt == list(range(steps))
    for g in range(l):
        for t in plan.steps_of_group(g, steps):
            assert plan.group_of_step(t) == g


@given(
    p_exp=st.integers(0, 6),
    l_exp=st.integers(0, 6),
    steps=st.integers(1, 24),
    pieces=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=25, deadline=None)
def test_simulation_metric_invariants(p_exp, l_exp, steps, pieces):
    assume(l_exp <= p_exp)
    result = simulate_pipeline(
        PipelineConfig(
            n_procs=2**p_exp,
            n_groups=2**l_exp,
            n_steps=steps,
            profile=JET_PROFILE,
            machine=RWCP_CLUSTER,
            image_size=(128, 128),
            n_pieces=pieces,
        )
    )
    m = result.metrics
    assert 0 < m.start_up_latency <= m.overall_time
    assert m.n_frames == steps
    displayed = [f.displayed for f in m.frames]
    assert all(a <= b for a, b in zip(displayed, displayed[1:]))
    if steps > 1:
        expected = (m.overall_time - m.start_up_latency) / (steps - 1)
        assert abs(m.inter_frame_delay - expected) < 1e-9


@given(
    p_exp=st.integers(0, 6),
    l_exp=st.integers(0, 6),
    steps=st.integers(1, 16),
)
@settings(max_examples=25, deadline=None)
def test_model_never_beats_nothing(p_exp, l_exp, steps):
    assume(l_exp <= p_exp)
    model = PerformanceModel(
        machine=RWCP_CLUSTER, profile=JET_PROFILE, pixels=128 * 128
    )
    m = model.predict(PartitionPlan(2**p_exp, 2**l_exp), steps)
    assert m.start_up_latency > 0
    assert m.overall_time >= m.start_up_latency


@given(
    durations=st.lists(st.floats(0.01, 5.0), min_size=1, max_size=20),
    capacity=st.integers(1, 4),
)
@settings(max_examples=60, deadline=None)
def test_resource_conservation(durations, capacity):
    """Total busy time equals the sum of holds; horizon respects capacity."""
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    for d in durations:
        sim.process(hold(sim, res, d))
    horizon = sim.run()
    total = sum(durations)
    assert horizon >= max(durations) - 1e-9
    assert horizon >= total / capacity - 1e-9
    assert res.busy_time + res._in_use == res.busy_time  # all released
    assert abs(res.utilization(horizon) * horizon * capacity - total) < 1e-6


@given(
    p_exp=st.integers(2, 6),
    l_exp=st.integers(0, 4),
    steps=st.integers(8, 48),
)
@settings(max_examples=30, deadline=None)
def test_analytic_model_tracks_simulation(p_exp, l_exp, steps):
    """The closed-form model stays within 30% of the DES across the
    configuration space (it matches exactly when a shared resource
    saturates, and within a fill/drain term otherwise)."""
    assume(l_exp <= p_exp)
    procs, groups = 2**p_exp, 2**l_exp
    model = PerformanceModel(
        machine=RWCP_CLUSTER, profile=JET_PROFILE, pixels=128 * 128
    )
    predicted = model.predict(PartitionPlan(procs, groups), steps)
    simulated = simulate_pipeline(
        PipelineConfig(
            n_procs=procs,
            n_groups=groups,
            n_steps=steps,
            profile=JET_PROFILE,
            machine=RWCP_CLUSTER,
            image_size=(128, 128),
        )
    ).metrics
    rel = abs(predicted.overall_time - simulated.overall_time)
    rel /= simulated.overall_time
    # steady-state approximation: fill/drain effects dominate short runs
    tolerance = 0.30 if steps >= 24 else 0.50
    assert rel < tolerance, (procs, groups, steps, predicted.overall_time,
                             simulated.overall_time)
