"""Property-based tests for the newer subsystems: deflate, subset
viewing, PPM I/O, vector operators, and the autotuner."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.compress import DeflateCodec
from repro.core.subset_viewing import pack_volume_subset, unpack_volume_subset
from repro.data.vectorfields import curl, divergence, velocity_magnitude
from repro.render.ppm import read_ppm, write_ppm

byte_streams = st.one_of(
    st.binary(max_size=1500),
    st.lists(
        st.tuples(st.integers(0, 255), st.integers(1, 150)), max_size=25
    ).map(lambda runs: b"".join(bytes([v]) * n for v, n in runs)),
)


@given(data=byte_streams)
@settings(max_examples=30, deadline=None)
def test_deflate_roundtrip(data):
    codec = DeflateCodec()
    assert codec.decode(codec.encode(data)) == data


@given(
    nx=st.integers(2, 16),
    ny=st.integers(2, 16),
    nz=st.integers(2, 16),
    factor=st.integers(1, 3),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_volume_subset_roundtrip_properties(nx, ny, nz, factor, seed):
    assume(nx // factor >= 1 and ny // factor >= 1 and nz // factor >= 1)
    rng = np.random.default_rng(seed)
    vol = rng.random((nx, ny, nz)).astype(np.float32)
    payload = pack_volume_subset(vol, factor=factor, codec="lzo")
    out, f = unpack_volume_subset(payload)
    assert f == factor
    assert out.shape == (max(nx // factor, 1), max(ny // factor, 1), max(nz // factor, 1))
    assert out.min() >= 0.0 and out.max() <= 1.0
    if factor == 1:
        assert np.abs(out - vol).max() <= 0.5 / 255 + 1e-6
    else:
        # block means stay within the original value range
        assert out.max() <= vol.max() + 0.5 / 255
        assert out.min() >= vol.min() - 0.5 / 255


@given(
    h=st.integers(1, 32),
    w=st.integers(1, 32),
    gray=st.booleans(),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_ppm_roundtrip(tmp_path_factory, h, w, gray, seed):
    rng = np.random.default_rng(seed)
    shape = (h, w) if gray else (h, w, 3)
    img = rng.integers(0, 256, shape, dtype=np.uint8)
    path = tmp_path_factory.mktemp("ppm") / "img.ppm"
    write_ppm(path, img)
    assert np.array_equal(read_ppm(path), img)


@given(
    n=st.integers(6, 14),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_divergence_of_curl_is_zero(n, seed):
    """div(curl(F)) == 0 identically; discretization leaves small noise."""
    rng = np.random.default_rng(seed)
    # smooth random field: low-order trig modes
    x = np.linspace(0, 1, n, dtype=np.float32)
    X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
    field = np.stack(
        [
            np.sin(2 * np.pi * X) * rng.uniform(0.5, 1.5)
            + np.cos(2 * np.pi * Y),
            np.sin(2 * np.pi * Y) * rng.uniform(0.5, 1.5)
            + np.cos(2 * np.pi * Z),
            np.sin(2 * np.pi * Z) * rng.uniform(0.5, 1.5)
            + np.cos(2 * np.pi * X),
        ],
        axis=3,
    ).astype(np.float32)
    w = curl(field)
    div = divergence(w)[2:-2, 2:-2, 2:-2]
    scale = velocity_magnitude(w).mean() + 1e-9
    assert np.abs(div).mean() < 0.5 * scale * n  # bounded discretization noise


@given(
    seed=st.integers(0, 2**31 - 1),
    scale=st.floats(0.1, 10.0),
)
@settings(max_examples=30, deadline=None)
def test_velocity_magnitude_homogeneity(seed, scale):
    """|s·v| == s·|v| for s >= 0."""
    rng = np.random.default_rng(seed)
    field = rng.normal(size=(5, 5, 5, 3)).astype(np.float32)
    lhs = velocity_magnitude(field * scale)
    rhs = velocity_magnitude(field) * scale
    assert np.allclose(lhs, rhs, rtol=1e-4)
