"""Interleaved entropy streams: round-trip properties and format freezes.

Two guarantees are pinned here.  First, the interleaved-lane Huffman blob
(``encode_interleaved``/``decode_interleaved``) inverts for any symbol
stream and any legal lane count.  Second, the *legacy* v1 containers stay
decodable forever: golden byte strings captured from a v1 encoder must
keep producing their known outputs, so a new display daemon can always
drain a stream produced by an old renderer.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compress import get_codec
from repro.compress.base import CodecError
from repro.compress.huffman import (
    build_code,
    decode_interleaved,
    encode_interleaved,
)

# Skewed frequencies exercise long and short code words in one table.
symbol_streams = st.lists(
    st.integers(0, 40).map(lambda v: v * v % 97), min_size=0, max_size=3000
)


def _code_for(symbols, alphabet=97):
    freqs = np.bincount(
        np.asarray(symbols + [0], dtype=np.int64), minlength=alphabet
    )
    return build_code(freqs)


class TestInterleavedRoundtrip:
    @given(symbols=symbol_streams)
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_roundtrip_default_lanes(self, symbols):
        code = _code_for(symbols)
        arr = np.asarray(symbols, dtype=np.uint32)
        blob = encode_interleaved(arr, code)
        out, end = decode_interleaved(blob, 0, arr.size, code)
        assert end == len(blob)
        assert np.array_equal(out, arr)

    @given(
        symbols=symbol_streams,
        lanes=st.one_of(st.integers(1, 8), st.sampled_from([16, 64, 255])),
    )
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_roundtrip_explicit_lanes(self, symbols, lanes):
        code = _code_for(symbols)
        arr = np.asarray(symbols, dtype=np.uint32)
        blob = encode_interleaved(arr, code, lanes=lanes)
        out, end = decode_interleaved(blob, 0, arr.size, code)
        assert end == len(blob)
        assert np.array_equal(out, arr)

    @given(symbols=st.lists(st.integers(0, 5), min_size=8, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_truncation_always_detected(self, symbols):
        code = _code_for(symbols, alphabet=6)
        arr = np.asarray(symbols, dtype=np.uint32)
        blob = encode_interleaved(arr, code)
        with pytest.raises(CodecError):
            decode_interleaved(blob[:-1], 0, arr.size, code)

    @given(data=st.binary(min_size=0, max_size=1500))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_bzip_v1_v2_cross_decode(self, data):
        v1 = get_codec("bzip", stream_version=1)
        v2 = get_codec("bzip", stream_version=2)
        assert v2.decode(v1.encode(data)) == data
        assert v1.decode(v2.encode(data)) == data

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_jpeg_v1_v2_decode_identically(self, seed):
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 256, (24, 24, 3), dtype=np.uint8)
        p1 = get_codec("jpeg", stream_version=1).encode_image(img)
        p2 = get_codec("jpeg", stream_version=2).encode_image(img)
        dec = get_codec("jpeg")
        assert np.array_equal(dec.decode_image(p1), dec.decode_image(p2))


class TestVectorizedEncodeLanes:
    """The vectorized v2 encode engine across lane counts and geometries.

    The lane count changes the container's interleave layout but must
    never change what a decoder reconstructs: for every K the payload has
    to decode bit-for-bit identically to the default-lane encoding, on
    random frames, odd-sized planes (where the chroma grid is ragged) and
    a rendered golden frame alike.
    """

    LANES = (1, 8, None)  # None = the codec's adaptive default

    @given(
        seed=st.integers(0, 2**32 - 1),
        lanes=st.sampled_from(LANES),
        h=st.integers(5, 41),
        w=st.integers(5, 41),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_frames_decode_identically_across_lanes(
        self, seed, lanes, h, w
    ):
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 256, (h, w, 3), dtype=np.uint8)
        ref = get_codec("jpeg").encode_image(img)
        payload = get_codec("jpeg", lanes=lanes).encode_image(img)
        dec = get_codec("jpeg")
        assert np.array_equal(
            dec.decode_image(payload), dec.decode_image(ref)
        )

    @pytest.mark.parametrize("lanes", LANES)
    @pytest.mark.parametrize("shape", [(16, 16), (17, 23), (31, 9)])
    def test_golden_frame_across_lanes_and_odd_planes(self, lanes, shape):
        h, w = shape
        yy, xx = np.mgrid[0:h, 0:w]
        img = np.clip(
            np.stack([xx * 16, yy * 16, (xx + yy) * 8], axis=-1), 0, 255
        ).astype(np.uint8)
        ref = get_codec("jpeg").encode_image(img)
        payload = get_codec("jpeg", lanes=lanes).encode_image(img)
        dec = get_codec("jpeg")
        out = dec.decode_image(payload)
        assert out.shape == img.shape
        assert np.array_equal(out, dec.decode_image(ref))

    @pytest.mark.parametrize("lanes", LANES)
    def test_v1_decode_matches_v2_across_lanes(self, lanes):
        rng = np.random.default_rng(7)
        img = rng.integers(0, 256, (17, 23, 3), dtype=np.uint8)
        p1 = get_codec("jpeg", stream_version=1).encode_image(img)
        p2 = get_codec("jpeg", lanes=lanes).encode_image(img)
        dec = get_codec("jpeg")
        assert np.array_equal(dec.decode_image(p1), dec.decode_image(p2))

    @pytest.mark.parametrize("name", ["lzo", "bzip"])
    def test_lossless_stages_roundtrip_jpeg_payloads(self, name):
        """The two-phase second stages on real v2 jpeg payloads."""
        rng = np.random.default_rng(11)
        img = rng.integers(0, 256, (31, 9, 3), dtype=np.uint8)
        payload = get_codec("jpeg").encode_image(img)
        codec = get_codec(name)
        assert codec.decode(codec.encode(payload)) == payload


class TestLegacyGoldenBytes:
    """Byte strings captured from the v1 encoders.  If these stop decoding,
    newly deployed peers have broken compatibility with live old ones."""

    # bzip stream_version=1 ("RBZP") container of _golden_data()
    BZIP_V1 = bytes.fromhex(
        "52425a501c02000000000800210200001d020000710000003901000002010000"
        "104c601ca5398c6300e00000000000000000000001c000000000000000000000"
        "0000000000000000000000000000000000000000000000000000000000000000"
        "00380e0380070180000000000000000038000000000000000000000000000000"
        "0000000000000000000000000000000000000000000000000000000000000000"
        "0000000000000000000000000000000000000000000000000000000000000000"
        "01c028000000fd82649dc9b51b931c49c936a372704e46742ebed4bd54ba4b18"
        "d55621e7457ba97ca976f19d7f80"
    )

    @staticmethod
    def _golden_data():
        return (
            bytes((np.arange(300) * 7 % 11).astype(np.uint8)) + b"golden" * 40
        )

    def test_bzip_v1_golden_decodes(self):
        assert self.BZIP_V1.startswith(b"RBZP")
        assert get_codec("bzip").decode(self.BZIP_V1) == self._golden_data()

    def test_v1_reencode_matches_golden(self):
        """The v1 encoder is still frozen too (old peers must also be able
        to decode what a back-level-configured new peer emits)."""
        enc = get_codec("bzip", stream_version=1).encode(self._golden_data())
        assert enc == self.BZIP_V1

    def test_jpeg_v1_golden_decodes(self):
        yy, xx = np.mgrid[0:16, 0:16]
        img = np.clip(
            np.stack([xx * 16, yy * 16, (xx + yy) * 8], axis=-1), 0, 255
        ).astype(np.uint8)
        p1 = get_codec("jpeg", stream_version=1, quality=50).encode_image(img)
        out = get_codec("jpeg").decode_image(p1)
        assert out.shape == (16, 16, 3)
        assert hashlib.sha256(out.tobytes()).hexdigest() == (
            "4552cb709b33c3767b7cf7bc89677689bf7bcef47b05bce547ae9f2369e22e7a"
        )
