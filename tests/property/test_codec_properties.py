"""Property-based tests: every lossless codec inverts on arbitrary bytes."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compress import get_codec
from repro.compress.bwt import bwt_forward, bwt_inverse
from repro.compress.mtf import mtf_forward, mtf_inverse

LOSSLESS = ["raw", "rle", "lzo", "bzip"]

# Mixed strategy: arbitrary bytes plus run-heavy byte streams (the codecs'
# happy path), so shrinking explores both regimes.
byte_streams = st.one_of(
    st.binary(max_size=2000),
    st.lists(
        st.tuples(st.integers(0, 255), st.integers(1, 200)), max_size=30
    ).map(lambda runs: b"".join(bytes([v]) * n for v, n in runs)),
)


@pytest.mark.parametrize("name", LOSSLESS)
@given(data=byte_streams)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_lossless_roundtrip(name, data):
    codec = get_codec(name)
    assert codec.decode(codec.encode(data)) == data


@given(data=byte_streams)
@settings(max_examples=40, deadline=None)
def test_bwt_roundtrip(data):
    last, primary = bwt_forward(data)
    assert len(last) == len(data)
    assert bwt_inverse(last, primary) == data


@given(data=byte_streams)
@settings(max_examples=40, deadline=None)
def test_bwt_is_permutation(data):
    last, _ = bwt_forward(data)
    assert sorted(last) == sorted(data)


@given(data=byte_streams)
@settings(max_examples=40, deadline=None)
def test_mtf_roundtrip(data):
    assert mtf_inverse(mtf_forward(data)) == data


@given(data=st.binary(max_size=500))
@settings(max_examples=30, deadline=None)
def test_framediff_stream_roundtrip(data):
    enc = get_codec("framediff")
    dec = get_codec("framediff")
    # send the same buffer twice: key frame then delta
    for _ in range(2):
        assert dec.decode(enc.encode(data)) == data


@given(
    h=st.integers(1, 40),
    w=st.integers(1, 40),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_lossless_image_roundtrip(h, w, seed):
    rng = np.random.default_rng(seed)
    img = rng.integers(0, 256, (h, w, 3), dtype=np.uint8)
    for name in ("rle", "lzo"):
        codec = get_codec(name)
        assert np.array_equal(codec.decode_image(codec.encode_image(img)), img)


@given(
    h=st.integers(8, 48),
    w=st.integers(8, 48),
    quality=st.integers(5, 95),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_jpeg_decodes_to_same_shape_and_bounded_error(h, w, quality, seed):
    rng = np.random.default_rng(seed)
    # smooth image: random low-frequency field
    base = rng.normal(size=(4, 4, 3))
    img = np.clip(
        np.kron(base, np.ones((16, 16, 1)))[:h, :w] * 40 + 128, 0, 255
    ).astype(np.uint8)
    codec = get_codec("jpeg", quality=quality)
    out = codec.decode_image(codec.encode_image(img))
    assert out.shape == img.shape
    # even at low quality, mean error on smooth content stays bounded
    assert np.abs(out.astype(float) - img).mean() < 40.0


@given(
    alphabet=st.integers(2, 300),
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(1, 3000),
    skew=st.floats(0.5, 8.0),
)
@settings(max_examples=40, deadline=None)
def test_huffman_roundtrip_arbitrary_alphabets(alphabet, seed, n, skew):
    """Canonical Huffman inverts for any alphabet size and skew."""
    import numpy as np

    from repro.compress.huffman import build_code, decode_symbols, encode_symbols

    rng = np.random.default_rng(seed)
    weights = rng.random(alphabet) ** skew
    weights /= weights.sum()
    symbols = rng.choice(alphabet, size=n, p=weights)
    freqs = np.bincount(symbols, minlength=alphabet)
    code = build_code(freqs)
    payload, nbits = encode_symbols(symbols, code)
    out = decode_symbols(payload, nbits, n, code)
    assert np.array_equal(out, symbols)
    # and the code is close to the entropy bound (within 1 bit/symbol
    # plus the canonical length-limit slack)
    probs = freqs[freqs > 0] / n
    entropy = float(-(probs * np.log2(probs)).sum())
    assert nbits / n <= entropy + 1.0 + 1e-9


@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(0, 400),
)
@settings(max_examples=40, deadline=None)
def test_huffman_table_serialization_roundtrip(seed, n):
    import numpy as np

    from repro.compress.huffman import HuffmanCode, build_code

    rng = np.random.default_rng(seed)
    freqs = rng.integers(0, 50, max(n, 2))
    code = build_code(freqs)
    blob = code.to_bytes()
    restored, offset = HuffmanCode.from_bytes(blob)
    assert offset == len(blob)
    assert np.array_equal(restored.lengths, code.lengths)
    assert np.array_equal(restored.codes, code.codes)
