"""Property-based tests on rendering and compositing invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render import Camera, TransferFunction, decompose, over, render_volume
from repro.render.image import assemble_tiles, split_tiles


def premultiplied_images(shape=(4, 4)):
    def build(seed):
        rng = np.random.default_rng(seed)
        alpha = rng.random(shape + (1,)).astype(np.float32)
        rgb = rng.random(shape + (3,)).astype(np.float32) * alpha
        return np.concatenate([rgb, alpha], axis=2)

    return st.integers(0, 2**31 - 1).map(build)


@given(a=premultiplied_images(), b=premultiplied_images())
@settings(max_examples=50, deadline=None)
def test_over_output_stays_premultiplied_and_bounded(a, b):
    out = over(a, b)
    assert (out >= -1e-6).all()
    assert (out[..., 3] <= 1.0 + 1e-5).all()
    assert (out[..., :3] <= out[..., 3:4] + 1e-5).all()


@given(a=premultiplied_images(), b=premultiplied_images(), c=premultiplied_images())
@settings(max_examples=50, deadline=None)
def test_over_associativity(a, b, c):
    left = over(over(a, b), c)
    right = over(a, over(b, c))
    assert np.allclose(left, right, atol=1e-5)


@given(a=premultiplied_images())
@settings(max_examples=25, deadline=None)
def test_over_identity_with_transparent(a):
    clear = np.zeros_like(a)
    assert np.allclose(over(clear, a), a, atol=1e-7)
    assert np.allclose(over(a, clear), a, atol=1e-7)


@given(
    nx=st.integers(4, 24),
    ny=st.integers(4, 24),
    nz=st.integers(4, 24),
    n=st.integers(1, 8),
)
@settings(max_examples=50, deadline=None)
def test_decompose_covers_and_balances(nx, ny, nz, n):
    shape = (nx, ny, nz)
    dec = decompose(shape, n)
    assert len(dec) == n
    cover = np.zeros(shape, dtype=np.int32)
    for brick in dec:
        assert all(0 <= a < b <= s for (a, b), s in zip(brick.index_ranges, shape))
        cover[brick.slices] += 1
    assert (cover >= 1).all()


@given(
    h=st.integers(2, 64),
    w=st.integers(1, 16),
    seed=st.integers(0, 2**31 - 1),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_split_assemble_inverse(h, w, seed, data):
    n = data.draw(st.integers(1, h))
    rng = np.random.default_rng(seed)
    img = rng.integers(0, 256, (h, w, 3), dtype=np.uint8)
    assert np.array_equal(assemble_tiles(split_tiles(img, n)), img)


@given(az=st.floats(-360, 360), el=st.floats(-89, 89))
@settings(max_examples=50, deadline=None)
def test_camera_basis_always_orthonormal(az, el):
    cam = Camera(azimuth=az, elevation=el)
    right, up, fwd = cam.basis()
    eye = np.stack([right, up, fwd])
    assert np.allclose(eye @ eye.T, np.eye(3), atol=1e-9)


@given(
    seed=st.integers(0, 2**31 - 1),
    az=st.floats(0, 360),
    el=st.floats(-80, 80),
)
@settings(max_examples=10, deadline=None)
def test_render_alpha_never_exceeds_one(seed, az, el):
    rng = np.random.default_rng(seed)
    vol = rng.random((10, 10, 10)).astype(np.float32)
    img = render_volume(
        vol,
        TransferFunction.vortex(),
        Camera(image_size=(12, 12), azimuth=az, elevation=el),
    )
    assert img[..., 3].max() <= 1.0 + 1e-5
    assert (img >= -1e-6).all()
