"""Property-based robustness: corrupted payloads never crash decoders.

A WAN corrupts or truncates payloads; every decoder must respond with a
typed error (CodecError / ProtocolError / ValueError / KeyError) or a
well-formed wrong result — never an unhandled IndexError/struct.error
crash or a hang.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import CodecError, get_codec
from repro.daemon.protocol import ProtocolError, decode_message

ACCEPTABLE = (CodecError, ValueError, KeyError)


def _flip(payload: bytes, position: int, new_byte: int) -> bytes:
    position %= max(len(payload), 1)
    return payload[:position] + bytes([new_byte]) + payload[position + 1 :]


@pytest.fixture(scope="module")
def reference_payloads(request):
    img = np.clip(
        np.add.outer(np.arange(32) * 4, np.arange(32) * 3)[..., None]
        + np.array([0, 60, 120]),
        0,
        255,
    ).astype(np.uint8)
    out = {}
    for name in ("rle", "lzo", "bzip", "jpeg", "jpeg+lzo"):
        out[name] = get_codec(name).encode_image(img)
    return out


@pytest.mark.parametrize("name", ["rle", "lzo", "bzip", "jpeg", "jpeg+lzo"])
@given(position=st.integers(0, 10_000), new_byte=st.integers(0, 255))
@settings(max_examples=30, deadline=None)
def test_bitflip_never_crashes(reference_payloads, name, position, new_byte):
    payload = _flip(reference_payloads[name], position, new_byte)
    codec = get_codec(name)
    try:
        out = codec.decode_image(payload)
    except ACCEPTABLE:
        return
    assert isinstance(out, np.ndarray)
    assert out.dtype == np.uint8


@pytest.mark.parametrize("name", ["rle", "lzo", "bzip", "jpeg"])
@given(cut=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_truncation_never_crashes(reference_payloads, name, cut):
    payload = reference_payloads[name]
    truncated = payload[: cut % (len(payload) + 1)]
    codec = get_codec(name)
    try:
        out = codec.decode_image(truncated)
    except ACCEPTABLE:
        return
    assert isinstance(out, np.ndarray)


@given(data=st.binary(max_size=200))
@settings(max_examples=100, deadline=None)
def test_protocol_decode_never_crashes(data):
    try:
        decode_message(data)
    except (ProtocolError, KeyError):
        pass
