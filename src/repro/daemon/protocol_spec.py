"""Machine-readable protocol specification for the framed WAN protocol.

:mod:`repro.daemon.protocol` defines the *syntax* of the wire — the
``RVIZ`` envelope, the message kinds, and the control-tag registry.
This module defines the *semantics*: which endpoint may send which tag
in which state, and what its peer must be prepared to receive.  It is
the committed source of truth that :mod:`repro.devtools.protoflow`
checks the implementation against (rules DT902-DT904), so a dispatch
branch added on one side without the matching handler on the other is
a lint failure, not a silent drop in production.

Endpoints
---------
Five endpoints speak the protocol (the daemon itself is a transparent
forwarder and deliberately has no automaton):

``client``
    A viewer handle (:class:`repro.serve.session.ViewerHandle`).  It
    streams frames from a broker or relay, acknowledges them for
    credit, and can seek or leave.
``broker``
    The serving side of a viewer session
    (:class:`repro.serve.broker.SessionBroker` and the per-viewer
    :class:`repro.serve.session.ViewerSession`).  It delivers frames
    under the credit window, renegotiates tiers, and replays history —
    announcing a ``gap`` first when a resume point has fallen out of
    the retained window.
``relay``
    A WAN edge relay (:mod:`repro.relay.daemon`).  Its upstream face
    ingests the broker stream like a client; its downstream face
    serves viewers like a broker.  Both faces are modelled as states
    of one endpoint because the relay translates between them (an
    upstream ``gap`` must be re-announced downstream).
``renderer`` / ``display``
    The §4.1 daemon pairing: the display sends user controls
    (``view``/``zoom``/``projection``/``colormap``/``set_codec``/
    ``start_renderer``), the renderer applies them and streams frames
    back.

Pseudo-tags
-----------
Frame traffic has no control tag; the spec uses the pseudo-tag
``"frame"`` for :class:`~repro.daemon.protocol.FrameMessage` delivery
so frame-handling dispatch participates in the same conformance
checks.  The ``Hello`` handshake happens before any endpoint state is
entered and is deliberately outside the spec.

Transitions
-----------
``transitions`` maps an event to the successor state.  Events of the
form ``send:<tag>`` / ``recv:<tag>`` are cross-checked against the
state's ``sends``/``receives`` sets; bare words (``join``,
``resume``, ``replayed``, ``serve``) are internal events that exist
only to make every state reachable from ``initial`` — DT904 flags any
state the transition graph cannot reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.daemon.protocol import CONTROL_TAGS

__all__ = [
    "StateSpec",
    "EndpointSpec",
    "ENDPOINTS",
    "SPEC_TAGS",
    "spec_errors",
]

#: pseudo-tag for FrameMessage delivery (frames carry no control tag)
FRAME_TAG = "frame"

#: every tag the spec may reference: the control registry plus frames
SPEC_TAGS = frozenset(CONTROL_TAGS) | {FRAME_TAG}


@dataclass(frozen=True)
class StateSpec:
    """One state of an endpoint automaton.

    ``receives``/``sends`` are the tags legal in this state.
    ``peer_states`` are ``"endpoint.state"`` names this state may be
    paired with; everything in ``sends`` must be receivable in *all*
    of them.  ``transitions`` maps events to successor state names.
    """

    receives: frozenset = frozenset()
    sends: frozenset = frozenset()
    peer_states: frozenset = frozenset()
    transitions: dict = field(default_factory=dict)


@dataclass(frozen=True)
class EndpointSpec:
    """A named endpoint automaton: ``states`` by name plus the
    ``initial`` state every run starts in."""

    name: str
    initial: str
    states: dict

    def receivable(self) -> frozenset:
        """Union of tags this endpoint must handle in some state."""
        out = set()
        for state in self.states.values():
            out |= state.receives
        return frozenset(out)

    def sendable(self) -> frozenset:
        """Union of tags this endpoint emits in some state."""
        out = set()
        for state in self.states.values():
            out |= state.sends
        return frozenset(out)


def _s(*tags):
    return frozenset(tags)


ENDPOINTS: dict[str, EndpointSpec] = {
    "client": EndpointSpec(
        name="client",
        initial="streaming",
        states={
            "streaming": StateSpec(
                receives=_s("frame", "tier", "gap"),
                sends=_s("ack", "seek", "leave"),
                peer_states=_s("broker.serving", "broker.resuming",
                               "relay.downstream"),
                transitions={"send:leave": "closed"},
            ),
            "closed": StateSpec(
                peer_states=_s("broker.departed"),
            ),
        },
    ),
    "broker": EndpointSpec(
        name="broker",
        initial="joining",
        states={
            # a fresh join goes straight to serving; a reconnect with
            # resume_from enters resuming first (history replay)
            "joining": StateSpec(
                transitions={"join": "serving", "resume": "resuming"},
            ),
            "serving": StateSpec(
                receives=_s("ack", "seek", "leave"),
                sends=_s("frame", "tier"),
                peer_states=_s("client.streaming", "relay.ingest"),
                transitions={"recv:leave": "departed"},
            ),
            # replaying retained history after a resume; when the
            # resume point has fallen out of the window the broker
            # announces the lost range as a gap before the replay
            "resuming": StateSpec(
                receives=_s("ack", "seek", "leave"),
                sends=_s("frame", "tier", "gap"),
                peer_states=_s("client.streaming", "relay.ingest"),
                transitions={"replayed": "serving",
                             "recv:leave": "departed"},
            ),
            "departed": StateSpec(
                peer_states=_s("client.closed"),
            ),
        },
    ),
    "relay": EndpointSpec(
        name="relay",
        initial="ingest",
        states={
            # upstream face: consumes the broker (or peer relay)
            # stream, acks for credit; tier and gap announcements from
            # upstream must be absorbed here
            "ingest": StateSpec(
                receives=_s("frame", "tier", "gap"),
                sends=_s("ack"),
                peer_states=_s("broker.serving", "broker.resuming",
                               "relay.downstream"),
                transitions={"serve": "downstream"},
            ),
            # downstream face: serves viewers (or peer relays) out of
            # the local store, re-announcing upstream gaps so players
            # skip unrecoverable frames instead of timing out
            "downstream": StateSpec(
                receives=_s("ack", "seek", "leave"),
                sends=_s("frame", "gap"),
                peer_states=_s("client.streaming", "relay.ingest"),
            ),
        },
    ),
    "renderer": EndpointSpec(
        name="renderer",
        initial="rendering",
        states={
            "rendering": StateSpec(
                receives=_s("view", "zoom", "projection", "colormap",
                            "set_codec", "start_renderer"),
                sends=_s("frame"),
                peer_states=_s("display.viewing"),
            ),
        },
    ),
    "display": EndpointSpec(
        name="display",
        initial="viewing",
        states={
            "viewing": StateSpec(
                receives=_s("frame"),
                sends=_s("view", "zoom", "projection", "colormap",
                         "set_codec", "start_renderer"),
                peer_states=_s("renderer.rendering"),
            ),
        },
    ),
}


def spec_errors() -> list[str]:
    """Internal consistency of the spec itself (not of the code):
    unknown tags, dangling peer/transition references.  Used by the
    protoflow analyzer and the test suite; returns problem strings."""
    problems: list[str] = []
    for name, ep in ENDPOINTS.items():
        if ep.initial not in ep.states:
            problems.append(f"{name}: initial state {ep.initial!r} missing")
        for sname, state in ep.states.items():
            where = f"{name}.{sname}"
            for tag in (state.receives | state.sends) - SPEC_TAGS:
                problems.append(f"{where}: unknown tag {tag!r}")
            for peer in state.peer_states:
                pep, _, pstate = peer.partition(".")
                if pep not in ENDPOINTS or \
                        pstate not in ENDPOINTS[pep].states:
                    problems.append(f"{where}: dangling peer {peer!r}")
            for event, target in state.transitions.items():
                if target not in ep.states:
                    problems.append(
                        f"{where}: transition {event!r} -> missing "
                        f"state {target!r}")
                verb, _, tag = event.partition(":")
                if verb == "send" and tag not in state.sends:
                    problems.append(
                        f"{where}: transition on send:{tag} but {tag!r} "
                        f"is not in sends")
                if verb == "recv" and tag not in state.receives:
                    problems.append(
                        f"{where}: transition on recv:{tag} but {tag!r} "
                        f"is not in receives")
    return problems
