"""Display interface: decompression, assembly, and the control panel path.

"The display interface provides three basic functions: image
decompression, image assembly, and communication to and from the display
daemon."  ``next_frame()`` blocks until all pieces of the next frame id
have arrived, decompresses each (multiple pieces = the parallel
compression mode whose decode cost Figure 10 studies), assembles them,
and returns the displayable image.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from repro.compress import Codec, get_codec
from repro.compress.context import CodecContext
from repro.daemon.display_daemon import DisplayDaemon
from repro.daemon.protocol import ControlMessage, FrameMessage, decode_message
from repro.net.transport import ChannelClosed, FramedConnection
from repro.render.image import assemble_tiles

__all__ = ["DisplayInterface", "ReceivedFrame"]


class ReceivedFrame:
    """A fully decoded frame plus its transport statistics."""

    def __init__(
        self,
        frame_id: int,
        time_step: int,
        image: np.ndarray,
        payload_bytes: int,
        n_pieces: int,
    ):
        self.frame_id = frame_id
        self.time_step = time_step
        self.image = image
        self.payload_bytes = payload_bytes
        self.n_pieces = n_pieces

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ReceivedFrame id={self.frame_id} step={self.time_step} "
            f"{self.image.shape} {self.payload_bytes}B/{self.n_pieces}pc>"
        )


class DisplayInterface:  # speaks: display
    """The remote user's endpoint.

    Codec instances are cached per name so stateless codecs are reused;
    ``set_codec`` both switches the local decoder default *and* sends the
    control message that re-points every renderer interface.
    """

    def __init__(
        self,
        daemon: DisplayDaemon | None = None,
        name: str = "display",
        connection=None,
    ):
        """Attach either in-process (``daemon=``) or over an established
        transport such as :func:`repro.daemon.tcp.connect_daemon`
        (``connection=``); exactly one must be given."""
        if (daemon is None) == (connection is None):
            raise ValueError("provide exactly one of daemon or connection")
        self.name = name
        if connection is not None:
            self.conn = connection
        else:
            local, remote = FramedConnection.pair(
                f"{name}-local", f"{name}-daemon"
            )
            self.conn = local
            daemon.connect(remote, role="display", name=name)
        self._codecs: dict[str, Codec] = {}
        self._pending: dict[int, dict[int, FrameMessage]] = {}
        self._lock = threading.Lock()
        #: control/hello traffic received with no handler on this end
        self.unknown_controls = 0  # guarded-by: _lock
        # One context for the whole connection: Huffman decode tables,
        # quantization matrices, and scratch buffers persist across frames
        # and are shared by every codec this interface instantiates.
        self.codec_context = CodecContext()

    def _decoder(self, name: str) -> Codec:
        if name not in self._codecs:
            codec = get_codec(name)
            if hasattr(codec, "use_context"):
                codec.use_context(self.codec_context)
            self._codecs[name] = codec
        return self._codecs[name]

    # -- receiving ------------------------------------------------------------

    def next_frame(self, timeout: float | None = 30.0) -> ReceivedFrame:
        """Block until one frame is complete; decompress and assemble it."""
        while True:
            ready = self._pop_ready()
            if ready is not None:
                return self._decode(ready)
            # Zero-copy: the frame's compressed payload stays a memoryview
            # into the received buffer all the way into the codec, which
            # reads it via np.frombuffer without duplicating it.
            msg = decode_message(
                memoryview(self.conn.recv(timeout=timeout)), copy=False
            )
            if isinstance(msg, FrameMessage):
                with self._lock:
                    self._pending.setdefault(msg.frame_id, {})[
                        msg.piece_index
                    ] = msg
            else:
                # the display dispatches no control tags (renderer
                # status broadcasts land here); count, don't vanish
                with self._lock:
                    self.unknown_controls += 1

    def _pop_ready(self) -> list[FrameMessage] | None:
        with self._lock:
            for fid in sorted(self._pending):
                pieces = self._pending[fid]
                n = next(iter(pieces.values())).n_pieces
                if len(pieces) == n:
                    del self._pending[fid]
                    return [pieces[i] for i in range(n)]
        return None

    def _decode(self, pieces: list[FrameMessage]) -> ReceivedFrame:
        first = pieces[0]
        payload_bytes = sum(len(p.payload) for p in pieces)
        if len(pieces) == 1 and first.row_range is None:
            image = self._decoder(first.codec).decode_image(first.payload)
        else:
            tiles = []
            for p in pieces:
                strip = self._decoder(p.codec).decode_image(p.payload)
                if p.row_range is None:
                    raise ValueError("multi-piece frame without row ranges")
                tiles.append((p.row_range, strip))
            height = first.image_shape[0] if first.image_shape else None
            image = assemble_tiles(tiles, height=height)
        return ReceivedFrame(
            frame_id=first.frame_id,
            time_step=first.time_step,
            image=image,
            payload_bytes=payload_bytes,
            n_pieces=len(pieces),
        )

    # -- control (drives the renderer remotely) ---------------------------------

    def send_control(self, tag: str, **params: Any) -> None:
        """Send a tagged message to every renderer interface."""
        self.conn.send(ControlMessage(tag=tag, params=params).encode())

    def set_view(self, azimuth: float, elevation: float) -> None:
        """Push a new viewing position (affects *following* frames)."""
        self.send_control("view", azimuth=azimuth, elevation=elevation)

    def set_colormap(self, positions: list[float], colors: list[list[float]]) -> None:
        """Push a new color map to the renderer."""
        self.send_control("colormap", positions=positions, colors=colors)

    def set_zoom(self, zoom: float) -> None:
        """Push a new magnification (the §5 'change in focus' control)."""
        self.send_control("zoom", zoom=zoom)

    def set_projection(self, projection: str) -> None:
        """Switch the renderer between orthographic and perspective."""
        self.send_control("projection", projection=projection)

    def set_codec(self, name: str, **options: Any) -> None:
        """Instruct the system to change the compression method."""
        self.send_control("set_codec", name=name, options=options)

    def start_renderer(self, **params: Any) -> None:
        """The §4.1 'start the renderer' daemon command."""
        self.send_control("start_renderer", **params)

    def close(self) -> None:
        self.conn.close()
