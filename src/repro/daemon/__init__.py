"""Compression-based image transport framework (paper §4.1).

Three components, exactly as the paper lays out:

- **renderer interface** (:class:`RendererInterface`) — "provides each
  rendering node with image compression (if not done by the renderer) and
  communication to and from the display daemon";
- **display interface** (:class:`DisplayInterface`) — "provides three
  basic functions: image decompression, image assembly, and communication
  to and from the display daemon";
- **display daemon** (:class:`DisplayDaemon`) — "its main job is to pass
  images from the renderer to the display.  It also allows the display to
  communicate with the renderer … and can accept any number of
  connections from renderer interface and display interface."

Control flows as tagged messages; view/colormap changes travel from the
display to every renderer interface as "remote callbacks" and are
buffered (§5) so in-flight frames are never interrupted.
"""

from repro.daemon.protocol import (
    ControlMessage,
    FrameMessage,
    HelloMessage,
    Message,
    decode_message,
)
from repro.daemon.display_daemon import (
    BroadcastPolicy,
    DeliveryPolicy,
    DisplayDaemon,
)
from repro.daemon.tcp import TcpDaemonServer, connect_daemon
from repro.daemon.renderer_interface import RendererInterface
from repro.daemon.display_interface import DisplayInterface

__all__ = [
    "Message",
    "FrameMessage",
    "ControlMessage",
    "HelloMessage",
    "decode_message",
    "DisplayDaemon",
    "DeliveryPolicy",
    "BroadcastPolicy",
    "TcpDaemonServer",
    "connect_daemon",
    "RendererInterface",
    "DisplayInterface",
]
