"""Wire protocol of the display-daemon framework.

Every message is one transport frame::

    "RVIZ" | u8 kind | u32 header_len | header(JSON, utf-8) | payload

JSON headers keep the protocol extensible (the paper's "tagged message"
user-control path carries arbitrary keys); the bulk image payload rides
binary after the header.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Message",
    "FrameMessage",
    "ControlMessage",
    "HelloMessage",
    "decode_message",
    "ProtocolError",
    "MESSAGE_KINDS",
    "CONTROL_TAGS",
]

_MAGIC = b"RVIZ"
_KIND_FRAME = 1
_KIND_CONTROL = 2
_KIND_HELLO = 3

#: every control ``tag`` any endpoint sends or dispatches on.  The
#: devtools lint pass (rule DT501) checks each ``msg.tag == "..."``
#: comparison in the codebase against this registry, so a typo'd or
#: unregistered opcode is a lint error, not a silently ignored message.
CONTROL_TAGS: frozenset[str] = frozenset(
    {
        # viewer -> broker delivery control
        "ack",
        "seek",
        "leave",
        # broker -> viewer notifications
        "tier",
        # resume fell off the retained history window: ids in
        # [params["from"], params["to"]) are unrecoverable
        "gap",
        # user controls (§5 remote callbacks)
        "view",
        "zoom",
        "projection",
        "colormap",
        "set_codec",
        "start_renderer",
    }
)


class ProtocolError(ValueError):
    """Malformed message frame."""


@dataclass(frozen=True)
class Message:
    """Base class; concrete kinds below."""

    def _kind(self) -> int:
        raise NotImplementedError

    def _header(self) -> dict[str, Any]:
        raise NotImplementedError

    def _payload(self) -> bytes:
        return b""

    def encode(self) -> bytes:
        header = json.dumps(self._header(), separators=(",", ":")).encode()
        return (
            _MAGIC
            + struct.pack("<BI", self._kind(), len(header))
            + header
            + bytes(self._payload())
        )


@dataclass(frozen=True)
class FrameMessage(Message):
    """One (sub-)image of one rendered time step.

    ``piece_index``/``n_pieces`` implement parallel compression: each
    compute node ships the strip it composited (``row_range`` rows of the
    full frame); ``n_pieces == 1`` is the assembled-image mode.

    ``payload`` is ``bytes`` normally, or a zero-copy ``memoryview`` into
    the transport frame when decoded with ``decode_message(..., copy=False)``.

    ``quality`` is the encoder's quality setting, carried so a payload
    is self-describing as a content address: ``(frame_id, codec,
    quality)`` is exactly a :class:`~repro.serve.cache.FrameCache` key,
    which is what lets a relay store forwarded payloads without
    decoding them.  Pre-existing peers that omit it decode as ``None``.
    """

    frame_id: int
    time_step: int
    codec: str
    payload: bytes | memoryview
    piece_index: int = 0
    n_pieces: int = 1
    row_range: tuple[int, int] | None = None
    image_shape: tuple[int, int] | None = None
    quality: int | None = None

    def _kind(self) -> int:
        return _KIND_FRAME

    def _header(self) -> dict[str, Any]:
        return {
            "frame_id": self.frame_id,
            "time_step": self.time_step,
            "codec": self.codec,
            "piece_index": self.piece_index,
            "n_pieces": self.n_pieces,
            "row_range": list(self.row_range) if self.row_range else None,
            "image_shape": list(self.image_shape) if self.image_shape else None,
            "quality": self.quality,
        }

    def _payload(self) -> bytes:
        return self.payload


@dataclass(frozen=True)
class ControlMessage(Message):
    """A tagged user-control message (the §5 "remote callback").

    ``tag`` names the action (``"view"``, ``"colormap"``,
    ``"set_codec"``, ``"start_renderer"``, or anything user-defined);
    ``params`` carries its arguments.
    """

    tag: str
    params: dict[str, Any] = field(default_factory=dict)

    def _kind(self) -> int:
        return _KIND_CONTROL

    def _header(self) -> dict[str, Any]:
        return {"tag": self.tag, "params": self.params}


@dataclass(frozen=True)
class HelloMessage(Message):
    """Connection registration: ``role`` is "renderer" or "display"."""

    role: str
    name: str = ""

    def _kind(self) -> int:
        return _KIND_HELLO

    def _header(self) -> dict[str, Any]:
        return {"role": self.role, "name": self.name}


def decode_message(frame: bytes | memoryview, *, copy: bool = True) -> Message:
    """Parse one transport frame back into a message object.

    With ``copy=False`` the bulk payload of a :class:`FrameMessage` is
    returned as a ``memoryview`` into ``frame`` instead of a copied
    ``bytes`` — the decode fast path hands that view straight to
    ``np.frombuffer`` without ever duplicating the compressed image.  The
    caller must then keep ``frame`` alive (and unmutated) for as long as
    the message's payload is in use.
    """
    if len(frame) < 9 or bytes(frame[:4]) != _MAGIC:
        raise ProtocolError("bad message magic")
    kind, hlen = struct.unpack_from("<BI", frame, 4)
    if len(frame) < 9 + hlen:
        raise ProtocolError("truncated message header")
    try:
        header = json.loads(bytes(frame[9 : 9 + hlen]).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad message header: {exc}") from exc
    payload = frame[9 + hlen :]
    if copy or not isinstance(frame, memoryview):
        payload = bytes(payload)
    if kind == _KIND_FRAME:
        return FrameMessage(
            frame_id=header["frame_id"],
            time_step=header["time_step"],
            codec=header["codec"],
            payload=payload,
            piece_index=header.get("piece_index", 0),
            n_pieces=header.get("n_pieces", 1),
            row_range=tuple(header["row_range"]) if header.get("row_range") else None,
            image_shape=tuple(header["image_shape"])
            if header.get("image_shape")
            else None,
            quality=header.get("quality"),
        )
    if kind == _KIND_CONTROL:
        return ControlMessage(tag=header["tag"], params=header.get("params", {}))
    if kind == _KIND_HELLO:
        return HelloMessage(role=header["role"], name=header.get("name", ""))
    raise ProtocolError(f"unknown message kind {kind}")


#: wire kind -> message class, the registry decode_message dispatches
#: over.  Adding a message kind means adding it here; the devtools lint
#: pass cross-checks kind-dispatch sites against this mapping.
MESSAGE_KINDS: dict[int, type[Message]] = {
    _KIND_FRAME: FrameMessage,
    _KIND_CONTROL: ControlMessage,
    _KIND_HELLO: HelloMessage,
}
