"""TCP transport for the display-daemon framework.

In the paper the renderer, display daemon and display run as separate
programs on different machines — the daemon "can accept any number of
connections from renderer interface and display interface".  This module
provides that deployment shape over real sockets: a
:class:`TcpDaemonServer` listens on a host/port, peers connect with
:func:`connect_daemon`, and each connection speaks the same framed
protocol as the in-process channels (4-byte big-endian length prefix per
frame), introduced by a ``HelloMessage`` declaring the peer's role.

The returned endpoints implement the :class:`FramedConnection` interface
(``send``/``recv``/``close`` + traffic log), so
:class:`~repro.daemon.renderer_interface.RendererInterface` and
:class:`~repro.daemon.display_interface.DisplayInterface` work over TCP
unchanged via their ``connection=`` hook.
"""

from __future__ import annotations

import socket
import struct
import threading

from repro.daemon.display_daemon import DisplayDaemon
from repro.daemon.protocol import HelloMessage, decode_message
from repro.net.transport import ChannelClosed, TrafficLog

__all__ = ["TcpConnection", "TcpDaemonServer", "connect_daemon"]

_LEN = struct.Struct(">I")
_MAX_FRAME = 256 * 1024 * 1024


class TcpConnection:
    """A framed byte connection over a TCP socket.

    Wire format: ``u32be length | payload`` per frame.  Thread-safe for
    one sender + one receiver.
    """

    def __init__(self, sock: socket.socket, name: str = ""):
        self._sock = sock
        self.name = name
        self.traffic = TrafficLog()
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._closed = False

    def send(self, frame: bytes) -> None:
        header = _LEN.pack(len(frame))
        try:
            with self._send_lock:
                self._sock.sendall(header + frame)
        except OSError as exc:
            raise ChannelClosed(f"tcp send failed: {exc}") from exc
        self.traffic.sent.append(len(frame))

    def _recv_exact(self, n: int, timeout: float | None) -> bytes:
        chunks = []
        remaining = n
        try:
            self._sock.settimeout(timeout)
        except OSError as exc:  # socket already torn down
            raise ChannelClosed(f"tcp socket closed: {exc}") from exc
        while remaining:
            try:
                chunk = self._sock.recv(remaining)
            except socket.timeout:
                raise TimeoutError("tcp recv timed out") from None
            except OSError as exc:
                raise ChannelClosed(f"tcp recv failed: {exc}") from exc
            if not chunk:
                raise ChannelClosed("peer closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self, timeout: float | None = None) -> bytes:
        with self._recv_lock:
            header = self._recv_exact(_LEN.size, timeout)
            (length,) = _LEN.unpack(header)
            if length > _MAX_FRAME:
                raise ChannelClosed(f"tcp frame too large: {length}")
            frame = self._recv_exact(length, timeout)
        self.traffic.received.append(len(frame))
        return frame

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()


class TcpDaemonServer:
    """A display daemon listening for TCP peers.

    Every accepted connection must open with a ``HelloMessage``; the
    daemon then attaches it with the declared role exactly as it does
    for in-process connections.
    """

    def __init__(
        self,
        daemon: DisplayDaemon | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.daemon = daemon if daemon is not None else DisplayDaemon()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        self.address: tuple[str, int] = self._listener.getsockname()
        self._closed = False
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handshake, args=(sock, peer), daemon=True
            ).start()

    def _handshake(self, sock: socket.socket, peer) -> None:
        conn = TcpConnection(sock, name=f"peer-{peer[1]}")
        try:
            hello = decode_message(conn.recv(timeout=10.0))
        except Exception:
            conn.close()
            return
        if not isinstance(hello, HelloMessage):
            conn.close()
            return
        try:
            self.daemon.connect(conn, role=hello.role, name=hello.name)
        except ValueError:
            conn.close()
            return
        # Ack after registration so the peer knows frames/controls sent
        # from now on will be routed (not dropped in the joining race).
        try:
            conn.send(HelloMessage(role="daemon", name="ack").encode())
        except ChannelClosed:
            pass

    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        self.daemon.close()

    def __enter__(self) -> "TcpDaemonServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect_daemon(
    address: tuple[str, int], role: str, name: str = "", timeout: float = 10.0
) -> TcpConnection:
    """Dial a :class:`TcpDaemonServer` and register with ``role``."""
    if role not in ("renderer", "display"):
        raise ValueError(f"unknown role {role!r}")
    sock = socket.create_connection(address, timeout=timeout)
    sock.settimeout(None)
    conn = TcpConnection(sock, name=name or role)
    conn.send(HelloMessage(role=role, name=name).encode())
    # Wait for the server's registration ack (and keep it out of the
    # interface's stream).
    ack = decode_message(conn.recv(timeout=timeout))
    if not isinstance(ack, HelloMessage) or ack.role != "daemon":
        conn.close()
        raise ChannelClosed("daemon did not acknowledge registration")
    # the ack is connection bookkeeping, not traffic the caller sent for
    conn.traffic.received.pop()
    return conn
