"""TCP transport for the display-daemon framework.

In the paper the renderer, display daemon and display run as separate
programs on different machines — the daemon "can accept any number of
connections from renderer interface and display interface".  This module
provides that deployment shape over real sockets: a
:class:`TcpDaemonServer` listens on a host/port, peers connect with
:func:`connect_daemon`, and each connection speaks the same framed
protocol as the in-process channels (4-byte big-endian length prefix per
frame), introduced by a ``HelloMessage`` declaring the peer's role.

The returned endpoints implement the :class:`FramedConnection` interface
(``send``/``recv``/``close`` + traffic log), so
:class:`~repro.daemon.renderer_interface.RendererInterface` and
:class:`~repro.daemon.display_interface.DisplayInterface` work over TCP
unchanged via their ``connection=`` hook.  Like the in-process
endpoints, a :class:`TcpConnection` retransmits
:class:`~repro.net.transport.TransientNetworkError` failures under its
:class:`~repro.net.transport.RetryPolicy` and honours a per-operation
``op_timeout`` default.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

from repro.daemon.display_daemon import DisplayDaemon
from repro.daemon.protocol import HelloMessage, decode_message
from repro.net.transport import (
    ChannelClosed,
    RetryPolicy,
    TrafficLog,
    TransientNetworkError,
)

__all__ = ["TcpConnection", "TcpDaemonServer", "connect_daemon"]

_LEN = struct.Struct(">I")
_MAX_FRAME = 256 * 1024 * 1024


class TcpConnection:
    """A framed byte connection over a TCP socket.

    Wire format: ``u32be length | payload`` per frame.  Thread-safe for
    one sender + one receiver.  ``op_timeout`` (seconds) bounds any
    ``send``/``recv`` that does not pass an explicit timeout; ``retry``
    retransmits transient failures with exponential backoff.
    """

    def __init__(
        self,
        sock: socket.socket,
        name: str = "",
        retry: RetryPolicy | None = None,
        op_timeout: float | None = None,
    ):
        self._sock = sock
        self.name = name
        self.retry = retry or RetryPolicy()
        self.op_timeout = op_timeout
        self.traffic = TrafficLog()
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._closed = False

    def _retrying(self, op, what: str):
        attempts = self.retry.max_attempts
        for attempt in range(1, attempts + 1):
            try:
                return op()
            except TransientNetworkError as exc:
                if attempt >= attempts:
                    raise ChannelClosed(
                        f"{what} failed after {attempts} attempts: {exc}"
                    ) from exc
                self.traffic.note_retransmit()
                time.sleep(self.retry.delay_before(attempt))

    def _send_raw(self, frame: bytes, timeout: float | None) -> None:
        header = _LEN.pack(len(frame))
        try:
            with self._send_lock:
                if timeout is None:
                    self._sock.sendall(header + frame)
                else:
                    # scoped socket timeout; restored so a concurrent
                    # receiver's settimeout is the steady state
                    self._sock.settimeout(timeout)
                    try:
                        self._sock.sendall(header + frame)
                    finally:
                        self._sock.settimeout(None)
        except socket.timeout:
            raise TimeoutError("tcp send timed out") from None
        except OSError as exc:
            raise ChannelClosed(f"tcp send failed: {exc}") from exc

    def send(self, frame: bytes, timeout: float | None = None) -> None:
        if timeout is None:
            timeout = self.op_timeout
        self._retrying(lambda: self._send_raw(frame, timeout), "send")
        self.traffic.note_sent(len(frame))

    def _recv_exact(self, n: int, timeout: float | None) -> bytes:
        chunks = []
        remaining = n
        try:
            self._sock.settimeout(timeout)
        except OSError as exc:  # socket already torn down
            raise ChannelClosed(f"tcp socket closed: {exc}") from exc
        while remaining:
            try:
                chunk = self._sock.recv(remaining)
            except socket.timeout:
                raise TimeoutError("tcp recv timed out") from None
            except OSError as exc:
                raise ChannelClosed(f"tcp recv failed: {exc}") from exc
            if not chunk:
                raise ChannelClosed("peer closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _recv_raw(self, timeout: float | None) -> bytes:
        with self._recv_lock:
            header = self._recv_exact(_LEN.size, timeout)
            (length,) = _LEN.unpack(header)
            if length > _MAX_FRAME:
                raise ChannelClosed(f"tcp frame too large: {length}")
            return self._recv_exact(length, timeout)

    def recv(self, timeout: float | None = None) -> bytes:
        if timeout is None:
            timeout = self.op_timeout
        frame = self._retrying(lambda: self._recv_raw(timeout), "recv")
        self.traffic.note_received(len(frame))
        return frame

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()


class TcpDaemonServer:
    """A display daemon listening for TCP peers.

    Every accepted connection must open with a ``HelloMessage``; the
    daemon then attaches it with the declared role exactly as it does
    for in-process connections.  Handshakes that fail — dead peers,
    malformed frames, a non-hello first message, or a rejected role —
    are dropped and *counted* (``handshake_rejects`` /
    ``reject_reasons``) instead of silently swallowed, so operator
    stats distinguish "nobody connects" from "everybody is rejected".
    """

    #: default grace period for a connecting peer to present its hello
    HANDSHAKE_TIMEOUT_S = 10.0

    def __init__(
        self,
        daemon: DisplayDaemon | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        handshake_timeout_s: float | None = None,
    ):
        self.daemon = daemon if daemon is not None else DisplayDaemon()
        self.handshake_timeout_s = (
            self.HANDSHAKE_TIMEOUT_S
            if handshake_timeout_s is None
            else handshake_timeout_s
        )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listener.bind((host, port))
            self._listener.listen()
            self.address: tuple[str, int] = self._listener.getsockname()
            self._closed = False  # guarded-by: none -- one-way flag, set only by close()
            self._lock = threading.Lock()
            #: peers dropped during the handshake, by failure class
            self.reject_reasons: dict[str, int] = {}  # guarded-by: _lock
            self._handshake_threads: list[threading.Thread] = []  # guarded-by: _lock
            self._accept_thread = threading.Thread(
                target=self._accept_loop, daemon=True)
            self._accept_thread.start()
        except BaseException:
            # bind/listen failure (port in use) must not leak the fd
            self._listener.close()
            raise

    @property
    def handshake_rejects(self) -> int:
        with self._lock:
            return sum(self.reject_reasons.values())

    def _count_reject(self, reason: str) -> None:
        with self._lock:
            self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return
            t = threading.Thread(
                target=self._handshake, args=(sock, peer), daemon=True
            )
            t.start()
            with self._lock:
                self._handshake_threads.append(t)
                # drop finished handshakes so the list stays bounded
                self._handshake_threads = [
                    ht for ht in self._handshake_threads if ht.is_alive()
                ]

    def _handshake(self, sock: socket.socket, peer) -> None:
        conn = TcpConnection(sock, name=f"peer-{peer[1]}")
        # Only the failure modes a hostile/broken peer can cause are
        # handled; anything else is a daemon bug and must surface.
        try:
            hello = decode_message(conn.recv(timeout=self.handshake_timeout_s))
        except TimeoutError:
            self._count_reject("hello_timeout")
            conn.close()
            return
        except ChannelClosed:
            self._count_reject("peer_closed")
            conn.close()
            return
        except ValueError:  # ProtocolError and friends: malformed hello
            self._count_reject("malformed_hello")
            conn.close()
            return
        if not isinstance(hello, HelloMessage):
            self._count_reject("not_a_hello")
            conn.close()
            return
        try:
            self.daemon.connect(conn, role=hello.role, name=hello.name)
        except (ValueError, RuntimeError):  # unknown role / daemon closed
            self._count_reject("bad_role")
            conn.close()
            return
        # Ack after registration so the peer knows frames/controls sent
        # from now on will be routed (not dropped in the joining race).
        try:
            conn.send(HelloMessage(role="daemon", name="ack").encode())
        except ChannelClosed:
            pass

    def close(self, join_timeout: float = 5.0) -> None:
        self._closed = True
        try:
            # shutdown, not just close: closing the fd does not wake a
            # thread already blocked in accept(2); shutdown does
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self.daemon.close()
        # bounded joins so tests never leak accept/handshake threads
        self._accept_thread.join(timeout=join_timeout)
        with self._lock:
            pending = list(self._handshake_threads)
            self._handshake_threads = []
        for t in pending:
            t.join(timeout=join_timeout)

    def __enter__(self) -> "TcpDaemonServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect_daemon(
    address: tuple[str, int], role: str, name: str = "", timeout: float = 10.0
) -> TcpConnection:
    """Dial a :class:`TcpDaemonServer` and register with ``role``."""
    if role not in ("renderer", "display"):
        raise ValueError(f"unknown role {role!r}")
    sock = socket.create_connection(address, timeout=timeout)
    try:
        sock.settimeout(None)
        conn = TcpConnection(sock, name=name or role)
    except BaseException:
        sock.close()
        raise
    try:
        conn.send(HelloMessage(role=role, name=name).encode())
        # Wait for the server's registration ack (and keep it out of the
        # interface's stream).
        ack = decode_message(conn.recv(timeout=timeout))
        if not isinstance(ack, HelloMessage) or ack.role != "daemon":
            raise ChannelClosed("daemon did not acknowledge registration")
        # the ack is connection bookkeeping, not traffic the caller sent for
        conn.traffic.unlog_received()
    except BaseException:
        conn.close()
        raise
    return conn
