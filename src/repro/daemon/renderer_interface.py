"""Renderer interface: the render side's handle on the display daemon.

"The renderer interface provides each rendering node with image
compression (if not done by the renderer) and communication to and from
the display daemon."  It also receives the user's remote callbacks and
buffers them (§5): rendering of in-flight frames is never interrupted —
``drain_controls()`` hands the buffered inputs to the render loop between
frames.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

import numpy as np

from repro.compress import Codec, get_codec
from repro.daemon.display_daemon import DisplayDaemon
from repro.daemon.protocol import ControlMessage, FrameMessage, decode_message
from repro.net.transport import ChannelClosed, FramedConnection
from repro.render.image import split_tiles

__all__ = ["RendererInterface"]


class RendererInterface:  # speaks: renderer
    """One rendering node's (or assembling node's) daemon connection.

    Parameters
    ----------
    daemon:
        The in-process daemon to attach to.
    codec:
        Initial compression method (name or instance).  The display can
        switch it remotely via a ``set_codec`` control message.
    name:
        Identification for logs.
    """

    def __init__(
        self,
        daemon: DisplayDaemon | None = None,
        codec: str | Codec = "jpeg+lzo",
        name: str = "renderer",
        connection=None,
    ):
        """Attach either in-process (``daemon=``) or over an established
        transport such as :func:`repro.daemon.tcp.connect_daemon`
        (``connection=``); exactly one must be given."""
        if (daemon is None) == (connection is None):
            raise ValueError("provide exactly one of daemon or connection")
        self.name = name
        self._codec = get_codec(codec) if isinstance(codec, str) else codec
        self._controls: deque[ControlMessage] = deque()
        self._controls_lock = threading.Lock()
        if connection is not None:
            self.conn = connection
        else:
            local, remote = FramedConnection.pair(
                f"{name}-local", f"{name}-daemon"
            )
            self.conn = local
            daemon.connect(remote, role="renderer", name=name)
        self._listener = threading.Thread(target=self._listen, daemon=True)
        self._listener.start()
        self._frame_counter = 0

    @property
    def codec(self) -> Codec:
        return self._codec

    # -- frames --------------------------------------------------------------

    def send_frame(
        self,
        image: np.ndarray,
        time_step: int,
        *,
        frame_id: int | None = None,
    ) -> int:
        """Compress an assembled ``uint8`` frame and ship it.

        Returns the payload size in bytes (what crossed the wire).
        """
        fid = self._next_id(frame_id)
        payload = self._codec.encode_image(image)
        msg = FrameMessage(
            frame_id=fid,
            time_step=time_step,
            codec=self._codec.name,
            payload=payload,
            image_shape=(image.shape[0], image.shape[1]),
        )
        self.conn.send(msg.encode())
        return len(payload)

    def send_frame_pieces(
        self,
        image: np.ndarray,
        time_step: int,
        n_pieces: int,
        *,
        frame_id: int | None = None,
    ) -> list[int]:
        """Parallel-compression mode: ship the frame as row-strip pieces.

        "As soon as a processor completes the sub-image it is responsible
        for compositing, it compresses and sends the compressed sub-image
        to the display daemon … the step to combine the sub-images is
        waived."  Returns per-piece payload sizes.
        """
        fid = self._next_id(frame_id)
        sizes = []
        for index, (rows, strip) in enumerate(split_tiles(image, n_pieces)):
            payload = self._codec.encode_image(np.ascontiguousarray(strip))
            msg = FrameMessage(
                frame_id=fid,
                time_step=time_step,
                codec=self._codec.name,
                payload=payload,
                piece_index=index,
                n_pieces=n_pieces,
                row_range=rows,
                image_shape=(image.shape[0], image.shape[1]),
            )
            self.conn.send(msg.encode())
            sizes.append(len(payload))
        return sizes

    def send_piece(
        self,
        strip: np.ndarray,
        time_step: int,
        frame_id: int,
        piece_index: int,
        n_pieces: int,
        row_range: tuple[int, int],
        image_shape: tuple[int, int],
    ) -> int:
        """Ship one already-owned strip (per-node parallel compression)."""
        payload = self._codec.encode_image(np.ascontiguousarray(strip))
        msg = FrameMessage(
            frame_id=frame_id,
            time_step=time_step,
            codec=self._codec.name,
            payload=payload,
            piece_index=piece_index,
            n_pieces=n_pieces,
            row_range=row_range,
            image_shape=image_shape,
        )
        self.conn.send(msg.encode())
        return len(payload)

    def _next_id(self, frame_id: int | None) -> int:
        if frame_id is not None:
            return frame_id
        fid = self._frame_counter
        self._frame_counter += 1
        return fid

    # -- user control (§5) -----------------------------------------------------

    def _listen(self) -> None:
        while True:
            try:
                msg = decode_message(self.conn.recv())
            except (ChannelClosed, TimeoutError):
                return
            if isinstance(msg, ControlMessage):
                if msg.tag == "set_codec":
                    self._codec = get_codec(
                        msg.params["name"], **msg.params.get("options", {})
                    )
                with self._controls_lock:
                    self._controls.append(msg)

    def drain_controls(self) -> list[ControlMessage]:
        """Buffered user inputs since the last call.

        The render loop applies these *between* frames — "user inputs …
        are buffered and only affect the rendering of following frames".
        """
        with self._controls_lock:
            out = list(self._controls)
            self._controls.clear()
        return out

    def pending_view(self) -> dict[str, Any] | None:
        """Convenience: the most recent buffered ``view`` change, if any."""
        with self._controls_lock:
            views = [m for m in self._controls if m.tag == "view"]
        return views[-1].params if views else None

    def close(self) -> None:
        self.conn.close()
