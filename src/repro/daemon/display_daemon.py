"""The display daemon: routes frames renderer→display and control back.

One pump thread per connection.  Frames from renderer connections are
buffered per display connection ("the display daemon uses an image buffer
to cope with faster rendering rates"); when a display falls behind and
its buffer fills, the oldest *complete* frames are dropped, keeping the
viewer current — the behaviour an interactive system wants over a slow
WAN.  Control messages from displays fan out to every renderer connection
(the "remote callback" path), and the daemon itself answers
``set_codec``/``start_renderer`` tags by forwarding them, per §4.1.

How a renderer frame reaches the display buffers is a pluggable
:class:`DeliveryPolicy`; the default broadcasts every piece to every
display, and :mod:`repro.serve` layers session-aware adaptive delivery
on the same hook.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable

from repro.daemon.protocol import (
    ControlMessage,
    FrameMessage,
    HelloMessage,
    Message,
    decode_message,
)
from repro.net.transport import ChannelClosed, FramedConnection

__all__ = ["DisplayDaemon", "DeliveryPolicy", "BroadcastPolicy"]


class DeliveryPolicy:
    """Decides how one renderer frame piece reaches the display ports.

    ``deliver`` receives the frame message and a snapshot of the live
    ports and returns how many whole frames were dropped as a result.
    Subclasses can filter, reorder, or transform per port — the serving
    layer uses this to interpose per-viewer admission.
    """

    def deliver(self, msg: FrameMessage, ports: Iterable["_DisplayPort"]) -> int:
        raise NotImplementedError


class BroadcastPolicy(DeliveryPolicy):
    """The paper's behaviour: every display is offered every piece."""

    def deliver(self, msg: FrameMessage, ports: Iterable["_DisplayPort"]) -> int:
        dropped = 0
        for port in ports:
            dropped += port.offer(msg)
        return dropped


class DisplayDaemon:
    """In-process display daemon.

    Parameters
    ----------
    buffer_frames:
        Per-display image-buffer capacity in *frame ids* (0 = unbounded).
        When full, the oldest buffered frame id is dropped whole (all its
        pieces), never a partial frame.
    policy:
        The :class:`DeliveryPolicy` routing renderer frames into display
        buffers (default: broadcast to all).
    """

    def __init__(self, buffer_frames: int = 8, policy: DeliveryPolicy | None = None):
        self.buffer_frames = buffer_frames
        self.policy = policy or BroadcastPolicy()
        self._lock = threading.Lock()
        self._renderers: list[FramedConnection] = []  # guarded-by: _lock
        self._displays: list[_DisplayPort] = []  # guarded-by: _lock
        self._threads: list[threading.Thread] = []  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        #: frame ids dropped because a display buffer overflowed
        self.dropped_frames = 0  # guarded-by: _lock
        #: well-formed messages of a kind this daemon cannot route
        self.unknown_messages = 0  # guarded-by: _lock

    # -- wiring ------------------------------------------------------------

    def connect(self, conn: FramedConnection, role: str, name: str = "") -> None:
        """Attach a connection whose peer plays ``role``.

        Equivalent to the peer sending a ``HelloMessage`` on a listening
        socket; interfaces call this through their constructor.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("connect() on a closed DisplayDaemon")
        if role == "renderer":
            with self._lock:
                self._renderers.append(conn)
            self._spawn(self._pump_renderer, conn)
        elif role == "display":
            port = _DisplayPort(conn, self.buffer_frames)
            with self._lock:
                self._displays.append(port)
            self._spawn(self._pump_display_control, port)
            self._spawn(self._pump_display_frames, port)
        else:
            raise ValueError(f"unknown role {role!r}")

    def _spawn(self, target, *args) -> None:
        t = threading.Thread(target=target, args=args, daemon=True)
        with self._lock:
            if self._closed:
                raise RuntimeError("connect() raced with close()")
            # prune finished pumps so a long-lived daemon serving many
            # transient peers does not accumulate dead Thread objects
            self._threads = [p for p in self._threads if p.is_alive()]
            self._threads.append(t)
        t.start()

    # -- pumps ---------------------------------------------------------------

    def _pump_renderer(self, conn: FramedConnection) -> None:
        """Renderer → daemon: buffer frames toward every display."""
        while True:
            try:
                msg = decode_message(conn.recv())
            except (ChannelClosed, TimeoutError):
                return
            if isinstance(msg, FrameMessage):
                with self._lock:
                    displays = list(self._displays)
                dropped = self.policy.deliver(msg, displays)
                if dropped:
                    with self._lock:
                        self.dropped_frames += dropped
            elif isinstance(msg, HelloMessage):
                continue  # registration handled in connect()
            elif isinstance(msg, ControlMessage):
                # renderer-originated status messages go to displays
                self._broadcast_to_displays(msg)
            else:
                # decode_message grew a kind this pump predates: count
                # it so a protocol extension is never silently eaten
                with self._lock:
                    self.unknown_messages += 1

    def _pump_display_control(self, port: "_DisplayPort") -> None:
        """Display → daemon: forward control to all renderer interfaces."""
        while True:
            try:
                msg = decode_message(port.conn.recv())
            except (ChannelClosed, TimeoutError):
                return
            if isinstance(msg, ControlMessage):
                with self._lock:
                    renderers = list(self._renderers)
                for rconn in renderers:
                    try:
                        rconn.send(msg.encode())
                    except ChannelClosed:
                        pass

    def _pump_display_frames(self, port: "_DisplayPort") -> None:
        """Daemon → display: drain this display's frame buffer in order."""
        while True:
            msg = port.take()
            if msg is None:
                return
            try:
                port.conn.send(msg.encode())
            except ChannelClosed:
                return

    def _broadcast_to_displays(self, msg: Message) -> None:
        with self._lock:
            displays = list(self._displays)
        for port in displays:
            try:
                port.conn.send(msg.encode())
            except ChannelClosed:
                pass

    # -- lifecycle ----------------------------------------------------------

    def close(self, join_timeout: float = 5.0) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            renderers = list(self._renderers)
            displays = list(self._displays)
            threads = list(self._threads)
            self._threads = []
        for conn in renderers:
            conn.close()
        for port in displays:
            port.shutdown()
            port.conn.close()
        # bounded join of every pump so tests never leak threads between
        # cases; a pump that outlives the timeout is a bug worth seeing
        for t in threads:
            t.join(timeout=join_timeout)

    def __enter__(self) -> "DisplayDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _DisplayPort:
    """Per-display outbound frame buffer with whole-frame drop policy.

    Pieces are grouped per frame id as they arrive, so enforcing the
    frame-count cap never rescans the whole backlog: the victim is the
    minimum of at most ``buffer_frames + 1`` keys, and evicting it drops
    exactly that frame's piece deque — O(pieces of the victim), not
    O(total buffered pieces²).
    """

    def __init__(self, conn: FramedConnection, buffer_frames: int):
        self.conn = conn
        self.buffer_frames = buffer_frames
        self._cond = threading.Condition()
        # insertion-ordered: frame id -> its buffered pieces
        self._by_frame: dict[int, deque[FrameMessage]] = {}  # guarded-by: _cond
        self._shutdown = False  # guarded-by: _cond

    def offer(self, msg: FrameMessage) -> int:
        """Queue a frame piece; returns how many frames were dropped."""
        dropped = 0
        with self._cond:
            self._by_frame.setdefault(msg.frame_id, deque()).append(msg)
            if self.buffer_frames:
                while len(self._by_frame) > self.buffer_frames:
                    victim = min(self._by_frame)
                    del self._by_frame[victim]
                    dropped += 1
            self._cond.notify_all()
        return dropped

    def take(self) -> FrameMessage | None:
        with self._cond:
            while not self._by_frame and not self._shutdown:
                self._cond.wait(timeout=0.5)
            if self._by_frame:
                fid = next(iter(self._by_frame))
                pieces = self._by_frame[fid]
                msg = pieces.popleft()
                if not pieces:
                    del self._by_frame[fid]
                return msg
            return None

    def shutdown(self) -> None:
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
