"""Time-varying volume dataset substrate.

The paper evaluates on three CFD datasets that are not publicly available;
this package provides procedural stand-ins with the same grid shapes, step
counts and qualitative image statistics (see DESIGN.md §2):

- :func:`turbulent_jet` — 129x129x104, 150 steps, scalar vorticity of a
  simulated turbulent jet (sparse plume: images compress very well).
- :func:`turbulent_vortex` — 128^3, 100 steps, vorticity magnitude of
  coherent turbulent vortex structures (high pixel coverage: images
  compress poorly — the paper's hard case for the transport stage).
- :func:`shock_mixing` — 640x256x256, 265 steps, three velocity
  components of a shock/bubble mixing problem (the 44 GB dataset: large
  volumes, rendering dominates transport).

Every dataset is lazy: time steps are synthesized (or read from a
:class:`~repro.data.store.DatasetStore`) on demand, mirroring the paper's
"reading large files continuously or periodically throughout the course of
the visualization process".
"""

from repro.data.datasets import (
    DATASET_REGISTRY,
    TimeVaryingDataset,
    get_dataset,
    shock_mixing,
    turbulent_jet,
    turbulent_vortex,
)
from repro.data.store import DatasetStore
from repro.data.vectorfields import (
    abc_flow,
    curl,
    divergence,
    gradient_magnitude,
    normalize_scalar,
    velocity_magnitude,
    vorticity_magnitude,
)

__all__ = [
    "TimeVaryingDataset",
    "DatasetStore",
    "turbulent_jet",
    "turbulent_vortex",
    "shock_mixing",
    "get_dataset",
    "DATASET_REGISTRY",
    "abc_flow",
    "curl",
    "divergence",
    "gradient_magnitude",
    "normalize_scalar",
    "velocity_magnitude",
    "vorticity_magnitude",
]
