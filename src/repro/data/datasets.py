"""Time-varying dataset abstraction and the paper's three test datasets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.fields import jet_field, mixing_field, vortex_field

__all__ = [
    "TimeVaryingDataset",
    "turbulent_jet",
    "turbulent_vortex",
    "shock_mixing",
    "get_dataset",
    "DATASET_REGISTRY",
]


@dataclass
class TimeVaryingDataset:
    """A sequence of scalar volumes produced lazily, one per time step.

    Attributes
    ----------
    name:
        Registry identifier, e.g. ``"turbulent-jet"``.
    shape:
        Grid dimensions ``(nx, ny, nz)`` of one time step.
    n_steps:
        Number of time steps in the sequence.
    generator:
        ``(t_index) -> float32`` volume in [0, 1] of shape ``shape``.
    components:
        Number of stored data components per grid point (3 for the mixing
        dataset's velocity vectors); the scalar used for rendering is
        derived, but storage/I-O sizes account for all components.
    bytes_per_value:
        Stored bytes per component per point (4 for float32, as CFD codes
        typically write).
    """

    name: str
    shape: tuple[int, int, int]
    n_steps: int
    generator: Callable[[int], np.ndarray]
    components: int = 1
    bytes_per_value: int = 4
    description: str = ""
    _cache: dict[int, np.ndarray] = field(default_factory=dict, repr=False)
    cache_steps: int = 0

    def volume(self, t: int) -> np.ndarray:
        """The scalar volume at time step ``t`` (float32, in [0, 1])."""
        if not 0 <= t < self.n_steps:
            raise IndexError(
                f"time step {t} out of range [0, {self.n_steps})"
            )
        if t in self._cache:
            return self._cache[t]
        vol = self.generator(t)
        if vol.shape != self.shape or vol.dtype != np.float32:
            raise ValueError(
                f"generator returned {vol.shape}/{vol.dtype}, "
                f"expected {self.shape}/float32"
            )
        if self.cache_steps:
            if len(self._cache) >= self.cache_steps:
                self._cache.pop(next(iter(self._cache)))
            self._cache[t] = vol
        return vol

    def __len__(self) -> int:
        return self.n_steps

    def __iter__(self):
        return (self.volume(t) for t in range(self.n_steps))

    @property
    def points_per_step(self) -> int:
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def nbytes_per_step(self) -> int:
        """Stored bytes of one time step (all components)."""
        return self.points_per_step * self.components * self.bytes_per_value

    @property
    def total_nbytes(self) -> int:
        """Stored bytes of the full sequence."""
        return self.nbytes_per_step * self.n_steps

    def subset(self, n_steps: int) -> "TimeVaryingDataset":
        """A view over the first ``n_steps`` time steps (e.g. the paper's
        "first 128 time steps of the turbulent jet data set")."""
        if not 1 <= n_steps <= self.n_steps:
            raise ValueError(f"n_steps must be in [1, {self.n_steps}]")
        return TimeVaryingDataset(
            name=f"{self.name}[:{n_steps}]",
            shape=self.shape,
            n_steps=n_steps,
            generator=self.generator,
            components=self.components,
            bytes_per_value=self.bytes_per_value,
            description=self.description,
            cache_steps=self.cache_steps,
        )


def _scaled(shape: tuple[int, int, int], scale: float) -> tuple[int, int, int]:
    if scale <= 0 or scale > 1:
        raise ValueError("scale must be in (0, 1]")
    return tuple(max(8, int(round(n * scale))) for n in shape)


def turbulent_jet(scale: float = 1.0, n_steps: int | None = None) -> TimeVaryingDataset:
    """The paper's primary test dataset: 150 steps of 129x129x104 scalar
    vorticity from a simulated turbulent jet (Figure 3).

    ``scale`` shrinks grid dimensions proportionally for laptop-scale runs;
    the time axis is unaffected unless ``n_steps`` is given.
    """
    shape = _scaled((129, 129, 104), scale)
    steps = n_steps if n_steps is not None else 150
    return TimeVaryingDataset(
        name="turbulent-jet" if scale == 1.0 else f"turbulent-jet@{scale:g}",
        shape=shape,
        n_steps=steps,
        generator=lambda t: jet_field(shape, float(t)),
        description="Numerically simulated turbulent jet, scalar vorticity "
        "on a regular mesh (129x129x104, 150 steps).",
    )


def turbulent_vortex(scale: float = 1.0, n_steps: int | None = None) -> TimeVaryingDataset:
    """100 steps of 128^3 vorticity magnitude from a pseudo-spectral
    simulation of coherent turbulent vortex structures (Figure 4)."""
    shape = _scaled((128, 128, 128), scale)
    steps = n_steps if n_steps is not None else 100
    return TimeVaryingDataset(
        name="turbulent-vortex" if scale == 1.0 else f"turbulent-vortex@{scale:g}",
        shape=shape,
        n_steps=steps,
        generator=lambda t: vortex_field(shape, float(t)),
        description="Pseudo-spectral turbulence, scalar vorticity magnitude "
        "(128^3, 100 steps); renders with high pixel coverage.",
    )


def shock_mixing(scale: float = 1.0, n_steps: int | None = None) -> TimeVaryingDataset:
    """265 steps of 640x256x256 shock/bubble mixing with three velocity
    components per point — the paper's 44 GB dataset (Figure 5)."""
    shape = _scaled((640, 256, 256), scale)
    steps = n_steps if n_steps is not None else 265
    return TimeVaryingDataset(
        name="shock-mixing" if scale == 1.0 else f"shock-mixing@{scale:g}",
        shape=shape,
        n_steps=steps,
        generator=lambda t: mixing_field(shape, float(t), n_steps=steps),
        components=3,
        description="Shock refraction and mixing (AMR resampled to regular "
        "640x256x256, 265 steps, 3 velocity components; >44 GB).",
    )


DATASET_REGISTRY: dict[str, Callable[..., TimeVaryingDataset]] = {
    "turbulent-jet": turbulent_jet,
    "turbulent-vortex": turbulent_vortex,
    "shock-mixing": shock_mixing,
}


def get_dataset(name: str, **kwargs) -> TimeVaryingDataset:
    """Instantiate a registered dataset by name."""
    try:
        factory = DATASET_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}"
        ) from None
    return factory(**kwargs)
