"""Vector fields and derived scalar quantities.

The paper's datasets are derived quantities of CFD vector fields: the jet
and vortex datasets store *vorticity* (magnitude), and the mixing dataset
"three velocity components … at each data point".  This module provides
the vector side: an analytic incompressible velocity generator for tests
and vector-data experiments, and the standard derived-quantity operators
(magnitude, curl/vorticity, divergence, gradient magnitude) a
visualization pipeline feeds to its transfer function.

All operators use central differences on the interior and one-sided
differences at the boundary, on the unit-cube grid spacing implied by the
array shape.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "abc_flow",
    "velocity_magnitude",
    "curl",
    "vorticity_magnitude",
    "divergence",
    "gradient_magnitude",
    "normalize_scalar",
]


def abc_flow(
    shape: tuple[int, int, int],
    t: float = 0.0,
    a: float = 1.0,
    b: float = np.sqrt(2.0 / 3.0),
    c: float = np.sqrt(1.0 / 3.0),
) -> np.ndarray:
    """The Arnold–Beltrami–Childress flow: an exact divergence-free field.

    Classic test velocity field of fluid visualization; time enters as a
    phase so a sequence of steps forms a coherent animation.  Returns
    ``shape + (3,)`` float32.
    """
    nx, ny, nz = shape
    x = np.linspace(0, 2 * np.pi, nx, endpoint=False, dtype=np.float32)
    y = np.linspace(0, 2 * np.pi, ny, endpoint=False, dtype=np.float32)
    z = np.linspace(0, 2 * np.pi, nz, endpoint=False, dtype=np.float32)
    X, Y, Z = np.meshgrid(x, y, z, indexing="ij", sparse=True)
    phase = np.float32(0.1 * t)
    u = a * np.sin(Z + phase) + c * np.cos(Y + phase)
    v = b * np.sin(X + phase) + a * np.cos(Z + phase)
    w = c * np.sin(Y + phase) + b * np.cos(X + phase)
    out = np.empty(shape + (3,), dtype=np.float32)
    out[..., 0] = u
    out[..., 1] = v
    out[..., 2] = w
    return out


def _check_vector(field: np.ndarray) -> np.ndarray:
    arr = np.asarray(field, dtype=np.float32)
    if arr.ndim != 4 or arr.shape[3] != 3:
        raise ValueError(f"vector field must be (nx, ny, nz, 3), got {arr.shape}")
    return arr


def velocity_magnitude(field: np.ndarray) -> np.ndarray:
    """Pointwise |v| — the scalar the mixing dataset renders."""
    arr = _check_vector(field)
    return np.sqrt((arr * arr).sum(axis=3))


def _spacings(shape: tuple[int, ...]) -> list[float]:
    return [1.0 / max(n - 1, 1) for n in shape[:3]]


def curl(field: np.ndarray) -> np.ndarray:
    """∇×v by central differences (unit-cube grid)."""
    arr = _check_vector(field)
    dx, dy, dz = _spacings(arr.shape)
    du = [
        np.gradient(arr[..., comp], dx, dy, dz, edge_order=1)
        for comp in range(3)
    ]  # du[comp][axis] = d(v_comp)/d(axis)
    out = np.empty_like(arr)
    out[..., 0] = du[2][1] - du[1][2]  # dWdy - dVdz
    out[..., 1] = du[0][2] - du[2][0]  # dUdz - dWdx
    out[..., 2] = du[1][0] - du[0][1]  # dVdx - dUdy
    return out


def vorticity_magnitude(field: np.ndarray) -> np.ndarray:
    """|∇×v| — the scalar the jet and vortex datasets store."""
    return velocity_magnitude(curl(field))


def divergence(field: np.ndarray) -> np.ndarray:
    """∇·v (≈0 for incompressible flow — a generator sanity probe)."""
    arr = _check_vector(field)
    dx, dy, dz = _spacings(arr.shape)
    return (
        np.gradient(arr[..., 0], dx, axis=0, edge_order=1)
        + np.gradient(arr[..., 1], dy, axis=1, edge_order=1)
        + np.gradient(arr[..., 2], dz, axis=2, edge_order=1)
    )


def gradient_magnitude(volume: np.ndarray) -> np.ndarray:
    """|∇f| of a scalar volume — the classic interface-highlighting
    derived quantity (bright exactly where the mixing front is)."""
    arr = np.asarray(volume, dtype=np.float32)
    if arr.ndim != 3:
        raise ValueError(f"scalar volume must be 3-D, got {arr.shape}")
    dx, dy, dz = _spacings(arr.shape)
    gx, gy, gz = np.gradient(arr, dx, dy, dz, edge_order=1)
    return np.sqrt(gx * gx + gy * gy + gz * gz)


def normalize_scalar(volume: np.ndarray) -> np.ndarray:
    """Affine-map a scalar volume to [0, 1] float32 for the renderer."""
    arr = np.asarray(volume, dtype=np.float32)
    lo = float(arr.min())
    hi = float(arr.max())
    if hi - lo < 1e-12:
        return np.zeros_like(arr)
    return (arr - lo) / (hi - lo)
