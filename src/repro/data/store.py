"""On-disk storage for time-varying datasets.

The paper's post-processing scenario "leaves the data on the supercomputer
center's mass storage device" and streams one time step at a time into the
renderer.  :class:`DatasetStore` materializes a dataset as one file per
time step plus a JSON manifest, and reopens it as a lazily-reading
:class:`~repro.data.datasets.TimeVaryingDataset`, so the data-input stage of
the pipeline exercises real file reads.

Steps can optionally be stored *compressed* with any registered lossless
codec — "it can take gigabytes to terabytes of storage space to store a
single data set" (§1), so trading decode time for mass-storage footprint
is a real facility decision; optional 8-bit quantization roughly quarters
the footprint again at a half-level error.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.datasets import TimeVaryingDataset

__all__ = ["DatasetStore"]

_MANIFEST = "manifest.json"


class DatasetStore:
    """Directory-backed dataset of per-step volumes.

    Parameters
    ----------
    directory:
        Where steps and the manifest live.
    codec:
        ``None`` for raw little-endian float32 dumps (the common CFD
        format), or the name of a registered *lossless* codec
        (``"lzo"``, ``"bzip"``, ``"deflate"``, …) to compress each step.
    quantize:
        Store 8-bit quantized values (exact to ±0.5/255 for data in
        [0, 1]); combines with ``codec``.
    """

    def __init__(
        self,
        directory: str | Path,
        codec: str | None = None,
        quantize: bool = False,
    ):
        self.directory = Path(directory)
        self.codec_name = codec
        self.quantize = quantize
        if codec is not None:
            from repro.compress import get_codec

            if not get_codec(codec).lossless:
                raise ValueError("store codec must be lossless")

    def _step_path(self, t: int) -> Path:
        suffix = ".raw" if self.codec_name is None else f".{self.codec_name}"
        return self.directory / f"step_{t:05d}{suffix}"

    def _encode_step(self, vol: np.ndarray) -> bytes:
        if self.quantize:
            payload = (
                np.clip(np.rint(vol * 255.0), 0, 255).astype(np.uint8).tobytes()
            )
        else:
            payload = vol.astype("<f4").tobytes()
        if self.codec_name is not None:
            from repro.compress import get_codec

            payload = get_codec(self.codec_name).encode(payload)
        return payload

    def save(self, dataset: TimeVaryingDataset, steps: range | None = None) -> None:
        """Materialize ``dataset`` (or a sub-range of steps) to disk."""
        self.directory.mkdir(parents=True, exist_ok=True)
        steps = steps if steps is not None else range(dataset.n_steps)
        manifest = {
            "name": dataset.name,
            "shape": list(dataset.shape),
            "n_steps": len(steps),
            "first_step": steps[0] if len(steps) else 0,
            "components": dataset.components,
            "bytes_per_value": 1 if self.quantize else 4,
            "description": dataset.description,
            "dtype": "u1" if self.quantize else "<f4",
            "codec": self.codec_name,
            "quantized": self.quantize,
        }
        (self.directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
        for out_t, src_t in enumerate(steps):
            vol = dataset.volume(src_t)
            self._step_path(out_t).write_bytes(self._encode_step(vol))

    def stored_bytes(self) -> int:
        """Total on-disk footprint of the stored steps."""
        return sum(
            p.stat().st_size
            for p in self.directory.iterdir()
            if p.name.startswith("step_")
        )

    def open(self) -> TimeVaryingDataset:
        """Reopen a saved dataset; volumes are read (and, if stored
        compressed, decoded) from disk on demand."""
        manifest_path = self.directory / _MANIFEST
        if not manifest_path.exists():
            raise FileNotFoundError(f"no dataset manifest in {self.directory}")
        manifest = json.loads(manifest_path.read_text())
        shape = tuple(manifest["shape"])
        codec_name = manifest.get("codec")
        quantized = manifest.get("quantized", False)
        suffix = ".raw" if codec_name is None else f".{codec_name}"

        def read_step(t: int) -> np.ndarray:
            raw = (self.directory / f"step_{t:05d}{suffix}").read_bytes()
            if codec_name is not None:
                from repro.compress import get_codec

                raw = get_codec(codec_name).decode(raw)
            if quantized:
                vol = np.frombuffer(raw, dtype=np.uint8).astype(np.float32)
                vol /= 255.0
            else:
                vol = np.frombuffer(raw, dtype=manifest["dtype"]).astype(
                    np.float32
                )
            expected = shape[0] * shape[1] * shape[2]
            if vol.size != expected:
                raise ValueError(
                    f"step {t}: {vol.size} values on disk, expected {expected}"
                )
            return vol.reshape(shape)

        return TimeVaryingDataset(
            name=manifest["name"],
            shape=shape,
            n_steps=manifest["n_steps"],
            generator=read_step,
            components=manifest.get("components", 1),
            bytes_per_value=manifest.get("bytes_per_value", 4),
            description=manifest.get("description", ""),
        )
