"""Procedural scalar/vector field generators.

Closed-form, fully vectorized stand-ins for the paper's CFD data.  Each
generator maps ``(shape, t)`` to a ``float32`` volume in [0, 1]; time enters
only through phases and advected feature positions, so any step can be
synthesized independently (random access in time, like files on disk).

The generators are deterministic: structure parameters are drawn once from
a seeded :class:`numpy.random.Generator` keyed by the dataset seed, never by
the time index, so a dataset is a coherent evolving animation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["jet_field", "vortex_field", "mixing_field", "normalized_grid"]


def normalized_grid(shape: tuple[int, int, int]) -> tuple[np.ndarray, ...]:
    """Open mesh of coordinates in [0, 1] along each axis of ``shape``."""
    axes = [np.linspace(0.0, 1.0, n, dtype=np.float32) for n in shape]
    return np.meshgrid(*axes, indexing="ij", sparse=True)


def jet_field(shape: tuple[int, int, int], t: float, seed: int = 7) -> np.ndarray:
    """Turbulent-jet vorticity: a narrow swirling plume along the z axis.

    Most of the volume is near zero — rendered images have low pixel
    coverage, which is why the paper's jet frames compress so well.
    """
    x, y, z = normalized_grid(shape)
    rng = np.random.default_rng(seed)
    n_modes = 6
    amp = rng.uniform(0.01, 0.045, n_modes).astype(np.float32)
    freq = rng.uniform(3.0, 11.0, n_modes).astype(np.float32)
    speed = rng.uniform(0.6, 1.4, n_modes).astype(np.float32)
    phase = rng.uniform(0.0, 2 * np.pi, n_modes).astype(np.float32)

    # Jet axis meanders with z and time (helical instability).
    cx = np.float32(0.5) + np.zeros_like(z)
    cy = np.float32(0.5) + np.zeros_like(z)
    for k in range(n_modes):
        arg = 2 * np.pi * freq[k] * z - speed[k] * t + phase[k]
        cx = cx + amp[k] * np.sin(arg)
        cy = cy + amp[k] * np.cos(1.3 * arg)

    r2 = (x - cx) ** 2 + (y - cy) ** 2
    # Plume widens downstream; vorticity decays radially and axially.
    width = np.float32(0.0025) + np.float32(0.028) * z**1.5
    core = np.exp(-r2 / width)
    # Puffs: traveling axial modulation makes discrete vortex rings.
    puffs = 0.62 + 0.38 * np.sin(2 * np.pi * (9.0 * z - 0.45 * t))
    inflow = np.clip(12.0 * z, 0.0, 1.0)  # quiet near the nozzle plane
    field = core * puffs * inflow * (1.15 - 0.45 * z)
    return np.clip(field, 0.0, 1.0).astype(np.float32)


def vortex_field(shape: tuple[int, int, int], t: float, seed: int = 11) -> np.ndarray:
    """Vorticity magnitude of drifting coherent vortex worms.

    Dozens of overlapping anisotropic Gaussian tubes fill the domain, so
    rendered images have high pixel coverage (the paper: "Rendering of the
    turbulent vortex data set generally results in more pixel coverage …
    these images cannot be compressed as well").
    """
    x, y, z = normalized_grid(shape)
    rng = np.random.default_rng(seed)
    n_blobs = 48
    pos = rng.uniform(0.0, 1.0, (n_blobs, 3)).astype(np.float32)
    vel = rng.normal(0.0, 0.02, (n_blobs, 3)).astype(np.float32)
    axis = rng.normal(0.0, 1.0, (n_blobs, 3)).astype(np.float32)
    axis /= np.linalg.norm(axis, axis=1, keepdims=True)
    width = rng.uniform(0.018, 0.06, n_blobs).astype(np.float32)
    elong = rng.uniform(3.0, 9.0, n_blobs).astype(np.float32)
    strength = rng.uniform(0.35, 1.0, n_blobs).astype(np.float32)

    field = np.zeros(shape, dtype=np.float32)
    for k in range(n_blobs):
        c = (pos[k] + vel[k] * t) % 1.0
        dx = x - c[0]
        dy = y - c[1]
        dz = z - c[2]
        # periodic wrap: nearest image
        dx = dx - np.rint(dx)
        dy = dy - np.rint(dy)
        dz = dz - np.rint(dz)
        par = dx * axis[k, 0] + dy * axis[k, 1] + dz * axis[k, 2]
        perp2 = dx * dx + dy * dy + dz * dz - par * par
        field += strength[k] * np.exp(
            -(perp2 / width[k] ** 2 + par**2 / (elong[k] * width[k]) ** 2)
        )
    # Broad background turbulence lifts coverage across the whole domain.
    background = 0.18 + 0.1 * np.sin(
        2 * np.pi * (2 * x + 3 * y + z) + 0.21 * t
    ) * np.cos(2 * np.pi * (x - 2 * y + 2 * z) - 0.17 * t)
    field = field + background
    return np.clip(field / 1.6, 0.0, 1.0).astype(np.float32)


def mixing_field(
    shape: tuple[int, int, int], t: float, n_steps: int = 265, seed: int = 13
) -> np.ndarray:
    """Shock/bubble mixing: density-like scalar on an elongated grid.

    A planar shock sweeps along x through an ambient medium containing a
    denser bubble; behind the shock, the bubble deforms and a turbulent
    mixing zone grows — matching the paper's NERSC dataset description.
    The returned scalar mimics the velocity-magnitude rendering cue.
    """
    x, y, z = normalized_grid(shape)
    rng = np.random.default_rng(seed)
    progress = np.float32(t / max(n_steps - 1, 1))

    shock_x = 0.05 + 0.9 * progress
    shock = 0.5 * (1.0 + np.tanh((shock_x - x) * 80.0))  # 1 behind the shock

    # Bubble: starts spherical at x=0.35, compresses and stretches after
    # shock passage.
    bx, by, bz = 0.35, 0.5, 0.5
    hit = np.clip((shock_x - bx) / 0.25, 0.0, 1.0)  # how long since impact
    stretch_x = 1.0 + 2.2 * hit
    r2 = (
        ((x - (bx + 0.28 * hit)) * stretch_x) ** 2
        + ((y - by) * (1.0 - 0.35 * hit)) ** 2 / 0.4
        + ((z - bz) * (1.0 - 0.35 * hit)) ** 2 / 0.4
    )
    bubble = 0.9 * np.exp(-r2 / 0.012)

    # Mixing-zone turbulence grows behind the bubble after impact.
    n_modes = 5
    kx = rng.integers(4, 14, n_modes)
    ky = rng.integers(4, 14, n_modes)
    kz = rng.integers(4, 14, n_modes)
    ph = rng.uniform(0, 2 * np.pi, n_modes).astype(np.float32)
    turb = np.zeros(shape, dtype=np.float32)
    for m in range(n_modes):
        turb += np.sin(
            2 * np.pi * (kx[m] * x + ky[m] * y + kz[m] * z) + ph[m] + 0.9 * t / 10
        ).astype(np.float32)
    turb = (turb / n_modes) * hit * shock * np.exp(-((x - bx - 0.3 * hit) ** 2) / 0.05)

    field = 0.25 * shock + bubble * (1.0 - 0.3 * hit) + 0.35 * np.abs(turb)
    return np.clip(field, 0.0, 1.0).astype(np.float32)
