"""Network substrate: links, routes, and the X-Window display baseline.

Two halves:

- *functional*: :mod:`repro.net.transport` carries real framed bytes
  between daemon components in-process (threads + queues), recording
  traffic so experiments can attribute costs afterwards, and
  :mod:`repro.net.faults` makes any such link WAN-shaped (latency,
  jitter, loss, corruption, disconnects) from a seeded
  :class:`~repro.net.faults.FaultPlan`;
- *timing*: :mod:`repro.net.link` wraps a
  :class:`~repro.sim.cluster.WanRoute` as a contended simulation
  resource, and :mod:`repro.net.xdisplay` models the paper's baseline of
  displaying frames remotely through X.
"""

from repro.net.faults import (
    FaultInjector,
    FaultPlan,
    FaultyChannel,
    FaultyConnection,
)
from repro.net.link import SimLink
from repro.net.topology import ROUTES, get_route, lan_route
from repro.net.transport import (
    Channel,
    ChannelClosed,
    FramedConnection,
    RetryPolicy,
    SizeWindow,
    TrafficLog,
    TransientNetworkError,
)
from repro.net.xdisplay import XDisplayModel

__all__ = [
    "SimLink",
    "ROUTES",
    "get_route",
    "lan_route",
    "Channel",
    "ChannelClosed",
    "FramedConnection",
    "RetryPolicy",
    "TrafficLog",
    "TransientNetworkError",
    "SizeWindow",
    "XDisplayModel",
    "FaultPlan",
    "FaultInjector",
    "FaultyChannel",
    "FaultyConnection",
]
