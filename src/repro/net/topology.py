"""Named routes of the paper's testbed plus helpers for custom ones."""

from __future__ import annotations

from repro.sim.cluster import NASA_TO_UCD, RWCP_TO_UCD, WanRoute

__all__ = ["ROUTES", "get_route", "lan_route"]

#: LANs the paper mentions delivering "several frames per second" with
#: simple lossless compression: FDDI, Fast Ethernet, 10 Mb/s Ethernet.
_FDDI = WanRoute(
    name="FDDI LAN", rtt_s=0.001, fast_bandwidth_Bps=11e6,
    steady_bandwidth_Bps=9e6, burst_bytes=256e3,
)
_FAST_ETHERNET = WanRoute(
    name="Fast Ethernet LAN", rtt_s=0.0008, fast_bandwidth_Bps=11e6,
    steady_bandwidth_Bps=10e6, burst_bytes=256e3,
)
_ETHERNET_10 = WanRoute(
    name="10 Mb/s Ethernet LAN", rtt_s=0.001, fast_bandwidth_Bps=1.1e6,
    steady_bandwidth_Bps=1.0e6, burst_bytes=64e3,
)

ROUTES: dict[str, WanRoute] = {
    "nasa-ucd": NASA_TO_UCD,
    "rwcp-ucd": RWCP_TO_UCD,
    "fddi": _FDDI,
    "fast-ethernet": _FAST_ETHERNET,
    "ethernet-10": _ETHERNET_10,
}


def get_route(name: str) -> WanRoute:
    """Look up a named route (``"nasa-ucd"``, ``"rwcp-ucd"``, LANs)."""
    try:
        return ROUTES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown route {name!r}; available: {sorted(ROUTES)}"
        ) from None


def lan_route(bandwidth_Bps: float, rtt_s: float = 0.001) -> WanRoute:
    """A custom uniform-bandwidth route (no TCP-burst asymmetry)."""
    if bandwidth_Bps <= 0:
        raise ValueError("bandwidth must be positive")
    return WanRoute(
        name=f"custom {bandwidth_Bps/1e6:.1f} MB/s",
        rtt_s=rtt_s,
        fast_bandwidth_Bps=bandwidth_Bps,
        steady_bandwidth_Bps=bandwidth_Bps,
        burst_bytes=float("inf"),
    )
