"""WAN fault injection: deterministic latency, loss, corruption, drops.

The paper's claim is that compressed image transport makes remote
visualization viable *over a real wide-area network* — so the transport
stack must be exercised under WAN behaviour, not just perfect
in-process links.  This module wraps any framed endpoint in a
:class:`FaultyConnection` (or a single :class:`Channel` in a
:class:`FaultyChannel`) that injects the failure modes a WAN exhibits:

- fixed one-way **latency** plus uniform **jitter**;
- a **bandwidth** cap (delay proportional to frame size);
- **packet loss** — a send attempt vanishes; the endpoint's
  :class:`~repro.net.transport.RetryPolicy` retransmits with backoff,
  so a lossy link degrades to a slower link instead of a broken one;
- **corruption** — payload bytes flipped in flight (decoders must
  surface this as typed errors, never silent wrong images);
- a **mid-stream disconnect** after a configured number of delivered
  frames (drives the reconnect/resume path in the serving layer).

Everything is driven by a :class:`FaultPlan` and a seeded RNG: the same
plan and the same sequence of operations produce the same
:meth:`delivery trace <FaultInjector.trace>`, so failure scenarios are
reproducible test fixtures rather than flaky luck.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from repro.net.transport import (
    Channel,
    ChannelClosed,
    RetryPolicy,
    TransientNetworkError,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultyChannel",
    "FaultyConnection",
]


@dataclass(frozen=True)
class FaultPlan:
    """One reproducible WAN behaviour profile.

    Ratios are per send *attempt* (a retransmitted frame rolls again).
    ``latency_s``/``jitter_s``/``bandwidth_Bps`` model one-way delivery
    delay and are applied on the configured side (``delay_on``):
    ``"recv"`` (default) charges the delay to the receiving thread so a
    publisher is never blocked by a slow link, ``"send"`` charges the
    sender.  ``disconnect_after`` forcibly closes the link after that
    many successfully delivered frames — the mid-stream cut that a
    resilient viewer must survive by reconnecting.
    """

    seed: int = 0
    latency_s: float = 0.0
    jitter_s: float = 0.0
    bandwidth_Bps: float | None = None
    loss_ratio: float = 0.0
    corrupt_ratio: float = 0.0
    disconnect_after: int | None = None
    delay_on: str = "recv"

    def __post_init__(self) -> None:
        for name in ("loss_ratio", "corrupt_ratio"):
            v = getattr(self, name)
            if not 0.0 <= v < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {v}")
        if self.latency_s < 0 or self.jitter_s < 0:
            raise ValueError("latency_s and jitter_s must be >= 0")
        if self.bandwidth_Bps is not None and self.bandwidth_Bps <= 0:
            raise ValueError("bandwidth_Bps must be positive")
        if self.disconnect_after is not None and self.disconnect_after < 0:
            raise ValueError("disconnect_after must be >= 0")
        if self.delay_on not in ("send", "recv"):
            raise ValueError("delay_on must be 'send' or 'recv'")

    def reconnected(self) -> "FaultPlan":
        """The plan for a re-established link: same WAN character, no
        scheduled disconnect, fresh seed stream."""
        return FaultPlan(
            seed=self.seed + 1,
            latency_s=self.latency_s,
            jitter_s=self.jitter_s,
            bandwidth_Bps=self.bandwidth_Bps,
            loss_ratio=self.loss_ratio,
            corrupt_ratio=self.corrupt_ratio,
            disconnect_after=None,
            delay_on=self.delay_on,
        )


class FaultInjector:
    """Seeded per-link decision engine shared by the fault wrappers.

    Draws verdicts for each send attempt in a fixed order, so the
    decision sequence — and therefore the delivery trace — depends only
    on the plan's seed and the sequence of operations, never on wall
    clock or thread scheduling.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self.delivered = 0
        self.lost = 0
        self.corrupted = 0
        self.disconnected = False
        self._trace: list[tuple[str, int]] = []

    # -- verdicts ------------------------------------------------------------

    def send_verdict(self, op_index: int) -> str:
        """``"deliver"``, ``"corrupt"``, ``"lose"`` or ``"disconnect"``
        for send attempt number ``op_index`` (0-based)."""
        with self._lock:
            if self.disconnected:
                return "disconnect"
            if (
                self.plan.disconnect_after is not None
                and self.delivered >= self.plan.disconnect_after
            ):
                self.disconnected = True
                self._trace.append(("disconnect", op_index))
                return "disconnect"
            # fixed draw order keeps the stream deterministic
            lose = self._rng.random() < self.plan.loss_ratio
            corrupt = self._rng.random() < self.plan.corrupt_ratio
            if lose:
                self.lost += 1
                self._trace.append(("lost", op_index))
                return "lose"
            if corrupt:
                self.corrupted += 1
                self.delivered += 1
                self._trace.append(("corrupt", op_index))
                return "corrupt"
            self.delivered += 1
            self._trace.append(("sent", op_index))
            return "deliver"

    def delay_s(self, nbytes: int) -> float:
        """One-way delivery delay for a frame of ``nbytes``."""
        plan = self.plan
        delay = plan.latency_s
        if plan.jitter_s:
            with self._lock:
                delay += self._rng.random() * plan.jitter_s
        if plan.bandwidth_Bps:
            delay += nbytes / plan.bandwidth_Bps
        return delay

    def corrupt_payload(self, frame: bytes) -> bytes:
        """Flip one byte somewhere in the back half of the frame (past
        typical headers, into payload territory)."""
        if not frame:
            return frame
        data = bytearray(frame)
        with self._lock:
            pos = self._rng.randrange(len(data) // 2, len(data))
        data[pos] ^= 0xFF
        return bytes(data)

    def trace(self) -> tuple[tuple[str, int], ...]:
        """The delivery trace so far: ``(event, op_index)`` tuples."""
        with self._lock:
            return tuple(self._trace)


class FaultyChannel:
    """A :class:`Channel` wrapper injecting plan faults on ``send``.

    Loss surfaces as :class:`TransientNetworkError` so a retrying
    caller retransmits; a scheduled disconnect closes the inner channel
    and raises :class:`ChannelClosed`.  Delivery delay is charged on the
    side named by ``plan.delay_on``.
    """

    def __init__(self, inner: Channel, plan: FaultPlan,
                 injector: FaultInjector | None = None):
        self._inner = inner
        self.injector = injector or FaultInjector(plan)
        self._op_index = 0

    def send(self, frame: bytes, timeout: float | None = None) -> None:
        op = self._op_index
        self._op_index += 1
        verdict = self.injector.send_verdict(op)
        if verdict == "disconnect":
            self._inner.close()
            raise ChannelClosed("link disconnected by fault plan")
        if verdict == "lose":
            raise TransientNetworkError(f"frame lost in transit (op {op})")
        if verdict == "corrupt":
            frame = self.injector.corrupt_payload(frame)
        if self.injector.plan.delay_on == "send":
            time.sleep(self.injector.delay_s(len(frame)))
        self._inner.send(frame, timeout=timeout)

    def recv(self, timeout: float | None = None) -> bytes:
        frame = self._inner.recv(timeout=timeout)
        if self.injector.plan.delay_on == "recv":
            time.sleep(self.injector.delay_s(len(frame)))
        return frame

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed


class FaultyConnection:
    """A framed endpoint wrapper that makes the link WAN-shaped.

    Wraps anything with the ``send``/``recv``/``close``/``traffic``
    surface (``FramedConnection``, ``TcpConnection``, …).  Outbound
    frames pass through the fault plan: lost attempts are retransmitted
    under ``retry`` with exponential backoff (counted in
    ``traffic.retransmits``), corrupted attempts are delivered mangled,
    and a scheduled disconnect closes the underlying connection so both
    directions fail with :class:`ChannelClosed`.  Inbound frames are
    delayed by latency/jitter/bandwidth when ``plan.delay_on == "recv"``.
    """

    def __init__(self, conn, plan: FaultPlan,
                 retry: RetryPolicy | None = None):
        self._conn = conn
        self.plan = plan
        self.injector = FaultInjector(plan)
        self.retry = retry if retry is not None else getattr(
            conn, "retry", None) or RetryPolicy()
        self._lock = threading.Lock()
        self._op_index = 0  # guarded-by: _lock

    @classmethod
    def pair(cls, plan: FaultPlan, a_name: str = "a", b_name: str = "b",
             maxsize: int = 0, retry: RetryPolicy | None = None):
        """A connected endpoint pair with side ``a`` fault-wrapped."""
        from repro.net.transport import FramedConnection

        a, b = FramedConnection.pair(a_name, b_name, maxsize=maxsize)
        return cls(a, plan, retry=retry), b

    # -- framed-connection surface ------------------------------------------

    @property
    def name(self) -> str:
        return self._conn.name

    @property
    def traffic(self):
        return self._conn.traffic

    def delivery_trace(self) -> tuple[tuple[str, int], ...]:
        return self.injector.trace()

    def send(self, frame: bytes, timeout: float | None = None) -> None:
        attempts = self.retry.max_attempts
        for attempt in range(1, attempts + 1):
            with self._lock:
                op = self._op_index
                self._op_index += 1
            verdict = self.injector.send_verdict(op)
            if verdict == "disconnect":
                self._conn.close()
                raise ChannelClosed("link disconnected by fault plan")
            if verdict == "lose":
                if attempt >= attempts:
                    raise ChannelClosed(
                        f"frame lost {attempts} times, giving up"
                    )
                self.traffic.note_retransmit()
                time.sleep(self.retry.delay_before(attempt))
                continue
            data = frame
            if verdict == "corrupt":
                data = self.injector.corrupt_payload(frame)
            if self.plan.delay_on == "send":
                time.sleep(self.injector.delay_s(len(data)))
            self._conn.send(data, timeout=timeout)
            return

    def recv(self, timeout: float | None = None) -> bytes:
        frame = self._conn.recv(timeout=timeout)
        if self.plan.delay_on == "recv":
            time.sleep(self.injector.delay_s(len(frame)))
        return frame

    def close(self) -> None:
        self._conn.close()
