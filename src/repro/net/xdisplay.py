"""X-Window remote display model — the paper's baseline transport.

Displaying on a remote X server ships every frame as uncompressed 24-bit
pixels (a ZPixmap ``XPutImage``) across the wide-area route, plus the
client-side window update.  No compression, no pipelining with
decompression — which is exactly why "the performance of X, as expected,
is not acceptable" beyond small images.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cluster import MachineSpec, WanRoute

__all__ = ["XDisplayModel"]

_BYTES_PER_PIXEL = 3  # 24-bit TrueColor ZPixmap


@dataclass(frozen=True)
class XDisplayModel:
    """Per-frame cost of remote X display across ``route`` onto ``client``."""

    route: WanRoute
    client: MachineSpec

    def frame_bytes(self, pixels: int) -> int:
        """Wire bytes of one uncompressed frame."""
        return pixels * _BYTES_PER_PIXEL

    def transfer_s(self, pixels: int) -> float:
        """Time on the wide-area route for one frame."""
        return self.route.transfer_s(self.frame_bytes(pixels))

    def display_s(self, pixels: int) -> float:
        """Client-side cost of putting the received frame on screen."""
        return (
            self.client.display_overhead_s
            + self.frame_bytes(pixels) / self.client.local_display_bandwidth_Bps
        )

    def frame_time_s(self, pixels: int) -> float:
        """End-to-end per-frame display time (transfer + window update)."""
        return self.transfer_s(pixels) + self.display_s(pixels)

    def frame_rate(self, pixels: int) -> float:
        """Sustained frames/second when frames stream back-to-back."""
        return 1.0 / self.frame_time_s(pixels)
