"""Simulated network link: a WAN route as a contended DES resource.

One frame transfer occupies the route for its full transfer time — the
paper's single display connection carries frames strictly in order, so a
slow frame delays everything behind it (the reason "the performance of a
pipeline is determined by its slowest stage").
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.cluster import WanRoute
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Resource

__all__ = ["SimLink"]


class SimLink:
    """A :class:`WanRoute` attached to a simulator as a serial resource."""

    def __init__(self, sim: Simulator, route: WanRoute, streams: int = 1):
        self.sim = sim
        self.route = route
        self.resource = Resource(sim, capacity=streams, name=route.name)
        #: (sim_time_completed, nbytes) log of finished transfers
        self.completed: list[tuple[float, float]] = []

    def transfer(self, nbytes: float) -> Generator[Event, Any, None]:
        """Process fragment: move ``nbytes`` across the link.

        Use as ``yield self.sim.process(link.transfer(n))`` or
        ``yield from`` within another process.
        """
        yield self.resource.request()
        try:
            yield self.sim.timeout(self.route.transfer_s(nbytes))
        finally:
            self.resource.release()
        self.completed.append((self.sim.now, nbytes))
