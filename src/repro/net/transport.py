"""Functional byte transport for the display-daemon framework.

In the paper the renderer interface, display daemon and display interface
are separate programs connected by TCP sockets.  Here they run in one
process connected by :class:`Channel` pairs — thread-safe, ordered,
blocking byte-frame queues — so the framework's real logic (framing,
routing, callbacks) executes unchanged while a :class:`TrafficLog`
records every frame's size for post-hoc cost accounting against a
:class:`~repro.sim.cluster.WanRoute`.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field

from repro.sim.cluster import WanRoute

__all__ = ["Channel", "FramedConnection", "TrafficLog", "ChannelClosed"]


class ChannelClosed(ConnectionError):
    """The peer closed the connection."""


@dataclass
class TrafficLog:
    """Sizes of frames that crossed a connection, by direction."""

    sent: list[int] = field(default_factory=list)
    received: list[int] = field(default_factory=list)

    @property
    def bytes_sent(self) -> int:
        return sum(self.sent)

    @property
    def bytes_received(self) -> int:
        return sum(self.received)

    def replay_transfer_s(self, route: WanRoute) -> float:
        """Total time these sent frames would take on ``route``."""
        return sum(route.transfer_s(n) for n in self.sent)


class Channel:
    """One direction of a connection: an ordered queue of byte frames."""

    _CLOSE = object()

    def __init__(self, maxsize: int = 0):
        self._q: queue.Queue = queue.Queue(maxsize=maxsize)
        self._closed = threading.Event()

    def send(self, frame: bytes) -> None:
        if self._closed.is_set():
            raise ChannelClosed("send on closed channel")
        self._q.put(bytes(frame))

    def recv(self, timeout: float | None = None) -> bytes:
        try:
            item = self._q.get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError("recv timed out") from None
        if item is self._CLOSE:
            # leave the marker visible to any other blocked reader
            self._q.put(self._CLOSE)
            raise ChannelClosed("channel closed by peer")
        return item

    def close(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            self._q.put(self._CLOSE)


class FramedConnection:
    """A bidirectional framed connection endpoint with traffic logging."""

    def __init__(self, out_channel: Channel, in_channel: Channel, name: str = ""):
        self._out = out_channel
        self._in = in_channel
        self.name = name
        self.traffic = TrafficLog()

    @classmethod
    def pair(
        cls, a_name: str = "a", b_name: str = "b", maxsize: int = 0
    ) -> tuple["FramedConnection", "FramedConnection"]:
        """Two connected endpoints (like ``socket.socketpair``)."""
        ab = Channel(maxsize=maxsize)
        ba = Channel(maxsize=maxsize)
        return cls(ab, ba, a_name), cls(ba, ab, b_name)

    def send(self, frame: bytes) -> None:
        self._out.send(frame)
        self.traffic.sent.append(len(frame))

    def recv(self, timeout: float | None = None) -> bytes:
        frame = self._in.recv(timeout=timeout)
        self.traffic.received.append(len(frame))
        return frame

    def close(self) -> None:
        self._out.close()
        self._in.close()
