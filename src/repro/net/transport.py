"""Functional byte transport for the display-daemon framework.

In the paper the renderer interface, display daemon and display interface
are separate programs connected by TCP sockets.  Here they run in one
process connected by :class:`Channel` pairs — thread-safe, ordered,
blocking byte-frame queues — so the framework's real logic (framing,
routing, callbacks) executes unchanged while a :class:`TrafficLog`
records every frame's size for post-hoc cost accounting against a
:class:`~repro.sim.cluster.WanRoute`.

Long-running streaming sessions cross millions of frames, so the log
keeps only a rolling window of individual sizes (:class:`SizeWindow`)
while the byte/frame totals keep counting everything that ever crossed
the connection.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.sim.cluster import WanRoute

__all__ = [
    "Channel",
    "FramedConnection",
    "TrafficLog",
    "SizeWindow",
    "ChannelClosed",
]


class ChannelClosed(ConnectionError):
    """The peer closed the connection."""


class SizeWindow(list):
    """A frame-size list capped to a rolling window, with running totals.

    Behaves like a plain ``list`` of the most recent ``window`` sizes
    (``append``/``pop``/iteration/equality all work), but keeps
    ``total_bytes``/``total_frames`` aggregates over *everything* ever
    appended, so a day-long streaming session neither loses its byte
    accounting nor grows without bound.  ``pop`` (used to un-log
    connection bookkeeping such as handshake acks) rolls the aggregates
    back; window eviction does not.
    """

    #: default number of retained per-frame sizes
    DEFAULT_WINDOW = 4096

    def __init__(self, iterable=(), window: int = DEFAULT_WINDOW):
        super().__init__(iterable)
        self.window = window
        self.total_bytes = sum(self)
        self.total_frames = len(self)
        self._trim()

    def append(self, n: int) -> None:
        super().append(n)
        self.total_bytes += n
        self.total_frames += 1
        self._trim()

    def pop(self, index: int = -1) -> int:
        n = super().pop(index)
        self.total_bytes -= n
        self.total_frames -= 1
        return n

    def _trim(self) -> None:
        # amortized O(1): trim in chunks, not one element per append
        if self.window and len(self) > 2 * self.window:
            del self[: len(self) - self.window]


@dataclass
class TrafficLog:
    """Sizes of frames that crossed a connection, by direction.

    ``sent``/``received`` retain only the most recent ``window`` sizes;
    ``bytes_sent``/``bytes_received`` (and the ``frames_*`` counters)
    aggregate over the whole connection lifetime.
    """

    sent: SizeWindow | None = None
    received: SizeWindow | None = None
    window: int = SizeWindow.DEFAULT_WINDOW

    def __post_init__(self) -> None:
        self.sent = SizeWindow(self.sent or (), window=self.window)
        self.received = SizeWindow(self.received or (), window=self.window)

    @property
    def bytes_sent(self) -> int:
        return self.sent.total_bytes

    @property
    def bytes_received(self) -> int:
        return self.received.total_bytes

    @property
    def frames_sent(self) -> int:
        return self.sent.total_frames

    @property
    def frames_received(self) -> int:
        return self.received.total_frames

    def replay_transfer_s(self, route: WanRoute) -> float:
        """Total time the *retained* sent frames would take on ``route``."""
        return sum(route.transfer_s(n) for n in self.sent)


class Channel:
    """One direction of a connection: an ordered queue of byte frames.

    With ``maxsize > 0`` the channel is a bounded pipe: ``send`` blocks
    while the peer's backlog is full, which is how a slow consumer
    exerts backpressure on its pump thread.  Blocked senders and
    receivers both wake promptly (and raise :class:`ChannelClosed`) when
    either side closes, so pump threads always join.
    """

    _CLOSE = object()
    _POLL_S = 0.05

    def __init__(self, maxsize: int = 0):
        self._q: queue.Queue = queue.Queue(maxsize=maxsize)
        self._closed = threading.Event()

    def send(self, frame: bytes) -> None:
        data = bytes(frame)
        while True:
            if self._closed.is_set():
                raise ChannelClosed("send on closed channel")
            try:
                self._q.put(data, timeout=self._POLL_S)
                return
            except queue.Full:
                continue

    def recv(self, timeout: float | None = None) -> bytes:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            step = self._POLL_S
            if deadline is not None:
                step = min(step, deadline - time.monotonic())
                if step <= 0:
                    raise TimeoutError("recv timed out")
            try:
                item = self._q.get(timeout=step)
            except queue.Empty:
                if self._closed.is_set():
                    raise ChannelClosed("channel closed by peer") from None
                continue
            if item is self._CLOSE:
                # leave the marker visible to any other blocked reader
                self._requeue_close()
                raise ChannelClosed("channel closed by peer")
            return item

    def close(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            self._requeue_close()

    def _requeue_close(self) -> None:
        try:
            self._q.put_nowait(self._CLOSE)
        except queue.Full:
            # a full bounded queue: readers drain the data items and then
            # observe the closed flag on the next empty poll
            pass


class FramedConnection:
    """A bidirectional framed connection endpoint with traffic logging."""

    def __init__(self, out_channel: Channel, in_channel: Channel, name: str = ""):
        self._out = out_channel
        self._in = in_channel
        self.name = name
        self.traffic = TrafficLog()

    @classmethod
    def pair(
        cls, a_name: str = "a", b_name: str = "b", maxsize: int = 0
    ) -> tuple["FramedConnection", "FramedConnection"]:
        """Two connected endpoints (like ``socket.socketpair``)."""
        ab = Channel(maxsize=maxsize)
        ba = Channel(maxsize=maxsize)
        return cls(ab, ba, a_name), cls(ba, ab, b_name)

    def send(self, frame: bytes) -> None:
        self._out.send(frame)
        self.traffic.sent.append(len(frame))

    def recv(self, timeout: float | None = None) -> bytes:
        frame = self._in.recv(timeout=timeout)
        self.traffic.received.append(len(frame))
        return frame

    def close(self) -> None:
        self._out.close()
        self._in.close()
