"""Functional byte transport for the display-daemon framework.

In the paper the renderer interface, display daemon and display interface
are separate programs connected by TCP sockets.  Here they run in one
process connected by :class:`Channel` pairs — thread-safe, ordered,
blocking byte-frame queues — so the framework's real logic (framing,
routing, callbacks) executes unchanged while a :class:`TrafficLog`
records every frame's size for post-hoc cost accounting against a
:class:`~repro.sim.cluster.WanRoute`.

Long-running streaming sessions cross millions of frames, so the log
keeps only a rolling window of individual sizes (:class:`SizeWindow`)
while the byte/frame totals keep counting everything that ever crossed
the connection.

Resilience: every endpoint carries a :class:`RetryPolicy`.  A perfect
in-process link never needs it, but a WAN-shaped link (see
:mod:`repro.net.faults`) signals recoverable failures as
:class:`TransientNetworkError`, and ``send``/``recv`` retransmit with
exponential backoff before giving up with :class:`ChannelClosed`.
Blocking is always bounded: ``send`` and ``recv`` both accept a
per-operation timeout, and an endpoint-level ``op_timeout`` applies when
a call does not pass one explicitly.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.sim.cluster import WanRoute

__all__ = [
    "Channel",
    "FramedConnection",
    "TrafficLog",
    "TrafficSnapshot",
    "SizeWindow",
    "ChannelClosed",
    "TransientNetworkError",
    "RetryPolicy",
]


class ChannelClosed(ConnectionError):
    """The peer closed the connection."""


class TransientNetworkError(ConnectionError):
    """A recoverable link failure (lost packet, brief stall).

    Raised by fault-injecting transports; the retry layer in
    :class:`FramedConnection`/``TcpConnection`` retransmits these.  A
    perfect link never raises it.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient link failures.

    ``max_attempts`` counts the first try: ``max_attempts=1`` disables
    retransmission entirely.  The delay before attempt *k* (k >= 2) is
    ``backoff_s * multiplier**(k-2)`` capped at ``max_backoff_s``.
    """

    max_attempts: int = 4
    backoff_s: float = 0.002
    multiplier: float = 2.0
    max_backoff_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay_before(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry)."""
        return min(self.backoff_s * self.multiplier ** (attempt - 1),
                   self.max_backoff_s)

    @classmethod
    def none(cls) -> "RetryPolicy":
        return cls(max_attempts=1)


class SizeWindow(list):
    """A frame-size list capped to a rolling window, with running totals.

    Behaves like a plain ``list`` of the most recent ``window`` sizes
    (``append``/``pop``/iteration/equality all work), but keeps
    ``total_bytes``/``total_frames`` aggregates over *everything* ever
    appended, so a day-long streaming session neither loses its byte
    accounting nor grows without bound.  ``pop`` (used to un-log
    connection bookkeeping such as handshake acks) rolls the aggregates
    back; window eviction does not.
    """

    #: default number of retained per-frame sizes
    DEFAULT_WINDOW = 4096

    def __init__(self, iterable=(), window: int = DEFAULT_WINDOW):
        super().__init__(iterable)
        self.window = window
        self.total_bytes = sum(self)
        self.total_frames = len(self)
        self._trim()

    def append(self, n: int) -> None:
        super().append(n)
        self.total_bytes += n
        self.total_frames += 1
        self._trim()

    def pop(self, index: int = -1) -> int:
        n = super().pop(index)
        self.total_bytes -= n
        self.total_frames -= 1
        return n

    def _trim(self) -> None:
        # amortized O(1): trim in chunks, not one element per append
        if self.window and len(self) > 2 * self.window:
            del self[: len(self) - self.window]


@dataclass(frozen=True)
class TrafficSnapshot:
    """An atomic point-in-time copy of a :class:`TrafficLog`.

    Taken in one critical section, so the byte and frame totals are
    mutually consistent — a live log mutated by a pump thread can show
    ``bytes_sent`` from one frame and ``frames_sent`` from the next.
    """

    bytes_sent: int
    bytes_received: int
    frames_sent: int
    frames_received: int
    retransmits: int
    recent_sent: tuple[int, ...]
    recent_received: tuple[int, ...]


@dataclass
class TrafficLog:
    """Sizes of frames that crossed a connection, by direction.

    ``sent``/``received`` retain only the most recent ``window`` sizes;
    ``bytes_sent``/``bytes_received`` (and the ``frames_*`` counters)
    aggregate over the whole connection lifetime.  ``retransmits``
    counts transient-failure retries the resilience layer performed.

    A sender and a receiver thread log concurrently, so all mutation
    goes through the ``note_*`` methods, which serialize on an internal
    lock; :meth:`snapshot` returns an atomic copy of the aggregates.
    """

    sent: SizeWindow | None = None  # guarded-by: _lock
    received: SizeWindow | None = None  # guarded-by: _lock
    window: int = SizeWindow.DEFAULT_WINDOW
    retransmits: int = 0  # guarded-by: _lock

    def __post_init__(self) -> None:
        self.sent = SizeWindow(self.sent or (), window=self.window)
        self.received = SizeWindow(self.received or (), window=self.window)
        self._lock = threading.Lock()

    def note_sent(self, nbytes: int) -> None:
        with self._lock:
            self.sent.append(nbytes)

    def note_received(self, nbytes: int) -> None:
        with self._lock:
            self.received.append(nbytes)

    def note_retransmit(self) -> None:
        with self._lock:
            self.retransmits += 1

    def unlog_received(self) -> int:
        """Roll back the most recent received frame (connection
        bookkeeping such as handshake acks, not caller traffic)."""
        with self._lock:
            return self.received.pop()

    @property
    def bytes_sent(self) -> int:
        with self._lock:
            return self.sent.total_bytes

    @property
    def bytes_received(self) -> int:
        with self._lock:
            return self.received.total_bytes

    @property
    def frames_sent(self) -> int:
        with self._lock:
            return self.sent.total_frames

    @property
    def frames_received(self) -> int:
        with self._lock:
            return self.received.total_frames

    def snapshot(self) -> TrafficSnapshot:
        """All aggregates copied in one critical section."""
        with self._lock:
            return TrafficSnapshot(
                bytes_sent=self.sent.total_bytes,
                bytes_received=self.received.total_bytes,
                frames_sent=self.sent.total_frames,
                frames_received=self.received.total_frames,
                retransmits=self.retransmits,
                recent_sent=tuple(self.sent),
                recent_received=tuple(self.received),
            )

    def replay_transfer_s(self, route: WanRoute) -> float:
        """Total time the *retained* sent frames would take on ``route``."""
        with self._lock:
            sizes = tuple(self.sent)
        return sum(route.transfer_s(n) for n in sizes)


class Channel:
    """One direction of a connection: an ordered queue of byte frames.

    With ``maxsize > 0`` the channel is a bounded pipe: ``send`` blocks
    while the peer's backlog is full, which is how a slow consumer
    exerts backpressure on its pump thread.  Blocked senders and
    receivers wake on a shared :class:`threading.Condition` — queue
    space, frame arrival, and close all notify, so nobody burns CPU in a
    poll loop and pump threads always join promptly.
    """

    def __init__(self, maxsize: int = 0):
        self._maxsize = maxsize
        self._cond = threading.Condition()
        self._items: deque[bytes] = deque()  # guarded-by: _cond
        self._closed = False  # guarded-by: _cond

    def send(self, frame: bytes, timeout: float | None = None) -> None:
        data = bytes(frame)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed:
                    raise ChannelClosed("send on closed channel")
                if not self._maxsize or len(self._items) < self._maxsize:
                    self._items.append(data)
                    self._cond.notify_all()
                    return
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError("send timed out")
                self._cond.wait(remaining)

    def recv(self, timeout: float | None = None) -> bytes:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._items:
                    item = self._items.popleft()
                    self._cond.notify_all()  # wake a blocked sender
                    return item
                if self._closed:
                    raise ChannelClosed("channel closed by peer")
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError("recv timed out")
                self._cond.wait(remaining)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed


class FramedConnection:
    """A bidirectional framed connection endpoint with traffic logging.

    ``retry`` governs retransmission of :class:`TransientNetworkError`
    failures (injected by WAN-shaped wrappers; a plain channel pair
    never raises them).  ``op_timeout`` bounds any ``send``/``recv``
    that does not pass an explicit timeout; ``None`` keeps the classic
    block-until-closed behaviour.
    """

    def __init__(
        self,
        out_channel: Channel,
        in_channel: Channel,
        name: str = "",
        retry: RetryPolicy | None = None,
        op_timeout: float | None = None,
    ):
        self._out = out_channel
        self._in = in_channel
        self.name = name
        self.retry = retry or RetryPolicy()
        self.op_timeout = op_timeout
        self.traffic = TrafficLog()

    @classmethod
    def pair(
        cls, a_name: str = "a", b_name: str = "b", maxsize: int = 0
    ) -> tuple["FramedConnection", "FramedConnection"]:
        """Two connected endpoints (like ``socket.socketpair``)."""
        ab = Channel(maxsize=maxsize)
        ba = Channel(maxsize=maxsize)
        return cls(ab, ba, a_name), cls(ba, ab, b_name)

    # -- raw ops (override points for fault-injecting subclasses) -----------

    def _send_raw(self, frame: bytes, timeout: float | None) -> None:
        self._out.send(frame, timeout=timeout)

    def _recv_raw(self, timeout: float | None) -> bytes:
        return self._in.recv(timeout=timeout)

    def _retrying(self, op, what: str):
        """Run ``op`` under the retry policy, backing off on transients."""
        attempts = self.retry.max_attempts
        for attempt in range(1, attempts + 1):
            try:
                return op()
            except TransientNetworkError as exc:
                if attempt >= attempts:
                    raise ChannelClosed(
                        f"{what} failed after {attempts} attempts: {exc}"
                    ) from exc
                self.traffic.note_retransmit()
                time.sleep(self.retry.delay_before(attempt))

    # -- public API ----------------------------------------------------------

    def send(self, frame: bytes, timeout: float | None = None) -> None:
        if timeout is None:
            timeout = self.op_timeout
        self._retrying(lambda: self._send_raw(frame, timeout), "send")
        self.traffic.note_sent(len(frame))

    def recv(self, timeout: float | None = None) -> bytes:
        if timeout is None:
            timeout = self.op_timeout
        frame = self._retrying(lambda: self._recv_raw(timeout), "recv")
        self.traffic.note_received(len(frame))
        return frame

    def close(self) -> None:
        self._out.close()
        self._in.close()
