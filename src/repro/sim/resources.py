"""Contended resources for the simulation engine.

:class:`Resource` is a counted FIFO semaphore (a disk, a network link, a
display client); :class:`Pipe` is a buffered FIFO channel (the image
buffer "the display daemon uses … to cope with faster rendering rates").
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["Resource", "Pipe", "hold"]


class Resource:
    """FIFO counted resource.

    ``request()`` returns an event that fires once a slot is granted;
    every granted request must be paired with ``release()``.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: deque[Event] = deque()
        #: total simulated seconds of granted occupancy (utilization probe)
        self.busy_time = 0.0
        self._last_change = 0.0

    def _account(self) -> None:
        self.busy_time += self._in_use * (self.sim.now - self._last_change)
        self._last_change = self.sim.now

    def request(self) -> Event:
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            ev.succeed()
        else:
            self._waiting.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._account()
        if self._waiting:
            nxt = self._waiting.popleft()
            nxt.succeed()  # slot transfers to the next waiter
        else:
            self._in_use -= 1

    def utilization(self, horizon: float) -> float:
        """Fraction of [0, horizon] the resource spent occupied (per slot)."""
        if horizon <= 0:
            return 0.0
        self._account()
        return self.busy_time / (horizon * self.capacity)


def hold(
    sim: Simulator, resource: Resource, duration: float
) -> Generator[Event, Any, None]:
    """Process fragment: acquire ``resource``, hold ``duration``, release.

    Use as ``yield sim.process(hold(sim, disk, t_read))`` or ``yield from``
    inside another process.
    """
    yield resource.request()
    try:
        yield sim.timeout(duration)
    finally:
        resource.release()


class Pipe:
    """Buffered FIFO channel between producer and consumer processes.

    ``capacity`` bounds the number of buffered items (0 = unbounded);
    ``put`` blocks when full, ``get`` blocks when empty.
    """

    def __init__(self, sim: Simulator, capacity: int = 0, name: str = ""):
        if capacity < 0:
            raise SimulationError("capacity must be >= 0")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        ev = Event(self.sim)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed()
        elif self.capacity == 0 or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            item = self._items.popleft()
            ev.succeed(item)
            if self._putters:
                putter, pending = self._putters.popleft()
                self._items.append(pending)
                putter.succeed()
        elif self._putters:
            putter, pending = self._putters.popleft()
            putter.succeed()
            ev.succeed(pending)
        else:
            self._getters.append(ev)
        return ev
