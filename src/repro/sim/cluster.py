"""Machine and WAN-route specifications of the paper's testbed.

Three machines and two routes appear in Section 6:

- an SGI **Origin 2000** at NASA Ames Research Center (the renderer for
  Figures 8/9 and Table 2; 16 processors used);
- the **RWCP PC cluster** in Japan: "130 200 MHz Intel Pentium Pro
  microprocessors connected by a Myrinet giga-bit network" (Figures 6, 7
  and 11);
- an SGI **O2 workstation** at UC Davis (the display client; its modest
  speed is why "decompression time is long").

The WAN models use a TCP-like burst: the first ``burst_bytes`` of a frame
travel near ``fast_bandwidth`` (window-limited), the remainder at
``steady_bandwidth`` — which reproduces the paper's Table 2 X-Window
rates, where small frames see ~4x the effective throughput of large ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.costs import CostModel

__all__ = [
    "MachineSpec",
    "WanRoute",
    "NASA_O2K",
    "RWCP_CLUSTER",
    "O2_CLIENT",
    "NASA_TO_UCD",
    "RWCP_TO_UCD",
]


@dataclass(frozen=True)
class MachineSpec:
    """A parallel machine (or workstation) and its cost model."""

    name: str
    n_procs: int
    costs: CostModel = field(default_factory=CostModel)
    #: main memory per node — the §3 constraint on pure inter-volume
    #: parallelism ("limited by each processor's main memory space");
    #: 256 MB matches late-90s cluster nodes
    node_memory_bytes: float = 256e6
    #: bytes/second the machine can push onto its local display
    local_display_bandwidth_Bps: float = 8e6
    #: fixed per-frame client-side handling overhead (event loop, image
    #: assembly, window update) — dominates tiny frames
    display_overhead_s: float = 0.05


@dataclass(frozen=True)
class WanRoute:
    """A wide-area route with TCP-burst transfer behaviour."""

    name: str
    rtt_s: float
    fast_bandwidth_Bps: float
    steady_bandwidth_Bps: float
    burst_bytes: float

    def transfer_s(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` of one frame across the route."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        slow_part = max(0.0, nbytes - self.burst_bytes)
        return (
            self.rtt_s
            + nbytes / self.fast_bandwidth_Bps
            + slow_part / self.steady_bandwidth_Bps
        )


#: SGI Origin 2000 at NASA Ames (R10000 nodes — the speed reference).
NASA_O2K = MachineSpec(
    name="NASA-Ames Origin 2000",
    n_procs=128,
    costs=CostModel(speed_factor=1.0),
)

#: RWCP PC cluster (200 MHz Pentium Pro + Myrinet).
RWCP_CLUSTER = MachineSpec(
    name="RWCP PC cluster",
    n_procs=128,
    costs=CostModel(
        speed_factor=1.25,
        internal_bandwidth_Bps=60e6,  # Myrinet gigabit-class
        composite_latency_s=0.002,
    ),
)

#: SGI O2 display workstation at UC Davis.
O2_CLIENT = MachineSpec(
    name="UC Davis SGI O2",
    n_procs=1,
    costs=CostModel(speed_factor=1.6),
    local_display_bandwidth_Bps=4e6,
)

#: NASA Ames → UC Davis (~120 miles): Table 2's X rates fit
#: rtt 30 ms, 600 KB/s burst throughput for the first ~64 KB, 85 KB/s
#: steady state.
NASA_TO_UCD = WanRoute(
    name="NASA Ames -> UC Davis",
    rtt_s=0.03,
    fast_bandwidth_Bps=600e3,
    steady_bandwidth_Bps=85e3,
    burst_bytes=64e3,
)

#: RWCP (Japan) → UC Davis: "the image transfer and X-display time took
#: almost twice longer than the NASA-UCD case."
RWCP_TO_UCD = WanRoute(
    name="RWCP Japan -> UC Davis",
    rtt_s=0.18,
    fast_bandwidth_Bps=350e3,
    steady_bandwidth_Bps=45e3,
    burst_bytes=48e3,
)
