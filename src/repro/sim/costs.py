"""Cost models calibrated to the paper's reported measurements.

All constants trace to statements in the paper (section numbers cited):

- §6: "Our ray-casting renderer takes from about 10 to 20 seconds to
  generate an image of 256x256 pixels using a single processor" → the
  per-(pixel·sample) render constant.
- §6: "The cost of compression is between 6 milliseconds for 128² pixels
  and 500 milliseconds for 1024² pixels.  The decompression cost is
  between 12 milliseconds and 600 milliseconds … on a single SGI O2."
  → per-pixel compression/decompression constants.
- §6 (vortex dataset): 512² transport+display 0.325 s vs render 0.178 s;
  (mixing dataset): 512² render ≈ 4 s → per-dataset effective sample
  counts (early ray termination makes the dense vortex *cheap* per ray,
  while the 16x-larger mixing volume is expensive).
- Figure 10: decompressing many sub-images costs a per-image overhead that
  dominates past ~16 pieces, while 2–8 pieces beat one large image.

A :class:`CostModel` instance answers "how many seconds does stage X take
on machine Y", and is consumed by the pipeline simulator in
:mod:`repro.core.pipeline`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CostModel", "DatasetProfile", "JET_PROFILE", "VORTEX_PROFILE", "MIXING_PROFILE"]


@dataclass(frozen=True)
class DatasetProfile:
    """Render/compression-relevant statistics of a dataset.

    ``effective_samples`` is the average number of composited samples per
    ray *after* early termination and space leaping — high-opacity data
    (vortex) terminates rays quickly; large volumes (mixing) sample long
    rays.  ``image_entropy`` scales compressed image sizes relative to
    the turbulent-jet frames used for Table 1.
    """

    name: str
    shape: tuple[int, int, int]
    components: int = 1
    effective_samples: float = 85.0
    image_entropy: float = 1.0

    @property
    def bytes_per_step(self) -> int:
        nx, ny, nz = self.shape
        return nx * ny * nz * self.components * 4


JET_PROFILE = DatasetProfile(
    name="turbulent-jet", shape=(129, 129, 104), effective_samples=85.0,
    image_entropy=1.0,
)
VORTEX_PROFILE = DatasetProfile(
    name="turbulent-vortex", shape=(128, 128, 128), effective_samples=30.0,
    image_entropy=2.6,  # high pixel coverage: "cannot be compressed as well"
)
MIXING_PROFILE = DatasetProfile(
    name="shock-mixing", shape=(640, 256, 256), components=3,
    # long rays through the 640-cell axis, but the ambient medium is
    # nearly transparent and the shock front terminates rays: calibrated
    # to the paper's "a 512x512 image would take about 4 seconds to
    # generate" on a 16-node group of the RWCP cluster.
    effective_samples=130.0, image_entropy=1.4,
)


@dataclass(frozen=True)
class CostModel:
    """Per-machine cost constants (scaled by the node ``speed_factor``).

    ``speed_factor`` > 1 means slower nodes (RWCP Pentium Pro ≈ 1.25 vs
    the Origin 2000's R10000 at 1.0).
    """

    #: seconds per (pixel · effective sample) on a reference node;
    #: 2.15e-6 puts the jet at ~12 s per 256² frame (paper: 10–20 s).
    render_pixel_sample_s: float = 2.15e-6
    #: node slowdown relative to the Origin 2000.
    speed_factor: float = 1.0
    #: JPEG(+LZO) compression seconds per pixel (paper §6: 6 ms at 128²,
    #: 500 ms at 1024² → ~0.4–0.5 µs/pixel).
    compress_pixel_s: float = 0.46e-6
    #: decompression seconds per pixel, as measured on the SGI O2 client
    #: (12 ms at 128² → 600 ms at 1024²).
    decompress_pixel_s: float = 0.57e-6
    #: fixed per-(sub-)image decompression overhead on the client —
    #: the Figure 10 effect: many small pieces pay this many times.
    decompress_image_overhead_s: float = 0.001
    #: cache-locality discount when decoding a few medium-sized pieces
    #: instead of one big image (Figure 10: "decompressing 2, 4, or 8
    #: smaller sub-images is faster than decompressing a single, larger
    #: image").
    decompress_cache_discount: float = 0.4
    #: load-imbalance + synchronization inefficiency of a G-node group:
    #: imb(G) = 1 + scale * ln(G)**power.  Fit experimentally (the role
    #: the companion paper [15] plays) so that the Fig 6 sweep's optimum
    #: lands at L=4 for P in {16, 32, 64}.
    imbalance_scale: float = 0.015
    imbalance_power: float = 2.0
    #: shared-storage slowdown when L groups interleave their volume
    #: reads on one mass-storage path: seek + read-ahead-cache thrash
    #: grows superlinearly with the stream count until the server is
    #: fully seek-bound — factor = 1 + q·min(L−1, cap)².
    stream_interference: float = 0.025
    stream_interference_cap: int = 12
    #: binary-swap per-message latency and intra-machine bandwidth
    composite_latency_s: float = 0.004
    internal_bandwidth_Bps: float = 40e6
    #: data staging (mass storage → renderer through "fast LANs")
    io_bandwidth_Bps: float = 30e6
    #: bytes of working image per pixel during compositing (RGBA float32)
    composite_bytes_per_pixel: int = 16

    # -- rendering -------------------------------------------------------------

    def single_processor_render_s(
        self, profile: DatasetProfile, pixels: int
    ) -> float:
        """T1: one processor rendering one full volume to ``pixels``."""
        return (
            self.render_pixel_sample_s
            * self.speed_factor
            * pixels
            * profile.effective_samples
        )

    def imbalance(self, group_size: int) -> float:
        """Parallelization inefficiency factor of a ``group_size`` group."""
        if group_size <= 1:
            return 1.0
        return (
            1.0
            + self.imbalance_scale * math.log(group_size) ** self.imbalance_power
        )

    def group_render_s(
        self, profile: DatasetProfile, pixels: int, group_size: int
    ) -> float:
        """Local-rendering stage time for one volume on a group."""
        t1 = self.single_processor_render_s(profile, pixels)
        return t1 / group_size * self.imbalance(group_size)

    def composite_s(self, pixels: int, group_size: int) -> float:
        """Binary-swap compositing time within a group."""
        if group_size <= 1:
            return 0.0
        rounds = math.ceil(math.log2(group_size))
        traffic = (
            pixels
            * self.composite_bytes_per_pixel
            * (1.0 - 1.0 / group_size)
            / self.internal_bandwidth_Bps
        )
        return rounds * self.composite_latency_s + traffic

    def memory_per_node_bytes(
        self, profile: DatasetProfile, pixels: int, group_size: int
    ) -> float:
        """Peak per-node working set of the rendering pipeline.

        Brick voxels (double-buffered for the pipelined input stage) plus
        the RGBA float32 working image and the binary-swap exchange
        buffer.  This is the §3 constraint that makes pure inter-volume
        parallelism (G = 1) "limited by each processor's main memory
        space".
        """
        brick = profile.bytes_per_step / group_size
        image = pixels * self.composite_bytes_per_pixel
        return 2.0 * brick + 2.0 * image

    # -- I/O ----------------------------------------------------------------------

    def volume_read_s(
        self, profile: DatasetProfile, concurrent_streams: int = 1
    ) -> float:
        """Reading one time step from mass storage (shared resource).

        ``concurrent_streams`` interleaved sequential readers (one per
        processor group) defeat the device's read-ahead and add
        :attr:`stream_interference` slowdown each.
        """
        if concurrent_streams < 1:
            raise ValueError("concurrent_streams must be >= 1")
        extra = min(concurrent_streams - 1, self.stream_interference_cap)
        penalty = 1.0 + self.stream_interference * extra**2
        return profile.bytes_per_step / self.io_bandwidth_Bps * penalty

    def distribute_s(self, profile: DatasetProfile, group_size: int) -> float:
        """Scattering a volume's bricks to the group's nodes."""
        return (
            profile.bytes_per_step / self.internal_bandwidth_Bps
            + group_size * 0.001
        )

    # -- image output ----------------------------------------------------------------

    def compress_s(self, pixels: int, n_pieces: int = 1) -> float:
        """Compressing a frame (optionally as parallel sub-images).

        With n_pieces > 1 each node compresses pixels/n_pieces
        concurrently, so wall time divides; a small per-piece setup cost
        keeps the division imperfect.
        """
        per_piece = (
            self.compress_pixel_s * self.speed_factor * pixels / n_pieces
        )
        return per_piece + 0.0015 * self.speed_factor

    def decompress_s(self, pixels: int, n_pieces: int = 1) -> float:
        """Client-side decompression of ``n_pieces`` sub-images.

        Serial on the (single) display workstation: total pixel work plus
        a per-image overhead — 2–8 medium pieces decode slightly faster
        than one big image (cache effects give small pieces a discount),
        but ≥16 pieces pay the overhead many times (Figure 10).
        """
        pixel_work = self.decompress_pixel_s * pixels
        if n_pieces > 1:
            # cache-locality discount peaking around 4 medium pieces
            discount = self.decompress_cache_discount * math.exp(
                -((math.log2(n_pieces) - 2.0) ** 2) / 2.0
            )
            pixel_work *= 1.0 - discount
        return pixel_work + self.decompress_image_overhead_s * n_pieces

    #: (pixels, bytes) anchors from Table 1's JPEG+LZO row for the jet.
    _JPEG_LZO_ANCHORS = (
        (128 * 128, 1282.0),
        (256 * 256, 2667.0),
        (512 * 512, 6705.0),
        (1024 * 1024, 18484.0),
    )

    def compressed_frame_bytes(
        self, pixels: int, profile: DatasetProfile, n_pieces: int = 1
    ) -> float:
        """Expected JPEG+LZO payload of one frame (Table 1 calibration).

        Log-log interpolation through the paper's measured jet sizes
        (growth is sublinear in pixels — bigger frames have proportionally
        more empty background).  Scales by dataset image entropy, and
        worsens ~12% per doubling of independently-compressed pieces
        ("compressing each image piece independent of other pieces would
        result in poor compression rates").
        """
        anchors = self._JPEG_LZO_ANCHORS
        lp = math.log(max(pixels, 1))
        if pixels <= anchors[0][0]:
            base = anchors[0][1] * pixels / anchors[0][0]
        else:
            base = anchors[-1][1] * (pixels / anchors[-1][0]) ** 0.73
            for (p0, b0), (p1, b1) in zip(anchors, anchors[1:]):
                if pixels <= p1:
                    frac = (lp - math.log(p0)) / (math.log(p1) - math.log(p0))
                    base = math.exp(
                        math.log(b0) + frac * (math.log(b1) - math.log(b0))
                    )
                    break
        base *= profile.image_entropy
        if n_pieces > 1:
            base *= 1.0 + 0.12 * math.log2(n_pieces)
        return base
