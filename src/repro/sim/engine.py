"""Minimal deterministic discrete-event simulation engine.

Processes are generators that ``yield`` events (timeouts, resource
acquisitions, other processes); the engine resumes them when the event
fires.  Ties in time break by scheduling order, so runs are fully
deterministic — a requirement for reproducible figures.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterator

__all__ = ["Simulator", "Event", "Timeout", "Process", "SimulationError"]


class SimulationError(RuntimeError):
    """Engine misuse (yielding a foreign event, double-trigger, ...)."""


class Event:
    """A one-shot occurrence carrying an optional value."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: list[Callable[["Event"], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event now; callbacks run within the current tick."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        for cb in self._callbacks:
            self.sim._defer(cb, self)
        self._callbacks.clear()
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.triggered:
            self.sim._defer(cb, self)
        else:
            self._callbacks.append(cb)


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds from creation."""

    def __init__(self, sim: "Simulator", delay: float):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(sim)
        sim._schedule_at(sim.now + delay, self._fire)

    def _fire(self) -> None:
        if not self.triggered:
            self.succeed()


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The generator may yield any :class:`Event`; the value sent back into
    the generator is the event's ``value``.
    """

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any]):
        super().__init__(sim)
        self._gen = gen
        sim._defer(self._step, None)

    def _step(self, fired: Event | None) -> None:
        value = fired.value if fired is not None else None
        try:
            target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {type(target).__name__}, expected Event"
            )
        if target.sim is not self.sim:
            raise SimulationError("process yielded an event from another simulator")
        target.add_callback(self._step)


class Simulator:
    """Event loop with a deterministic time-ordered heap."""

    def __init__(self):
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    # -- scheduling ------------------------------------------------------------

    def _schedule_at(self, when: float, fn: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (when, next(self._counter), fn))

    def _defer(self, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn`` later within the current simulated instant."""
        self._schedule_at(self.now, lambda: fn(*args))

    # -- public API --------------------------------------------------------------

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        """Launch a generator as a process."""
        return Process(self, gen)

    def all_of(self, events: list[Event]) -> Event:
        """An event firing once every listed event has fired."""
        done = Event(self)
        remaining = len(events)
        if remaining == 0:
            self._defer(done.succeed, None)
            return done
        state = {"left": remaining}

        def on_fire(_ev: Event) -> None:
            state["left"] -= 1
            if state["left"] == 0:
                done.succeed([e.value for e in events])

        for e in events:
            e.add_callback(on_fire)
        return done

    def run(self, until: float | None = None) -> float:
        """Drain the event heap (optionally up to simulated time ``until``).

        Returns the final simulated time.
        """
        while self._heap:
            when, _, fn = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = when
            fn()
        return self.now


def iterate_events(sim: Simulator) -> Iterator[float]:  # pragma: no cover
    """Debug helper: step the simulation one event at a time."""
    while sim._heap:
        when, _, fn = heapq.heappop(sim._heap)
        sim.now = when
        fn()
        yield when
