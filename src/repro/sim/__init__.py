"""Discrete-event simulation substrate for the timing experiments.

The paper's figures 6–11 measure wall-clock behaviour of a 1999-era
testbed (RWCP PC cluster, NASA Origin 2000, SGI O2 client, two WAN
routes).  This package provides a deterministic discrete-event engine
(:mod:`~repro.sim.engine`), contended resources — disks, links,
processors — (:mod:`~repro.sim.resources`), and cost models calibrated to
the paper's own reported numbers (:mod:`~repro.sim.costs`,
:mod:`~repro.sim.cluster`; see DESIGN.md §5).

The *functional* behaviour (real rendering, real compression, real message
patterns) is exercised elsewhere; this package answers only "how long
would stage X take on the paper's hardware, and how do the stages overlap".
"""

from repro.sim.engine import Event, Process, Simulator, Timeout
from repro.sim.resources import Resource, Pipe
from repro.sim.costs import CostModel
from repro.sim.cluster import (
    MachineSpec,
    WanRoute,
    NASA_O2K,
    RWCP_CLUSTER,
    O2_CLIENT,
    NASA_TO_UCD,
    RWCP_TO_UCD,
)

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Timeout",
    "Resource",
    "Pipe",
    "CostModel",
    "MachineSpec",
    "WanRoute",
    "NASA_O2K",
    "RWCP_CLUSTER",
    "O2_CLIENT",
    "NASA_TO_UCD",
    "RWCP_TO_UCD",
]
