"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflows a user of the paper's system would run:

- ``render``    one time step of a dataset to a PPM image;
- ``animate``   a remote session over a step range (frames to a directory);
- ``partition`` sweep the processor grouping L (Figure 6/7 workflow);
- ``codecs``    compare codecs on a rendered frame (Table 1 workflow);
- ``simulate``  one pipeline configuration on a modeled machine;
- ``serve``     fan one rendered sequence out to N adaptive viewers;
- ``faults``    serve over a WAN-shaped link with injected faults;
- ``relay``     serve a replay-heavy viewer pool through one edge relay;
- ``relay-topology``  a full origin → relay-mesh → viewer-pool scenario;
- ``lint``      run the repo's concurrency/protocol lint pass.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.compress import available_codecs, get_codec, percent_reduction, psnr
from repro.core import (
    PartitionPlan,
    PerformanceModel,
    PipelineConfig,
    RemoteVisualizationSession,
    candidate_partitions,
    simulate_pipeline,
)
from repro.data import DATASET_REGISTRY, get_dataset
from repro.net import get_route
from repro.render import Camera, TransferFunction, render_volume, to_display_rgb
from repro.render.ppm import write_ppm
from repro.sim.cluster import NASA_O2K, O2_CLIENT, RWCP_CLUSTER
from repro.sim.costs import JET_PROFILE, MIXING_PROFILE, VORTEX_PROFILE

__all__ = ["main", "build_parser"]

_MACHINES = {"rwcp": RWCP_CLUSTER, "o2k": NASA_O2K}
_PROFILES = {
    "turbulent-jet": JET_PROFILE,
    "turbulent-vortex": VORTEX_PROFILE,
    "shock-mixing": MIXING_PROFILE,
}
_TFS = {
    "jet": TransferFunction.jet,
    "vortex": TransferFunction.vortex,
    "mixing": TransferFunction.mixing,
    "gray": TransferFunction.grayscale,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Remote time-varying volume visualization (Ma & Camp, SC 2000)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_dataset_args(p):
        p.add_argument(
            "--dataset", default="turbulent-jet", choices=sorted(DATASET_REGISTRY)
        )
        p.add_argument("--scale", type=float, default=0.4,
                       help="grid scale factor (1.0 = paper size)")
        p.add_argument("--tf", default=None, choices=sorted(_TFS),
                       help="transfer function (default: match dataset)")
        p.add_argument("--size", type=int, default=256, help="image size (square)")
        p.add_argument("--azimuth", type=float, default=30.0)
        p.add_argument("--elevation", type=float, default=20.0)

    p = sub.add_parser("render", help="render one time step to a PPM file")
    add_dataset_args(p)
    p.add_argument("--step", type=int, default=0)
    p.add_argument("--output", default="frame.ppm")
    p.set_defaults(func=cmd_render)

    p = sub.add_parser("animate", help="run a remote session over a step range")
    add_dataset_args(p)
    p.add_argument("--steps", type=int, default=8)
    p.add_argument("--group-size", type=int, default=4)
    p.add_argument("--codec", default="jpeg+lzo", choices=available_codecs())
    p.add_argument("--pieces", type=int, default=1, help="parallel-compression pieces")
    p.add_argument("--output-dir", default=None,
                   help="write received frames as PPMs to this directory")
    p.set_defaults(func=cmd_animate)

    p = sub.add_parser("partition", help="sweep processor groupings (Fig 6/7)")
    p.add_argument("--machine", default="rwcp", choices=sorted(_MACHINES))
    p.add_argument("--procs", type=int, default=64)
    p.add_argument("--steps", type=int, default=128)
    p.add_argument("--size", type=int, default=256)
    p.add_argument("--profile", default="turbulent-jet", choices=sorted(_PROFILES))
    p.set_defaults(func=cmd_partition)

    p = sub.add_parser("codecs", help="compare codecs on a rendered frame (Table 1)")
    add_dataset_args(p)
    p.add_argument("--step", type=int, default=0)
    p.set_defaults(func=cmd_codecs)

    p = sub.add_parser("simulate", help="simulate one pipeline configuration")
    p.add_argument("--machine", default="rwcp", choices=sorted(_MACHINES))
    p.add_argument("--procs", type=int, default=64)
    p.add_argument("--groups", type=int, default=4)
    p.add_argument("--steps", type=int, default=128)
    p.add_argument("--size", type=int, default=256)
    p.add_argument("--profile", default="turbulent-jet", choices=sorted(_PROFILES))
    p.add_argument("--transport", default="store", choices=["store", "x", "daemon"])
    p.add_argument("--route", default="nasa-ucd")
    p.add_argument("--io-servers", type=int, default=1)
    p.add_argument("--timeline", action="store_true",
                   help="print the ASCII schedule after the metrics")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "autotune",
        help="pick (L, pieces, quality) for a target frame rate",
    )
    p.add_argument("--machine", default="o2k", choices=sorted(_MACHINES))
    p.add_argument("--procs", type=int, default=64)
    p.add_argument("--size", type=int, default=256)
    p.add_argument("--profile", default="turbulent-jet", choices=sorted(_PROFILES))
    p.add_argument("--route", default="nasa-ucd")
    p.add_argument("--target-fps", type=float, default=5.0)
    p.set_defaults(func=cmd_autotune)

    p = sub.add_parser(
        "serve",
        help="fan a frame sequence out to N viewers through the session broker",
    )
    add_dataset_args(p)
    p.add_argument("--viewers", type=int, default=8)
    p.add_argument("--frames", type=int, default=32)
    p.add_argument("--slow", type=int, default=0,
                   help="of the viewers, how many never drain (stress the "
                        "adaptive tier controller)")
    p.add_argument("--credits", type=int, default=8,
                   help="per-viewer delivery credits before drops begin")
    p.add_argument("--synthetic", action="store_true",
                   help="use synthetic frames instead of rendering the dataset")
    p.add_argument("--shards", type=int, default=1,
                   help="broker shards behind the consistent-hash "
                        "session router (1 = single broker)")
    p.add_argument("--encode-workers", type=int, default=0,
                   help="encode-pool worker processes for cold cache "
                        "fills (0 = encode in-process)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "faults",
        help="serve synthetic frames over a fault-injected WAN link",
    )
    p.add_argument("--seed", type=int, default=1234,
                   help="fault-plan seed (same seed -> same behaviour)")
    p.add_argument("--loss", type=float, default=0.05,
                   help="per-attempt frame loss ratio (retransmitted)")
    p.add_argument("--latency", type=float, default=0.0,
                   help="fixed one-way delivery latency, seconds")
    p.add_argument("--jitter", type=float, default=0.1,
                   help="uniform extra delay on top of latency, seconds")
    p.add_argument("--corrupt", type=float, default=0.0,
                   help="per-attempt payload corruption ratio")
    p.add_argument("--disconnect-after", type=int, default=None,
                   help="cut the link after N delivered frames "
                        "(viewer reconnects and resumes)")
    p.add_argument("--frames", type=int, default=96)
    p.add_argument("--viewers", type=int, default=2)
    p.add_argument("--pace", type=float, default=0.03,
                   help="seconds between published frames")
    p.add_argument("--credits", type=int, default=8)
    p.add_argument("--relays", type=int, default=0,
                   help="route the scenario through N edge relays (the "
                        "fault plan moves to the relay→viewer hop)")
    p.add_argument("--shards", type=int, default=1,
                   help="serve through N broker shards behind the "
                        "session router")
    p.add_argument("--encode-workers", type=int, default=0,
                   help="encode-pool worker processes (0 = in-process)")
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "relay",
        help="run one edge relay under a replay-heavy viewer pool and "
             "print its stats summary",
    )
    p.add_argument("--viewers", type=int, default=4)
    p.add_argument("--frames", type=int, default=48)
    p.add_argument("--loops", type=int, default=3,
                   help="timeline passes per viewer (replays are "
                        "served from the relay store)")
    p.add_argument("--size", type=int, default=32, help="frame size (square)")
    p.add_argument("--pace", type=float, default=0.005,
                   help="seconds between published frames")
    p.add_argument("--lookahead", type=int, default=16,
                   help="timeline prefetch window, frames")
    p.add_argument("--store-mb", type=int, default=32,
                   help="relay store budget, MiB")
    p.set_defaults(func=cmd_relay)

    p = sub.add_parser(
        "relay-topology",
        help="run an origin → relay-mesh → viewer-pool scenario "
             "(ownership ring, peer fetch, optional mid-stream kill)",
    )
    p.add_argument("--relays", type=int, default=2)
    p.add_argument("--viewers", type=int, default=8)
    p.add_argument("--frames", type=int, default=48)
    p.add_argument("--loops", type=int, default=3)
    p.add_argument("--size", type=int, default=32)
    p.add_argument("--pace", type=float, default=0.005)
    p.add_argument("--chunk", type=int, default=16,
                   help="frames per ownership chunk on the hash ring")
    p.add_argument("--kill-after", type=int, default=None,
                   help="kill relay0 once any viewer has consumed N "
                        "frames (its viewers fail over to a peer)")
    p.add_argument("--loss", type=float, default=0.0,
                   help="loss ratio on the relay→viewer links")
    p.add_argument("--jitter", type=float, default=0.0,
                   help="jitter (s) on the relay→viewer links")
    p.add_argument("--seed", type=int, default=1234)
    p.set_defaults(func=cmd_relay_topology)

    p = sub.add_parser(
        "lint",
        help="run the concurrency/protocol lint pass, the DT7xx lockset "
             "race analyzer, the DT8xx resource-lifecycle analyzer, and "
             "the DT9xx protocol-conformance analyzer "
             "(see docs/devtools.md)",
    )
    p.add_argument("paths", nargs="*", default=["src", "tests"],
                   help="files or directories to lint (default: src tests)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.add_argument("--no-lockset", action="store_true",
                   help="skip the DT7xx lockset analysis pass")
    p.add_argument("--no-resourceflow", action="store_true",
                   help="skip the DT8xx resource-lifecycle pass")
    p.add_argument("--no-protoflow", action="store_true",
                   help="skip the DT9xx protocol-conformance pass")
    p.add_argument("--baseline", default=None,
                   help="lockset baseline file (default: lockset_baseline.json)")
    p.add_argument("--rf-baseline", default=None,
                   help="resource-flow baseline file "
                        "(default: resourceflow_baseline.json)")
    p.add_argument("--pf-baseline", default=None,
                   help="protocol-conformance baseline file "
                        "(default: protoflow_baseline.json)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore the baselines and report everything")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baselines from current findings")
    p.add_argument("--json", action="store_true",
                   help="emit findings as machine-readable JSON")
    p.add_argument("--sarif", default=None, metavar="FILE",
                   help="also write the findings as SARIF 2.1.0 to FILE")
    p.add_argument("--emit-proto-dot", default=None, metavar="FILE",
                   help="write the protocol spec automata as Graphviz DOT "
                        "to FILE and exit")
    p.add_argument("--fail-on-stale", action="store_true",
                   help="exit non-zero when a baseline has stale entries")
    p.set_defaults(func=cmd_lint)

    return parser


def _default_tf(args) -> TransferFunction:
    if args.tf is not None:
        return _TFS[args.tf]()
    by_dataset = {
        "turbulent-jet": TransferFunction.jet,
        "turbulent-vortex": TransferFunction.vortex,
        "shock-mixing": TransferFunction.mixing,
    }
    return by_dataset[args.dataset]()


def cmd_render(args) -> int:
    dataset = get_dataset(args.dataset, scale=args.scale)
    cam = Camera(
        image_size=(args.size, args.size),
        azimuth=args.azimuth,
        elevation=args.elevation,
    )
    volume = dataset.volume(args.step)
    frame = to_display_rgb(render_volume(volume, _default_tf(args), cam))
    write_ppm(args.output, frame)
    print(f"wrote {args.output}: step {args.step} of {dataset.name}, "
          f"{args.size}x{args.size}")
    return 0


def cmd_animate(args) -> int:
    dataset = get_dataset(args.dataset, scale=args.scale, n_steps=args.steps)
    out_dir = Path(args.output_dir) if args.output_dir else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    with RemoteVisualizationSession(
        dataset,
        group_size=args.group_size,
        camera=Camera(
            image_size=(args.size, args.size),
            azimuth=args.azimuth,
            elevation=args.elevation,
        ),
        tf=_default_tf(args),
        codec=args.codec,
        n_pieces=args.pieces,
    ) as session:
        def sink(frame):
            if out_dir:
                write_ppm(out_dir / f"frame_{frame.time_step:04d}.ppm", frame.image)

        report = session.run(on_frame=sink)
    raw = report.raw_bytes_per_frame
    for frame, payload in zip(report.frames, report.payload_bytes):
        print(f"step {frame.time_step:4d}: {payload:8d} B "
              f"({percent_reduction(raw, payload):5.1f}% reduction)")
    print(report.metrics.summary())
    return 0


def cmd_partition(args) -> int:
    machine = _MACHINES[args.machine]
    model = PerformanceModel(
        machine=machine, profile=_PROFILES[args.profile], pixels=args.size**2
    )
    print(f"{'L':>4} {'kind':>14} {'overall':>10} {'startup':>9} {'inter':>8}")
    best_l, best = None, float("inf")
    for l_groups in candidate_partitions(args.procs):
        m = model.predict(PartitionPlan(args.procs, l_groups), args.steps)
        print(
            f"{l_groups:>4} {PartitionPlan(args.procs, l_groups).kind:>14} "
            f"{m.overall_time:>9.1f}s {m.start_up_latency:>8.2f}s "
            f"{m.inter_frame_delay:>7.3f}s"
        )
        if m.overall_time < best:
            best_l, best = l_groups, m.overall_time
    print(f"\nrecommended: L={best_l} ({best:.1f}s overall)")
    return 0


def cmd_codecs(args) -> int:
    dataset = get_dataset(args.dataset, scale=args.scale)
    cam = Camera(
        image_size=(args.size, args.size),
        azimuth=args.azimuth,
        elevation=args.elevation,
    )
    frame = to_display_rgb(
        render_volume(dataset.volume(args.step), _default_tf(args), cam)
    )
    print(f"{'method':>10} {'bytes':>9} {'reduction':>10} {'quality':>9}")
    for method in ("raw", "rle", "lzo", "deflate", "bzip", "jpeg", "jpeg+lzo", "jpeg+bzip"):
        codec = get_codec(method)
        payload = codec.encode_image(frame)
        q = psnr(frame, codec.decode_image(payload))
        q_str = "lossless" if q == float("inf") else f"{q:6.1f}dB"
        print(
            f"{method:>10} {len(payload):>9} "
            f"{percent_reduction(frame.nbytes, len(payload)):>9.1f}% {q_str:>9}"
        )
    return 0


def cmd_simulate(args) -> int:
    machine = _MACHINES[args.machine]
    config = PipelineConfig(
        n_procs=args.procs,
        n_groups=args.groups,
        n_steps=args.steps,
        profile=_PROFILES[args.profile],
        machine=machine,
        image_size=(args.size, args.size),
        transport=args.transport,
        route=get_route(args.route) if args.transport != "store" else None,
        client=O2_CLIENT if args.transport != "store" else None,
        io_servers=args.io_servers,
    )
    result = simulate_pipeline(config)
    m = result.metrics
    print(f"machine        : {machine.name} (P={args.procs}, L={args.groups})")
    print(f"transport      : {args.transport}")
    print(f"start-up       : {m.start_up_latency:.2f} s")
    print(f"overall        : {m.overall_time:.2f} s")
    print(f"inter-frame    : {m.inter_frame_delay:.3f} s ({m.frame_rate:.2f} fps)")
    print(f"storage busy   : {result.storage_utilization * 100:.0f}%")
    print(f"output busy    : {result.output_utilization * 100:.0f}%")
    if args.timeline:
        from repro.core import render_timeline

        print()
        print(render_timeline(result, width=100))
    return 0


def cmd_autotune(args) -> int:
    from repro.core import autotune

    cfg = autotune(
        _MACHINES[args.machine],
        _PROFILES[args.profile],
        get_route(args.route),
        O2_CLIENT,
        n_procs=args.procs,
        image_size=(args.size, args.size),
        target_fps=args.target_fps,
    )
    verdict = "meets" if cfg.meets_target else "CANNOT meet"
    print(f"target         : {args.target_fps:.1f} fps at {args.size}x{args.size}")
    print(f"recommendation : L={cfg.n_groups} pieces={cfg.n_pieces} "
          f"quality={cfg.quality}")
    print(f"predicted      : {cfg.predicted_fps:.2f} fps "
          f"(startup {cfg.predicted_startup_s:.2f}s) -> {verdict} the target")
    return 0


def cmd_serve(args) -> int:
    import threading
    import time

    from repro.serve import SessionBroker, SessionRouter
    from repro.serve.fanout import synthetic_frames

    if args.synthetic:
        frames = synthetic_frames(args.frames, size=args.size)
    else:
        dataset = get_dataset(args.dataset, scale=args.scale,
                              n_steps=args.frames)
        cam = Camera(
            image_size=(args.size, args.size),
            azimuth=args.azimuth,
            elevation=args.elevation,
        )
        tf = _default_tf(args)
        frames = [
            to_display_rgb(render_volume(dataset.volume(t), tf, cam))
            for t in range(min(args.frames, dataset.n_steps))
        ]
    n_slow = min(args.slow, args.viewers)
    if args.shards > 1 or args.encode_workers > 0:
        broker = SessionRouter(
            shards=args.shards,
            encode_workers=args.encode_workers,
            credit_limit=args.credits,
        )
    else:
        broker = SessionBroker(credit_limit=args.credits)
    with broker:
        fast = [broker.join(f"fast{i}") for i in range(args.viewers - n_slow)]
        slow = [broker.join(f"slow{i}") for i in range(n_slow)]
        stop = threading.Event()

        def drain(handle):
            while not stop.is_set():
                try:
                    handle.next_frame(timeout=0.2)
                except TimeoutError:
                    continue
                except ConnectionError:
                    return

        threads = [
            threading.Thread(target=drain, args=(h,), daemon=True) for h in fast
        ]
        for t in threads:
            t.start()
        t0 = time.perf_counter()
        for step, image in enumerate(frames):
            broker.publish(image, time_step=step, frame_id=step)
        broker.drain(timeout=10.0, names=[h.name for h in fast])
        elapsed = time.perf_counter() - t0
        stats = broker.stats()
        stop.set()
        for t in threads:
            t.join(timeout=5.0)
        for h in fast + slow:
            h.leave()
    print(stats.summary())
    print(f"delivered {stats.total_frames_sent} frames "
          f"({stats.total_bytes_sent} B) in {elapsed:.2f}s; "
          f"{stats.total_transitions} tier transitions")
    return 0


def cmd_faults(args) -> int:
    from repro.net.faults import FaultPlan
    from repro.serve.faultrun import run_with_faults

    plan = FaultPlan(
        seed=args.seed,
        loss_ratio=args.loss,
        latency_s=args.latency,
        jitter_s=args.jitter,
        corrupt_ratio=args.corrupt,
        disconnect_after=args.disconnect_after,
    )
    report = run_with_faults(
        plan,
        n_frames=args.frames,
        n_viewers=args.viewers,
        credit_limit=args.credits,
        pace_s=args.pace,
        relays=args.relays,
        shards=args.shards,
        encode_workers=args.encode_workers,
    )
    if args.relays:
        print(f"topology       : origin -> {args.relays} relay(s) -> viewers "
              f"(fault plan on the relay→viewer hop)")
    print(f"plan           : loss {plan.loss_ratio * 100:.1f}%  "
          f"latency {plan.latency_s * 1000:.0f}ms  "
          f"jitter {plan.jitter_s * 1000:.0f}ms  "
          f"corrupt {plan.corrupt_ratio * 100:.1f}%  "
          f"disconnect_after {plan.disconnect_after}")
    print(f"published      : {report['n_frames']} frames to "
          f"{report['n_viewers']} viewers in {report['elapsed_s']:.2f}s")
    print(f"delivered ratio: {report['delivered_ratio'] * 100:.1f}% (worst), "
          f"{report['mean_delivered_ratio'] * 100:.1f}% (mean)")
    print(f"resumes        : {report['resumes']}  "
          f"malformed ctrl : {report['malformed_controls']}")
    header = (f"{'session':<10}{'ratio':>8}{'acks':>7}{'skip':>6}{'drop':>6}"
              f"{'tier':>6}{'steps':>7}{'rejoin':>8}{'dups':>6}")
    print(header)
    for name in sorted(report["sessions"]):
        s = report["sessions"][name]
        print(f"{name:<10}{s['delivered_ratio'] * 100:>7.1f}%{s['acks']:>7}"
              f"{s['skipped']:>6}{s['dropped']:>6}{s['tier']:>6}"
              f"{s['transitions']:>7}{s['reconnects']:>8}"
              f"{s['observed_duplicates']:>6}")
    return 0


def cmd_relay(args) -> int:
    from repro.relay import PrefetchPolicy, run_relay_topology

    report = run_relay_topology(
        n_relays=1,
        n_viewers=args.viewers,
        n_frames=args.frames,
        loops=args.loops,
        size=args.size,
        pace_s=args.pace,
        store_bytes=args.store_mb << 20,
        prefetch=PrefetchPolicy(lookahead=args.lookahead),
    )
    for summary in report["summaries"]:
        print(summary)
    print(f"workload: {args.viewers} viewers x {args.loops} loops x "
          f"{args.frames} frames in {report['elapsed_s']:.2f}s")
    print(f"delivered {report['delivered_ratio'] * 100:.1f}% (worst viewer), "
          f"{report['duplicates']} dups, {report['skips']} skips; "
          f"origin offload {report['offload_ratio'] * 100:.1f}%")
    return 0


def cmd_relay_topology(args) -> int:
    from repro.net.faults import FaultPlan
    from repro.relay import run_relay_topology

    plan = None
    if args.loss or args.jitter:
        plan = FaultPlan(seed=args.seed, loss_ratio=args.loss,
                         jitter_s=args.jitter)
    report = run_relay_topology(
        n_relays=args.relays,
        n_viewers=args.viewers,
        n_frames=args.frames,
        loops=args.loops,
        size=args.size,
        pace_s=args.pace,
        chunk_frames=args.chunk,
        viewer_plan=plan,
        kill_relay_after=args.kill_after,
    )
    topo = report["topology"]
    print(f"topology : origin -> {topo['n_relays']} relays "
          f"(chunk={topo['chunk_frames']}) -> {topo['n_viewers']} viewers"
          + (f"  [killed {topo['killed']} mid-stream]"
             if topo["killed"] else ""))
    print(f"workload : {args.loops} loops x {args.frames} frames, "
          f"done in {report['elapsed_s']:.2f}s "
          f"(completed={report['completed']})")
    print(f"delivery : {report['delivered_ratio'] * 100:.1f}% worst / "
          f"{report['mean_delivered_ratio'] * 100:.1f}% mean, "
          f"{report['duplicates']} dups, {report['skips']} skips, "
          f"{report['failovers']} failovers")
    print(f"offload  : {report['offload_ratio'] * 100:.1f}% "
          f"({report['origin_frames']} origin frames for "
          f"{report['viewer_frames']} viewer frames)")
    for summary in report["summaries"]:
        print(summary)
    header = (f"{'viewer':<10}{'ratio':>8}{'loops':>7}{'dups':>6}"
              f"{'skips':>7}{'failover':>10}")
    print(header)
    for name in sorted(report["viewers"]):
        v = report["viewers"][name]
        print(f"{name:<10}{v['delivered_ratio'] * 100:>7.1f}%"
              f"{v['loops_done']:>7}{v['duplicates']:>6}{v['skips']:>7}"
              f"{v['failovers']:>10}")
    return 0


def cmd_lint(args) -> int:
    from repro.devtools import lint

    argv = list(args.paths)
    if args.list_rules:
        argv.append("--list-rules")
    if args.no_lockset:
        argv.append("--no-lockset")
    if args.no_resourceflow:
        argv.append("--no-resourceflow")
    if args.no_protoflow:
        argv.append("--no-protoflow")
    if args.baseline is not None:
        argv.extend(["--baseline", args.baseline])
    if args.rf_baseline is not None:
        argv.extend(["--rf-baseline", args.rf_baseline])
    if args.pf_baseline is not None:
        argv.extend(["--pf-baseline", args.pf_baseline])
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.json:
        argv.append("--json")
    if args.sarif is not None:
        argv.extend(["--sarif", args.sarif])
    if args.emit_proto_dot is not None:
        argv.extend(["--emit-proto-dot", args.emit_proto_dot])
    if args.fail_on_stale:
        argv.append("--fail-on-stale")
    return lint.main(argv)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
