"""Per-viewer session state: credits, adaptive tier, and the viewer handle.

Delivery is credit-based, not blind broadcast: a session may have at most
``credit_limit`` frames in flight; each frame the viewer consumes returns
one credit as an ``ack`` control message.  A session out of credits
*drops* the frame immediately (the publisher never blocks on a slow
viewer), and the :class:`AdaptiveQualityController` watches those drops
and the ack drain rate to walk the session along the tier ladder —
congestion steps it toward cheaper tiers, a sustained clean streak steps
it back up.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.compress import Codec, get_codec
from repro.compress.context import CodecContext
from repro.devtools.lockset import guarded_by
from repro.daemon.protocol import (
    ControlMessage,
    FrameMessage,
    ProtocolError,
    decode_message,
)
from repro.net.transport import ChannelClosed, FramedConnection
from repro.serve.stats import SessionStats, TierTransition
from repro.serve.tiers import TierLadder

__all__ = [
    "AdaptiveQualityController",
    "ViewerSession",
    "ViewerHandle",
    "ServedFrame",
    "FrameDecodeError",
]


class FrameDecodeError(ValueError):
    """A delivered frame could not be decoded (corrupted in flight).

    Subclasses :class:`ValueError` so pre-existing callers that caught
    decoder ``ValueError``s keep working, but gives resilience code one
    *typed* error to count instead of a broad ``except Exception``.
    """


class AdaptiveQualityController:
    """Hysteresis between tiers: quick to step down, slow to step up.

    ``step_down_after`` consecutive credit-exhausted drops demote the
    session one tier; ``step_up_after`` consecutive acked deliveries with
    no intervening drop promote it one.  Both streak counters reset on a
    step so one congestion episode moves at most one tier per threshold
    crossing.
    """

    def __init__(self, step_down_after: int = 2, step_up_after: int = 16):
        if step_down_after < 1 or step_up_after < 1:
            raise ValueError("thresholds must be >= 1")
        self.step_down_after = step_down_after
        self.step_up_after = step_up_after
        self._consecutive_drops = 0
        self._consecutive_acks = 0

    def on_dropped(self) -> int:
        """Record a drop; returns the tier delta to apply (0 or +1)."""
        self._consecutive_acks = 0
        self._consecutive_drops += 1
        if self._consecutive_drops >= self.step_down_after:
            self._consecutive_drops = 0
            return +1
        return 0

    def on_ack(self) -> int:
        """Record a consumed frame; returns the tier delta (0 or -1)."""
        self._consecutive_drops = 0
        self._consecutive_acks += 1
        if self._consecutive_acks >= self.step_up_after:
            self._consecutive_acks = 0
            return -1
        return 0


class ViewerSession:  # speaks: broker
    """Broker-side record of one connected viewer."""

    def __init__(
        self,
        name: str,
        conn: FramedConnection,
        ladder: TierLadder,
        credit_limit: int = 4,
        controller: AdaptiveQualityController | None = None,
        codec_context: CodecContext | None = None,
    ):
        if credit_limit < 1:
            raise ValueError("credit_limit must be >= 1")
        self.name = name
        self.conn = conn
        self.ladder = ladder
        self.credit_limit = credit_limit
        self.controller = controller or AdaptiveQualityController()
        #: the decode-side context shared with this session's ViewerHandle
        self.codec_context = codec_context or CodecContext()
        self._lock = threading.Lock()
        self.tier_index = 0  # guarded-by: _lock
        self.in_flight = 0  # guarded-by: _lock
        self.active = True  # guarded-by: _lock
        #: resume point for seek(): next frame id the viewer wants
        self.position = 0  # guarded-by: _lock
        #: highest frame id the viewer has acknowledged consuming
        self.last_acked = -1  # guarded-by: _lock
        #: frame ids replayed at resume time; a concurrent publish of
        #: one of these is a duplicate and must be suppressed (one-shot)
        self._resume_guard: set[int] = set()  # guarded-by: _lock
        self._stats = SessionStats(name=name, tier=ladder[0].name)  # guarded-by: _lock

    # -- reconnect/resume ----------------------------------------------------

    def restore(self, *, stats: SessionStats, tier_index: int,
                last_acked: int) -> None:
        """Carry state across a reconnect of the same logical viewer:
        cumulative counters, the adaptive tier, and the resume cursor."""
        with self._lock:
            stats.active = True
            stats.reconnects += 1
            self._stats = stats
            self.tier_index = self.ladder.clamp(tier_index)
            self._stats.tier = self.ladder[self.tier_index].name
            self.last_acked = last_acked
            self.position = last_acked + 1

    def arm_resume_guard(self, frame_ids) -> None:
        """Mark ``frame_ids`` as covered by the resume replay."""
        with self._lock:
            self._resume_guard.update(frame_ids)

    def pop_resume_guard(self, frame_id: int) -> bool:
        """True (once) if ``frame_id`` was already replayed at resume —
        the publish racing the rejoin must not deliver it twice."""
        with self._lock:
            if not self._resume_guard:
                return False
            if frame_id in self._resume_guard:
                self._resume_guard.discard(frame_id)
                return True
            if frame_id > max(self._resume_guard):
                # the stream moved past the replay window: disarm
                self._resume_guard.clear()
            return False

    # -- delivery ----------------------------------------------------------

    def offer(self, msg: FrameMessage) -> str:
        """Try to deliver one encoded frame; returns the outcome.

        ``"sent"``: a credit was available and the frame went out.
        ``"dropped"``: the viewer is out of credits (may demote the tier).
        ``"closed"``: the connection is gone.
        """
        with self._lock:
            if not self.active:
                return "closed"
            if self.in_flight >= self.credit_limit:
                self._stats.frames_dropped += 1
                self._apply_delta(self.controller.on_dropped(), msg.frame_id,
                                  "congestion")
                return "dropped"
            try:
                self.conn.send(msg.encode())
            except ChannelClosed:
                self.active = False
                self._stats.active = False
                return "closed"
            self.in_flight += 1
            self._stats.frames_sent += 1
            self._stats.bytes_sent += len(msg.payload)
            self.position = msg.frame_id + 1
            return "sent"

    def mark_skipped(self) -> None:
        """Count a stride-filtered frame (deliberate, not congestion)."""
        with self._lock:
            self._stats.frames_skipped += 1

    def on_ack(self, frame_id: int) -> None:
        """A credit came back: the viewer consumed ``frame_id``."""
        with self._lock:
            self.in_flight = max(0, self.in_flight - 1)
            self.last_acked = max(self.last_acked, frame_id)
            self._stats.acks += 1
            self._apply_delta(self.controller.on_ack(), frame_id, "recovered")

    @guarded_by("_lock")
    def _apply_delta(self, delta: int, frame_id: int, reason: str) -> None:
        if not delta:
            return
        new_index = self.ladder.clamp(self.tier_index + delta)
        if new_index == self.tier_index:
            return
        old = self.ladder[self.tier_index].name
        new = self.ladder[new_index].name
        self.tier_index = new_index
        self._stats.tier = new
        self._stats.transitions.append(
            TierTransition(frame_id=frame_id, from_tier=old, to_tier=new,
                           reason=reason)
        )
        try:  # tell the viewer which tier it is watching now
            self.conn.send(
                ControlMessage(tag="tier", params={"tier": new, "reason": reason})
                .encode()
            )
        except ChannelClosed:
            self.active = False
            self._stats.active = False

    def deactivate(self) -> None:
        with self._lock:
            self.active = False
            self._stats.active = False

    # -- locked accessors (the broker reads these cross-thread) -------------

    def is_active(self) -> bool:
        with self._lock:
            return self.active

    def current_tier_index(self) -> int:
        with self._lock:
            return self.tier_index

    def cursor(self) -> int:
        """Next frame id the viewer wants (the seek/resume point)."""
        with self._lock:
            return self.position

    def idle(self) -> bool:
        """True when nothing is in flight (or the session is gone)."""
        with self._lock:
            return self.in_flight == 0 or not self.active

    def resume_state(self) -> tuple[SessionStats, int, int]:
        """``(stats, tier_index, last_acked)`` read in one critical
        section, for parking an uncleanly-departed session."""
        with self._lock:
            return self._stats, self.tier_index, self.last_acked

    def stats_snapshot(self) -> SessionStats:
        with self._lock:
            return self._stats.copy(
                decode_context_hit_ratio=self.codec_context.hit_ratio(),
                active=self.active,
            )


@dataclass(frozen=True)
class ServedFrame:
    """One frame as the viewer receives it (``image`` is None when the
    handle was asked not to decode)."""

    frame_id: int
    time_step: int
    codec: str
    image: np.ndarray | None
    payload_bytes: int


class ViewerHandle:  # speaks: client
    """The viewer's end of a broker session.

    ``next_frame()`` blocks for the next delivered frame, decodes it with
    this session's persistent :class:`CodecContext`, and acks it — the
    ack is what returns the delivery credit, so a viewer that stops
    calling ``next_frame`` is, by construction, a slow viewer.
    """

    def __init__(self, name: str, conn: FramedConnection,
                 codec_context: CodecContext, resumed: bool = False):
        self.name = name
        self.conn = conn
        self.codec_context = codec_context
        self._codecs: dict[str, Codec] = {}
        #: most recent tier the broker told us we are watching
        self.current_tier: str | None = None
        #: True when this handle continues an earlier session's stream
        self.resumed = resumed
        #: ``(from, to)`` half-open id ranges the broker declared
        #: unrecoverable at resume (history evicted past our cursor) —
        #: the explicit signal that replaces a silent no-dup-no-skip
        #: violation.  Appended by the ``next_frame`` thread; read it
        #: from that consumer (or after the handle stops consuming).
        self.gaps: list[tuple[int, int]] = []
        #: well-formed control messages this handle has no handler for
        #: (same single-consumer access rule as ``gaps``)
        self.unknown_controls = 0
        self._closed = False

    def _decoder(self, name: str) -> Codec:
        codec = self._codecs.get(name)
        if codec is None:
            codec = get_codec(name)
            if hasattr(codec, "use_context"):
                codec.use_context(self.codec_context)
            self._codecs[name] = codec
        return codec

    def next_frame(
        self, timeout: float | None = 5.0, *, decode: bool = True
    ) -> ServedFrame:
        """Receive, decode, and ack the next frame.

        A frame mangled in flight raises :class:`FrameDecodeError`
        (whether the corruption hit the message envelope or the
        compressed payload); timeouts and closed connections keep their
        own exception types so callers can tell the three apart.

        ``decode=False`` acks without decompressing and returns the
        frame with ``image=None`` — for consumers that only need the
        stream's pacing (load generators, relays auditing delivery),
        where decoding every payload would measure the consumer's CPU
        instead of the server's.
        """
        while True:
            raw = self.conn.recv(timeout=timeout)
            try:
                msg = decode_message(memoryview(raw), copy=False)
            except ProtocolError as exc:
                raise FrameDecodeError(f"undecodable message: {exc}") from exc
            if isinstance(msg, FrameMessage):
                image = None
                if decode:
                    try:
                        image = self._decoder(msg.codec).decode_image(
                            msg.payload
                        )
                    except Exception as exc:
                        # any decoder failure on a wire-corrupted payload
                        # is re-raised typed — never swallowed, never
                        # broad at the call sites that count it
                        raise FrameDecodeError(
                            f"frame {msg.frame_id} ({msg.codec}): {exc}"
                        ) from exc
                self._ack(msg.frame_id)
                return ServedFrame(
                    frame_id=msg.frame_id,
                    time_step=msg.time_step,
                    codec=msg.codec,
                    image=image,
                    payload_bytes=len(msg.payload),
                )
            if isinstance(msg, ControlMessage) and msg.tag == "tier":
                self.current_tier = msg.params.get("tier")
            elif isinstance(msg, ControlMessage) and msg.tag == "gap":
                self.gaps.append(
                    (msg.params.get("from", 0), msg.params.get("to", 0))
                )
            else:
                # a tag this handle has no handler for: count it (the
                # protocol grows; a silent drop here hid real traffic
                # once) and keep consuming until a frame arrives
                self.unknown_controls += 1
                continue

    def _ack(self, frame_id: int) -> None:
        try:
            self.conn.send(
                ControlMessage(tag="ack", params={"frame_id": frame_id}).encode()
            )
        except ChannelClosed:
            pass

    def seek(self, frame_id: int) -> None:
        """Ask the broker to replay its recent history from ``frame_id``."""
        self.conn.send(
            ControlMessage(tag="seek", params={"frame_id": frame_id}).encode()
        )

    def leave(self) -> None:
        """Politely end the session (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self.conn.send(ControlMessage(tag="leave").encode())
        except ChannelClosed:
            pass
        self.conn.close()

    close = leave

    def __enter__(self) -> "ViewerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.leave()
