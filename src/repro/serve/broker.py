"""The session broker: many viewers, one encode per (frame, tier).

The paper's display daemon exists so one remote parallel renderer can
feed viewers across a WAN (§4.1); the broker is the serving layer grown
on top of that framework.  A renderer (or any frame source) publishes
assembled frames once; the broker encodes each published frame at most
once per quality tier *in use* — through the shared content-addressed
:class:`~repro.serve.cache.FrameCache` — and delivers to every session
under credit-based backpressure, so total encode work is a function of
the tier mix, never of the viewer count.

Viewers join and leave at any time; a ``seek`` control replays the
broker's recent raw-frame history from the requested frame id at the
session's current tier (replays of cached tiers are pure cache hits).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

import numpy as np

from repro.compress import Codec
from repro.compress.context import CodecContext
from repro.daemon.protocol import ControlMessage, FrameMessage, decode_message
from repro.net.transport import ChannelClosed, FramedConnection
from repro.serve.cache import FrameCache
from repro.serve.session import (
    AdaptiveQualityController,
    ViewerHandle,
    ViewerSession,
)
from repro.serve.stats import ServeStats, SessionStats
from repro.serve.tiers import QualityTier, TierLadder, default_ladder

__all__ = ["SessionBroker"]


class SessionBroker:
    """Fan one frame stream out to many adaptive viewer sessions.

    Parameters
    ----------
    ladder:
        Quality tiers, best first (default: :func:`default_ladder`).
    cache_bytes:
        Byte budget of the shared encoded-frame cache.
    credit_limit:
        Max frames in flight per session before drops begin.
    step_down_after / step_up_after:
        Adaptive-controller hysteresis (see
        :class:`~repro.serve.session.AdaptiveQualityController`).
    history_frames:
        How many recent raw frames are kept for ``seek`` replay.
    """

    def __init__(
        self,
        ladder: TierLadder | None = None,
        cache_bytes: int = 64 << 20,
        credit_limit: int = 4,
        step_down_after: int = 2,
        step_up_after: int = 16,
        history_frames: int = 32,
    ):
        self.ladder = ladder or default_ladder()
        self.cache = FrameCache(cache_bytes)
        self.credit_limit = credit_limit
        self.step_down_after = step_down_after
        self.step_up_after = step_up_after
        self.history_frames = history_frames
        self._sessions: dict[str, ViewerSession] = {}
        self._departed: list[SessionStats] = []
        self._encoders: dict[tuple[str, int | None], Codec] = {}
        self._encoder_context = CodecContext()
        self._encode_lock = threading.Lock()
        self._history: OrderedDict[int, tuple[int, np.ndarray]] = OrderedDict()
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._closed = False
        self._session_counter = 0
        self._frame_counter = 0
        self.frames_published = 0
        #: encode invocations — with a warm cache this stays at
        #: (frames × tiers in use), independent of viewer count
        self.encodes = 0

    # -- membership ---------------------------------------------------------

    def join(self, name: str | None = None) -> ViewerHandle:
        """Admit a viewer; returns its handle (viewer side of the pair)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("join() on a closed SessionBroker")
            if name is None:
                name = f"viewer{self._session_counter}"
            self._session_counter += 1
            if name in self._sessions:
                raise ValueError(f"session {name!r} already joined")
            broker_side, viewer_side = FramedConnection.pair(
                f"{name}-broker", f"{name}-viewer"
            )
            context = CodecContext()
            session = ViewerSession(
                name,
                broker_side,
                self.ladder,
                credit_limit=self.credit_limit,
                controller=AdaptiveQualityController(
                    self.step_down_after, self.step_up_after
                ),
                codec_context=context,
            )
            self._sessions[name] = session
            t = threading.Thread(
                target=self._pump_session, args=(session,), daemon=True
            )
            t.start()
            self._threads.append(t)
        return ViewerHandle(name, viewer_side, context)

    def leave(self, name: str) -> None:
        """Detach a session broker-side (viewers normally send ``leave``)."""
        with self._lock:
            session = self._sessions.pop(name, None)
        if session is not None:
            session.deactivate()
            self._departed.append(session.stats_snapshot())
            session.conn.close()

    def sessions(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    # -- publishing ---------------------------------------------------------

    def publish(
        self,
        image: np.ndarray,
        time_step: int = 0,
        frame_id: int | None = None,
    ) -> int:
        """Offer one assembled frame to every session; returns its id.

        Never blocks on a slow viewer: sessions out of credits drop the
        frame (and their controller may demote them).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("publish() on a closed SessionBroker")
            if frame_id is None:
                frame_id = self._frame_counter
            self._frame_counter = max(self._frame_counter, frame_id + 1)
            self._history[frame_id] = (time_step, image)
            while len(self._history) > self.history_frames:
                self._history.popitem(last=False)
            sessions = list(self._sessions.values())
            self.frames_published += 1
        for session in sessions:
            self._deliver(session, frame_id, time_step, image)
        return frame_id

    def _deliver(
        self,
        session: ViewerSession,
        frame_id: int,
        time_step: int,
        image: np.ndarray,
    ) -> str:
        tier = self.ladder[session.tier_index]
        if not tier.admits(frame_id):
            session.mark_skipped()
            return "skipped"
        payload = self._payload(frame_id, tier, image)
        msg = FrameMessage(
            frame_id=frame_id,
            time_step=time_step,
            codec=tier.codec,
            payload=payload,
            image_shape=(image.shape[0], image.shape[1]),
        )
        outcome = session.offer(msg)
        if outcome == "closed":
            self.leave(session.name)
        return outcome

    def _payload(
        self, frame_id: int, tier: QualityTier, image: np.ndarray
    ) -> bytes:
        def encode() -> bytes:
            with self._encode_lock:
                self.encodes += 1
                return self._encoder(tier).encode_image(image)

        return self.cache.get_or_encode(tier.cache_key(frame_id), encode)

    def _encoder(self, tier: QualityTier) -> Codec:
        key = (tier.codec, tier.quality)
        codec = self._encoders.get(key)
        if codec is None:
            codec = tier.make_codec()
            if hasattr(codec, "use_context"):
                codec.use_context(self._encoder_context)
            self._encoders[key] = codec
        return codec

    # -- session control pump ----------------------------------------------

    def _pump_session(self, session: ViewerSession) -> None:
        """Viewer → broker: acks return credits; seek/leave are honored."""
        while True:
            try:
                msg = decode_message(session.conn.recv())
            except (ChannelClosed, TimeoutError):
                session.deactivate()
                return
            if not isinstance(msg, ControlMessage):
                continue
            if msg.tag == "ack":
                session.on_ack(int(msg.params.get("frame_id", -1)))
            elif msg.tag == "seek":
                self._replay(session, int(msg.params.get("frame_id", 0)))
            elif msg.tag == "leave":
                self.leave(session.name)
                return

    def _replay(self, session: ViewerSession, from_frame: int) -> None:
        """Re-deliver buffered history from ``from_frame`` (cache-served)."""
        with self._lock:
            window = [
                (fid, ts, img)
                for fid, (ts, img) in self._history.items()
                if fid >= from_frame
            ]
        for fid, ts, img in window:
            self._deliver(session, fid, ts, img)

    # -- observability ------------------------------------------------------

    def stats(self) -> ServeStats:
        with self._lock:
            live = [s.stats_snapshot() for s in self._sessions.values()]
            departed = list(self._departed)
        snapshot = ServeStats(
            sessions={s.name: s for s in departed + live},
            frames_published=self.frames_published,
            encodes=self.encodes,
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
            cache_evictions=self.cache.evictions,
            cache_bytes=self.cache.current_bytes,
            cache_entries=len(self.cache),
        )
        return snapshot

    def drain(self, timeout: float = 5.0, names: list[str] | None = None) -> bool:
        """Wait until the given sessions (default: all) have zero frames
        in flight.  Pass ``names`` to exclude deliberately slow viewers."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                sessions = [
                    s
                    for s in self._sessions.values()
                    if names is None or s.name in names
                ]
            if all(s.in_flight == 0 or not s.active for s in sessions):
                return True
            time.sleep(0.002)
        return False

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
            self._sessions.clear()
            threads = list(self._threads)
        for session in sessions:
            session.deactivate()
            self._departed.append(session.stats_snapshot())
            session.conn.close()
        for t in threads:
            t.join(timeout=5.0)

    def __enter__(self) -> "SessionBroker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
