"""The session broker: many viewers, one encode per (frame, tier).

The paper's display daemon exists so one remote parallel renderer can
feed viewers across a WAN (§4.1); the broker is the serving layer grown
on top of that framework.  A renderer (or any frame source) publishes
assembled frames once; the broker encodes each published frame at most
once per quality tier *in use* — through the shared content-addressed
:class:`~repro.serve.cache.FrameCache` — and delivers to every session
under credit-based backpressure, so total encode work is a function of
the tier mix, never of the viewer count.

Viewers join and leave at any time; a ``seek`` control replays the
broker's recent raw-frame history from the requested frame id at the
session's current tier (replays of cached tiers are pure cache hits).

A viewer whose connection dies uncleanly (a WAN cut, an injected
:class:`~repro.net.faults.FaultPlan` disconnect) is *resumable*: a
rejoin under the same name continues the same logical session — the
cumulative stats, the adaptive tier, and the stream position survive,
and the broker replays its buffered history from the viewer's last
acked frame so the resumed stream has no duplicated or skipped ids.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

import numpy as np

from repro.compress import Codec
from repro.compress.context import CodecContext
from repro.devtools.lockset import guarded_by
from repro.daemon.protocol import (
    ControlMessage,
    FrameMessage,
    ProtocolError,
    decode_message,
)
from repro.net.faults import FaultPlan, FaultyConnection
from repro.net.transport import ChannelClosed, FramedConnection, RetryPolicy
from repro.serve.cache import FrameCache
from repro.serve.session import (
    AdaptiveQualityController,
    ViewerHandle,
    ViewerSession,
)
from repro.serve.stats import ServeStats, SessionStats
from repro.serve.tiers import QualityTier, TierLadder, default_ladder

__all__ = ["SessionBroker"]


class SessionBroker:  # speaks: broker
    """Fan one frame stream out to many adaptive viewer sessions.

    Parameters
    ----------
    ladder:
        Quality tiers, best first (default: :func:`default_ladder`).
    cache_bytes:
        Byte budget of the shared encoded-frame cache.
    credit_limit:
        Max frames in flight per session before drops begin.
    step_down_after / step_up_after:
        Adaptive-controller hysteresis (see
        :class:`~repro.serve.session.AdaptiveQualityController`).
    history_frames:
        How many recent raw frames are kept for ``seek``/resume replay.
    encode_pool:
        A shared :class:`~repro.serve.encode_pool.EncodePool`; cold
        cache fills are encoded on its worker processes instead of the
        calling broker thread (the broker never owns or closes it).
    name:
        Label for this broker (shards are ``shard0``, ``shard1``, …).
    """

    def __init__(
        self,
        ladder: TierLadder | None = None,
        cache_bytes: int = 64 << 20,
        credit_limit: int = 4,
        step_down_after: int = 2,
        step_up_after: int = 16,
        history_frames: int = 32,
        encode_pool=None,
        name: str = "broker",
    ):
        self.ladder = ladder or default_ladder()
        self.name = name
        self.encode_pool = encode_pool
        self.cache = FrameCache(cache_bytes)
        self.credit_limit = credit_limit
        self.step_down_after = step_down_after
        self.step_up_after = step_up_after
        self.history_frames = history_frames
        self._lock = threading.Lock()
        self._encode_lock = threading.Lock()
        self._sessions: dict[str, ViewerSession] = {}  # guarded-by: _lock
        self._departed: list[SessionStats] = []  # guarded-by: _lock
        #: (stats, tier_index, last_acked) of unclean disconnects, by
        #: name — consumed when the same name rejoins
        self._resume: dict[str, tuple[SessionStats, int, int]] = {}  # guarded-by: _lock
        self._encoders: dict[tuple[str, int | None], Codec] = {}  # guarded-by: _encode_lock
        self._encoder_context = CodecContext()
        self._history: OrderedDict[int, tuple[int, np.ndarray]] = OrderedDict()  # guarded-by: _lock
        self._threads: list[threading.Thread] = []  # guarded-by: _lock
        #: wakes drain() on ack arrival, session departure, and close
        self._ack_cond = threading.Condition()
        self._closed = False  # guarded-by: _lock
        self._session_counter = 0  # guarded-by: _lock
        self._frame_counter = 0  # guarded-by: _lock
        self.frames_published = 0  # guarded-by: _lock
        #: encode invocations — with a warm cache this stays at
        #: (frames × tiers in use), independent of viewer count
        self.encodes = 0  # guarded-by: _encode_lock
        #: control messages dropped for being malformed
        self.malformed_controls = 0  # guarded-by: _lock
        #: well-formed controls whose tag is not a broker opcode
        self.unknown_controls = 0  # guarded-by: _lock
        #: sessions resumed after an unclean disconnect
        self.resumes = 0  # guarded-by: _lock
        #: resumes whose start point fell off the retained history
        #: window — the viewer was sent an explicit ``gap`` signal
        self.resume_gaps = 0  # guarded-by: _lock
        #: pool encodes that fell back to the calling thread (pool
        #: closed or timed out underneath a cold fill)
        self.encode_pool_fallbacks = 0  # guarded-by: _encode_lock

    # -- membership ---------------------------------------------------------

    def join(
        self,
        name: str | None = None,
        *,
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        resume_from: int | None = None,
        credit_limit: int | None = None,
    ) -> ViewerHandle:
        """Admit a viewer; returns its handle (viewer side of the pair).

        A name whose previous session died uncleanly *resumes*: the new
        session inherits the old one's stats, tier, and stream cursor,
        and buffered history is replayed from its last acked frame (or
        from ``resume_from``, the rejoining client's own idea of the
        next frame it needs — authoritative when acks were lost in
        flight).  ``fault_plan`` wraps the broker side of the link in a
        :class:`~repro.net.faults.FaultyConnection` so the session is
        served over a WAN-shaped link.

        ``credit_limit`` overrides the broker-wide credit budget for
        this session alone.  An edge relay (:mod:`repro.relay`) joins
        as an *aggregated* downstream — one session standing in for a
        whole viewer pool that acks as fast as it can store — so it
        gets a deep credit line and the same resume machinery: a relay
        that reconnects after a WAN cut has its buffered history
        replayed exactly like any viewer.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("join() on a closed SessionBroker")
            if name is None:
                name = f"viewer{self._session_counter}"
            self._session_counter += 1
            existing = self._sessions.get(name)
            if existing is not None:
                if existing.is_active():
                    raise ValueError(f"session {name!r} already joined")
                # an unclean disconnect the pump has not reaped yet
                self._sessions.pop(name)
                self._resume.setdefault(name, existing.resume_state())
            resume = self._resume.pop(name, None)
            broker_side, viewer_side = FramedConnection.pair(
                f"{name}-broker", f"{name}-viewer"
            )
            conn = broker_side
            if fault_plan is not None:
                conn = FaultyConnection(broker_side, fault_plan, retry=retry)
            context = CodecContext()
            session = ViewerSession(
                name,
                conn,
                self.ladder,
                credit_limit=credit_limit or self.credit_limit,
                controller=AdaptiveQualityController(
                    self.step_down_after, self.step_up_after
                ),
                codec_context=context,
            )
            if resume is not None:
                stats, tier_index, last_acked = resume
                start = last_acked + 1 if resume_from is None else resume_from
                session.restore(
                    stats=stats, tier_index=tier_index, last_acked=start - 1
                )
                self.resumes += 1
            self._sessions[name] = session
            if resume is not None:
                # replay under the lock: a concurrent publish can only
                # deliver *after* the resumed stream has caught up, so
                # the viewer sees history and live frames in order
                self._replay_resume(session, session.cursor())
            t = threading.Thread(
                target=self._pump_session, args=(session,), daemon=True
            )
            t.start()
            self._threads.append(t)
        return ViewerHandle(
            name, viewer_side, context, resumed=resume is not None
        )

    def leave(
        self,
        name: str,
        *,
        resumable: bool = False,
        _expected: ViewerSession | None = None,
    ) -> None:
        """Detach a session broker-side (viewers normally send ``leave``).

        ``resumable`` marks an *unclean* departure — a dead connection
        rather than a polite leave — whose state is parked so a rejoin
        under the same name continues the stream.  ``_expected`` guards
        internal callers reacting to a dead connection: a stale pump or
        delivery thread must not reap a *replacement* session that has
        since resumed under the same name.
        """
        with self._lock:
            session = self._sessions.get(name)
            if session is None or (
                _expected is not None and session is not _expected
            ):
                return
            self._sessions.pop(name)
        session.deactivate()
        snapshot = session.stats_snapshot()
        with self._lock:
            self._departed.append(snapshot)
            if resumable:
                self._resume.setdefault(name, session.resume_state())
            else:
                self._resume.pop(name, None)
        session.conn.close()
        self._notify_drain()

    def sessions(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    # -- publishing ---------------------------------------------------------

    def publish(
        self,
        image: np.ndarray,
        time_step: int = 0,
        frame_id: int | None = None,
    ) -> int:
        """Offer one assembled frame to every session; returns its id.

        Never blocks on a slow viewer: sessions out of credits drop the
        frame (and their controller may demote them).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("publish() on a closed SessionBroker")
            if frame_id is None:
                frame_id = self._frame_counter
            self._frame_counter = max(self._frame_counter, frame_id + 1)
            self._history[frame_id] = (time_step, image)
            while len(self._history) > self.history_frames:
                self._history.popitem(last=False)
            sessions = list(self._sessions.values())
            self.frames_published += 1
        for session in sessions:
            self._deliver(session, frame_id, time_step, image, from_publish=True)
        return frame_id

    def _deliver(
        self,
        session: ViewerSession,
        frame_id: int,
        time_step: int,
        image: np.ndarray,
        from_publish: bool = False,
    ) -> str:
        if from_publish and session.pop_resume_guard(frame_id):
            return "duplicate"  # resume replay already covered this id
        tier = self.ladder[session.current_tier_index()]
        if not tier.admits(frame_id):
            session.mark_skipped()
            return "skipped"
        payload = self._payload(frame_id, tier, image)
        msg = FrameMessage(
            frame_id=frame_id,
            time_step=time_step,
            codec=tier.codec,
            payload=payload,
            image_shape=(image.shape[0], image.shape[1]),
            quality=tier.quality,
        )
        outcome = session.offer(msg)
        if outcome == "closed":
            self.leave(session.name, resumable=True, _expected=session)
        return outcome

    def _payload(
        self, frame_id: int, tier: QualityTier, image: np.ndarray
    ) -> bytes:
        key = tier.cache_key(frame_id)

        def encode_inline() -> bytes:
            with self._encode_lock:
                self.encodes += 1
                return self._encoder(tier).encode_image(image)

        if self.encode_pool is None:
            return self.cache.get_or_encode(key, encode_inline)

        def encode_pooled() -> bytes:
            # the cache key is the content address: concurrent misses
            # on the same key (here or on another shard sharing this
            # pool) coalesce onto one worker encode
            try:
                payload = self.encode_pool.encode(
                    image, tier.codec, tier.quality, key=key
                )
            except RuntimeError:  # pool closed underneath us: go inline
                with self._encode_lock:
                    self.encode_pool_fallbacks += 1
                return encode_inline()
            with self._encode_lock:
                self.encodes += 1
            return payload

        return self.cache.get_or_encode(key, encode_pooled)

    def _encoder(self, tier: QualityTier) -> Codec:
        key = (tier.codec, tier.quality)
        codec = self._encoders.get(key)
        if codec is None:
            codec = tier.make_codec()
            if hasattr(codec, "use_context"):
                codec.use_context(self._encoder_context)
            self._encoders[key] = codec
        return codec

    # -- session control pump ----------------------------------------------

    @staticmethod
    def _valid_frame_id(value) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and value >= 0

    def _note_malformed(self) -> None:
        with self._lock:
            self.malformed_controls += 1

    def _pump_session(self, session: ViewerSession) -> None:  # speaks: broker@serving
        """Viewer → broker: acks return credits; seek/leave are honored.

        Malformed traffic — undecodable frames, non-control messages,
        controls with a missing or bogus ``frame_id`` — is dropped and
        counted, never fed into the credit machinery.
        """
        while True:
            try:
                raw = session.conn.recv()
            except (ChannelClosed, TimeoutError):
                self.leave(session.name, resumable=True, _expected=session)
                return
            try:
                msg = decode_message(raw)
            except ProtocolError:
                self._note_malformed()
                continue
            if not isinstance(msg, ControlMessage):
                self._note_malformed()
                continue
            if msg.tag == "ack":
                frame_id = msg.params.get("frame_id")
                if not self._valid_frame_id(frame_id):
                    self._note_malformed()
                    continue
                session.on_ack(frame_id)
                self._notify_drain()
            elif msg.tag == "seek":
                frame_id = msg.params.get("frame_id", 0)
                if not self._valid_frame_id(frame_id):
                    self._note_malformed()
                    continue
                self._replay(session, frame_id)
            elif msg.tag == "leave":
                self.leave(session.name, _expected=session)
                return
            else:
                # a well-formed control the broker has no handler for:
                # counted so a version-skewed viewer is visible in stats
                with self._lock:
                    self.unknown_controls += 1

    def _replay(self, session: ViewerSession, from_frame: int) -> None:
        """Re-deliver buffered history from ``from_frame`` (cache-served)."""
        with self._lock:
            window = [
                (fid, ts, img)
                for fid, (ts, img) in self._history.items()
                if fid >= from_frame
            ]
        for fid, ts, img in window:
            self._deliver(session, fid, ts, img)

    @guarded_by("_lock")
    def _replay_resume(self, session: ViewerSession, from_frame: int) -> None:  # speaks: broker@resuming
        """Resume replay; caller holds ``self._lock``.

        Inlines delivery (no :meth:`leave` — that needs the lock) and
        arms the session's resume guard with every replayed id so a
        publish racing the rejoin cannot deliver one of them twice.

        A resume point that fell off the retained history window gets
        an explicit ``gap`` control — frame ids in ``[from, to)`` are
        unrecoverable — instead of a silent skip: the no-dup-no-skip
        guarantee only holds inside the window, and the viewer must be
        able to tell "nothing was published" from "history was lost".
        """
        window = [
            (fid, ts, img)
            for fid, (ts, img) in self._history.items()
            if fid >= from_frame
        ]
        replay_start = min(
            (fid for fid, _, _ in window), default=self._frame_counter
        )
        if from_frame < replay_start:
            self.resume_gaps += 1
            try:
                session.conn.send(
                    ControlMessage(
                        tag="gap",
                        params={"from": from_frame, "to": replay_start},
                    ).encode()
                )
            except ChannelClosed:
                return
        session.arm_resume_guard(fid for fid, _, _ in window)
        for fid, ts, img in window:
            tier = self.ladder[session.current_tier_index()]
            if not tier.admits(fid):
                session.mark_skipped()
                continue
            payload = self._payload(fid, tier, img)
            session.offer(
                FrameMessage(
                    frame_id=fid,
                    time_step=ts,
                    codec=tier.codec,
                    payload=payload,
                    image_shape=(img.shape[0], img.shape[1]),
                    quality=tier.quality,
                )
            )

    def _notify_drain(self) -> None:
        with self._ack_cond:
            self._ack_cond.notify_all()

    # -- observability ------------------------------------------------------

    def stats(self) -> ServeStats:
        # three owning locks, taken one after another (never nested):
        # each group of counters is copied under the lock its writers
        # hold, so nothing in the snapshot is a torn read
        with self._lock:
            live = [s.stats_snapshot() for s in self._sessions.values()]
            departed = list(self._departed)
            frames_published = self.frames_published
            malformed = self.malformed_controls
            unknown = self.unknown_controls
            resumes = self.resumes
            resume_gaps = self.resume_gaps
        with self._encode_lock:
            encodes = self.encodes
        cache = self.cache.stats_snapshot()
        return ServeStats(
            sessions={s.name: s for s in departed + live},
            frames_published=frames_published,
            encodes=encodes,
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            cache_evictions=cache.evictions,
            cache_bytes=cache.current_bytes,
            cache_entries=cache.entries,
            malformed_controls=malformed,
            unknown_controls=unknown,
            resumes=resumes,
            resume_gaps=resume_gaps,
        )

    def drain(self, timeout: float = 5.0, names: list[str] | None = None) -> bool:
        """Wait until the given sessions (default: all) have zero frames
        in flight.  Pass ``names`` to exclude deliberately slow viewers.

        Event-driven: sleeps on a condition the ack pump notifies, so an
        idle drain costs no CPU and wakes the instant the last credit
        returns.  The membership snapshot is taken once at entry, and a
        session leaves the working set the first time it is seen idle —
        every ack wakeup then re-checks only the still-busy tail, so a
        V-viewer drain costs O(V) idle checks total instead of O(V) per
        ack (which was O(V²) per pass and the dominant drain cost at
        64+ viewers).  Publishes concurrent with ``drain`` race it
        under either scheme; the caller owns that ordering.
        """
        deadline = time.monotonic() + timeout
        with self._ack_cond:
            with self._lock:
                pending = [
                    s
                    for s in self._sessions.values()
                    if names is None or s.name in names
                ]
            while True:
                pending = [s for s in pending if not s.idle()]
                if not pending:
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._ack_cond.wait(remaining)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
            self._sessions.clear()
            threads = list(self._threads)
        for session in sessions:
            session.deactivate()
            snapshot = session.stats_snapshot()
            with self._lock:
                self._departed.append(snapshot)
            session.conn.close()
        self._notify_drain()
        for t in threads:
            t.join(timeout=5.0)

    def __enter__(self) -> "SessionBroker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
