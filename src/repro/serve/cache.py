"""Content-addressed encoded-frame cache shared by all viewer sessions.

Bethel et al.'s WAN-visualization work puts a network data cache between
the producer and its consumers; this is the in-process equivalent for
encoded frames.  Entries are keyed on ``(frame_id, codec, quality)`` —
pure content addresses, never per-viewer — so N viewers at the same tier
cost one encode, and a seek back into recent history is a cache hit
instead of a re-encode.

Eviction is LRU under a byte budget: encoded payloads are small (tens of
KB) but a long session crosses unbounded frame ids, so the budget, not
an entry count, is the binding constraint.

Pinning
-------
The relay tier (:mod:`repro.relay`) shares one store between in-flight
deliveries and a speculative prefetcher, so entries carry a refcount
**pin**.  A pinned entry is never evicted: a frame mid-send or inside
the prefetcher's active window stays resident no matter how much churn
the rest of the keyspace sees.  Non-speculative fills may overshoot the
byte budget while pins block eviction (delivery correctness beats the
budget); *speculative* fills (``put(..., speculative=True)``) are the
other way around — if admitting one cannot be paid for by evicting
unpinned entries, the fill is rejected and counted instead of growing
the store, so a greedy prefetcher can never push out frames viewers are
actively holding.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.devtools.lockset import guarded_by

__all__ = ["FrameCache", "CacheStats"]

CacheKey = tuple  # (frame_id, codec_name, quality)


@dataclass(frozen=True)
class CacheStats:
    """An atomic snapshot of one cache's counters.

    All fields are copied in a single critical section, so e.g.
    ``hits + misses`` is consistent with ``hit_ratio`` — reading the
    live counters one by one races the pump threads mutating them.
    """

    hits: int
    misses: int
    evictions: int
    inserts: int
    current_bytes: int
    max_bytes: int
    entries: int
    pinned_entries: int = 0
    pinned_bytes: int = 0
    speculative_rejects: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FrameCache:
    """Thread-safe LRU cache of encoded frame payloads with a byte budget."""

    def __init__(self, max_bytes: int = 64 << 20):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, bytes] = OrderedDict()  # guarded-by: _lock
        self.current_bytes = 0  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        #: number of payloads inserted (== encodes when used via get_or_encode)
        self.inserts = 0  # guarded-by: _lock
        #: per-key pin refcounts; a pinned key is never evicted
        self._pins: dict[CacheKey, int] = {}  # guarded-by: _lock
        #: speculative fills refused because admitting them would have
        #: required evicting pinned entries (or blowing the budget)
        self.speculative_rejects = 0  # guarded-by: _lock

    def get(self, key: CacheKey) -> bytes | None:
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, key: CacheKey, payload: bytes,
            speculative: bool = False) -> bool:
        """Insert ``payload``; returns whether it was admitted.

        A non-speculative put always lands (pins may force a temporary
        budget overshoot).  A speculative put that cannot fit after
        evicting every unpinned victim is rolled back and counted in
        ``speculative_rejects`` — prefetch fills must never displace
        pinned frames.
        """
        with self._lock:
            return self._put_locked(key, payload, speculative=speculative)

    # -- pinning -------------------------------------------------------------

    def pin(self, key: CacheKey) -> bool:
        """Take a pin on ``key`` if present; returns whether it was.

        While the refcount is nonzero the entry is exempt from LRU
        eviction.  Every successful ``pin`` must be paired with exactly
        one :meth:`unpin`.
        """
        with self._lock:
            if key not in self._entries:
                return False
            self._pins[key] = self._pins.get(key, 0) + 1
            return True

    def unpin(self, key: CacheKey) -> None:
        """Release one pin on ``key`` (raises on unbalanced unpins)."""
        with self._lock:
            count = self._pins.get(key)
            if count is None:
                raise ValueError(f"unpin of unpinned key {key!r}")
            if count <= 1:
                del self._pins[key]
            else:
                self._pins[key] = count - 1

    def get_pinned(self, key: CacheKey) -> bytes | None:
        """Atomic lookup-and-pin: the returned payload's entry cannot be
        evicted until the caller unpins it.  ``None`` on a miss (and no
        pin is taken)."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._pins[key] = self._pins.get(key, 0) + 1
            return payload

    def pin_count(self, key: CacheKey) -> int:
        with self._lock:
            return self._pins.get(key, 0)

    def get_or_encode(self, key: CacheKey, encode: Callable[[], bytes]) -> bytes:
        """Return the cached payload for ``key``, encoding at most once.

        The encode callable runs outside the lock — encoding is the
        expensive part and must not serialize unrelated lookups.  Two
        racing encoders of the same key both produce identical content
        (the key *is* the content address), so last-write-wins is safe.
        """
        payload = self.get(key)
        if payload is not None:
            return payload
        payload = encode()
        with self._lock:
            self._put_locked(key, payload)
        return payload

    @guarded_by("_lock")
    def _put_locked(self, key: CacheKey, payload: bytes,
                    speculative: bool = False) -> bool:
        old = self._entries.pop(key, None)
        if old is not None:
            self.current_bytes -= len(old)
        self._entries[key] = payload
        self.current_bytes += len(payload)
        self.inserts += 1
        self._evict_locked(protect=key)
        if (
            speculative
            and self.current_bytes > self.max_bytes
            and key not in self._pins
        ):
            # no unpinned victim can pay for this fill: roll it back
            self.current_bytes -= len(self._entries.pop(key))
            self.inserts -= 1
            if old is not None:  # restore what the fill replaced
                self._entries[key] = old
                self.current_bytes += len(old)
                self.inserts += 1
            self.speculative_rejects += 1
            return False
        return True

    @guarded_by("_lock")
    def _evict_locked(self, protect: CacheKey) -> None:
        """Evict unpinned LRU entries until under budget (or none left).

        ``protect`` (the entry just inserted) and pinned keys are
        skipped, so the loop terminates even when pins force a budget
        overshoot."""
        while self.current_bytes > self.max_bytes and len(self._entries) > 1:
            victim = next(
                (
                    k
                    for k in self._entries
                    if k != protect and k not in self._pins
                ),
                None,
            )
            if victim is None:
                return
            self.current_bytes -= len(self._entries.pop(victim))
            self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def hit_ratio(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats_snapshot(self) -> CacheStats:
        """Every counter copied in one critical section."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                inserts=self.inserts,
                current_bytes=self.current_bytes,
                max_bytes=self.max_bytes,
                entries=len(self._entries),
                pinned_entries=len(self._pins),
                pinned_bytes=sum(
                    len(self._entries[k]) for k in self._pins
                ),
                speculative_rejects=self.speculative_rejects,
            )

    def clear(self) -> None:
        """Drop every entry *and* every pin (callers must not clear
        while deliveries are mid-send — Python refcounts keep any
        already-fetched payload bytes alive, but the pins are gone)."""
        with self._lock:
            self._entries.clear()
            self._pins.clear()
            self.current_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snap = self.stats_snapshot()
        return (
            f"<FrameCache {snap.entries} entries "
            f"{snap.current_bytes}/{snap.max_bytes}B "
            f"hit={snap.hit_ratio:.2f}>"
        )
