"""Content-addressed encoded-frame cache shared by all viewer sessions.

Bethel et al.'s WAN-visualization work puts a network data cache between
the producer and its consumers; this is the in-process equivalent for
encoded frames.  Entries are keyed on ``(frame_id, codec, quality)`` —
pure content addresses, never per-viewer — so N viewers at the same tier
cost one encode, and a seek back into recent history is a cache hit
instead of a re-encode.

Eviction is LRU under a byte budget: encoded payloads are small (tens of
KB) but a long session crosses unbounded frame ids, so the budget, not
an entry count, is the binding constraint.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.devtools.lockset import guarded_by

__all__ = ["FrameCache", "CacheStats"]

CacheKey = tuple  # (frame_id, codec_name, quality)


@dataclass(frozen=True)
class CacheStats:
    """An atomic snapshot of one cache's counters.

    All fields are copied in a single critical section, so e.g.
    ``hits + misses`` is consistent with ``hit_ratio`` — reading the
    live counters one by one races the pump threads mutating them.
    """

    hits: int
    misses: int
    evictions: int
    inserts: int
    current_bytes: int
    max_bytes: int
    entries: int

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FrameCache:
    """Thread-safe LRU cache of encoded frame payloads with a byte budget."""

    def __init__(self, max_bytes: int = 64 << 20):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, bytes] = OrderedDict()  # guarded-by: _lock
        self.current_bytes = 0  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        #: number of payloads inserted (== encodes when used via get_or_encode)
        self.inserts = 0  # guarded-by: _lock

    def get(self, key: CacheKey) -> bytes | None:
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, key: CacheKey, payload: bytes) -> None:
        with self._lock:
            self._put_locked(key, payload)

    def get_or_encode(self, key: CacheKey, encode: Callable[[], bytes]) -> bytes:
        """Return the cached payload for ``key``, encoding at most once.

        The encode callable runs outside the lock — encoding is the
        expensive part and must not serialize unrelated lookups.  Two
        racing encoders of the same key both produce identical content
        (the key *is* the content address), so last-write-wins is safe.
        """
        payload = self.get(key)
        if payload is not None:
            return payload
        payload = encode()
        with self._lock:
            self._put_locked(key, payload)
        return payload

    @guarded_by("_lock")
    def _put_locked(self, key: CacheKey, payload: bytes) -> None:
        old = self._entries.pop(key, None)
        if old is not None:
            self.current_bytes -= len(old)
        self._entries[key] = payload
        self.current_bytes += len(payload)
        self.inserts += 1
        while self.current_bytes > self.max_bytes and len(self._entries) > 1:
            _, victim = self._entries.popitem(last=False)
            self.current_bytes -= len(victim)
            self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def hit_ratio(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats_snapshot(self) -> CacheStats:
        """Every counter copied in one critical section."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                inserts=self.inserts,
                current_bytes=self.current_bytes,
                max_bytes=self.max_bytes,
                entries=len(self._entries),
            )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snap = self.stats_snapshot()
        return (
            f"<FrameCache {snap.entries} entries "
            f"{snap.current_bytes}/{snap.max_bytes}B "
            f"hit={snap.hit_ratio:.2f}>"
        )
