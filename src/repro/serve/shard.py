"""Sharded serving: N independent broker shards behind a session router.

One :class:`~repro.serve.broker.SessionBroker` serializes every session
pump, every delivery, and (without an encode pool) every cold encode
behind one set of locks in one process — the BENCH_serve warm numbers
*degrade* as viewers grow.  This module applies the Distributed
FrameBuffer's split — **static ownership, dynamic aggregation** — to
sessions instead of tiles:

- *static ownership*: a session name hashes onto exactly one broker
  shard via a consistent-hash ring (blake2b over virtual nodes, the
  same construction as :class:`~repro.relay.ring.RelayRing`).  All of
  that session's join/leave/seek/ack traffic only ever touches its
  owning shard's locks, and a reconnect-with-resume re-routes to the
  same shard — where the parked resume state lives — by construction.
- *dynamic aggregation*: stats are merged on demand from per-shard
  atomic snapshots (:meth:`~repro.serve.stats.ServeStats.merge`);
  nothing global is maintained on the hot path.

Publishing fans out through one pump thread per shard, so per-viewer
delivery work happens on the shard pumps, not serially on the
publisher's thread.  Cold encodes go to the shared
:class:`~repro.serve.encode_pool.EncodePool` (when configured), whose
request coalescing keeps encode work at one per (frame, tier) even
though each shard fills its own :class:`~repro.serve.cache.FrameCache`.

Edge relays (:mod:`repro.relay`) need no changes: a relay joins the
router exactly like a viewer and lands on the shard owning its name.
"""

from __future__ import annotations

import bisect
import hashlib
import queue
import threading
import time

import numpy as np

from repro.devtools.lockset import guarded_by
from repro.serve.broker import SessionBroker
from repro.serve.encode_pool import EncodePool
from repro.serve.session import ViewerHandle
from repro.serve.stats import ServeStats

__all__ = ["SessionRouter", "shard_for"]


def _hash64(text: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(text.encode(), digest_size=8).digest(), "big"
    )


def _ring_points(shard_names, vnodes: int) -> list[tuple[int, str]]:
    points = [
        (_hash64(f"{name}#{v}"), name)
        for name in shard_names
        for v in range(vnodes)
    ]
    points.sort()
    return points


def _owner(points: list[tuple[int, str]], session_name: str) -> str:
    point = _hash64(f"session:{session_name}")
    index = bisect.bisect_right(points, (point, "￿"))
    if index == len(points):
        index = 0
    return points[index][1]


def shard_for(session_name: str, shard_names, vnodes: int = 64) -> str:
    """Pure routing function: which of ``shard_names`` owns the session.

    Deterministic across processes and runs (blake2b over stable
    strings), and consistent: changing the shard set only moves the
    sessions whose owner left or arrived.
    """
    names = list(shard_names)
    if not names:
        raise ValueError("shard_for needs at least one shard name")
    return _owner(_ring_points(names, vnodes), session_name)


class _ShardPump:
    """One publish pump: feeds frames to one shard off the caller thread."""

    def __init__(self, broker: SessionBroker, maxsize: int = 8):
        self.broker = broker
        self._queue: queue.Queue = queue.Queue(maxsize=maxsize)
        self._cond = threading.Condition()
        self._pending = 0  # guarded-by: _cond
        #: publishes refused because the shard closed underneath us
        self.rejected = 0  # guarded-by: _cond
        self._thread = threading.Thread(
            target=self._run, name=f"pump-{broker.name}", daemon=True
        )
        self._thread.start()

    def submit(self, frame_id: int, time_step: int, image) -> None:
        with self._cond:
            self._pending += 1
        self._queue.put((frame_id, time_step, image))

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            frame_id, time_step, image = item
            try:
                self.broker.publish(
                    image, time_step=time_step, frame_id=frame_id
                )
            except RuntimeError:  # shard closed mid-publish: counted
                with self._cond:
                    self.rejected += 1
            finally:
                with self._cond:
                    self._pending -= 1
                    self._cond.notify_all()

    def flush(self, timeout: float) -> bool:
        """Wait until every submitted frame reached the shard's sessions."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._pending > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True

    def stop(self) -> None:
        self._queue.put(None)
        self._thread.join(timeout=5.0)


class SessionRouter:
    """N broker shards behind consistent-hash session routing.

    Drop-in for the broker surface the rest of the repo consumes —
    ``join``/``leave``/``publish``/``seek`` (via handles)/``drain``/
    ``stats``/``close`` — so the fault harness, the relay tier, and the
    CLI run unchanged at any shard count.

    Parameters
    ----------
    shards:
        Broker shard count (1 is a valid degenerate router).
    encode_workers:
        Size of the shared multi-process encode pool; 0 keeps cold
        encodes in-process (each shard's own threads).
    encode_pool:
        Bring-your-own pool (the router then does not own/close it).
    vnodes:
        Virtual nodes per shard on the routing ring.
    broker_kwargs:
        Forwarded to every :class:`SessionBroker` shard (ladder,
        cache_bytes, credit_limit, hysteresis, history_frames).
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        encode_workers: int = 0,
        encode_pool: EncodePool | None = None,
        vnodes: int = 64,
        publish_queue: int = 8,
        **broker_kwargs,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.encode_pool = encode_pool
        self._owns_pool = False
        if encode_pool is None and encode_workers > 0:
            self.encode_pool = EncodePool(encode_workers)
            self._owns_pool = True
        self._shard_names = tuple(f"shard{i}" for i in range(shards))
        self._brokers = {
            name: SessionBroker(
                name=name, encode_pool=self.encode_pool, **broker_kwargs
            )
            for name in self._shard_names
        }
        self._points = _ring_points(self._shard_names, vnodes)
        # a single shard gains nothing from a publish pump (there is no
        # cross-shard fan-out to parallelize) and would pay one queue
        # handoff per frame: the degenerate router publishes inline,
        # keeping its throughput identical to a bare SessionBroker
        self._pumps = (
            {
                name: _ShardPump(broker, maxsize=publish_queue)
                for name, broker in self._brokers.items()
            }
            if shards > 1
            else {}
        )
        self._lock = threading.Lock()
        self._closed = False  # guarded-by: _lock
        self._session_counter = 0  # guarded-by: _lock
        self._frame_counter = 0  # guarded-by: _lock

    # -- routing -------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._shard_names)

    def shard_names(self) -> tuple[str, ...]:
        return self._shard_names

    def shard_of(self, session_name: str) -> str:
        """The shard owning ``session_name`` (stable across rejoins)."""
        return _owner(self._points, session_name)

    def shard(self, shard_name: str) -> SessionBroker:
        return self._brokers[shard_name]

    # -- broker surface ------------------------------------------------------

    def join(self, name: str | None = None, **kwargs) -> ViewerHandle:
        """Admit a viewer on its owning shard (resume included: the
        rejoin hashes to the shard holding the parked resume state)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("join() on a closed SessionRouter")
            if name is None:
                name = f"viewer{self._session_counter}"
            self._session_counter += 1
        return self._brokers[self.shard_of(name)].join(name, **kwargs)

    def leave(self, name: str, **kwargs) -> None:
        self._brokers[self.shard_of(name)].leave(name, **kwargs)

    def sessions(self) -> list[str]:
        names: list[str] = []
        for broker in self._brokers.values():
            names.extend(broker.sessions())
        return sorted(names)

    def publish(
        self,
        image: np.ndarray,
        time_step: int = 0,
        frame_id: int | None = None,
    ) -> int:
        """Offer one frame to every shard's sessions; returns its id.

        The router allocates the frame id (so ids agree across shards)
        and enqueues onto each shard pump; delivery happens on the pump
        threads.  Backpressure is the bounded pump queue — a shard
        whose sessions are slow makes ``publish`` wait on that shard's
        queue, never on any viewer (credit drops still apply per
        session, exactly as in the single broker).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("publish() on a closed SessionRouter")
            if frame_id is None:
                frame_id = self._frame_counter
            self._frame_counter = max(self._frame_counter, frame_id + 1)
        if not self._pumps:  # single shard: no fan-out, publish inline
            for broker in self._brokers.values():
                broker.publish(image, time_step=time_step, frame_id=frame_id)
            return frame_id
        for pump in self._pumps.values():
            pump.submit(frame_id, time_step, image)
        return frame_id

    def drain(self, timeout: float = 5.0, names: list[str] | None = None) -> bool:
        """Flush the shard pumps, then drain every shard's sessions."""
        deadline = time.monotonic() + timeout
        ok = True
        for pump in self._pumps.values():
            ok = pump.flush(max(deadline - time.monotonic(), 0.0)) and ok
        for broker in self._brokers.values():
            remaining = max(deadline - time.monotonic(), 0.001)
            ok = broker.drain(timeout=remaining, names=names) and ok
        return ok

    # -- observability -------------------------------------------------------

    def stats(self) -> ServeStats:
        """Merged view built from per-shard atomic snapshots.

        Each shard's :meth:`SessionBroker.stats` copies its counters
        under the shard's own locks; the merge never reads a live field
        bare, so the aggregate is as torn-read-free as the shards.
        """
        return ServeStats.merge(
            [broker.stats() for broker in self._brokers.values()]
        )

    def shard_stats(self) -> dict[str, ServeStats]:
        """Per-shard snapshots keyed by shard name (ownership audit)."""
        return {
            name: broker.stats() for name, broker in self._brokers.items()
        }

    # -- lifecycle -----------------------------------------------------------

    @guarded_by("_lock")
    def _mark_closed_locked(self) -> bool:
        if self._closed:
            return False
        self._closed = True
        return True

    def close(self) -> None:
        with self._lock:
            first = self._mark_closed_locked()
        if not first:
            return
        for pump in self._pumps.values():
            pump.stop()
        for broker in self._brokers.values():
            broker.close()
        if self._owns_pool and self.encode_pool is not None:
            self.encode_pool.close()

    def __enter__(self) -> "SessionRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SessionRouter {self.n_shards} shards "
            f"pool={'yes' if self.encode_pool else 'no'}>"
        )
