"""Fan-out measurement harness: delivered frames/sec vs. viewer count.

Used by ``benchmarks/bench_serve_fanout.py`` (full sweep, ``--json``)
and the ``make serve-smoke`` guardrail (tiny scale).  Viewers are real
:class:`~repro.serve.session.ViewerHandle` consumers on their own
threads, decoding every delivered frame; the cold pass encodes each
(frame, tier) once, the warm pass republished the same frame ids against
the already-populated cache.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.serve.broker import SessionBroker
from repro.serve.tiers import TierLadder

__all__ = ["synthetic_frames", "run_fanout", "measure_fanout"]


def synthetic_frames(n_frames: int, size: int = 96) -> list[np.ndarray]:
    """A smooth animated RGB sequence (JPEG-friendly, codec-realistic)."""
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float32)
    frames = []
    for t in range(n_frames):
        phase = 2 * np.pi * t / max(n_frames, 1)
        img = np.stack(
            [
                128 + 100 * np.sin(xx / 11.0 + phase),
                128 + 100 * np.cos(yy / 7.0 - phase),
                (xx + yy + 8 * t) % 256,
            ],
            axis=-1,
        )
        frames.append(np.clip(img, 0, 255).astype(np.uint8))
    return frames


class _Drainer:
    """A viewer thread that consumes (decodes + acks) as fast as it can."""

    def __init__(self, handle):
        self.handle = handle
        self.received = 0
        self._stop = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.handle.next_frame(timeout=0.2)
            except TimeoutError:
                continue
            except ConnectionError:
                return
            self.received += 1

    def stop(self) -> None:
        self._stop.set()
        self.thread.join(timeout=5.0)


def run_fanout(
    n_viewers: int,
    frames: list[np.ndarray],
    *,
    ladder: TierLadder | None = None,
    credit_limit: int = 8,
    drain_timeout: float = 10.0,
) -> dict:
    """One broker run: cold pass then warm pass over the same frame ids.

    Returns a dict with per-pass delivered-frames/sec, encode counts and
    cache hit ratios, plus the final per-session drop totals.
    """
    broker = SessionBroker(ladder=ladder, credit_limit=credit_limit)
    drainers = [_Drainer(broker.join(f"v{i:03d}")) for i in range(n_viewers)]
    result: dict = {"viewers": n_viewers, "frames": len(frames)}
    try:
        for label in ("cold", "warm"):
            hits0, misses0 = broker.cache.hits, broker.cache.misses
            encodes0 = broker.encodes
            acks0 = sum(
                s.acks for s in broker.stats().sessions.values()
            )
            t0 = time.perf_counter()
            for fid, image in enumerate(frames):
                broker.publish(image, time_step=fid, frame_id=fid)
            broker.drain(timeout=drain_timeout)
            elapsed = time.perf_counter() - t0
            stats = broker.stats()
            delivered = sum(s.acks for s in stats.sessions.values()) - acks0
            lookups = (stats.cache_hits - hits0) + (stats.cache_misses - misses0)
            result[label] = {
                "elapsed_s": elapsed,
                "delivered_frames": delivered,
                "delivered_fps": delivered / elapsed if elapsed > 0 else 0.0,
                "encodes": stats.encodes - encodes0,
                "cache_hit_ratio": (stats.cache_hits - hits0) / lookups
                if lookups
                else 0.0,
            }
        final = broker.stats()
        result["dropped_frames"] = final.total_frames_dropped
        result["tier_transitions"] = final.total_transitions
    finally:
        for d in drainers:
            d.stop()
        broker.close()
    return result


def measure_fanout(
    viewer_counts: tuple[int, ...] = (1, 4, 16, 64),
    n_frames: int = 32,
    size: int = 96,
    **kwargs,
) -> list[dict]:
    """The full sweep: one :func:`run_fanout` per viewer count."""
    frames = synthetic_frames(n_frames, size=size)
    return [run_fanout(n, frames, **kwargs) for n in viewer_counts]
