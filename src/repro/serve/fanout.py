"""Fan-out measurement harness: delivered frames/sec vs. viewer count.

Used by ``benchmarks/bench_serve_fanout.py`` (full sweep, ``--json``)
and the ``make serve-smoke`` / ``make serve-shard-smoke`` guardrails.
Viewers are real :class:`~repro.serve.session.ViewerHandle` consumers on
their own threads, decoding every delivered frame; the cold pass encodes
each (frame, tier) once, the warm pass republishes the same frame ids
against the already-populated cache.

Serving goes through the :class:`~repro.serve.shard.SessionRouter`, so
the sweep carries a **shards** axis (``shards=1`` is the single-broker
baseline) and an **encode_workers** axis (0 = in-process encodes).
Delivery is pumped by the router's per-shard publisher threads — a
small thread pool — not serially from the publishing thread, so what
the numbers attribute to the broker is broker work, not the harness's
own single-thread pump jitter.  Alongside aggregate fps each pass
reports delivery-latency percentiles (publish→receipt, p50/p99 over
all samples plus the worst per-viewer p99), which is where per-viewer
jitter is actually visible.  At large viewer counts pass
``audit_viewers`` so only a fixed handful of viewers decode: every
viewer lives in this one process, and decode-everything consumers
would turn the sweep into a measurement of their own CPU.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.devtools.waiting import wait_until
from repro.serve.shard import SessionRouter
from repro.serve.tiers import TierLadder

__all__ = ["synthetic_frames", "run_fanout", "measure_fanout"]


def synthetic_frames(n_frames: int, size: int = 96) -> list[np.ndarray]:
    """A smooth animated RGB sequence (JPEG-friendly, codec-realistic)."""
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float32)
    frames = []
    for t in range(n_frames):
        phase = 2 * np.pi * t / max(n_frames, 1)
        img = np.stack(
            [
                128 + 100 * np.sin(xx / 11.0 + phase),
                128 + 100 * np.cos(yy / 7.0 - phase),
                (xx + yy + 8 * t) % 256,
            ],
            axis=-1,
        )
        frames.append(np.clip(img, 0, 255).astype(np.uint8))
    return frames


class _Drainer:
    """A viewer thread that consumes and acks as fast as it can,
    timestamping every receipt for the latency percentiles.

    ``decode=False`` makes this viewer a pure load generator: it acks
    every delivery but never decompresses.  The harness keeps a fixed
    handful of *auditing* viewers decoding everything (payload
    integrity) — decoding on all of them would make total consumer CPU
    scale with viewers × frames, and at hundreds of viewers sharing
    this one process that consumer cost, not the server, is what the
    fps would measure.
    """

    def __init__(self, handle, decode: bool = True):
        self.handle = handle
        self.decode = decode
        self._lock = threading.Lock()
        self._receipts: list[tuple[int, float]] = []  # guarded-by: _lock
        self._stop = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                frame = self.handle.next_frame(
                    timeout=0.2, decode=self.decode
                )
            except TimeoutError:
                continue
            except ConnectionError:
                return
            now = time.perf_counter()
            with self._lock:
                self._receipts.append((frame.frame_id, now))

    def receipt_count(self) -> int:
        with self._lock:
            return len(self._receipts)

    def take(self) -> list[tuple[int, float]]:
        """Drain and return the receipts recorded since the last take."""
        with self._lock:
            receipts = self._receipts
            self._receipts = []
        return receipts

    def stop(self) -> None:
        self._stop.set()
        self.thread.join(timeout=5.0)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 on empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[rank]


def _latency_stats(
    per_viewer: list[list[float]],
) -> dict:
    """p50/p99 over all samples plus the worst per-viewer p99, in ms."""
    merged = sorted(s for samples in per_viewer for s in samples)
    viewer_p99s = [
        _percentile(sorted(samples), 0.99)
        for samples in per_viewer
        if samples
    ]
    return {
        "latency_p50_ms": round(_percentile(merged, 0.50) * 1000, 3),
        "latency_p99_ms": round(_percentile(merged, 0.99) * 1000, 3),
        "viewer_p99_ms_max": round(
            max(viewer_p99s, default=0.0) * 1000, 3
        ),
    }


def run_fanout(
    n_viewers: int,
    frames: list[np.ndarray],
    *,
    ladder: TierLadder | None = None,
    credit_limit: int = 8,
    drain_timeout: float = 10.0,
    shards: int = 1,
    encode_workers: int = 0,
    audit_viewers: int | None = None,
) -> dict:
    """One router run: cold pass then warm pass over the same frame ids.

    Returns a dict with per-pass delivered-frames/sec, delivery-latency
    percentiles, encode counts and cache hit ratios, plus the final
    per-session drop totals and (when a pool ran) its counters.

    ``audit_viewers`` bounds how many viewers decode what they consume:
    ``None`` decodes on every viewer (a faithful small-scale run), K
    keeps the first K viewers decoding and makes the rest pure load
    generators (see :class:`_Drainer`) — use it for large viewer
    counts where the question is serving capacity.
    """
    result: dict = {
        "viewers": n_viewers,
        "frames": len(frames),
        "shards": shards,
        "encode_workers": encode_workers,
        "audit_viewers": (
            n_viewers if audit_viewers is None
            else min(audit_viewers, n_viewers)
        ),
    }
    # built inside the try so a failed join/drainer mid-construction
    # still tears down the router and the drainers already running
    drainers: list[_Drainer] = []
    router = SessionRouter(
        shards=shards,
        encode_workers=encode_workers,
        ladder=ladder,
        credit_limit=credit_limit,
    )
    try:
        for i in range(n_viewers):
            drainers.append(
                _Drainer(
                    router.join(f"v{i:03d}"),
                    decode=audit_viewers is None or i < audit_viewers,
                )
            )
        for label in ("cold", "warm"):
            before = router.stats()
            for d in drainers:
                d.take()  # discard receipts from the previous pass
            publish_t: dict[int, float] = {}
            t0 = time.perf_counter()
            for fid, image in enumerate(frames):
                publish_t[fid] = time.perf_counter()
                router.publish(image, time_step=fid, frame_id=fid)
            router.drain(timeout=drain_timeout)
            elapsed = time.perf_counter() - t0
            stats = router.stats()
            delivered = sum(
                s.acks for s in stats.sessions.values()
            ) - sum(s.acks for s in before.sessions.values())
            # every ack precedes its receipt record by one list append;
            # give the drainer threads a moment to finish writing them
            try:
                wait_until(
                    lambda: sum(d.receipt_count() for d in drainers)
                    >= delivered,
                    timeout=2.0,
                    message="fan-out receipt records",
                )
            except TimeoutError:
                pass  # percentiles over what was recorded in time
            per_viewer = [
                [
                    t - publish_t[fid]
                    for fid, t in d.take()
                    if fid in publish_t
                ]
                for d in drainers
            ]
            lookups = (stats.cache_hits - before.cache_hits) + (
                stats.cache_misses - before.cache_misses
            )
            row = {
                "elapsed_s": elapsed,
                "delivered_frames": delivered,
                "delivered_fps": delivered / elapsed if elapsed > 0 else 0.0,
                "encodes": stats.encodes - before.encodes,
                "cache_hit_ratio": (stats.cache_hits - before.cache_hits)
                / lookups
                if lookups
                else 0.0,
            }
            row.update(_latency_stats(per_viewer))
            result[label] = row
        final = router.stats()
        result["dropped_frames"] = final.total_frames_dropped
        result["tier_transitions"] = final.total_transitions
        if router.encode_pool is not None:
            result["pool"] = router.encode_pool.stats_snapshot()
    finally:
        try:
            for d in drainers:
                d.stop()
        finally:
            router.close()
    return result


def measure_fanout(
    viewer_counts: tuple[int, ...] = (1, 4, 16, 64),
    n_frames: int = 32,
    size: int = 96,
    **kwargs,
) -> list[dict]:
    """The full sweep: one :func:`run_fanout` per viewer count."""
    frames = synthetic_frames(n_frames, size=size)
    return [run_fanout(n, frames, **kwargs) for n in viewer_counts]
