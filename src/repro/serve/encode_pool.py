"""Multi-process encode pool fed via shared-memory frame planes.

Every codec in :mod:`repro.compress` is pure-python CPU work, so cold
cache fills done on broker threads all contend for one GIL — the wall
the BENCH_serve cold numbers hit long before the network does.  This
pool moves those encodes into a fixed set of worker *processes* (the
MovieMaker processor-group idea applied to the serving tier: a small
pool kept saturated, not a process per request).

The frame crosses the process boundary through a
:class:`multiprocessing.shared_memory.SharedMemory` plane, never
through a pickle: the submitting thread copies the image into a
reusable slot, the worker maps the same plane as an ndarray, encodes,
and ships back only the compressed payload (tens of KB).  Slots are
recycled through a free list, so a steady state of N in-flight encodes
touches exactly N planes no matter how many frames cross the pool.

Correctness properties the serve layer relies on:

- **Coalescing** — concurrent requests for the same content address
  (the ``(frame_id, codec, quality)`` cache key) share one worker
  encode; every shard of a sharded broker can miss on the same frame
  and the origin still pays for it once.
- **Crash retry** — a worker that dies mid-encode has its in-flight
  tasks reassigned to a live worker (and the dead worker respawned);
  the caller never observes the crash, and because results land in the
  cache via ``get_or_encode`` under a content key, a retry can never
  duplicate a fill.
- **Inline fallback** — a request that outlives ``timeout`` (or races
  pool shutdown) is encoded in-process instead, so the pool can only
  ever make a cold fill faster, never wedge it.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.compress import Codec, get_codec
from repro.compress.context import CodecContext
from repro.devtools.lockset import guarded_by

__all__ = ["EncodePool", "EncodeFailed"]

#: a slot is never created smaller than this, so tiny frames still
#: recycle through the same free list as full-size ones
_MIN_SLOT_BYTES = 64 << 10


class EncodeFailed(RuntimeError):
    """A worker raised while encoding (deterministic codec error)."""


def _make_codec(codec_name: str, quality: int | None,
                context: CodecContext) -> Codec:
    codec = (
        get_codec(codec_name)
        if quality is None
        else get_codec(codec_name, quality=quality)
    )
    if hasattr(codec, "use_context"):
        codec.use_context(context)
    return codec


def _record_error(results, worker_id: int, task_id: int,
                  exc: Exception) -> None:
    """Ship a worker-side encode failure back to the parent, typed."""
    results.put(
        ("error", worker_id, task_id, f"{type(exc).__name__}: {exc}")
    )


def _worker_main(worker_id: int, tasks, results,
                 shared_tracker: bool) -> None:
    """One worker process: map the plane, encode, ship the payload back.

    Codecs (and their :class:`CodecContext` scratch buffers) persist
    across tasks, so a worker stays as warm as the in-process encoder
    it replaces.
    """
    codecs: dict[tuple[str, int | None], Codec] = {}
    context = CodecContext()
    while True:
        task = tasks.get()
        if task is None:
            return
        task_id, shm_name, shape, dtype, codec_name, quality = task
        try:
            seg = shared_memory.SharedMemory(name=shm_name)
            try:
                if not shared_tracker and hasattr(
                        resource_tracker, "unregister"):
                    # under spawn this child runs its own resource
                    # tracker, which just registered a segment the
                    # *parent* owns — drop that registration or the
                    # child tracker reports phantom leaks at exit.
                    # Under fork the tracker process is shared (the
                    # registry add above was an idempotent no-op) and
                    # the parent's registration must survive us.
                    resource_tracker.unregister(seg._name, "shared_memory")
                plane = np.ndarray(shape, dtype=np.dtype(dtype),
                                   buffer=seg.buf)
                image = plane.copy()  # detach before the slot is recycled
            finally:
                seg.close()
            key = (codec_name, quality)
            codec = codecs.get(key)
            if codec is None:
                codec = _make_codec(codec_name, quality, context)
                codecs[key] = codec
            payload = codec.encode_image(image)
        except Exception as exc:  # shipped back typed, never swallowed
            _record_error(results, worker_id, task_id, exc)
            continue
        results.put(("done", worker_id, task_id, payload))


class _Pending:
    """Parent-side record of one in-flight encode."""

    __slots__ = ("event", "payload", "error", "key")

    def __init__(self, key):
        self.event = threading.Event()
        self.payload: bytes | None = None
        self.error: str | None = None
        self.key = key


class _Worker:
    """One child process plus its private task queue.

    The queue being per-worker is what makes crash recovery exact: the
    parent knows precisely which task ids it handed each worker, so a
    dead worker's unfinished work — claimed or still queued — can be
    replayed onto a live one.
    """

    def __init__(self, ctx, worker_id: int, results, shared_tracker: bool):
        self.worker_id = worker_id
        self.tasks = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, self.tasks, results, shared_tracker),
            daemon=True,
        )
        self.process.start()


class EncodePool:
    """A fixed pool of encode worker processes with shared-memory feed.

    Parameters
    ----------
    workers:
        Worker process count.  Two saturate the cold path of a typical
        4-tier ladder; more helps only while distinct (frame, tier)
        misses outnumber them.
    start_method:
        ``multiprocessing`` start method (default: ``fork`` where
        available — workers inherit the imported codec modules — else
        the platform default).
    """

    def __init__(self, workers: int = 2, *, start_method: str | None = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        self._ctx = multiprocessing.get_context(start_method)
        #: fork workers share the parent's resource-tracker process;
        #: spawn workers run their own (see _worker_main)
        self._shared_tracker = (
            start_method or multiprocessing.get_start_method()
        ) == "fork"
        if self._shared_tracker and hasattr(resource_tracker, "ensure_running"):
            # start the tracker *before* forking workers: children must
            # inherit its pipe or each one silently spawns a private
            # tracker that reports every attached slot as leaked when
            # the worker exits
            resource_tracker.ensure_running()
        self._results = self._ctx.Queue()
        self._lock = threading.Lock()
        self._workers: list[_Worker] = []  # guarded-by: _lock
        #: task id -> parent-side wait record
        self._pending: dict[int, _Pending] = {}  # guarded-by: _lock
        #: task id -> (worker index, task tuple) for crash replay
        self._assigned: dict[int, tuple[int, tuple]] = {}  # guarded-by: _lock
        #: content key -> in-flight record (request coalescing)
        self._inflight: dict[tuple, _Pending] = {}  # guarded-by: _lock
        #: task id -> the shared-memory slot its frame occupies
        # borrows: _slot_of -- indexes into _all_slots, which owns the planes
        self._slot_of: dict[int, shared_memory.SharedMemory] = {}  # guarded-by: _lock
        # borrows: _free_slots -- recycled entries; _all_slots owns them
        self._free_slots: list[shared_memory.SharedMemory] = []  # guarded-by: _lock
        self._all_slots: list[shared_memory.SharedMemory] = []  # guarded-by: _lock
        self._inline_codecs: dict[tuple[str, int | None], Codec] = {}  # guarded-by: _lock
        #: serializes inline-fallback encodes (they share scratch buffers)
        self._inline_lock = threading.Lock()
        self._inline_context = CodecContext()
        self._task_counter = 0  # guarded-by: _lock
        self._next_worker = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        #: encodes completed by workers
        self.encodes = 0  # guarded-by: _lock
        #: requests that piggybacked on an identical in-flight encode
        self.coalesced = 0  # guarded-by: _lock
        #: tasks replayed onto a live worker after a worker death
        self.retries = 0  # guarded-by: _lock
        #: workers respawned after dying mid-stream
        self.worker_restarts = 0  # guarded-by: _lock
        #: requests finished in-process (timeout or shutdown race)
        self.inline_fallbacks = 0  # guarded-by: _lock
        self._collector: threading.Thread | None = None
        try:
            with self._lock:
                for i in range(workers):
                    self._workers.append(
                        _Worker(self._ctx, i, self._results,
                                self._shared_tracker)
                    )
            collector = threading.Thread(
                target=self._collect, name="encode-pool-collector",
                daemon=True
            )
            collector.start()
            self._collector = collector
        except BaseException:
            # a failed spawn must not strand the workers already forked
            self.close()
            raise

    # -- public surface ------------------------------------------------------

    @property
    def n_workers(self) -> int:
        with self._lock:
            return len(self._workers)

    def encode(
        self,
        image: np.ndarray,
        codec: str,
        quality: int | None = None,
        *,
        key: tuple | None = None,
        timeout: float = 30.0,
        _worker: int | None = None,
    ) -> bytes:
        """Encode ``image`` on a worker; blocks until the payload is back.

        ``key`` is the content address of the request: two concurrent
        calls with the same key share one worker encode.  ``_worker``
        pins the task to a worker index (crash-recovery tests only).
        A request that outlives ``timeout`` is encoded inline instead.

        Raises :class:`EncodeFailed` if the codec itself raised (the
        error is deterministic — an inline retry would raise too) and
        :class:`RuntimeError` if the pool is closed.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("encode() on a closed EncodePool")
            if key is not None:
                shared = self._inflight.get(key)
                if shared is not None:
                    self.coalesced += 1
                    pending = shared
                    submitted = False
                else:
                    pending = self._submit_locked(image, codec, quality,
                                                  key, _worker)
                    submitted = True
            else:
                pending = self._submit_locked(image, codec, quality,
                                              key, _worker)
                submitted = True
        if not pending.event.wait(timeout):
            if submitted:
                return self._fallback_inline(image, codec, quality, pending)
            # a coalesced waiter owns no task to cancel; just encode
            return self._fallback_inline(image, codec, quality, None)
        if pending.error is not None:
            if pending.error == "pool closed":
                raise RuntimeError("EncodePool closed mid-encode")
            raise EncodeFailed(pending.error)
        return pending.payload

    def stats_snapshot(self) -> dict:
        """Every counter copied in one critical section."""
        with self._lock:
            return {
                "workers": len(self._workers),
                "encodes": self.encodes,
                "coalesced": self.coalesced,
                "retries": self.retries,
                "worker_restarts": self.worker_restarts,
                "inline_fallbacks": self.inline_fallbacks,
                "slots": len(self._all_slots),
            }

    def close(self) -> None:
        """Stop workers, fail stragglers over to inline, free the planes."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
            pending = list(self._pending.values())
            self._pending.clear()
            self._assigned.clear()
            self._inflight.clear()
            self._slot_of.clear()
            slots = list(self._all_slots)
            self._all_slots.clear()
            self._free_slots.clear()
        for record in pending:  # unblock waiters; they fall back inline
            record.error = "pool closed"
            record.event.set()
        for w in workers:
            w.tasks.put(None)
        for w in workers:
            w.process.join(timeout=2.0)
            if w.process.is_alive():
                w.process.kill()
                w.process.join(timeout=2.0)
        self._results.put(None)
        if self._collector is not None:
            self._collector.join(timeout=2.0)
        for slot in slots:
            slot.close()
            try:
                slot.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "EncodePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ----------------------------------------------------------

    @guarded_by("_lock")
    def _submit_locked(self, image, codec, quality, key,
                       worker_hint) -> _Pending:
        task_id = self._task_counter
        self._task_counter += 1
        slot = self._acquire_slot_locked(image.nbytes)
        try:
            plane = np.ndarray(image.shape, dtype=image.dtype,
                               buffer=slot.buf)
            plane[...] = image
        except BaseException:
            # a bad image (lying nbytes, dtype mismatch) must not eat
            # the slot: recycle it or every failed submit grows a new
            # shared-memory segment
            self._free_slots.append(slot)
            raise
        self._slot_of[task_id] = slot
        task = (task_id, slot.name, tuple(image.shape), str(image.dtype),
                codec, quality)
        pending = _Pending(key)
        self._pending[task_id] = pending
        if key is not None:
            self._inflight[key] = pending
        index = (
            worker_hint
            if worker_hint is not None
            else self._next_worker % len(self._workers)
        )
        self._next_worker += 1
        self._assigned[task_id] = (index, task)
        self._workers[index].tasks.put(task)
        return pending

    @guarded_by("_lock")
    def _acquire_slot_locked(self, nbytes: int) -> shared_memory.SharedMemory:
        for i, slot in enumerate(self._free_slots):
            if slot.size >= nbytes:
                return self._free_slots.pop(i)
        slot = shared_memory.SharedMemory(
            create=True, size=max(nbytes, _MIN_SLOT_BYTES)
        )
        self._all_slots.append(slot)
        return slot

    def _fallback_inline(self, image, codec, quality,
                         pending: _Pending | None) -> bytes:
        """Encode in the calling process after a timeout/shutdown race."""
        with self._lock:
            self.inline_fallbacks += 1
            if pending is not None and pending.key is not None:
                if self._inflight.get(pending.key) is pending:
                    del self._inflight[pending.key]
            cached = self._inline_codecs.get((codec, quality))
            if cached is None:
                cached = _make_codec(codec, quality, self._inline_context)
                self._inline_codecs[(codec, quality)] = cached
        with self._inline_lock:
            return cached.encode_image(image)

    # -- result collection / crash recovery ----------------------------------

    def _collect(self) -> None:
        """Parent thread: resolve results, watch worker liveness."""
        while True:
            try:
                msg = self._results.get(timeout=0.2)
            except queue.Empty:
                with self._lock:
                    if self._closed:
                        return
                self._check_workers()
                continue
            if msg is None:
                return
            kind, _worker_id, task_id, payload = msg
            with self._lock:
                pending = self._pending.pop(task_id, None)
                self._assigned.pop(task_id, None)
                slot = self._slot_of.pop(task_id, None)
                if slot is not None:
                    self._free_slots.append(slot)
                if pending is not None and pending.key is not None:
                    if self._inflight.get(pending.key) is pending:
                        del self._inflight[pending.key]
                if pending is not None and kind == "done":
                    self.encodes += 1
            if pending is None:
                continue  # already failed over (timeout/close)
            if kind == "error":
                pending.error = payload
            else:
                pending.payload = payload
            pending.event.set()

    def _check_workers(self) -> None:
        """Respawn dead workers and replay their unfinished tasks."""
        with self._lock:
            if self._closed:
                return
            dead = [
                i
                for i, w in enumerate(self._workers)
                if not w.process.is_alive()
            ]
            replay: list[tuple] = []
            for i in dead:
                self._workers[i] = _Worker(
                    self._ctx, i, self._results, self._shared_tracker
                )
                self.worker_restarts += 1
                for task_id, (index, task) in list(self._assigned.items()):
                    if index == i:
                        replay.append(task)
                        del self._assigned[task_id]
            for task in replay:
                task_id = task[0]
                live = [
                    i
                    for i, w in enumerate(self._workers)
                    if w.process.is_alive()
                ]
                index = live[self._next_worker % len(live)] if live else 0
                self._next_worker += 1
                self._assigned[task_id] = (index, task)
                self._workers[index].tasks.put(task)
                self.retries += 1
