"""Quality tiers: the ladder a viewer session moves along under load.

The paper's display interface lets the client "instruct the system to
change the compression method"; the serving layer automates that choice
per viewer.  A :class:`QualityTier` names one operating point — codec,
JPEG quality, and a frame stride for the last-resort frame-skipping
tier — and a :class:`TierLadder` orders them from best (index 0) to
cheapest.  The adaptive controller steps a congested session down the
ladder and a healthy one back up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compress import Codec, get_codec

__all__ = ["QualityTier", "TierLadder", "default_ladder"]


@dataclass(frozen=True)
class QualityTier:
    """One per-viewer operating point.

    ``frame_stride`` > 1 is the frame-skipping regime: only every Nth
    published frame is offered to sessions at this tier, trading frame
    rate for staying interactive at all.
    """

    name: str
    codec: str
    quality: int | None = None
    frame_stride: int = 1

    def __post_init__(self):
        if self.frame_stride < 1:
            raise ValueError("frame_stride must be >= 1")

    def cache_key(self, frame_id: int) -> tuple[int, str, int | None]:
        """Content address of this tier's encoding of ``frame_id``."""
        return (frame_id, self.codec, self.quality)

    def make_codec(self) -> Codec:
        """Instantiate this tier's codec (quality forwarded if set)."""
        if self.quality is None:
            return get_codec(self.codec)
        return get_codec(self.codec, quality=self.quality)

    def admits(self, frame_id: int) -> bool:
        """Whether this tier delivers ``frame_id`` (stride filter)."""
        return frame_id % self.frame_stride == 0


class TierLadder:
    """An ordered sequence of tiers, best first.

    Immutable and shared by every session of a broker; sessions hold an
    index into it.
    """

    def __init__(self, tiers: tuple[QualityTier, ...] | list[QualityTier]):
        if not tiers:
            raise ValueError("ladder needs at least one tier")
        self._tiers = tuple(tiers)
        names = [t.name for t in self._tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")

    def __len__(self) -> int:
        return len(self._tiers)

    def __getitem__(self, index: int) -> QualityTier:
        return self._tiers[index]

    def __iter__(self):
        return iter(self._tiers)

    def clamp(self, index: int) -> int:
        return max(0, min(index, len(self._tiers) - 1))

    def index_of(self, name: str) -> int:
        for i, tier in enumerate(self._tiers):
            if tier.name == name:
                return i
        raise KeyError(f"no tier named {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TierLadder {' > '.join(t.name for t in self._tiers)}>"


def default_ladder() -> TierLadder:
    """The shipped ladder: Table 1's two-phase pair at the top, then
    progressively cheaper JPEG, then frame skipping."""
    return TierLadder(
        (
            QualityTier("full", "jpeg+lzo", quality=90),
            QualityTier("high", "jpeg", quality=75),
            QualityTier("low", "jpeg", quality=40),
            QualityTier("skip", "jpeg", quality=30, frame_stride=3),
        )
    )
