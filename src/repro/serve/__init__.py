"""The serving layer: one renderer stream, many adaptive viewers.

A new subsystem layered over the §4.1 daemon/transport stack for the
"many viewers over a WAN" regime.  Four pieces:

- :class:`~repro.serve.broker.SessionBroker` — viewer membership
  (join/leave/seek) and fan-out publishing;
- :class:`~repro.serve.cache.FrameCache` — content-addressed encoded
  frames keyed ``(frame_id, codec, quality)`` with LRU + byte-budget
  eviction, so one encode serves every viewer at a tier;
- :class:`~repro.serve.tiers.TierLadder` /
  :class:`~repro.serve.session.AdaptiveQualityController` — per-viewer
  quality adaptation (full two-phase JPEG → cheaper JPEG → frame
  skipping) driven by credit-based backpressure instead of blind
  broadcast;
- :class:`~repro.serve.stats.ServeStats` — the operator surface:
  per-session sent/dropped/bytes, cache hit ratio, tier transitions;
- :class:`~repro.serve.shard.SessionRouter` /
  :class:`~repro.serve.encode_pool.EncodePool` — the scale-out layer:
  N broker shards behind consistent-hash session routing, with cold
  encodes on a shared-memory multi-process worker pool.

``repro.serve.fanout`` measures delivered frames/sec against viewer
count (the ``bench_serve_fanout`` benchmark and ``make serve-smoke``).
"""

from repro.serve.broker import SessionBroker
from repro.serve.cache import FrameCache
from repro.serve.encode_pool import EncodeFailed, EncodePool
from repro.serve.fanout import measure_fanout, run_fanout, synthetic_frames
from repro.serve.faultrun import run_with_faults, sweep_faults
from repro.serve.shard import SessionRouter, shard_for
from repro.serve.session import (
    AdaptiveQualityController,
    FrameDecodeError,
    ServedFrame,
    ViewerHandle,
    ViewerSession,
)
from repro.serve.stats import ServeStats, SessionStats, TierTransition
from repro.serve.tiers import QualityTier, TierLadder, default_ladder

__all__ = [
    "SessionBroker",
    "SessionRouter",
    "shard_for",
    "EncodePool",
    "EncodeFailed",
    "FrameCache",
    "QualityTier",
    "TierLadder",
    "default_ladder",
    "AdaptiveQualityController",
    "ViewerSession",
    "ViewerHandle",
    "ServedFrame",
    "FrameDecodeError",
    "ServeStats",
    "SessionStats",
    "TierTransition",
    "measure_fanout",
    "run_fanout",
    "synthetic_frames",
    "run_with_faults",
    "sweep_faults",
]
