"""Fault-scenario harness: the serving stack under a WAN-shaped link.

``run_with_faults`` drives one complete delivery scenario: a paced
publisher pushes an animated sequence through a
:class:`~repro.serve.broker.SessionBroker` to viewers whose links obey a
:class:`~repro.net.faults.FaultPlan` (loss is retransmitted with
backoff, latency/jitter delay the ack path, a scheduled disconnect cuts
the link mid-stream).  Viewers that lose their connection rejoin under
the same name and *resume* from the next frame they need, so the
scenario exercises the whole resilience surface: retry, adaptive tier
degradation, reconnect-with-resume.

The headline number is the **delivered-frame ratio**: the fraction of
published frames each session handled — consumed and acked, or
deliberately stride-skipped by its current tier.  Frames dropped on the
floor for credit exhaustion are the failures the adaptive ladder
exists to minimise.

``benchmarks/bench_faults.py`` sweeps loss/latency grids over this
harness; ``repro faults`` runs one scenario from the command line.
"""

from __future__ import annotations

import threading
import time

from repro.net.faults import FaultPlan
from repro.net.transport import RetryPolicy
from repro.serve.broker import SessionBroker
from repro.serve.fanout import synthetic_frames
from repro.serve.session import FrameDecodeError
from repro.serve.tiers import TierLadder

__all__ = ["run_with_faults", "sweep_faults"]

#: retransmission policy used for faulty links: aggressive enough that a
#: 10% lossy link still delivers (0.9999+ after 6 attempts), with small
#: backoff so retries do not stall the publisher
FAULT_RETRY = RetryPolicy(max_attempts=6, backoff_s=0.002, max_backoff_s=0.05)


class _ResilientViewer:
    """A viewer that consumes frames and survives link cuts by
    rejoining under its own name and resuming the stream.

    ``broker`` is anything with the broker ``join`` surface — the
    origin :class:`SessionBroker` or an edge
    :class:`~repro.relay.daemon.FrameRelay`.
    """

    def __init__(self, broker, name: str, plan: FaultPlan,
                 reconnect: bool = True):
        self.broker = broker
        self.name = name
        self.plan = plan
        self.reconnect = reconnect
        self.frame_ids: list[int] = []
        self.duplicates = 0
        self.decode_errors = 0
        self.reconnects = 0
        #: gap ranges accumulated across the handles this viewer used up
        self.gap_ranges: list[tuple[int, int]] = []
        self._stop = threading.Event()
        self.handle = broker.join(name, fault_plan=plan, retry=FAULT_RETRY)
        try:
            self.thread = threading.Thread(target=self._run, daemon=True)
            self.thread.start()
        except BaseException:
            # no consumer thread ever ran: give the session back instead
            # of stranding it broker-side
            self.handle.leave()
            raise

    def _next_id(self) -> int:
        return self.frame_ids[-1] + 1 if self.frame_ids else 0

    def _rejoin(self) -> bool:
        """Re-establish the session; returns False when giving up."""
        self.gap_ranges.extend(self.handle.gaps)
        # the session died with the link, but the viewer-side channel fd
        # lives until closed; leave() would tear down the broker's parked
        # resume state, so close just the transport
        self.handle.conn.close()
        deadline = time.monotonic() + 5.0
        while not self._stop.is_set() and time.monotonic() < deadline:
            try:
                self.handle = self.broker.join(
                    self.name,
                    fault_plan=self.plan.reconnected(),
                    retry=FAULT_RETRY,
                    resume_from=self._next_id(),
                )
            except ValueError:
                # the broker has not reaped the dead session yet; wait
                # on the stop event so shutdown interrupts the retry
                self._stop.wait(0.005)
                continue
            except RuntimeError:  # broker closed underneath us
                return False
            self.reconnects += 1
            return True
        return False

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                frame = self.handle.next_frame(timeout=0.25)
            except TimeoutError:
                continue
            except ConnectionError:
                if not self.reconnect or not self._rejoin():
                    return
                continue
            except FrameDecodeError:  # corrupted payload, typed + counted
                self.decode_errors += 1
                continue
            if frame.frame_id in self.frame_ids:
                self.duplicates += 1
            self.frame_ids.append(frame.frame_id)

    def stop(self) -> None:
        self._stop.set()
        self.thread.join(timeout=5.0)
        self.gap_ranges.extend(self.handle.gaps)
        self.handle.leave()


def _teardown(viewers, relay_pool, broker) -> None:
    """Close every tier even when one close raises; the first failure
    propagates only after the rest have been released."""
    failures: list[BaseException] = []
    for v in viewers:
        try:
            v.stop()
        except BaseException as exc:
            failures.append(exc)
    for relay in relay_pool:
        try:
            relay.close()
        except BaseException as exc:
            failures.append(exc)
    if broker is not None:
        try:
            broker.close()
        except BaseException as exc:
            failures.append(exc)
    if failures:
        raise failures[0]


def run_with_faults(
    plan: FaultPlan,
    *,
    n_frames: int = 96,
    size: int = 48,
    n_viewers: int = 2,
    credit_limit: int = 8,
    pace_s: float = 0.03,
    ladder: TierLadder | None = None,
    step_down_after: int = 1,
    step_up_after: int = 24,
    reconnect: bool = True,
    drain_timeout: float = 10.0,
    relays: int = 0,
    shards: int = 1,
    encode_workers: int = 0,
) -> dict:
    """One fault scenario end to end; returns its delivery report.

    The publisher is paced (``pace_s`` between frames) like a render
    loop; every viewer link obeys ``plan``.  The report carries the
    per-session delivered-frame ratio, drop/skip/ack counts, tier
    transitions, reconnects, and client-observed duplicates.

    ``relays`` > 0 routes the scenario through that many edge relays
    (:class:`~repro.relay.daemon.FrameRelay`): the fault plan moves to
    the relay→viewer hop — the same link position the direct scenario
    shapes — while the relay→origin hop stays clean, so the grid cell
    measures what interposing a relay does to delivery under identical
    WAN weather.  Viewers rejoin *their relay* on a cut, exercising the
    relay's resume machinery instead of the broker's.

    ``shards`` > 1 serves the scenario through a
    :class:`~repro.serve.shard.SessionRouter` instead of a single
    broker — session names route to their owning shard, and a rejoin
    after a cut lands back on the shard holding the parked resume
    state.  ``encode_workers`` > 0 adds the multi-process encode pool
    under either topology.
    """
    frames = synthetic_frames(n_frames, size=size)
    common = dict(
        ladder=ladder,
        credit_limit=credit_limit,
        step_down_after=step_down_after,
        step_up_after=step_up_after,
        history_frames=max(32, n_frames // 2),
    )
    # every tier is built inside the try so a constructor failure in a
    # later tier still tears down the earlier ones
    broker = None
    relay_pool: list = []
    viewers: list[_ResilientViewer] = []
    try:
        if shards > 1 or encode_workers > 0:
            from repro.serve.shard import SessionRouter

            broker = SessionRouter(
                shards=shards, encode_workers=encode_workers, **common
            )
        else:
            broker = SessionBroker(**common)
        if relays > 0:
            # local import: repro.serve must stay importable without the
            # relay package (and this is the only serve -> relay edge)
            from repro.relay.daemon import FrameRelay
            from repro.relay.ring import RelayRing

            ring = RelayRing() if relays > 1 else None
            for i in range(relays):
                name = f"relay{i}"
                if ring is not None:
                    ring.add(name)
                relay_pool.append(
                    FrameRelay(
                        name,
                        broker,
                        ring=ring,
                        upstream_credits=max(32, n_frames + 8),
                    )
                )
            for a in relay_pool:
                for b in relay_pool:
                    if a is not b:
                        a.connect_peer(b)
        for i in range(n_viewers):
            viewers.append(
                _ResilientViewer(
                    relay_pool[i % len(relay_pool)] if relay_pool else broker,
                    f"wan{i:02d}",
                    plan,
                    reconnect=reconnect,
                )
            )
        t0 = time.perf_counter()
        for fid, image in enumerate(frames):
            broker.publish(image, time_step=fid, frame_id=fid)
            if pace_s:
                time.sleep(pace_s)
        broker.drain(timeout=drain_timeout)
        for relay in relay_pool:
            relay.drain(timeout=drain_timeout)
        elapsed = time.perf_counter() - t0
        stats = broker.stats()
        session_stats = dict(stats.sessions)
        for relay in relay_pool:
            session_stats.update(relay.session_stats())
    finally:
        _teardown(viewers, relay_pool, broker)

    sessions = {}
    ratios = []
    for v in viewers:
        s = session_stats.get(v.name)
        if s is None:
            continue
        handled = s.acks + s.frames_skipped
        ratio = handled / n_frames if n_frames else 0.0
        ratios.append(ratio)
        sessions[v.name] = {
            "delivered_ratio": round(ratio, 4),
            "acks": s.acks,
            "skipped": s.frames_skipped,
            "dropped": s.frames_dropped,
            "sent": s.frames_sent,
            "tier": s.tier,
            "transitions": len(s.transitions),
            "reconnects": s.reconnects,
            "observed_duplicates": v.duplicates,
            "decode_errors": v.decode_errors,
            "gaps": len(v.gap_ranges),
        }
    return {
        "plan": {
            "seed": plan.seed,
            "loss_ratio": plan.loss_ratio,
            "latency_s": plan.latency_s,
            "jitter_s": plan.jitter_s,
            "corrupt_ratio": plan.corrupt_ratio,
            "disconnect_after": plan.disconnect_after,
        },
        "n_frames": n_frames,
        "n_viewers": n_viewers,
        "relays": relays,
        "shards": shards,
        "elapsed_s": round(elapsed, 3),
        "delivered_ratio": round(min(ratios), 4) if ratios else 0.0,
        "mean_delivered_ratio": round(sum(ratios) / len(ratios), 4)
        if ratios
        else 0.0,
        "malformed_controls": stats.malformed_controls,
        "resumes": stats.resumes,
        "resume_gaps": stats.resume_gaps,
        "sessions": sessions,
    }


def sweep_faults(
    loss_ratios=(0.0, 0.05, 0.1),
    jitters_s=(0.0, 0.05, 0.1),
    seed: int = 1234,
    **kwargs,
) -> list[dict]:
    """The loss × jitter grid: one :func:`run_with_faults` per cell."""
    cells = []
    for loss in loss_ratios:
        for jitter in jitters_s:
            plan = FaultPlan(seed=seed, loss_ratio=loss, jitter_s=jitter)
            cells.append(run_with_faults(plan, **kwargs))
    return cells
