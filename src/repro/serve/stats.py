"""The serving layer's observable surface.

Per-session delivery counters, cache effectiveness, and every tier
transition the adaptive controller made — the numbers an operator needs
to answer "is the fan-out actually sharing work?" and "which viewers are
being stepped down?".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["SessionStats", "TierTransition", "ServeStats"]


@dataclass(frozen=True)
class TierTransition:
    """One adaptive step of one session."""

    frame_id: int
    from_tier: str
    to_tier: str
    reason: str  # "congestion" or "recovered"


@dataclass
class SessionStats:
    """Delivery counters for one viewer session."""

    name: str
    tier: str = ""
    frames_sent: int = 0
    frames_dropped: int = 0
    frames_skipped: int = 0  # stride-filtered, deliberate
    bytes_sent: int = 0
    acks: int = 0
    transitions: list[TierTransition] = field(default_factory=list)
    decode_context_hit_ratio: float = 0.0
    active: bool = True
    #: times this logical session reconnected and resumed its stream
    reconnects: int = 0

    @property
    def drop_ratio(self) -> float:
        offered = self.frames_sent + self.frames_dropped
        return self.frames_dropped / offered if offered else 0.0

    def copy(self, **overrides) -> "SessionStats":
        """An independent snapshot of these counters.

        The ``transitions`` list is copied, so a snapshot taken under
        the session lock stays frozen while the live record keeps
        accumulating.  ``overrides`` replace individual fields.
        """
        overrides.setdefault("transitions", list(self.transitions))
        return replace(self, **overrides)


@dataclass
class ServeStats:
    """A point-in-time snapshot of the whole broker.

    Built by ``SessionBroker.stats()`` entirely from atomic copies —
    session snapshots and cache counters each taken under their owning
    lock — so the numbers are mutually consistent and never alias live
    mutable state.
    """

    sessions: dict[str, SessionStats] = field(default_factory=dict)
    frames_published: int = 0
    encodes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_bytes: int = 0
    cache_entries: int = 0
    #: control messages dropped because they were malformed (bad or
    #: missing frame_id, non-control traffic from a viewer)
    malformed_controls: int = 0
    #: well-formed controls with a tag the broker does not handle
    #: (version-skewed or misbehaving viewers)
    unknown_controls: int = 0
    #: sessions that reconnected and resumed from their last acked frame
    resumes: int = 0
    #: resumes that fell off the retained history window and were sent
    #: an explicit ``gap`` signal instead of a silent skip
    resume_gaps: int = 0
    #: broker shards merged into this snapshot (1 = a single broker)
    shards: int = 1

    @property
    def cache_hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @classmethod
    def merge(cls, snapshots: list["ServeStats"]) -> "ServeStats":
        """Aggregate per-shard snapshots into one router-wide view.

        Every input must itself be an atomic snapshot (a shard's
        ``stats()`` result) — merging live broker fields bare would
        re-introduce exactly the torn reads the snapshot path exists to
        prevent.  Counters are summed; ``frames_published`` takes the
        max because the router offers each published frame to every
        shard (a sum would multiply-count by the shard count); ratios
        are recomputed from the summed counters by the properties, so a
        shard with zero lookups can never divide the aggregate by zero.
        """
        merged = cls(shards=max(len(snapshots), 1))
        for snap in snapshots:
            merged.sessions.update(snap.sessions)
            merged.frames_published = max(
                merged.frames_published, snap.frames_published
            )
            merged.encodes += snap.encodes
            merged.cache_hits += snap.cache_hits
            merged.cache_misses += snap.cache_misses
            merged.cache_evictions += snap.cache_evictions
            merged.cache_bytes += snap.cache_bytes
            merged.cache_entries += snap.cache_entries
            merged.malformed_controls += snap.malformed_controls
            merged.unknown_controls += snap.unknown_controls
            merged.resumes += snap.resumes
            merged.resume_gaps += snap.resume_gaps
        return merged

    @property
    def total_frames_sent(self) -> int:
        return sum(s.frames_sent for s in self.sessions.values())

    @property
    def total_frames_dropped(self) -> int:
        return sum(s.frames_dropped for s in self.sessions.values())

    @property
    def total_bytes_sent(self) -> int:
        return sum(s.bytes_sent for s in self.sessions.values())

    @property
    def total_transitions(self) -> int:
        return sum(len(s.transitions) for s in self.sessions.values())

    def summary(self) -> str:
        """A human-readable operator report (the CLI prints this)."""
        shard_note = f" across {self.shards} shards" if self.shards > 1 else ""
        lines = [
            f"published {self.frames_published} frames{shard_note}, "
            f"{self.encodes} encodes, cache hit ratio "
            f"{self.cache_hit_ratio * 100:.1f}% "
            f"({self.cache_entries} entries, {self.cache_bytes} B); "
            f"{self.malformed_controls} malformed / "
            f"{self.unknown_controls} unknown controls",
            f"{'session':<14}{'tier':>6}{'sent':>7}{'drop':>6}"
            f"{'skip':>6}{'bytes':>12}{'steps':>6}",
        ]
        for name in sorted(self.sessions):
            s = self.sessions[name]
            marker = "" if s.active else " (left)"
            lines.append(
                f"{name:<14}{s.tier:>6}{s.frames_sent:>7}"
                f"{s.frames_dropped:>6}{s.frames_skipped:>6}"
                f"{s.bytes_sent:>12}{len(s.transitions):>6}{marker}"
            )
        return "\n".join(lines)
