"""WAN edge relay tier: content-addressed frame relays between the
origin :class:`~repro.serve.broker.SessionBroker` and viewer pools.

A frame crosses the wide-area link once per relay set and is then
served locally to every viewer behind it — seeks, replays and loops
never touch the origin again.  See :mod:`repro.relay.daemon` for the
relay itself, :mod:`repro.relay.ring` for frame-range ownership,
:mod:`repro.relay.prefetch` for the timeline lookahead, and
:mod:`repro.relay.topology` for end-to-end scenario harnesses.
"""

from repro.relay.daemon import FrameRelay, RelaySession
from repro.relay.prefetch import PrefetchPolicy, TimelinePrefetcher
from repro.relay.ring import RelayRing
from repro.relay.stats import RelayStats
from repro.relay.topology import run_relay_topology

__all__ = [
    "FrameRelay",
    "RelaySession",
    "PrefetchPolicy",
    "TimelinePrefetcher",
    "RelayRing",
    "RelayStats",
    "run_relay_topology",
]
