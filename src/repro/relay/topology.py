"""End-to-end relay topologies: origin → relay mesh → viewer pools.

``run_relay_topology`` stands up one complete WAN scenario:

- an origin :class:`~repro.serve.broker.SessionBroker` publishes an
  animated timeline once;
- ``n_relays`` edge relays hold aggregated upstream sessions to it
  (each optionally over a fault-shaped WAN link), share a consistent
  ownership ring, and peer with each other;
- ``n_viewers`` viewers spread round-robin across the relays play the
  timeline ``loops`` times (seek-to-0 after each pass) — the
  **replay-heavy** workload the relay tier exists for: after the first
  pass every loop is served from relay stores, so origin traffic is
  ~``n_frames`` per relay while viewer traffic is
  ``n_viewers × loops × n_frames``;
- with ``kill_relay_after`` set, one relay is killed abruptly
  mid-playback and its viewers must fail over to a surviving peer,
  resuming at exactly the next frame id they need (``resume_from``) —
  the report counts any duplicate or skipped id each viewer observed.

``n_relays=0`` degenerates to the direct-origin baseline (same looping
workload, viewers on the broker) used by ``benchmarks/bench_relay.py``
for the delivered-ratio parity comparison.
"""

from __future__ import annotations

import threading
import time

from repro.net.faults import FaultPlan
from repro.relay.daemon import RELAY_RETRY, FrameRelay
from repro.relay.prefetch import PrefetchPolicy
from repro.relay.ring import RelayRing
from repro.serve.broker import SessionBroker
from repro.serve.fanout import synthetic_frames
from repro.serve.session import FrameDecodeError
from repro.serve.tiers import TierLadder

__all__ = ["run_relay_topology"]


class _PoolViewer:
    """A looping viewer that survives the death of its relay by
    failing over to the next target in its pool.

    Tracks the exact frame-id sequence against the expected timeline
    (``0..n_frames-1``, ``loops`` times), so a failover that re-delivers
    or skips even one id shows up in ``duplicates``/``skips``.
    """

    def __init__(self, targets, start_index: int, name: str,
                 n_frames: int, loops: int,
                 plan: FaultPlan | None = None):
        self.targets = targets  # relays, or [broker] for the baseline
        self.at = start_index % len(targets)
        self.name = name
        self.n_frames = n_frames
        self.loops = loops
        self.plan = plan
        self.expected = 0
        self.consumed = 0
        self.duplicates = 0
        self.skips = 0
        self.loops_done = 0
        self.failovers = 0
        self.decode_errors = 0
        self._stop = threading.Event()
        self.handle = self.targets[self.at].join(
            name,
            fault_plan=plan,
            retry=RELAY_RETRY,
            credit_limit=n_frames + 8,
        )
        try:
            self.thread = threading.Thread(
                target=self._run, daemon=True, name=f"{name}-pool-viewer"
            )
            self.thread.start()
        except BaseException:
            # no consumer thread ever ran: give the session back instead
            # of stranding it on the relay
            self.handle.leave()
            raise

    @property
    def done(self) -> bool:
        return self.loops_done >= self.loops

    def _failover(self) -> bool:
        """Rejoin somewhere, resuming at exactly the next needed id."""
        # the session died with the link, but the viewer-side channel fd
        # lives until closed; leave() would tear down parked resume state
        # on a relay that is merely wedged, so close just the transport
        self.handle.conn.close()
        previous = self.at
        deadline = time.monotonic() + 5.0
        while not self._stop.is_set() and time.monotonic() < deadline:
            target = self.targets[self.at]
            try:
                self.handle = target.join(
                    self.name,
                    fault_plan=self.plan.reconnected() if self.plan else None,
                    retry=RELAY_RETRY,
                    resume_from=self.expected,
                    credit_limit=self.n_frames + 8,
                )
            except RuntimeError:
                # this target is dead/closed: rotate to the next one
                self.at = (self.at + 1) % len(self.targets)
                if self.at == previous and len(self.targets) > 1:
                    self._stop.wait(0.01)
                continue
            except ValueError:
                # same name not reaped yet on this target; wait it out
                self._stop.wait(0.005)
                continue
            if self.at != previous:
                self.failovers += 1
            return True
        return False

    def _on_frame(self, frame_id: int) -> None:
        if frame_id == self.expected:
            self.expected += 1
            self.consumed += 1
        elif frame_id < self.expected:
            # a stale in-flight delivery (pre-seek or pre-failover)
            self.duplicates += 1
            return
        else:
            self.skips += frame_id - self.expected
            self.expected = frame_id + 1
            self.consumed += 1
        if self.expected >= self.n_frames:
            self.loops_done += 1
            if self.loops_done < self.loops:
                self.expected = 0
                try:
                    self.handle.seek(0)
                except ConnectionError:
                    pass  # the reader loop will fail over and resume

    def _run(self) -> None:
        while not self._stop.is_set() and not self.done:
            try:
                frame = self.handle.next_frame(timeout=0.25)
            except TimeoutError:
                continue
            except ConnectionError:
                if not self._failover():
                    return
                continue
            except FrameDecodeError:
                self.decode_errors += 1
                continue
            self._on_frame(frame.frame_id)

    def stop(self) -> None:
        self._stop.set()
        self.thread.join(timeout=5.0)
        self.handle.leave()


def _teardown(viewers, relays, killed, broker) -> None:
    """Close every tier even when one close raises; the first failure
    propagates only after the rest have been released."""
    failures: list[BaseException] = []
    for v in viewers:
        try:
            v.stop()
        except BaseException as exc:
            failures.append(exc)
    for r in relays:
        if r.name == killed:
            continue  # kill() already tore it down mid-scenario
        try:
            r.close()
        except BaseException as exc:
            failures.append(exc)
    if broker is not None:
        try:
            broker.close()
        except BaseException as exc:
            failures.append(exc)
    if failures:
        raise failures[0]


def run_relay_topology(
    *,
    n_relays: int = 2,
    n_viewers: int = 4,
    n_frames: int = 48,
    loops: int = 2,
    size: int = 32,
    pace_s: float = 0.005,
    ladder: TierLadder | None = None,
    viewer_plan: FaultPlan | None = None,
    upstream_plan: FaultPlan | None = None,
    kill_relay_after: int | None = None,
    store_bytes: int = 32 << 20,
    prefetch: PrefetchPolicy | None = None,
    chunk_frames: int = 16,
    timeout_s: float = 60.0,
) -> dict:
    """One relay-tier scenario end to end; returns its report.

    ``kill_relay_after`` kills the first relay (abruptly, no goodbyes)
    once any viewer has consumed that many frames; its viewers must
    fail over.  ``viewer_plan`` shapes every *downstream* link (the
    direct-baseline equivalent of faultrun's viewer links);
    ``upstream_plan`` shapes relay→origin links.
    """
    if n_relays < 0:
        raise ValueError("n_relays must be >= 0")
    if kill_relay_after is not None and n_relays < 2:
        raise ValueError("kill_relay_after needs at least 2 relays")
    frames = synthetic_frames(n_frames, size=size)
    # every tier is built inside the try so a constructor failure in a
    # later tier still tears down the earlier ones
    broker = None
    relays: list[FrameRelay] = []
    viewers: list[_PoolViewer] = []
    killed: str | None = None
    poll = threading.Event()  # nobody sets it; a sleep the linter can see
    try:
        broker = SessionBroker(
            ladder=ladder,
            credit_limit=8,
            history_frames=n_frames,
        )
        ring = RelayRing(chunk_frames=chunk_frames) if n_relays > 1 else None
        for i in range(n_relays):
            name = f"relay{i}"
            if ring is not None:
                ring.add(name)
            relays.append(
                FrameRelay(
                    name,
                    broker,
                    ring=ring,
                    store_bytes=store_bytes,
                    prefetch=prefetch,
                    upstream_credits=max(32, n_frames + 8),
                    fault_plan=upstream_plan,
                )
            )
        for a in relays:
            for b in relays:
                if a is not b:
                    a.connect_peer(b)
        targets = relays if relays else [broker]
        for i in range(n_viewers):
            viewers.append(
                _PoolViewer(
                    targets,
                    i,
                    f"pool{i:02d}",
                    n_frames,
                    loops,
                    plan=viewer_plan,
                )
            )

        t0 = time.perf_counter()
        for fid, image in enumerate(frames):
            broker.publish(image, time_step=fid, frame_id=fid)
            if pace_s:
                time.sleep(pace_s)
        deadline = t0 + timeout_s
        while (
            not all(v.done for v in viewers) and time.perf_counter() < deadline
        ):
            if (
                kill_relay_after is not None
                and killed is None
                and any(v.consumed >= kill_relay_after for v in viewers)
            ):
                killed = relays[0].name
                relays[0].kill()
            poll.wait(0.01)
        elapsed = time.perf_counter() - t0
        relay_snaps = [
            r.stats_snapshot() for r in relays if r.name != killed
        ] + [r.stats_snapshot() for r in relays if r.name == killed]
    finally:
        _teardown(viewers, relays, killed, broker)

    target_frames = loops * n_frames
    viewer_report = {}
    ratios = []
    for v in viewers:
        ratio = v.consumed / target_frames if target_frames else 0.0
        ratios.append(ratio)
        viewer_report[v.name] = {
            "delivered_ratio": round(ratio, 4),
            "consumed": v.consumed,
            "loops_done": v.loops_done,
            "duplicates": v.duplicates,
            "skips": v.skips,
            "failovers": v.failovers,
            "decode_errors": v.decode_errors,
        }
    viewer_frames = sum(v.consumed for v in viewers)
    if relays:
        origin_frames = sum(s.origin_frames for s in relay_snaps)
        relay_report = {
            s.name: {
                "frames_served": s.frames_served,
                "origin_frames": s.origin_frames,
                "peer_frames": s.peer_frames,
                "offload_ratio": round(s.offload_ratio, 4),
                "store_hits": s.store_hits,
                "store_waits": s.store_waits,
                "frames_unavailable": s.frames_unavailable,
                "prefetch_issued": s.prefetch_issued,
                "prefetch_fills": s.prefetch_fills,
                "resumes": s.resumes,
                "upstream_reconnects": s.upstream_reconnects,
                "peer_failovers": s.peer_failovers,
            }
            for s in relay_snaps
        }
    else:  # direct baseline: every viewer frame crossed the WAN
        origin_frames = viewer_frames
        relay_report = {}
    offload = (
        max(0.0, 1.0 - origin_frames / viewer_frames) if viewer_frames else 0.0
    )
    return {
        "topology": {
            "n_relays": n_relays,
            "n_viewers": n_viewers,
            "n_frames": n_frames,
            "loops": loops,
            "chunk_frames": chunk_frames,
            "killed": killed,
        },
        "elapsed_s": round(elapsed, 3),
        "completed": all(v.done for v in viewers),
        "delivered_ratio": round(min(ratios), 4) if ratios else 0.0,
        "mean_delivered_ratio": round(sum(ratios) / len(ratios), 4)
        if ratios
        else 0.0,
        "duplicates": sum(v.duplicates for v in viewers),
        "skips": sum(v.skips for v in viewers),
        "failovers": sum(v.failovers for v in viewers),
        "origin_frames": origin_frames,
        "viewer_frames": viewer_frames,
        "offload_ratio": round(offload, 4),
        "relays": relay_report,
        "viewers": viewer_report,
        "summaries": [s.summary() for s in relay_snaps] if relays else [],
    }
