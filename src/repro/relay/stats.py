"""The relay tier's observable surface.

One :class:`RelayStats` is an atomic snapshot of one relay: how much
traffic it served locally, how much it pulled over the WAN (and from
where), and how well the timeline prefetcher kept the store ahead of
the viewers.  Modeled on
:meth:`~repro.serve.cache.CacheStats <repro.serve.cache.FrameCache.stats_snapshot>`:
every counter is copied in a single critical section, so ratios
computed from one snapshot are mutually consistent even while ingest
and player threads keep mutating the live counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serve.cache import CacheStats
from repro.serve.stats import SessionStats

__all__ = ["RelayStats"]


@dataclass(frozen=True)
class RelayStats:
    """An atomic snapshot of one relay's counters."""

    name: str
    #: frames delivered to local downstream sessions (viewers + peers)
    frames_served: int = 0
    #: of those, served straight from the local store (no wait)
    store_hits: int = 0
    #: served only after waiting for an upstream/peer fill
    store_waits: int = 0
    #: deliveries abandoned after the fetch deadline (counted, never
    #: silently skipped)
    frames_unavailable: int = 0
    #: frames that arrived over this relay's upstream links, by source
    origin_frames: int = 0
    peer_frames: int = 0
    #: on-demand seeks sent upstream or to peers for a blocked delivery
    fetch_requests: int = 0
    #: speculative seeks issued by the timeline prefetcher
    prefetch_issued: int = 0
    #: ingested frames the prefetcher had requested ahead of any player
    prefetch_fills: int = 0
    #: live downstream sessions at snapshot time
    sessions: int = 0
    #: downstream sessions that rejoined (same relay) or resumed from a
    #: peer's cursor (``resume_from``)
    resumes: int = 0
    #: gap announcements absorbed from upstream (resume past the
    #: broker's retained window); players skip the ranges they cover
    upstream_gaps: int = 0
    #: times the upstream link died and was re-established with resume
    upstream_reconnects: int = 0
    #: fetches re-routed to the origin because the owning peer was dead
    peer_failovers: int = 0
    #: undecodable / non-protocol traffic dropped from relay links
    malformed: int = 0
    #: well-formed controls the relay has no handler for
    unknown_controls: int = 0
    #: the content-addressed store's own atomic snapshot
    store: CacheStats | None = None
    #: per-downstream-session delivery counters
    session_stats: dict[str, SessionStats] = field(default_factory=dict)

    @property
    def upstream_frames(self) -> int:
        return self.origin_frames + self.peer_frames

    @property
    def offload_ratio(self) -> float:
        """Fraction of served frames that did *not* cost an origin
        transfer: ``1 - origin_frames / frames_served``.  The relay
        tier's headline number — 0.9 means ten viewer-frames per WAN
        frame."""
        if not self.frames_served:
            return 0.0
        return max(0.0, 1.0 - self.origin_frames / self.frames_served)

    @property
    def store_hit_ratio(self) -> float:
        total = self.store_hits + self.store_waits + self.frames_unavailable
        return self.store_hits / total if total else 0.0

    def summary(self) -> str:
        """A one-relay operator report (the CLI prints this)."""
        store = self.store
        lines = [
            f"relay {self.name}: served {self.frames_served} frames "
            f"({self.store_hit_ratio * 100:.1f}% straight from store, "
            f"offload {self.offload_ratio * 100:.1f}%)",
            f"  upstream: {self.origin_frames} origin + {self.peer_frames} "
            f"peer frames in; {self.fetch_requests} demand fetches, "
            f"{self.prefetch_issued} prefetch seeks "
            f"({self.prefetch_fills} filled ahead of need)",
            f"  sessions: {self.sessions} live, {self.resumes} resumes, "
            f"{self.upstream_reconnects} upstream reconnects, "
            f"{self.peer_failovers} peer failovers",
        ]
        if store is not None:
            lines.append(
                f"  store: {store.entries} entries "
                f"{store.current_bytes}/{store.max_bytes} B, "
                f"{store.pinned_entries} pinned, "
                f"{store.evictions} evictions, "
                f"{store.speculative_rejects} speculative rejects"
            )
        return "\n".join(lines)
