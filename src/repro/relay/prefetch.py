"""Timeline prefetch: keep the store ahead of every playback cursor.

Time-varying visualization traffic is overwhelmingly *sequential in
frame id* — viewers play the timeline forward, loop it, or seek and
play forward again.  The prefetcher exploits exactly that structure:
each tick it takes every live session's cursor (seeks move cursors, so
seek patterns feed the window for free), unions a ``lookahead``-sized
window in front of each, and

1. **pins** every windowed frame already resident in the store, so the
   cache cannot evict a frame moments before a player needs it (the
   pins are released as the window slides past);
2. **requests** the windowed frames that are missing, as speculative
   fetches routed through the relay's normal ownership logic.

Speculative fills use ``FrameCache.put(..., speculative=True)``: a
prefetched frame may never displace pinned demand data, so a mis-sized
window degrades to wasted WAN bytes, never to cache thrash.

The prefetcher is one thread with exclusive private state (its pin
ledger); everything shared lives behind the relay's and store's own
locks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["PrefetchPolicy", "TimelinePrefetcher"]


@dataclass(frozen=True)
class PrefetchPolicy:
    """Tunables for the lookahead window."""

    #: frames staged ahead of each playback cursor
    lookahead: int = 16
    #: seconds between window recomputations
    interval_s: float = 0.02
    #: cap on distinct missing frames requested per tick (bounds the
    #: burst a pathological seek storm can put on the WAN)
    max_outstanding: int = 128

    def __post_init__(self):
        if self.lookahead < 0:
            raise ValueError("lookahead must be >= 0")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")


class TimelinePrefetcher:
    """The relay's background window-maintenance thread.

    All mutable state (``_pinned``) is touched only by the prefetch
    thread itself; ``stop()`` communicates through an Event.
    """

    def __init__(self, relay, policy: PrefetchPolicy):
        self.relay = relay
        self.policy = policy
        #: store keys this thread currently holds a pin on, by frame id
        #: (prefetch-thread private — no lock)
        self._pinned: dict[tuple, int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=f"{self.relay.name}-prefetch"
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.is_set():
            self._tick()
            self._stop.wait(self.policy.interval_s)
        self._release_all()

    def _window(self) -> list[int]:
        """Union of per-cursor lookahead ranges, clamped to the stream."""
        max_seen = self.relay.max_seen()
        if max_seen < 0 or self.policy.lookahead == 0:
            return []
        window: set[int] = set()
        for cursor in self.relay.prefetch_hints():
            lo = max(cursor, 0)
            hi = min(lo + self.policy.lookahead, max_seen + 1)
            window.update(range(lo, hi))
        return sorted(window)

    def _tick(self) -> None:
        relay = self.relay
        window = self._window()
        # re-pin the window: resident frames get (or keep) a pin; keys
        # that slid out of the window release theirs
        fresh: dict[tuple, int] = {}
        missing: list[int] = []
        for fid in window:
            key = relay.key_for(fid)
            if key is None:
                missing.append(fid)
                continue
            if key in self._pinned:
                fresh[key] = fid
            elif relay.store.pin(key):
                fresh[key] = fid
            else:  # meta known but payload evicted: refetch
                missing.append(fid)
        for key in self._pinned:
            if key not in fresh:
                relay.store.unpin(key)
        self._pinned = fresh
        if missing:
            relay.request_prefetch(missing[: self.policy.max_outstanding])

    def _release_all(self) -> None:
        store = self.relay.store
        for key in self._pinned:
            store.unpin(key)
        self._pinned = {}
