"""The edge relay daemon: one WAN crossing serves a whole viewer pool.

Bethel & Tierney's WAN-visualization architecture puts a *network data
cache* between the data source and its consumers; :class:`FrameRelay`
is that tier for encoded frames.  A relay

- holds one **upstream session** to the origin
  :class:`~repro.serve.broker.SessionBroker` (or to a peer relay) over
  the existing framed/credit protocol, acking every frame as soon as it
  lands in the store — the broker sees a single deep-credit aggregated
  downstream instead of N viewers;
- never decodes: forwarded payloads are stored by their content
  address ``(frame_id, codec, quality)`` (the wire message carries all
  three) in a shared pin-aware
  :class:`~repro.serve.cache.FrameCache`;
- serves local viewers by **timeline playback**: each downstream
  session has a cursor, frames are delivered in id order from the
  store, and a ``seek`` replays any stored range without touching the
  origin — N viewers looping a timeline cost the WAN one pass;
- **prefetches** along the timeline
  (:class:`~repro.relay.prefetch.TimelinePrefetcher` watches viewer
  cursors and keeps a pinned lookahead window resident);
- partitions frame-range **ownership** across a relay set via the
  consistent-hash :class:`~repro.relay.ring.RelayRing`: a missing
  frame is pulled from its owning peer (a ``mode="pull"`` session on
  that relay) and only falls back to the origin when the owner is
  dead, which is also when the dead peer is dropped from the ring;
- survives WAN cuts with the PR 3 machinery: the upstream link
  reconnects-with-resume under its own session name, and a viewer
  whose relay dies rejoins a *peer* relay with ``resume_from`` set to
  the next frame it needs, continuing the stream with no duplicated
  and no skipped ids.

Every link (upstream, peer, downstream) accepts a
:class:`~repro.net.faults.FaultPlan`, so the whole topology runs under
the deterministic WAN fault grid.
"""

from __future__ import annotations

import threading
import time
from typing import NamedTuple

from repro.compress.context import CodecContext
from repro.daemon.protocol import (
    ControlMessage,
    FrameMessage,
    ProtocolError,
    decode_message,
)
from repro.net.faults import FaultPlan, FaultyConnection
from repro.net.transport import ChannelClosed, FramedConnection, RetryPolicy
from repro.relay.prefetch import PrefetchPolicy, TimelinePrefetcher
from repro.relay.ring import RelayRing
from repro.relay.stats import RelayStats
from repro.serve.cache import FrameCache
from repro.serve.session import ViewerHandle
from repro.serve.stats import SessionStats

__all__ = ["FrameRelay", "RelaySession"]

#: retry policy for relay-to-origin / relay-to-peer links: these are the
#: WAN hops, so retransmission is aggressive (matches faultrun's)
RELAY_RETRY = RetryPolicy(max_attempts=6, backoff_s=0.002, max_backoff_s=0.05)

#: how long the upstream links must be quiet before a session waiting
#: *ahead* of the stream head triggers a demand fetch.  While frames
#: are flowing, the head is simply not published yet and a seek would
#: race the live delivery (duplicating WAN transfers); once the links
#: go quiet, an ahead cursor means catch-up is needed (a cold relay, a
#: seek past a gap) and the fetch fires.
AHEAD_FETCH_QUIET_S = 0.4


class _FrameMeta(NamedTuple):
    """What the relay remembers about a frame besides its payload —
    enough to rebuild the :class:`FrameMessage` envelope from the store."""

    codec: str
    quality: int | None
    time_step: int
    shape: tuple[int, int] | None

    def key(self, frame_id: int) -> tuple:
        return (frame_id, self.codec, self.quality)


class _PeerLink(NamedTuple):
    name: str
    handle: ViewerHandle


class RelaySession:
    """Relay-side record of one downstream consumer.

    Two modes:

    - ``follow`` (viewers): the player delivers from ``cursor`` up to
      the newest frame the relay has seen, then waits for more;
    - ``pull`` (peer relays): the player is paused until a ``seek``,
      then delivers from the seek point up to the stream position at
      seek time and pauses again — a request/response fetch surface on
      the same wire protocol.

    Unlike the origin's :class:`~repro.serve.session.ViewerSession`,
    running out of credits never *drops* a frame: the player simply
    waits for acks.  The relay-to-viewer hop is the cheap local one;
    backpressure, not quality adaptation, is the right response there.
    """

    def __init__(self, name: str, conn, credit_limit: int = 8, *,
                 pull: bool = False, start: int = 0):
        if credit_limit < 1:
            raise ValueError("credit_limit must be >= 1")
        self.name = name
        self.conn = conn
        self.credit_limit = credit_limit
        self.pull = pull
        self._lock = threading.Lock()
        self.active = True  # guarded-by: _lock
        #: next frame id to deliver
        self.cursor = start  # guarded-by: _lock
        #: pull mode: deliver up to (and including) this id, then pause
        self.pull_until = start - 1 if pull else None  # guarded-by: _lock
        self.in_flight = 0  # guarded-by: _lock
        self.last_acked = start - 1  # guarded-by: _lock
        self._stats = SessionStats(name=name, tier="relay")  # guarded-by: _lock

    # -- player side ---------------------------------------------------------

    def next_deliverable(self, max_seen: int) -> tuple[str, int]:
        """``(state, frame_id)``: ``"send"`` when a frame should go out
        now, else why not (``"paused"``/``"ahead"``/``"credits"``/
        ``"closed"``)."""
        with self._lock:
            if not self.active:
                return ("closed", -1)
            fid = self.cursor
            limit = self.pull_until if self.pull_until is not None else max_seen
            if fid > limit:
                return ("paused" if self.pull_until is not None else "ahead",
                        fid)
            if self.in_flight >= self.credit_limit:
                return ("credits", fid)
            return ("send", fid)

    def send_frame(self, msg: FrameMessage) -> str:
        """Deliver one frame (``"sent"``/``"closed"``) and advance."""
        with self._lock:
            if not self.active:
                return "closed"
            try:
                self.conn.send(msg.encode())
            except ChannelClosed:
                self.active = False
                self._stats.active = False
                return "closed"
            self.in_flight += 1
            self._stats.frames_sent += 1
            self._stats.bytes_sent += len(msg.payload)
            self.cursor = msg.frame_id + 1
            return "sent"

    def skip_frame(self, frame_id: int) -> None:
        """Advance past a frame that could not be obtained in time (the
        relay counts it; the cursor must not stall forever)."""
        with self._lock:
            if self.cursor == frame_id:
                self.cursor = frame_id + 1
            self._stats.frames_skipped += 1

    def skip_gap(self, from_frame: int, to_frame: int) -> str:  # speaks: relay@downstream
        """Announce ``[from_frame, to_frame)`` as unrecoverable and jump
        the cursor past the range, mirroring the broker's resume-gap
        announcement so consumers account for the loss up front instead
        of timing out on every missing frame."""
        with self._lock:
            if not self.active:
                return "closed"
            try:
                self.conn.send(ControlMessage(
                    tag="gap",
                    params={"from": from_frame, "to": to_frame},
                ).encode())
            except ChannelClosed:
                self.active = False
                self._stats.active = False
                return "closed"
            if self.cursor < to_frame:
                skipped = to_frame - max(self.cursor, from_frame)
                self._stats.frames_skipped += skipped
                self.cursor = to_frame
            return "sent"

    # -- pump side -----------------------------------------------------------

    def on_ack(self, frame_id: int) -> None:
        with self._lock:
            self.in_flight = max(0, self.in_flight - 1)
            self.last_acked = max(self.last_acked, frame_id)
            self._stats.acks += 1

    def on_seek(self, frame_id: int, max_seen: int) -> None:
        """Move the cursor; a pull session arms one delivery burst up
        to the stream position at seek time."""
        with self._lock:
            self.cursor = frame_id
            if self.pull_until is not None:
                self.pull_until = max_seen

    def deactivate(self) -> None:
        with self._lock:
            self.active = False
            self._stats.active = False

    # -- locked accessors (the relay reads these cross-thread) ---------------

    def is_active(self) -> bool:
        with self._lock:
            return self.active

    def cursor_pos(self) -> int:
        with self._lock:
            return self.cursor

    def prefetch_hint(self) -> int | None:
        """The cursor, when this session has (or may soon have) pending
        deliveries worth staging; ``None`` for an idle pull session."""
        with self._lock:
            if not self.active:
                return None
            if self.pull_until is not None and self.cursor > self.pull_until:
                return None
            return self.cursor

    def idle_at(self, max_seen: int) -> bool:
        """Delivered everything it currently wants, nothing in flight."""
        with self._lock:
            if not self.active:
                return True
            limit = self.pull_until if self.pull_until is not None else max_seen
            return self.cursor > limit and self.in_flight == 0

    def resume_state(self) -> tuple[SessionStats, int]:
        with self._lock:
            return self._stats, self.last_acked

    def restore(self, stats: SessionStats) -> None:
        """Adopt a parked session's cumulative stats on rejoin."""
        with self._lock:
            stats.active = True
            stats.reconnects += 1
            self._stats = stats

    def stats_snapshot(self) -> SessionStats:
        with self._lock:
            return self._stats.copy(active=self.active)


class FrameRelay:  # speaks: relay
    """One edge relay: upstream session in, local viewer pool out.

    Parameters
    ----------
    name:
        This relay's identity — also its key in the ownership ring.
    upstream:
        Whatever it fetches from: a :class:`SessionBroker` or another
        :class:`FrameRelay` (anything with the same ``join`` surface).
    ring:
        Shared :class:`RelayRing`; ``None`` means "own everything, all
        fetches go upstream".
    store:
        A shared pin-aware :class:`FrameCache`; by default each relay
        owns a private one of ``store_bytes``.
    fault_plan / retry:
        WAN shape of the *upstream* link.  (Downstream links get their
        plans per-:meth:`join`.)
    """

    def __init__(
        self,
        name: str,
        upstream,
        *,
        ring: RelayRing | None = None,
        store: FrameCache | None = None,
        store_bytes: int = 32 << 20,
        prefetch: PrefetchPolicy | None = None,
        credit_limit: int = 8,
        upstream_credits: int = 32,
        fetch_timeout: float = 5.0,
        reconnect_timeout: float = 5.0,
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.name = name
        self.upstream = upstream
        self.ring = ring
        self.store = store or FrameCache(store_bytes)
        self.credit_limit = credit_limit
        self.upstream_credits = upstream_credits
        self.fetch_timeout = fetch_timeout
        self.reconnect_timeout = reconnect_timeout
        self.fault_plan = fault_plan
        self.retry = retry or RELAY_RETRY

        self._lock = threading.Lock()
        #: wakes players, drain() and the prefetcher on ingest/ack/seek
        self._wake = threading.Condition()
        #: interruptible sleep for reconnect/backoff loops
        self._closing = threading.Event()
        self._sessions: dict[str, RelaySession] = {}  # guarded-by: _lock
        self._departed: list[SessionStats] = []  # guarded-by: _lock
        self._resume: dict[str, tuple[SessionStats, int]] = {}  # guarded-by: _lock
        #: frame envelope metadata by id (small; survives store eviction)
        self._frames: dict[int, _FrameMeta] = {}  # guarded-by: _lock
        self._max_seen = -1  # guarded-by: _lock
        #: monotonic time of the last upstream/peer frame arrival
        self._last_ingest = time.monotonic()  # guarded-by: _lock
        self._peers: dict[str, _PeerLink] = {}  # guarded-by: _lock
        self._dead_peers: set[str] = set()  # guarded-by: _lock
        #: per-target (source-name -> (fid, t)) seek rate limiter
        self._last_seek: dict[str, tuple[int, float]] = {}  # guarded-by: _lock
        #: frame ids the prefetcher has asked for and not yet seen
        self._prefetch_wanted: set[int] = set()  # guarded-by: _lock
        #: frame ids players are blocked on right now (id -> waiters)
        self._want: dict[int, int] = {}  # guarded-by: _lock
        #: ingest→player handoff for wanted frames: a demanded frame is
        #: parked here at arrival so a replay burst racing the store's
        #: eviction can never outrun the blocked player
        self._ready: dict[int, tuple[_FrameMeta, bytes]] = {}  # guarded-by: _lock
        self._threads: list[threading.Thread] = []  # guarded-by: _lock
        self._session_counter = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        #: whether the upstream tier told us which quality we watch
        self.upstream_tier: str | None = None  # guarded-by: _lock
        #: half-open [from, to) ranges upstream declared unrecoverable
        #: (resume past the retained history window); players skip them
        self._gaps: list[tuple[int, int]] = []  # guarded-by: _lock

        # counters (see RelayStats for meanings)
        self.frames_served = 0  # guarded-by: _lock
        self.store_hits = 0  # guarded-by: _lock
        self.store_waits = 0  # guarded-by: _lock
        self.frames_unavailable = 0  # guarded-by: _lock
        self.origin_frames = 0  # guarded-by: _lock
        self.peer_frames = 0  # guarded-by: _lock
        self.fetch_requests = 0  # guarded-by: _lock
        self.prefetch_issued = 0  # guarded-by: _lock
        self.prefetch_fills = 0  # guarded-by: _lock
        self.resumes = 0  # guarded-by: _lock
        self.upstream_gaps = 0  # guarded-by: _lock
        self.upstream_reconnects = 0  # guarded-by: _lock
        self.peer_failovers = 0  # guarded-by: _lock
        self.malformed = 0  # guarded-by: _lock
        self.unknown_controls = 0  # guarded-by: _lock

        self._upstream_name = f"relay:{name}"
        self._prefetcher: TimelinePrefetcher | None = None
        self._upstream_handle = upstream.join(
            self._upstream_name,
            fault_plan=fault_plan,
            retry=self.retry,
            credit_limit=upstream_credits,
        )  # guarded-by: _lock
        try:
            self._spawn(self._ingest_origin, name=f"{name}-origin-ingest")
            self._prefetcher = TimelinePrefetcher(
                self, prefetch or PrefetchPolicy())
            self._prefetcher.start()
        except BaseException:
            # a half-built relay must not strand its upstream session
            self.kill()
            raise

    # -- membership (the broker-compatible join surface) ---------------------

    def join(
        self,
        name: str | None = None,
        *,
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        resume_from: int | None = None,
        credit_limit: int | None = None,
        mode: str = "follow",
        start: int = 0,
    ) -> ViewerHandle:
        """Admit a downstream consumer; returns its viewer-side handle.

        Mirrors :meth:`SessionBroker.join` so resilient viewers (and
        relays chaining to a peer) treat origin and relay uniformly.
        ``resume_from`` starts the playback cursor there — that is the
        whole failover contract: a viewer whose relay died joins a peer
        with ``resume_from`` = the next frame id it needs, and the
        stream continues with no duplicate and no skip.  ``mode="pull"``
        creates a paused request/response session (peer fetch surface).
        """
        if mode not in ("follow", "pull"):
            raise ValueError(f"mode must be 'follow' or 'pull', not {mode!r}")
        with self._lock:
            if self._closed:
                raise RuntimeError(f"join() on a closed relay {self.name!r}")
            if name is None:
                name = f"viewer{self._session_counter}"
            self._session_counter += 1
            existing = self._sessions.get(name)
            if existing is not None:
                if existing.is_active():
                    raise ValueError(f"session {name!r} already joined")
                self._sessions.pop(name)
                self._resume.setdefault(name, existing.resume_state())
            resume = self._resume.pop(name, None)
            relay_side, viewer_side = FramedConnection.pair(
                f"{name}@{self.name}", f"{name}-viewer"
            )
            conn = relay_side
            if fault_plan is not None:
                conn = FaultyConnection(relay_side, fault_plan, retry=retry)
            if resume_from is not None:
                start = resume_from
            elif resume is not None:
                start = resume[1] + 1  # parked last_acked
            session = RelaySession(
                name,
                conn,
                credit_limit or self.credit_limit,
                pull=(mode == "pull"),
                start=start,
            )
            resumed = resume is not None or resume_from is not None
            if resume is not None:
                session.restore(resume[0])
            if resumed:
                self.resumes += 1
            self._sessions[name] = session
        self._spawn(self._pump, session, name=f"{name}@{self.name}-pump")
        self._spawn(self._player, session, name=f"{name}@{self.name}-player")
        self._notify()
        return ViewerHandle(name, viewer_side, CodecContext(), resumed=resumed)

    def _detach(self, session: RelaySession, resumable: bool) -> None:
        with self._lock:
            current = self._sessions.get(session.name)
            if current is not session:
                return
            self._sessions.pop(session.name)
        session.deactivate()
        snapshot = session.stats_snapshot()
        with self._lock:
            self._departed.append(snapshot)
            if resumable:
                self._resume.setdefault(session.name, session.resume_state())
            else:
                self._resume.pop(session.name, None)
        session.conn.close()
        self._notify()

    def sessions(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    # -- peer mesh -----------------------------------------------------------

    def connect_peer(self, peer: "FrameRelay", *,
                     fault_plan: FaultPlan | None = None,
                     retry: RetryPolicy | None = None) -> None:
        """Open a pull link to ``peer`` (the owner-fetch path)."""
        handle = peer.join(
            f"peer:{self.name}",
            mode="pull",
            fault_plan=fault_plan,
            retry=retry or self.retry,
            credit_limit=self.upstream_credits,
        )
        link = _PeerLink(peer.name, handle)
        with self._lock:
            self._peers[peer.name] = link
            self._dead_peers.discard(peer.name)
        self._spawn(self._ingest_peer, link,
                    name=f"{self.name}-peer-{peer.name}-ingest")

    def _mark_peer_dead(self, peer_name: str) -> None:
        with self._lock:
            if peer_name in self._dead_peers:
                return
            self._dead_peers.add(peer_name)
            self._peers.pop(peer_name, None)
        if self.ring is not None:
            self.ring.remove(peer_name)
        self._notify()

    # -- ingest (upstream + peer pumps) --------------------------------------

    def _ingest_origin(self) -> None:
        with self._lock:
            handle = self._upstream_handle
        while True:
            try:
                raw = handle.conn.recv(timeout=0.25)
            except TimeoutError:
                if self._is_closed():
                    return
                continue
            except ConnectionError:
                if self._is_closed():
                    return
                handle = self._reconnect_upstream()
                if handle is None:
                    return
                continue
            self._ingest_raw(raw, source="origin", conn=handle.conn)

    def _ingest_peer(self, link: _PeerLink) -> None:
        while True:
            try:
                raw = link.handle.conn.recv(timeout=0.25)
            except TimeoutError:
                if self._is_closed() or not self._peer_alive(link.name):
                    return
                continue
            except ConnectionError:
                if not self._is_closed():
                    self._mark_peer_dead(link.name)
                return
            self._ingest_raw(raw, source=link.name, conn=link.handle.conn)

    def _ingest_raw(self, raw: bytes, source: str, conn) -> None:  # speaks: relay@ingest
        try:
            msg = decode_message(raw)
        except ProtocolError:
            with self._lock:
                self.malformed += 1
            return
        if isinstance(msg, FrameMessage):
            self._ingest_frame(msg, source)
            try:  # return the upstream credit
                conn.send(
                    ControlMessage(
                        tag="ack", params={"frame_id": msg.frame_id}
                    ).encode()
                )
            except ConnectionError:
                pass  # the reconnect path owns this failure
        elif isinstance(msg, ControlMessage):
            if msg.tag == "tier":
                with self._lock:
                    self.upstream_tier = msg.params.get("tier")
            elif msg.tag == "gap":
                self._note_gap(msg.params.get("from"), msg.params.get("to"))
            else:
                with self._lock:
                    self.unknown_controls += 1
        else:
            with self._lock:
                self.malformed += 1

    def _ingest_frame(self, msg: FrameMessage, source: str) -> None:
        meta = _FrameMeta(
            codec=msg.codec,
            quality=msg.quality,
            time_step=msg.time_step,
            shape=msg.image_shape,
        )
        fid = msg.frame_id
        payload = bytes(msg.payload)
        with self._lock:
            self._frames[fid] = meta
            self._max_seen = max(self._max_seen, fid)
            self._last_ingest = time.monotonic()
            speculative = fid in self._prefetch_wanted
            self._prefetch_wanted.discard(fid)
            if speculative:
                self.prefetch_fills += 1
            if source == "origin":
                self.origin_frames += 1
            else:
                self.peer_frames += 1
            if fid in self._want:
                self._ready[fid] = (meta, payload)
                speculative = False  # a demanded frame is never a gamble
        # outside the relay lock: the store serializes on its own
        self.store.put(meta.key(fid), payload, speculative=speculative)
        self._notify()

    def _note_gap(self, from_frame, to_frame) -> None:
        """Record an upstream "frames [from, to) are unrecoverable"
        announcement (sent by the broker when our resume point fell out
        of its retained window) so players jump the range instead of
        waiting out the fetch timeout frame by frame."""
        if (not self._valid_frame_id(from_frame)
                or not self._valid_frame_id(to_frame)
                or to_frame <= from_frame):
            with self._lock:
                self.malformed += 1
            return
        with self._lock:
            self._gaps.append((from_frame, to_frame))
            self.upstream_gaps += 1
        self._notify()

    def _gap_end(self, frame_id: int) -> int | None:
        """End of the announced gap covering ``frame_id`` (``None``
        when no gap covers it).  A frame that arrived anyway — a peer
        fetch or a replay burst — bounds the jump: it gets delivered,
        not skipped."""
        with self._lock:
            if frame_id in self._frames:
                return None
            end = None
            for lo, hi in self._gaps:
                if lo <= frame_id < hi and (end is None or hi > end):
                    end = hi
            if end is None:
                return None
            recovered = [fid for fid in self._frames
                         if frame_id < fid < end]
            return min(recovered) if recovered else end

    def _reconnect_upstream(self) -> ViewerHandle | None:
        """Re-establish the upstream session with resume (PR 3 path)."""
        plan = self.fault_plan.reconnected() if self.fault_plan else None
        with self._lock:
            stale = self._upstream_handle
        # the session died with its connection, but the viewer-side
        # socket/channel fd survives until someone closes it
        stale.conn.close()
        deadline = time.monotonic() + self.reconnect_timeout
        while not self._closing.is_set() and time.monotonic() < deadline:
            try:
                handle = self.upstream.join(
                    self._upstream_name,
                    fault_plan=plan,
                    retry=self.retry,
                    resume_from=self.max_seen() + 1,
                    credit_limit=self.upstream_credits,
                )
            except ValueError:
                # the upstream has not reaped the dead session yet
                self._closing.wait(0.005)
                continue
            except RuntimeError:  # upstream closed for good
                return None
            with self._lock:
                self._upstream_handle = handle
                self.upstream_reconnects += 1
            self._notify()
            return handle
        return None

    # -- fetch routing -------------------------------------------------------

    def _fetch_target(self, frame_id: int):
        """``(send-seek-callable-owner-name, handle)`` for ``frame_id``:
        the owning peer when one is alive, else the upstream."""
        owner = self.ring.owner(frame_id) if self.ring is not None else None
        with self._lock:
            if owner is not None and owner != self.name:
                link = self._peers.get(owner)
                if link is not None:
                    return owner, link.handle
                if owner not in self._dead_peers:
                    # owner we never linked to: fall through to upstream
                    owner = None
            return "origin", self._upstream_handle

    def _request_fetch(self, frame_id: int, *, prefetch: bool = False,
                       urgent: bool = False) -> None:
        """Ask the frame's owner (or the origin) to replay from
        ``frame_id``.  Seeks flood everything the source has from that
        id on, so requests are rate-limited per target: a pending seek
        at or below ``frame_id`` already covers it.  ``urgent`` (a
        delivery already waiting on this id) bypasses the limit."""
        target_name, handle = self._fetch_target(frame_id)
        now = time.monotonic()
        with self._lock:
            last = self._last_seek.get(target_name)
            if (
                not urgent
                and last is not None
                and last[0] <= frame_id
                and now - last[1] < 0.25
            ):
                return
            self._last_seek[target_name] = (frame_id, now)
            if prefetch:
                self.prefetch_issued += 1
            else:
                self.fetch_requests += 1
        try:
            handle.seek(frame_id)
        except ConnectionError:
            if target_name != "origin":
                # the owning peer died mid-request: re-route to origin
                self._mark_peer_dead(target_name)
                with self._lock:
                    self.peer_failovers += 1
                    self._last_seek.pop("origin", None)
                self._request_fetch(frame_id, prefetch=prefetch, urgent=urgent)
            # origin send failures are handled by the reconnect pump

    def request_prefetch(self, frame_ids) -> None:
        """Prefetcher entry point: stage ``frame_ids`` speculatively."""
        with self._lock:
            fresh = sorted(
                fid for fid in frame_ids if fid not in self._prefetch_wanted
            )
            self._prefetch_wanted.update(fresh)
            if len(self._prefetch_wanted) > 4096:  # runaway guard
                self._prefetch_wanted = set(fresh)
        by_target: dict[str, int] = {}
        for fid in fresh:
            owner = self.ring.owner(fid) if self.ring is not None else "origin"
            key = owner or "origin"
            by_target[key] = min(by_target.get(key, fid), fid)
        for fid in by_target.values():
            self._request_fetch(fid, prefetch=True)

    # -- the player (one thread per downstream session) ----------------------

    def _player(self, session: RelaySession) -> None:
        while not self._is_closed():
            state, fid = session.next_deliverable(self.max_seen())
            if state == "closed":
                self._detach(session, resumable=True)
                return
            if state != "send":
                if state == "ahead" and self._upstream_quiet():
                    # ahead of everything this relay has seen with the
                    # upstream links gone quiet: not the live head, so
                    # the owner/origin may already hold the frame (a
                    # cold relay, a seek past a gap) — fetch it; the
                    # per-target rate limit keeps this cheap
                    self._request_fetch(fid)
                self._wait_wake(0.05)
                continue
            self._serve_one(session, fid)

    def _serve_one(self, session: RelaySession, frame_id: int) -> None:  # speaks: relay@downstream
        gap_end = self._gap_end(frame_id)
        if gap_end is not None:
            # upstream declared [frame_id, gap_end) unrecoverable:
            # re-announce it downstream and jump, instead of burning
            # fetch_timeout once per missing frame
            if session.skip_gap(frame_id, gap_end) == "closed":
                self._detach(session, resumable=True)
            return
        meta, payload, waited, pinned = self._obtain(frame_id, session)
        if meta is None:
            if session.is_active() and not self._is_closed():
                with self._lock:
                    self.frames_unavailable += 1
                session.skip_frame(frame_id)
            return
        try:
            outcome = session.send_frame(
                FrameMessage(
                    frame_id=frame_id,
                    time_step=meta.time_step,
                    codec=meta.codec,
                    payload=payload,
                    image_shape=meta.shape,
                    quality=meta.quality,
                )
            )
        finally:
            if pinned:
                self.store.unpin(meta.key(frame_id))
        if outcome == "sent":
            with self._lock:
                self.frames_served += 1
                if waited:
                    self.store_waits += 1
                else:
                    self.store_hits += 1
        elif outcome == "closed":
            self._detach(session, resumable=True)

    def _obtain(self, frame_id: int, session: RelaySession):
        """``(meta, payload, waited, pinned)`` for ``frame_id``.

        Fast path: a pinned store read.  Miss path: register demand
        (so ingest hands the frame over directly even if a fetch burst
        churns it out of the store immediately), fetch from the frame's
        owner/origin, and wait up to ``fetch_timeout``.  After the
        first fruitless wait the fetch bypasses the per-target rate
        limit — a blocked delivery outranks seek dedup.
        """
        with self._lock:
            meta = self._frames.get(frame_id)
        if meta is not None:
            payload = self.store.get_pinned(meta.key(frame_id))
            if payload is not None:
                return meta, payload, False, True
        deadline = time.monotonic() + self.fetch_timeout
        waited = False
        with self._lock:
            self._want[frame_id] = self._want.get(frame_id, 0) + 1
        try:
            while True:
                with self._lock:
                    handoff = self._ready.get(frame_id)
                    meta = self._frames.get(frame_id)
                if handoff is not None:
                    return handoff[0], handoff[1], waited, False
                if meta is not None:
                    payload = self.store.get_pinned(meta.key(frame_id))
                    if payload is not None:
                        return meta, payload, waited, True
                if not session.is_active() or self._is_closed():
                    return None, None, waited, False
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None, None, waited, False
                self._request_fetch(frame_id, urgent=waited)
                waited = True
                self._wait_wake(min(0.05, remaining))
        finally:
            with self._lock:
                count = self._want.get(frame_id, 0) - 1
                if count <= 0:
                    self._want.pop(frame_id, None)
                    self._ready.pop(frame_id, None)
                else:
                    self._want[frame_id] = count

    # -- session control pump ------------------------------------------------

    @staticmethod
    def _valid_frame_id(value) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and value >= 0

    def _pump(self, session: RelaySession) -> None:  # speaks: relay@downstream
        """Downstream → relay: acks return credits; seek/leave honored."""
        while True:
            try:
                raw = session.conn.recv(timeout=0.25)
            except TimeoutError:
                if self._is_closed() or not session.is_active():
                    return
                continue
            except ConnectionError:
                self._detach(session, resumable=True)
                return
            try:
                msg = decode_message(raw)
            except ProtocolError:
                with self._lock:
                    self.malformed += 1
                continue
            if not isinstance(msg, ControlMessage):
                with self._lock:
                    self.malformed += 1
                continue
            if msg.tag == "ack":
                frame_id = msg.params.get("frame_id")
                if not self._valid_frame_id(frame_id):
                    with self._lock:
                        self.malformed += 1
                    continue
                session.on_ack(frame_id)
                self._notify()
            elif msg.tag == "seek":
                frame_id = msg.params.get("frame_id", 0)
                if not self._valid_frame_id(frame_id):
                    with self._lock:
                        self.malformed += 1
                    continue
                session.on_seek(frame_id, self.max_seen())
                self._notify()
            elif msg.tag == "leave":
                self._detach(session, resumable=False)
                return
            else:
                with self._lock:
                    self.unknown_controls += 1

    # -- shared accessors ----------------------------------------------------

    def max_seen(self) -> int:
        """Highest frame id that has crossed any upstream link."""
        with self._lock:
            return self._max_seen

    def key_for(self, frame_id: int) -> tuple | None:
        """The store key of ``frame_id``, once its envelope is known."""
        with self._lock:
            meta = self._frames.get(frame_id)
        return None if meta is None else meta.key(frame_id)

    def frame_available(self, frame_id: int) -> bool:
        key = self.key_for(frame_id)
        return key is not None and key in self.store

    def prefetch_hints(self) -> list[int]:
        """Live session cursors worth staging ahead of."""
        with self._lock:
            sessions = list(self._sessions.values())
        hints = [s.prefetch_hint() for s in sessions]
        return [h for h in hints if h is not None]

    def _upstream_quiet(self) -> bool:
        with self._lock:
            return time.monotonic() - self._last_ingest > AHEAD_FETCH_QUIET_S

    def _peer_alive(self, name: str) -> bool:
        with self._lock:
            return name in self._peers

    def _is_closed(self) -> bool:
        with self._lock:
            return self._closed

    def _notify(self) -> None:
        with self._wake:
            self._wake.notify_all()

    def _wait_wake(self, timeout: float) -> None:
        with self._wake:
            self._wake.wait(timeout)

    def _spawn(self, target, *args, name: str) -> None:
        t = threading.Thread(target=target, args=args, daemon=True, name=name)
        t.start()
        with self._lock:
            self._threads.append(t)

    # -- observability -------------------------------------------------------

    def stats_snapshot(self) -> RelayStats:
        """All counters in one critical section (the store's and the
        sessions' own snapshots are taken under their locks, never
        nested inside this one)."""
        with self._lock:
            live = list(self._sessions.values())
            departed = list(self._departed)
            counters = dict(
                frames_served=self.frames_served,
                store_hits=self.store_hits,
                store_waits=self.store_waits,
                frames_unavailable=self.frames_unavailable,
                origin_frames=self.origin_frames,
                peer_frames=self.peer_frames,
                fetch_requests=self.fetch_requests,
                prefetch_issued=self.prefetch_issued,
                prefetch_fills=self.prefetch_fills,
                sessions=len(self._sessions),
                resumes=self.resumes,
                upstream_gaps=self.upstream_gaps,
                upstream_reconnects=self.upstream_reconnects,
                peer_failovers=self.peer_failovers,
                malformed=self.malformed,
                unknown_controls=self.unknown_controls,
            )
        snapshots = departed + [s.stats_snapshot() for s in live]
        return RelayStats(
            name=self.name,
            store=self.store.stats_snapshot(),
            session_stats={s.name: s for s in snapshots},
            **counters,
        )

    def session_stats(self) -> dict[str, SessionStats]:
        return self.stats_snapshot().session_stats

    def drain(self, timeout: float = 5.0, names: list[str] | None = None) -> bool:
        """Wait until the given sessions (default: every non-pull one)
        have delivered through the stream head with nothing in flight."""
        deadline = time.monotonic() + timeout
        while True:
            max_seen = self.max_seen()
            with self._lock:
                sessions = [
                    s
                    for s in self._sessions.values()
                    if (names is None and not s.pull) or
                    (names is not None and s.name in names)
                ]
            if all(s.idle_at(max_seen) for s in sessions):
                return True
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            self._wait_wake(min(0.05, remaining))

    # -- lifecycle -----------------------------------------------------------

    def _shutdown(self, polite: bool) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
            self._sessions.clear()
            peers = list(self._peers.values())
            self._peers.clear()
            upstream_handle = self._upstream_handle
            threads = list(self._threads)
            prefetcher = self._prefetcher
        self._closing.set()
        if prefetcher is not None:
            prefetcher.stop()
        for session in sessions:
            session.deactivate()
            snapshot = session.stats_snapshot()
            with self._lock:
                self._departed.append(snapshot)
            session.conn.close()
        for link in peers:
            if polite:
                link.handle.leave()
            else:
                link.handle.conn.close()
        if polite:
            upstream_handle.leave()
        else:
            upstream_handle.conn.close()
        self._notify()
        for t in threads:
            t.join(timeout=5.0)

    def close(self) -> None:
        """Graceful shutdown: polite leaves on every link."""
        self._shutdown(polite=True)

    def kill(self) -> None:
        """Crash simulation: every link cut mid-stream, no goodbyes —
        viewers see ``ChannelClosed`` and must fail over to a peer; the
        origin parks this relay's session for reconnect-with-resume."""
        self._shutdown(polite=False)

    def __enter__(self) -> "FrameRelay":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snap = self.stats_snapshot()
        return (
            f"<FrameRelay {self.name} served={snap.frames_served} "
            f"offload={snap.offload_ratio:.2f}>"
        )
