"""Consistent-hash ownership of frame ranges across a relay set.

The Distributed FrameBuffer's split — *static ownership, dynamic
aggregation* — applied to the time axis: the playback timeline is cut
into fixed-size chunks of consecutive frame ids, and each chunk has
exactly one owning relay.  The owner is the relay that fetches the
chunk from the origin (and prefetches ahead inside it); every other
relay pulls those frames from the owner instead of the origin, so a
frame crosses the origin's WAN uplink once per relay *set*, not once
per relay.

Ownership comes from a consistent-hash ring (virtual nodes per relay,
like the classic Karger construction): when a relay dies and is removed
from the ring, only the chunks it owned move — the surviving relays'
assignments are untouched, which is what keeps a mid-stream failover
from re-fetching the whole timeline.

Hashes are :func:`hashlib.blake2b` over stable strings, so the mapping
is a pure function of (relay names, chunk index) — deterministic across
processes and runs, never seeded from a clock or global RNG.
"""

from __future__ import annotations

import bisect
import hashlib
import threading

__all__ = ["RelayRing"]


def _hash64(text: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(text.encode(), digest_size=8).digest(), "big"
    )


class RelayRing:
    """Maps frame-id chunks to owning relay names, consistently.

    Thread-safe: ingest pumps consult ``owner()`` while a failover path
    calls ``remove()``.
    """

    def __init__(
        self,
        relays=(),
        *,
        chunk_frames: int = 16,
        vnodes: int = 32,
    ):
        if chunk_frames < 1:
            raise ValueError("chunk_frames must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.chunk_frames = chunk_frames
        self.vnodes = vnodes
        self._lock = threading.Lock()
        #: sorted (point, relay-name) pairs forming the ring
        self._points: list[tuple[int, str]] = []  # guarded-by: _lock
        self._relays: set[str] = set()  # guarded-by: _lock
        for name in relays:
            self.add(name)

    def add(self, name: str) -> None:
        with self._lock:
            if name in self._relays:
                return
            self._relays.add(name)
            for v in range(self.vnodes):
                self._points.append((_hash64(f"{name}#{v}"), name))
            self._points.sort()

    def remove(self, name: str) -> None:
        """Drop a (dead) relay; its chunks fall to the ring's survivors."""
        with self._lock:
            if name not in self._relays:
                return
            self._relays.discard(name)
            self._points = [p for p in self._points if p[1] != name]

    def relays(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._relays))

    def __len__(self) -> int:
        with self._lock:
            return len(self._relays)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._relays

    def chunk_of(self, frame_id: int) -> int:
        return frame_id // self.chunk_frames

    def owner(self, frame_id: int) -> str | None:
        """The relay owning ``frame_id``'s chunk (``None`` on an empty
        ring — every relay then falls back to the origin)."""
        with self._lock:
            if not self._points:
                return None
            point = _hash64(f"chunk:{self.chunk_of(frame_id)}")
            index = bisect.bisect_right(self._points, (point, "￿"))
            if index == len(self._points):
                index = 0
            return self._points[index][1]

    def owned_chunks(self, name: str, n_frames: int) -> list[int]:
        """Chunk indices of ``[0, n_frames)`` that ``name`` owns."""
        last_chunk = self.chunk_of(max(n_frames - 1, 0))
        return [
            c
            for c in range(last_chunk + 1)
            if self.owner(c * self.chunk_frames) == name
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RelayRing {len(self)} relays chunk={self.chunk_frames} "
            f"vnodes={self.vnodes}>"
        )
