"""Thread-backed communicator with an mpi4py-like interface.

Semantics follow MPI where it matters for our renderer:

- point-to-point messages between a (source, dest) pair are
  non-overtaking (delivered in send order) per tag;
- ``recv`` blocks; ``send`` is buffered (never blocks);
- collectives (``bcast``/``scatter``/``gather``/``allgather``/
  ``barrier``/``reduce``/``alltoall``) must be entered by every rank of
  the communicator;
- ``split`` builds sub-communicators by color, the mechanism the pipeline
  uses to carve the machine into L rendering groups.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Any, Callable, Sequence

__all__ = ["Communicator", "CommError", "Request"]

ANY_SOURCE = -1
ANY_TAG = -1


class CommError(RuntimeError):
    """Communicator misuse (bad rank, size mismatch, …)."""


class _Mailbox:
    """Per-rank buffered inbox with (source, tag) matching."""

    def __init__(self):
        self._cond = threading.Condition()
        self._messages: deque[tuple[int, int, Any]] = deque()  # guarded-by: _cond

    def put(self, source: int, tag: int, payload: Any) -> None:
        with self._cond:
            self._messages.append((source, tag, payload))
            self._cond.notify_all()

    def peek(self, source: int, tag: int) -> bool:
        """Whether a matching message is already buffered (no removal)."""
        with self._cond:
            for src, tg, _payload in self._messages:
                if source not in (ANY_SOURCE, src):
                    continue
                if tag not in (ANY_TAG, tg):
                    continue
                return True
        return False

    def get(self, source: int, tag: int, timeout: float | None) -> tuple[int, int, Any]:
        deadline = None
        with self._cond:
            while True:
                for i, (src, tg, payload) in enumerate(self._messages):
                    if source not in (ANY_SOURCE, src):
                        continue
                    if tag not in (ANY_TAG, tg):
                        continue
                    del self._messages[i]
                    return src, tg, payload
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"recv(source={source}, tag={tag}) timed out"
                    )


class Request:
    """Handle for a nonblocking operation (mpi4py ``Request`` subset).

    ``test()`` returns ``(done, value)`` without blocking; ``wait()``
    blocks until completion and returns the value.
    """

    def __init__(self, ready: bool = False, value: Any = None, poll=None, probe=None):
        self._done = ready
        self._value = value
        self._poll = poll
        self._probe = probe

    def test(self) -> tuple[bool, Any]:
        if self._done:
            return True, self._value
        if self._probe is not None and not self._probe():
            return False, None
        return True, self.wait()

    def wait(self, timeout: float | None = 60.0) -> Any:
        if not self._done:
            self._value = self._poll(timeout)
            self._done = True
        return self._value


class _World:
    """Shared state of one communicator: mailboxes + collective helpers."""

    _ids = itertools.count()

    def __init__(self, size: int):
        self.size = size
        self.id = next(self._ids)
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.barrier = threading.Barrier(size)
        self._coll_lock = threading.Lock()
        self._coll_slots: dict[int, dict] = {}  # guarded-by: _coll_lock
        self._coll_seq = [0] * size  # guarded-by: _coll_lock

    # Collectives rendezvous through a shared slot keyed by a per-rank
    # operation counter; all ranks must call collectives in the same order
    # (an MPI requirement we inherit).
    def collect(self, rank: int, value: Any, timeout: float | None) -> list:
        with self._coll_lock:
            seq = self._coll_seq[rank]
            self._coll_seq[rank] += 1
            state = self._coll_slots.setdefault(
                seq,
                {
                    "values": [None] * self.size,
                    "filled": 0,
                    "read": 0,
                    "event": threading.Event(),
                },
            )
            state["values"][rank] = value
            state["filled"] += 1
            if state["filled"] == self.size:
                state["event"].set()
            event = state["event"]
        if not event.wait(timeout=timeout):
            raise TimeoutError(f"collective #{seq} timed out at rank {rank}")
        with self._coll_lock:
            values = list(state["values"])
            state["read"] += 1
            if state["read"] == self.size:  # last rank out cleans up
                del self._coll_slots[seq]
        return values


class Communicator:
    """One rank's handle on a communication world.

    Construct via :func:`repro.machine.spmd.run_spmd` (which builds the
    world and hands each thread its communicator) or :meth:`split`.
    """

    def __init__(self, world: _World, rank: int, timeout: float | None = 60.0):
        if not 0 <= rank < world.size:
            raise CommError(f"rank {rank} out of range for size {world.size}")
        self._world = world
        self.rank = rank
        self.timeout = timeout

    @property
    def size(self) -> int:
        return self._world.size

    # -- point to point ------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Buffered send: enqueue ``obj`` for ``dest`` and return."""
        if not 0 <= dest < self.size:
            raise CommError(f"dest {dest} out of range (size {self.size})")
        self._world.mailboxes[dest].put(self.rank, tag, obj)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload."""
        _, _, payload = self._world.mailboxes[self.rank].get(
            source, tag, self.timeout
        )
        return payload

    def recv_with_status(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[Any, int, int]:
        """Blocking receive; returns ``(payload, source, tag)``."""
        src, tg, payload = self._world.mailboxes[self.rank].get(
            source, tag, self.timeout
        )
        return payload, src, tg

    def sendrecv(self, obj: Any, partner: int, tag: int = 0) -> Any:
        """Exchange with ``partner`` (both sides must call)."""
        self.send(obj, partner, tag)
        return self.recv(source=partner, tag=tag)

    # -- nonblocking (mpi4py isend/irecv subset) -------------------------------

    def isend(self, obj: Any, dest: int, tag: int = 0) -> "Request":
        """Nonblocking send.  Buffered sends complete immediately, so the
        returned request is already satisfied — provided for API parity
        with MPI codes that pair every isend with a wait."""
        self.send(obj, dest, tag)
        return Request(ready=True, value=None)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> "Request":
        """Nonblocking receive: returns a :class:`Request` whose
        ``test()``/``wait()`` yield the payload once a matching message
        is in the mailbox."""
        return Request(
            poll=lambda timeout: self._world.mailboxes[self.rank].get(
                source, tag, timeout
            )[2],
            probe=lambda: self._world.mailboxes[self.rank].peek(source, tag),
        )

    # -- collectives ----------------------------------------------------------

    def barrier(self) -> None:
        self._world.barrier.wait(timeout=self.timeout)

    def _exchange(self, value: Any) -> list:
        return self._world.collect(self.rank, value, self.timeout)

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        values = self._exchange(obj if self.rank == root else None)
        return values[root]

    def scatter(self, values: Sequence[Any] | None = None, root: int = 0) -> Any:
        all_values = self._exchange(values if self.rank == root else None)
        root_values = all_values[root]
        if root_values is None or len(root_values) != self.size:
            raise CommError(
                f"scatter needs {self.size} values at root, got "
                f"{None if root_values is None else len(root_values)}"
            )
        return root_values[self.rank]

    def gather(self, obj: Any, root: int = 0) -> list | None:
        values = self._exchange(obj)
        return values if self.rank == root else None

    def allgather(self, obj: Any) -> list:
        return self._exchange(obj)

    def alltoall(self, values: Sequence[Any]) -> list:
        if len(values) != self.size:
            raise CommError(f"alltoall needs {self.size} values")
        matrix = self._exchange(list(values))
        return [row[self.rank] for row in matrix]

    def reduce(
        self, obj: Any, op: Callable[[Any, Any], Any], root: int = 0
    ) -> Any | None:
        values = self._exchange(obj)
        if self.rank != root:
            return None
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        values = self._exchange(obj)
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    # -- sub-communicators ------------------------------------------------------

    def split(self, color: int, key: int | None = None) -> "Communicator":
        """MPI_Comm_split: group ranks by ``color``, order by ``key``.

        Every rank of this communicator must call.  Returns the new
        sub-communicator for this rank's color group.
        """
        key = key if key is not None else self.rank
        triples = self._exchange((color, key, self.rank))
        members = sorted(
            (k, r) for c, k, r in triples if c == color
        )
        ranks = [r for _, r in members]
        new_rank = ranks.index(self.rank)
        # Rendezvous: rank 0 of each group builds the world and sends a
        # handle to its members through the parent communicator.
        worlds = self._exchange(
            {color: _World(len(ranks))} if new_rank == 0 else None
        )
        world = None
        for w in worlds:
            if w is not None and color in w:
                world = w[color]
                break
        if world is None:
            raise CommError("split failed to build group world")
        return Communicator(world, new_rank, timeout=self.timeout)
