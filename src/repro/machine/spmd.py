"""SPMD launcher: run one function on N logical processors (threads).

``run_spmd(4, fn, *args)`` is this runtime's ``mpiexec -n 4``: every rank
runs ``fn(comm, *args)`` on its own thread and the per-rank return values
come back as a list.  An exception on any rank cancels the run and is
re-raised (with rank attribution) in the caller — no silent hangs.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.machine.communicator import Communicator, _World

__all__ = ["run_spmd", "SpmdError"]


class SpmdError(RuntimeError):
    """A rank raised; carries the failing rank and original exception."""

    def __init__(self, rank: int, original: BaseException):
        super().__init__(f"rank {rank} failed: {original!r}")
        self.rank = rank
        self.original = original


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float | None = 120.0,
) -> list[Any]:
    """Execute ``fn(comm, *args)`` on ``nprocs`` ranks; gather returns.

    ``timeout`` bounds every blocking communication call (a deadlocked
    exchange raises instead of hanging the test suite forever).
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    world = _World(nprocs)
    results: list[Any] = [None] * nprocs
    errors: list[SpmdError] = []
    errors_lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = Communicator(world, rank, timeout=timeout)
        try:
            results[rank] = fn(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            with errors_lock:
                errors.append(SpmdError(rank, exc))
            # Unblock peers stuck in a barrier with us.  abort() only
            # raises if the barrier is already broken/torn down, which
            # is exactly the state we want.
            try:
                world.barrier.abort()
            except (RuntimeError, ValueError):
                pass

    threads = [
        threading.Thread(target=runner, args=(rank,), name=f"spmd-rank-{rank}")
        for rank in range(nprocs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        # Report the root cause: a rank that failed on its own, not one
        # that merely saw the barrier break when the run was cancelled.
        def priority(e: SpmdError) -> tuple[int, int]:
            secondary = isinstance(e.original, threading.BrokenBarrierError)
            return (1 if secondary else 0, e.rank)

        errors.sort(key=priority)
        raise errors[0]
    return results
