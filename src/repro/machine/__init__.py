"""In-process SPMD message-passing runtime.

A faithful, thread-backed subset of the MPI API (mpi4py naming) so that
the renderer's real communication patterns — brick scatter, binary-swap
sendrecv, gather-to-assembler — execute and are testable without an MPI
installation.  See DESIGN.md §2: this layer validates message-level
*correctness*; wall-clock *scaling* numbers come from :mod:`repro.sim`.
"""

from repro.machine.communicator import Communicator, CommError, Request
from repro.machine.spmd import run_spmd

__all__ = ["Communicator", "CommError", "Request", "run_spmd"]
