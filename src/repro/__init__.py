"""repro — reproduction of Ma & Camp, SC 2000.

"High Performance Visualization of Time-Varying Volume Data over a
Wide-Area Network": pipelined parallel volume rendering with processor
grouping, plus compression-based remote image transport.

Quickstart::

    from repro import turbulent_jet, RemoteVisualizationSession, Camera

    dataset = turbulent_jet(scale=0.3, n_steps=8)
    with RemoteVisualizationSession(dataset, group_size=4) as session:
        report = session.run()
    print(report.metrics.summary())

Subpackages
-----------
- :mod:`repro.core` — the paper's contribution: partitioned pipelined
  rendering and the end-to-end remote visualization session.
- :mod:`repro.data` — synthetic time-varying volume datasets.
- :mod:`repro.render` — parallel ray-casting volume renderer substrate.
- :mod:`repro.compress` — LZO / BZIP / JPEG codecs and combinations.
- :mod:`repro.machine` — in-process SPMD message-passing runtime.
- :mod:`repro.sim` — discrete-event simulator for timing experiments.
- :mod:`repro.net` — WAN/LAN link models and the X-display baseline.
- :mod:`repro.daemon` — display daemon image-transport framework.
"""

from repro.compress import available_codecs, get_codec
from repro.core import (
    PartitionPlan,
    PerformanceModel,
    PipelineConfig,
    RemoteVisualizationSession,
    RenderingMetrics,
    candidate_partitions,
    simulate_pipeline,
)
from repro.data import shock_mixing, turbulent_jet, turbulent_vortex
from repro.render import Camera, RayCaster, TransferFunction

__version__ = "1.0.0"

__all__ = [
    "available_codecs",
    "get_codec",
    "PartitionPlan",
    "candidate_partitions",
    "PerformanceModel",
    "PipelineConfig",
    "simulate_pipeline",
    "RemoteVisualizationSession",
    "RenderingMetrics",
    "turbulent_jet",
    "turbulent_vortex",
    "shock_mixing",
    "Camera",
    "RayCaster",
    "TransferFunction",
    "__version__",
]
