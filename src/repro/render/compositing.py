"""Global image compositing: the third pipeline stage.

Partial images rendered from disjoint bricks merge with the premultiplied
``over`` operator in front-to-back visibility order.  Two implementations:

- :func:`composite_bricks` — sequential fold, used by single-process code
  and as the reference for tests;
- :func:`binary_swap` — the parallel binary-swap algorithm of the paper's
  renderer [16] (Ma, Painter, Hansen & Krogh 1994), run over a
  :class:`repro.machine.Communicator`: in round ``r`` each processor
  exchanges half of its current image piece with the partner at distance
  ``2^r`` and composites, finishing with ``1/P`` of the final image on
  every processor — which is exactly the sub-image it then compresses and
  ships in the parallel-compression transport mode (§4.1, Figure 10).
"""

from __future__ import annotations

import numpy as np

from repro.render.camera import Camera
from repro.render.partition import Brick

__all__ = ["over", "visibility_order", "composite_bricks", "binary_swap"]


def over(front: np.ndarray, back: np.ndarray) -> np.ndarray:
    """Premultiplied-alpha ``over``: composite ``front`` above ``back``."""
    if front.shape != back.shape:
        raise ValueError(f"shape mismatch {front.shape} vs {back.shape}")
    a_front = front[..., 3:4]
    out = front + (1.0 - a_front) * back
    return out.astype(np.float32)


def visibility_order(bricks: list[Brick], camera: Camera) -> list[int]:
    """Brick indices sorted front-to-back for the camera.

    Orthographic: brick centres sorted along the view direction —
    correct for a convex axis-aligned decomposition.  Perspective:
    sorted by distance from the eye point (the standard centroid
    approximation).
    """
    eye = camera.eye_position
    if eye is None:
        d = camera.view_direction
        keys = [float(np.dot(b.center, d)) for b in bricks]
    else:
        keys = [float(np.linalg.norm(b.center - eye)) for b in bricks]
    return sorted(range(len(bricks)), key=lambda i: keys[i])


def composite_bricks(
    partials: list[np.ndarray], bricks: list[Brick], camera: Camera
) -> np.ndarray:
    """Sequentially composite per-brick partial images into the final one."""
    if len(partials) != len(bricks):
        raise ValueError("one partial image per brick required")
    order = visibility_order(list(bricks), camera)
    result = partials[order[0]].copy()
    for i in order[1:]:
        result = over(result, partials[i])
    return result


def binary_swap(comm, partial: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
    """Parallel binary-swap compositing over a communicator.

    Every rank contributes its full-size partial image; ranks must hold
    bricks already numbered in front-to-back visibility order (rank 0
    closest to the viewer), which the pipeline arranges via
    :func:`visibility_order`.

    Any group size works: when ``size`` is not a power of two, a folding
    pre-phase merges ``size - 2^⌊log2 size⌋`` *adjacent* rank pairs — an
    order-preserving local ``over`` — leaving a power-of-two set of
    active ranks for the classic swap rounds.  Folded-away ranks return
    an empty strip (``row_range == (0, 0)``).

    Returns ``(piece, (row_start, row_end))``: this rank's fully
    composited strip of the final image.  Gathering the strips (e.g. with
    ``comm.gather``) reassembles the frame; *not* gathering and instead
    compressing each strip in place is the paper's parallel-compression
    transport mode.
    """
    size = comm.size
    piece = np.ascontiguousarray(partial, dtype=np.float32)
    h = piece.shape[0]
    rank = comm.rank

    p2 = 1 << (size.bit_length() - 1)
    if p2 == size:
        active_ranks = list(range(size))
    else:
        extra = size - p2
        # ranks 0..2*extra-1 fold pairwise (even keeps, odd donates);
        # ranks 2*extra.. stay as they are.
        if rank < 2 * extra:
            if rank % 2 == 1:  # donor: hand the partial forward, retire
                comm.send(piece, dest=rank - 1, tag=_FOLD_TAG)
                return (
                    np.zeros((0,) + piece.shape[1:], dtype=np.float32),
                    (0, 0),
                )
            received = comm.recv(source=rank + 1, tag=_FOLD_TAG)
            # this rank is nearer the viewer than its donor
            piece = over(piece, received)
        active_ranks = list(range(0, 2 * extra, 2)) + list(
            range(2 * extra, size)
        )

    my_index = active_ranks.index(rank)
    row_start, row_end = 0, h

    stage = 1
    while stage < p2:
        partner_index = my_index ^ stage
        partner = active_ranks[partner_index]
        rows = row_end - row_start
        mid = row_start + rows // 2
        top = piece[: mid - row_start]
        bottom = piece[mid - row_start :]
        if my_index & stage:  # keep the bottom half, send the top
            send_piece, keep_piece = top, bottom
            keep_range = (mid, row_end)
        else:  # keep the top half, send the bottom
            send_piece, keep_piece = bottom, top
            keep_range = (row_start, mid)
        received = comm.sendrecv(send_piece, partner, tag=_SWAP_TAG + stage)
        if received.shape != keep_piece.shape:
            raise ValueError(
                f"rank {rank}: partner piece {received.shape} != "
                f"{keep_piece.shape}"
            )
        # Lower index is nearer the viewer: its piece goes in front.
        if my_index < partner_index:
            piece = over(keep_piece, received)
        else:
            piece = over(received, keep_piece)
        row_start, row_end = keep_range
        stage <<= 1
    return piece, (row_start, row_end)


_FOLD_TAG = 7001
_SWAP_TAG = 7100
