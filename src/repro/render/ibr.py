"""Image-based remote viewing — the paper's §7.1 alternative transport.

"If the user (client) side possesses some minimum graphics capability …
instead of sending a single frame for each time step, 'compressed'
subset data can be sent.  This subset data can be … a collection of
pre-rendered images which can be processed very efficiently with the
user-side graphics hardware.  For example, Bethel [1] demonstrates
remote visualization using an image-based rendering approach.  The
server side computes a set of images by using a parallel supercomputer,
ships it to the user side, and the user is allowed to explore the data
from view points that can be reconstructed from the set of images."

:class:`ViewSet` is the server-side product: a ring (or grid) of
pre-rendered, compressed views of one time step.  :class:`IBRClient`
reconstructs arbitrary nearby viewpoints client-side by blending the
angularly-nearest views — no WAN round trip per view change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compress import Codec, get_codec
from repro.render.camera import Camera
from repro.render.raycast import render_volume
from repro.render.transfer_function import TransferFunction

__all__ = ["ViewSet", "IBRClient", "build_view_set"]


def _angular_distance(az1: float, el1: float, az2: float, el2: float) -> float:
    """Great-circle-ish distance between two (azimuth, elevation) views."""
    a1, e1, a2, e2 = map(np.radians, (az1, el1, az2, el2))
    cos_d = np.sin(e1) * np.sin(e2) + np.cos(e1) * np.cos(e2) * np.cos(a1 - a2)
    return float(np.degrees(np.arccos(np.clip(cos_d, -1.0, 1.0))))


@dataclass(frozen=True)
class ViewSet:
    """Compressed pre-rendered views of one time step.

    ``views`` maps (azimuth, elevation) to the codec payload of the
    rendered frame; this is the "subset data" shipped across the WAN
    once per time step instead of one frame per interaction.
    """

    time_step: int
    image_size: tuple[int, int]
    codec_name: str
    views: tuple[tuple[tuple[float, float], bytes], ...]

    @property
    def n_views(self) -> int:
        return len(self.views)

    @property
    def total_bytes(self) -> int:
        """Wire size of the whole set."""
        return sum(len(payload) for _, payload in self.views)

    def angles(self) -> list[tuple[float, float]]:
        return [angle for angle, _ in self.views]


def build_view_set(
    volume: np.ndarray,
    tf: TransferFunction,
    time_step: int,
    *,
    image_size: tuple[int, int] = (256, 256),
    azimuths: tuple[float, ...] = tuple(range(0, 360, 30)),
    elevation: float = 20.0,
    codec: str | Codec = "jpeg+lzo",
) -> ViewSet:
    """Server side: render and compress a ring of views of one volume."""
    from repro.render.image import to_display_rgb

    codec_obj = get_codec(codec) if isinstance(codec, str) else codec
    views = []
    for az in azimuths:
        cam = Camera(image_size=image_size, azimuth=az, elevation=elevation)
        frame = to_display_rgb(render_volume(volume, tf, cam))
        views.append(((float(az), float(elevation)), codec_obj.encode_image(frame)))
    return ViewSet(
        time_step=time_step,
        image_size=image_size,
        codec_name=codec_obj.name,
        views=tuple(views),
    )


class IBRClient:
    """Client side: decode a view set once, reconstruct views locally.

    Reconstruction blends the two angularly-nearest pre-rendered views
    with inverse-distance weights — the "processed very efficiently with
    the user-side graphics hardware" step, here a couple of NumPy ops.
    """

    def __init__(self, view_set: ViewSet):
        self.view_set = view_set
        decoder = get_codec(view_set.codec_name)
        self._frames = [
            (angle, decoder.decode_image(payload).astype(np.float32))
            for angle, payload in view_set.views
        ]
        if not self._frames:
            raise ValueError("empty view set")

    def nearest_views(
        self, azimuth: float, elevation: float, k: int = 2
    ) -> list[tuple[float, tuple[float, float]]]:
        """The ``k`` closest stored views as (distance, angle) pairs."""
        dists = [
            (_angular_distance(azimuth, elevation, az, el), (az, el))
            for (az, el), _ in self._frames
        ]
        return sorted(dists)[:k]

    def reconstruct(self, azimuth: float, elevation: float) -> np.ndarray:
        """A uint8 RGB view for an arbitrary nearby viewpoint."""
        dists = [
            (_angular_distance(azimuth, elevation, az, el), frame)
            for (az, el), frame in self._frames
        ]
        dists.sort(key=lambda t: t[0])
        (d0, f0), (d1, f1) = dists[0], dists[1] if len(dists) > 1 else dists[0]
        if d0 < 1e-9:
            return f0.astype(np.uint8)
        w0 = 1.0 / d0
        w1 = 1.0 / max(d1, 1e-9)
        blended = (f0 * w0 + f1 * w1) / (w0 + w1)
        return np.clip(np.rint(blended), 0, 255).astype(np.uint8)
