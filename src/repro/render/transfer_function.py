"""Transfer functions: scalar value → color and opacity.

A piecewise-linear RGBA map over [0, 1] scalars, the "new color map" a
remote user can push to the renderer through the display daemon's tagged
messages.  Presets mirror the image statistics of the paper's datasets:
``jet`` leaves most of the volume transparent (low pixel coverage), while
``vortex`` maps even weak vorticity to visible color (high coverage).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TransferFunction"]


@dataclass(frozen=True)
class TransferFunction:
    """Piecewise-linear RGBA transfer function.

    ``positions`` are strictly increasing scalar values in [0, 1];
    ``colors`` the matching ``(n, 4)`` RGBA control values in [0, 1]
    (opacity is per unit step of :attr:`base_step` ray length and is
    corrected for the actual sampling distance at render time).
    """

    positions: tuple[float, ...]
    colors: tuple[tuple[float, float, float, float], ...]
    base_step: float = 0.01

    def __post_init__(self):
        pos = np.asarray(self.positions)
        col = np.asarray(self.colors)
        if pos.ndim != 1 or pos.size < 2:
            raise ValueError("need at least two control points")
        if np.any(np.diff(pos) <= 0):
            raise ValueError("positions must be strictly increasing")
        if col.shape != (pos.size, 4):
            raise ValueError("colors must be (n, 4) RGBA")
        if col.min() < 0 or col.max() > 1:
            raise ValueError("color components must lie in [0, 1]")

    def sample(self, scalars: np.ndarray, step: float | None = None) -> np.ndarray:
        """RGBA at each scalar (shape ``scalars.shape + (4,)``).

        Opacity is rescaled for sampling distance ``step`` via
        ``1 - (1 - a)^(step/base_step)`` so rendered opacity is invariant
        to the ray sampling rate.
        """
        pos = np.asarray(self.positions)
        col = np.asarray(self.colors, dtype=np.float32)
        flat = np.clip(np.asarray(scalars, dtype=np.float32).ravel(), 0.0, 1.0)
        out = np.empty((flat.size, 4), dtype=np.float32)
        for c in range(4):
            out[:, c] = np.interp(flat, pos, col[:, c])
        if step is not None and step != self.base_step:
            out[:, 3] = 1.0 - np.power(
                1.0 - np.minimum(out[:, 3], 0.9999), step / self.base_step
            )
        return out.reshape(np.shape(scalars) + (4,))

    def opacity_threshold(self, resolution: int = 1024) -> float:
        """Largest scalar below which opacity is identically zero.

        The safe threshold for empty-space culling
        (:func:`repro.render.raycast.cull_empty_space`): voxels at or
        below it can never contribute.  Returns 0.0 when the function is
        opaque from the start.
        """
        grid = np.linspace(0.0, 1.0, resolution + 1)
        alpha = self.sample(grid)[:, 3]
        nz = np.flatnonzero(alpha > 0.0)
        if nz.size == 0:
            return 1.0
        if nz[0] == 0:
            return 0.0
        return float(grid[nz[0] - 1])

    # -- presets -------------------------------------------------------------

    @classmethod
    def jet(cls) -> "TransferFunction":
        """Sparse plume look: transparent below ~0.15, warm colors above."""
        return cls(
            positions=(0.0, 0.12, 0.3, 0.55, 0.8, 1.0),
            colors=(
                (0.0, 0.0, 0.0, 0.0),
                (0.1, 0.0, 0.25, 0.0),
                (0.6, 0.1, 0.4, 0.06),
                (0.9, 0.45, 0.1, 0.25),
                (1.0, 0.85, 0.3, 0.6),
                (1.0, 1.0, 0.9, 0.9),
            ),
        )

    @classmethod
    def vortex(cls) -> "TransferFunction":
        """High-coverage look: weak values already contribute color."""
        return cls(
            positions=(0.0, 0.08, 0.25, 0.5, 0.75, 1.0),
            colors=(
                (0.05, 0.05, 0.2, 0.004),
                (0.1, 0.3, 0.7, 0.02),
                (0.2, 0.7, 0.7, 0.06),
                (0.9, 0.9, 0.2, 0.16),
                (1.0, 0.5, 0.1, 0.4),
                (1.0, 1.0, 1.0, 0.8),
            ),
        )

    @classmethod
    def mixing(cls) -> "TransferFunction":
        """Shock/bubble look: interfaces bright, ambient faint."""
        return cls(
            positions=(0.0, 0.2, 0.35, 0.6, 0.85, 1.0),
            colors=(
                (0.0, 0.0, 0.0, 0.0),
                (0.05, 0.1, 0.4, 0.01),
                (0.1, 0.5, 0.8, 0.08),
                (0.9, 0.7, 0.2, 0.3),
                (1.0, 0.4, 0.1, 0.55),
                (1.0, 0.95, 0.8, 0.85),
            ),
        )

    @classmethod
    def grayscale(cls, opacity: float = 0.3) -> "TransferFunction":
        """Linear gray ramp with constant-slope opacity."""
        return cls(
            positions=(0.0, 1.0),
            colors=((0.0, 0.0, 0.0, 0.0), (1.0, 1.0, 1.0, opacity)),
        )
