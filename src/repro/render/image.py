"""Image assembly and display conversion: the image-output stage.

Converts premultiplied RGBA working images into displayable ``uint8`` RGB,
and splits/reassembles row strips — the "sub-images" of the paper's
parallel-compression mode and its hybrid grouping variant (Figure 10).
"""

from __future__ import annotations

import numpy as np

__all__ = ["to_display_rgb", "split_tiles", "assemble_tiles", "checker_background"]


def to_display_rgb(
    rgba: np.ndarray, background: tuple[float, float, float] = (0.0, 0.0, 0.0)
) -> np.ndarray:
    """Composite a premultiplied RGBA image over ``background`` → uint8 RGB."""
    if rgba.ndim != 3 or rgba.shape[2] != 4:
        raise ValueError(f"expected (H, W, 4) RGBA, got {rgba.shape}")
    a = rgba[..., 3:4]
    bg = np.asarray(background, dtype=np.float32).reshape(1, 1, 3)
    rgb = rgba[..., :3] + (1.0 - a) * bg
    return np.clip(np.rint(rgb * 255.0), 0, 255).astype(np.uint8)


def split_tiles(image: np.ndarray, n: int) -> list[tuple[tuple[int, int], np.ndarray]]:
    """Split an image into ``n`` contiguous row strips.

    Returns ``[(row_range, strip), ...]``; strips differ in height by at
    most one row.  This is the unit of work for per-processor sub-image
    compression.
    """
    h = image.shape[0]
    if not 1 <= n <= h:
        raise ValueError(f"cannot split {h} rows into {n} strips")
    bounds = np.linspace(0, h, n + 1).astype(int)
    return [
        ((int(bounds[i]), int(bounds[i + 1])), image[bounds[i] : bounds[i + 1]])
        for i in range(n)
    ]


def assemble_tiles(
    tiles: list[tuple[tuple[int, int], np.ndarray]], height: int | None = None
) -> np.ndarray:
    """Reassemble row strips into a full image (inverse of split_tiles).

    The display interface performs this step after decompressing the
    sub-images it received from the daemon.
    """
    if not tiles:
        raise ValueError("no tiles to assemble")
    tiles = sorted(tiles, key=lambda t: t[0][0])
    h = height if height is not None else max(r[1] for r, _ in tiles)
    first = tiles[0][1]
    out = np.zeros((h,) + first.shape[1:], dtype=first.dtype)
    covered = 0
    for (r0, r1), strip in tiles:
        if strip.shape[0] != r1 - r0:
            raise ValueError(f"strip rows {strip.shape[0]} != range {r0}:{r1}")
        out[r0:r1] = strip
        covered += r1 - r0
    if covered != h:
        raise ValueError(f"tiles cover {covered} rows of {h}")
    return out


def checker_background(shape: tuple[int, int], cell: int = 8) -> np.ndarray:
    """A checkerboard uint8 RGB image (test/demo backdrop)."""
    yy, xx = np.mgrid[0 : shape[0], 0 : shape[1]]
    mask = ((yy // cell) + (xx // cell)) % 2
    img = np.where(mask == 0, 60, 90).astype(np.uint8)
    return np.dstack([img, img, img])
