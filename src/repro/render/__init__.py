"""Parallel volume rendering substrate.

Implements the renderer the paper builds on: a parallel ray-casting volume
renderer [16] with binary-swap compositing, plus the shear-warp baseline
[12] the paper discusses (and rejects for time-varying data because of its
per-time-step preprocessing cost).

Pipeline stage mapping (paper Figure 1):

- *data input* — :mod:`repro.render.partition` decomposes each volume into
  per-processor bricks;
- *local rendering* — :func:`repro.render.raycast.render_volume` renders a
  brick into a partial RGBA image;
- *global image compositing* — :mod:`repro.render.compositing` merges
  partials (sequential over, or binary-swap under :mod:`repro.machine`);
- *image output* — :mod:`repro.render.image` assembles tiles and converts
  to displayable RGB.
"""

from repro.render.camera import Camera
from repro.render.transfer_function import TransferFunction
from repro.render.raycast import RayCaster, cull_empty_space, render_volume
from repro.render.partition import BrickDecomposition, decompose
from repro.render.compositing import (
    binary_swap,
    composite_bricks,
    over,
    visibility_order,
)
from repro.render.image import assemble_tiles, split_tiles, to_display_rgb
from repro.render.shearwarp import ShearWarpRenderer
from repro.render.ibr import IBRClient, ViewSet, build_view_set
from repro.render.histogram import (
    opacity_profile,
    suggest_transfer_function,
    volume_histogram,
)

__all__ = [
    "Camera",
    "TransferFunction",
    "RayCaster",
    "render_volume",
    "cull_empty_space",
    "BrickDecomposition",
    "decompose",
    "over",
    "binary_swap",
    "composite_bricks",
    "visibility_order",
    "assemble_tiles",
    "split_tiles",
    "to_display_rgb",
    "ShearWarpRenderer",
    "IBRClient",
    "ViewSet",
    "build_view_set",
    "volume_histogram",
    "opacity_profile",
    "suggest_transfer_function",
]
