"""Minimal dependency-free image file I/O (PPM / PGM).

The display interface of the real system puts frames on an X screen; in
this library the equivalent sink is a portable pixmap on disk, readable
by effectively every image tool.  Binary P6 (color) and P5 (gray), 8-bit.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["write_ppm", "read_ppm"]


def write_ppm(path: str | Path, image: np.ndarray) -> None:
    """Write a uint8 image: ``(H, W, 3)`` → P6, ``(H, W)`` → P5."""
    arr = np.ascontiguousarray(image)
    if arr.dtype != np.uint8:
        raise ValueError(f"image must be uint8, got {arr.dtype}")
    if arr.ndim == 3 and arr.shape[2] == 3:
        magic = b"P6"
    elif arr.ndim == 2:
        magic = b"P5"
    else:
        raise ValueError(f"unsupported image shape {arr.shape}")
    h, w = arr.shape[:2]
    header = magic + f"\n{w} {h}\n255\n".encode()
    Path(path).write_bytes(header + arr.tobytes())


def read_ppm(path: str | Path) -> np.ndarray:
    """Read a binary P6/P5 file written by :func:`write_ppm`."""
    data = Path(path).read_bytes()
    # header: magic, whitespace-separated width/height/maxval, one
    # whitespace byte, then raster
    fields: list[bytes] = []
    i = 0
    while len(fields) < 4:
        while i < len(data) and data[i : i + 1].isspace():
            i += 1
        if i < len(data) and data[i : i + 1] == b"#":  # comment line
            while i < len(data) and data[i] != 0x0A:
                i += 1
            continue
        start = i
        while i < len(data) and not data[i : i + 1].isspace():
            i += 1
        fields.append(data[start:i])
    i += 1  # single whitespace after maxval
    magic, w, h, maxval = fields[0], int(fields[1]), int(fields[2]), int(fields[3])
    if maxval != 255:
        raise ValueError(f"only 8-bit PNM supported, maxval={maxval}")
    if magic == b"P6":
        shape: tuple[int, ...] = (h, w, 3)
    elif magic == b"P5":
        shape = (h, w)
    else:
        raise ValueError(f"unsupported magic {magic!r}")
    count = int(np.prod(shape))
    raster = data[i : i + count]
    if len(raster) != count:
        raise ValueError(f"raster holds {len(raster)} bytes, expected {count}")
    return np.frombuffer(raster, dtype=np.uint8).reshape(shape)
