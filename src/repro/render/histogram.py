"""Transfer-function design helpers: histograms and automatic presets.

The remote user drives classification through the daemon's ``colormap``
messages; these helpers give them something sensible to send.  The
automatic transfer function places opacity where the data is *sparse
but present* — the classic heuristic that makes features (plumes,
vortex cores, shock fronts) stand out against the bulk background.
"""

from __future__ import annotations

import numpy as np

from repro.render.transfer_function import TransferFunction

__all__ = ["volume_histogram", "suggest_transfer_function", "opacity_profile"]


def volume_histogram(
    volume: np.ndarray, bins: int = 64
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of scalar values over [0, 1]; returns (counts, edges)."""
    arr = np.asarray(volume, dtype=np.float32)
    counts, edges = np.histogram(arr, bins=bins, range=(0.0, 1.0))
    return counts, edges


def opacity_profile(volume: np.ndarray, bins: int = 64) -> np.ndarray:
    """Per-bin opacity weights: emphasize rare-but-present values.

    Weight ∝ 1 / log(count) for non-empty bins above the background
    mode, zero for the most-populated (background) bins — so the bulk
    medium stays transparent and features light up.
    """
    counts, _ = volume_histogram(volume, bins)
    weights = np.zeros(bins, dtype=np.float64)
    occupied = counts > 0
    weights[occupied] = 1.0 / np.log2(counts[occupied] + 2.0)
    # suppress the background: the densest decile of bins goes transparent
    if occupied.any():
        cutoff = np.quantile(counts[occupied], 0.9)
        weights[counts >= cutoff] = 0.0
    if weights.max() > 0:
        weights /= weights.max()
    return weights.astype(np.float32)


def suggest_transfer_function(
    volume: np.ndarray,
    *,
    bins: int = 16,
    max_opacity: float = 0.6,
    warm: bool = True,
) -> TransferFunction:
    """Build a renderable transfer function from the volume's statistics.

    Colors ramp cool→warm (or gray) across the value range; opacity
    follows :func:`opacity_profile`, clamped to ``max_opacity``.
    """
    if not 0 < max_opacity <= 1:
        raise ValueError("max_opacity must be in (0, 1]")
    weights = opacity_profile(volume, bins)
    positions = np.linspace(0.0, 1.0, bins, dtype=np.float64)
    colors = []
    for pos, weight in zip(positions, weights):
        if warm:
            r = min(1.0, 0.2 + 1.2 * pos)
            g = 0.15 + 0.7 * pos * pos
            b = max(0.0, 0.85 - pos)
        else:
            r = g = b = pos
        colors.append((r, g, b, float(weight) * max_opacity))
    return TransferFunction(
        positions=tuple(positions.tolist()), colors=tuple(colors)
    )
