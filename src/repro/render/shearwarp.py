"""Shear-warp volume renderer — the baseline the paper considers and rejects.

"There are other volume rendering algorithms such as the shear warp
algorithm [12] which can not only deliver superior rendering rates but is
also highly parallelizable [11].  Since our task is to render time-varying
data, the preprocessing calculations required by the shear warp algorithm
must be done for every time step … In addition, due to the use of 2-d
filtering, the quality of a shear warp image, in some case, could be less
ideal."

This implementation exposes exactly those trade-offs:

- :meth:`ShearWarpRenderer.preprocess` classifies the whole volume through
  the transfer function and builds a run-length skip structure — fast to
  *use*, but it must rerun for every time step (and for every transfer-
  function change);
- :meth:`ShearWarpRenderer.render` composites sheared slices along the
  principal axis and then applies a single 2-D warp — faster than ray
  casting but with 2-D-filtered image quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.render.camera import Camera
from repro.render.transfer_function import TransferFunction

__all__ = ["ShearWarpRenderer", "PreclassifiedVolume"]


@dataclass
class PreclassifiedVolume:
    """Per-time-step preprocessing output.

    ``rgba`` is the classified volume (premultiplied, opacity corrected for
    unit slice spacing); ``opaque_fraction`` summarizes the run-length skip
    structure (fraction of voxels with non-zero opacity), which cost models
    use to estimate the per-slice compositing work actually done.
    """

    rgba: np.ndarray  # (nx, ny, nz, 4) float32 premultiplied
    opaque_fraction: float
    run_starts: np.ndarray  # flat indices where non-transparent runs start
    run_lengths: np.ndarray


def _bilinear_shift(plane: np.ndarray, du: float, dv: float) -> np.ndarray:
    """Shift a (H, W, C) image by fractional (du, dv), zero-filled."""
    h, w = plane.shape[:2]
    iu = int(np.floor(du))
    iv = int(np.floor(dv))
    fu = du - iu
    fv = dv - iv
    out = np.zeros_like(plane)

    def place(target, src, shift_u, shift_v, weight):
        if weight == 0.0:
            return
        u0 = max(shift_u, 0)
        v0 = max(shift_v, 0)
        u1 = min(h + shift_u, h)
        v1 = min(w + shift_v, w)
        if u0 >= u1 or v0 >= v1:
            return
        target[u0:u1, v0:v1] += weight * src[u0 - shift_u : u1 - shift_u,
                                             v0 - shift_v : v1 - shift_v]

    place(out, plane, iu, iv, (1 - fu) * (1 - fv))
    place(out, plane, iu + 1, iv, fu * (1 - fv))
    place(out, plane, iu, iv + 1, (1 - fu) * fv)
    place(out, plane, iu + 1, iv + 1, fu * fv)
    return out


class ShearWarpRenderer:
    """Shear-warp renderer with per-time-step preclassification."""

    def __init__(self, tf: TransferFunction, camera: Camera):
        if camera.projection != "orthographic":
            raise ValueError(
                "shear-warp factorizes a parallel projection; use the ray "
                "caster for perspective views"
            )
        self.tf = tf
        self.camera = camera

    def preprocess(self, volume: np.ndarray) -> PreclassifiedVolume:
        """Classify a volume — rerun for *every* time step."""
        vol = np.ascontiguousarray(volume, dtype=np.float32)
        spacing = 1.0 / max(max(vol.shape) - 1, 1)
        rgba = self.tf.sample(vol, step=spacing)
        # premultiply
        rgba[..., :3] *= rgba[..., 3:4]
        opaque = rgba[..., 3].ravel() > 0.0
        trans = np.diff(opaque.astype(np.int8), prepend=0)
        run_starts = np.flatnonzero(trans == 1)
        stops = np.flatnonzero(trans == -1)
        # starts and stops strictly alternate, so the first stop at or
        # after each start closes its run (or the run reaches the end).
        idx = np.searchsorted(stops, run_starts)
        ends = np.where(idx < stops.size, stops[np.minimum(idx, stops.size - 1)]
                        if stops.size else opaque.size, opaque.size)
        return PreclassifiedVolume(
            rgba=rgba.astype(np.float32),
            opaque_fraction=float(opaque.mean()) if opaque.size else 0.0,
            run_starts=run_starts,
            run_lengths=(ends - run_starts).astype(np.int64),
        )

    def render(self, pre: PreclassifiedVolume) -> np.ndarray:
        """Composite sheared slices, then 2-D warp to the camera frame.

        Returns a premultiplied RGBA float32 image of the camera's size.
        """
        d = self.camera.view_direction
        c = int(np.argmax(np.abs(d)))  # principal axis
        a, b = [ax for ax in range(3) if ax != c]
        rgba = np.moveaxis(pre.rgba, c, 0)  # slices along axis 0
        nslices = rgba.shape[0]
        sign = 1.0 if d[c] > 0 else -1.0
        # shear per slice, in (a, b) pixels, so that slice stacks align
        # with the ray direction
        shear_a = -d[a] / d[c] * (rgba.shape[1] - 1) / max(nslices - 1, 1)
        shear_b = -d[b] / d[c] * (rgba.shape[2] - 1) / max(nslices - 1, 1)

        order = range(nslices) if sign > 0 else range(nslices - 1, -1, -1)
        inter = np.zeros(rgba.shape[1:3] + (4,), dtype=np.float32)
        for idx, k in enumerate(order):
            if sign > 0:
                offset = k
            else:
                offset = nslices - 1 - k
            sheared = _bilinear_shift(
                rgba[k], shear_a * offset * sign, shear_b * offset * sign
            )
            # front-to-back over: inter stays in front
            inter = inter + (1.0 - inter[..., 3:4]) * sheared
        return self._warp(inter, a, b)

    def _warp(self, inter: np.ndarray, axis_a: int, axis_b: int) -> np.ndarray:
        """Resample the sheared intermediate image to the camera frame."""
        h, w = self.camera.image_size
        right, up, _ = self.camera.basis()
        ea = np.zeros(3)
        ea[axis_a] = 1.0
        eb = np.zeros(3)
        eb[axis_b] = 1.0
        # world position of intermediate pixel (i, j) on the base plane
        na, nb = inter.shape[:2]
        sa = 1.0 / max(na - 1, 1)
        sb = 1.0 / max(nb - 1, 1)
        # camera-plane coordinates: cam_u = p . right, cam_v = p . up
        m = np.array(
            [
                [sa * (ea @ right), sb * (eb @ right)],
                [sa * (ea @ up), sb * (eb @ up)],
            ]
        )
        if abs(np.linalg.det(m)) < 1e-9:
            return np.zeros((h, w, 4), dtype=np.float32)
        minv = np.linalg.inv(m)
        center_world = np.array([0.5, 0.5, 0.5])
        cu0 = center_world @ right
        cv0 = center_world @ up
        extent = np.sqrt(3.0) / self.camera.zoom
        u = ((np.arange(w) + 0.5) / w - 0.5) * extent + cu0
        v = (0.5 - (np.arange(h) + 0.5) / h) * extent + cv0
        uu, vv = np.meshgrid(u, v, indexing="xy")
        # account for the base-plane offset: intermediate pixel (i, j) maps
        # to world ea*i*sa + eb*j*sb (+ component along axis c, which does
        # not affect orthographic cam coords beyond a constant we fold in
        # by projecting the origin of the base plane).
        src = minv @ np.stack([uu.ravel() - (0.0), vv.ravel() - (0.0)])
        ii = src[0].reshape(h, w)
        jj = src[1].reshape(h, w)
        return _bilinear_sample_2d(inter, ii, jj)


def _bilinear_sample_2d(img: np.ndarray, ii: np.ndarray, jj: np.ndarray) -> np.ndarray:
    """Sample (H, W, C) image at fractional coords, zero outside."""
    h, w = img.shape[:2]
    valid = (ii >= 0) & (ii <= h - 1) & (jj >= 0) & (jj <= w - 1)
    i = np.clip(ii, 0, h - 1.000001)
    j = np.clip(jj, 0, w - 1.000001)
    i0 = i.astype(np.int64)
    j0 = j.astype(np.int64)
    fi = (i - i0)[..., None]
    fj = (j - j0)[..., None]
    c00 = img[i0, j0]
    c01 = img[i0, j0 + 1]
    c10 = img[i0 + 1, j0]
    c11 = img[i0 + 1, j0 + 1]
    out = (
        c00 * (1 - fi) * (1 - fj)
        + c01 * (1 - fi) * fj
        + c10 * fi * (1 - fj)
        + c11 * fi * fj
    )
    return (out * valid[..., None]).astype(np.float32)
