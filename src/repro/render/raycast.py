"""Vectorized ray-casting volume renderer.

The paper uses "a parallel ray-casting volume renderer [16] … reasonably
optimized and capable of generating high quality images".  This is that
renderer's algorithm in NumPy: per-pixel parallel rays, front-to-back
alpha compositing of trilinearly-interpolated samples, early ray
termination, and subvolume (brick) rendering for the parallel
decomposition — each processor renders its brick *independent of other
processors*, producing a premultiplied partial RGBA image.

All rays advance together one sample at a time; the active-ray index set
shrinks as rays exit the box or saturate, so the inner loop touches only
live rays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.render.camera import Camera
from repro.render.transfer_function import TransferFunction

__all__ = [
    "render_volume",
    "sample_trilinear",
    "RayCaster",
    "cull_empty_space",
]

Box = tuple[tuple[float, float, float], tuple[float, float, float]]
_FULL_BOX: Box = ((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
_LUT_SIZE = 1024  # classification look-up-table resolution


def sample_trilinear(volume: np.ndarray, coords: np.ndarray) -> np.ndarray:
    """Trilinear interpolation of ``volume`` at ``(n, 3)`` voxel coords.

    Coordinates are clamped to the valid range (edge extension), matching
    a renderer that treats brick boundaries as repeated boundary voxels.
    """
    nx, ny, nz = volume.shape
    x = np.clip(coords[:, 0], 0.0, nx - 1.000001)
    y = np.clip(coords[:, 1], 0.0, ny - 1.000001)
    z = np.clip(coords[:, 2], 0.0, nz - 1.000001)
    x0 = x.astype(np.int64)
    y0 = y.astype(np.int64)
    z0 = z.astype(np.int64)
    fx = (x - x0).astype(np.float32)
    fy = (y - y0).astype(np.float32)
    fz = (z - z0).astype(np.float32)

    flat = volume.ravel()
    syz = ny * nz
    base = x0 * syz + y0 * nz + z0
    c000 = flat[base]
    c001 = flat[base + 1]
    c010 = flat[base + nz]
    c011 = flat[base + nz + 1]
    c100 = flat[base + syz]
    c101 = flat[base + syz + 1]
    c110 = flat[base + syz + nz]
    c111 = flat[base + syz + nz + 1]

    c00 = c000 * (1 - fz) + c001 * fz
    c01 = c010 * (1 - fz) + c011 * fz
    c10 = c100 * (1 - fz) + c101 * fz
    c11 = c110 * (1 - fz) + c111 * fz
    c0 = c00 * (1 - fy) + c01 * fy
    c1 = c10 * (1 - fy) + c11 * fy
    return c0 * (1 - fx) + c1 * fx


def cull_empty_space(
    volume: np.ndarray, threshold: float = 0.0, box: Box = _FULL_BOX
) -> tuple[np.ndarray, Box] | None:
    """Crop a volume to the voxels that can contribute.

    Empty-space culling for sparse data (the jet's plume occupies a
    small fraction of its grid): returns ``(cropped_volume, tight_box)``
    where the cropped array spans exactly ``tight_box`` in world space —
    ready to pass straight to :func:`render_volume`, which then marches
    rays only through the occupied region.  The crop is padded by one
    voxel per side so trilinear support at the cut is preserved, and the
    transfer function must map values ≤ ``threshold`` to zero opacity
    for the culled image to be exact.

    Returns ``None`` when nothing exceeds the threshold (a fully
    transparent frame).
    """
    vol = np.asarray(volume)
    if vol.ndim != 3:
        raise ValueError(f"volume must be 3-D, got {vol.shape}")
    occupied = vol > threshold
    if not occupied.any():
        return None
    lo_w = np.asarray(box[0], dtype=np.float64)
    hi_w = np.asarray(box[1], dtype=np.float64)
    span = hi_w - lo_w
    slices = []
    lo_idx = []
    hi_idx = []
    for axis in range(3):
        profile = occupied.any(axis=tuple(a for a in range(3) if a != axis))
        nz = np.flatnonzero(profile)
        a = max(int(nz[0]) - 1, 0)
        b = min(int(nz[-1]) + 1, vol.shape[axis] - 1)
        if b - a < 1:  # keep at least a 2-voxel slab for interpolation
            b = min(a + 1, vol.shape[axis] - 1)
            a = max(b - 1, 0)
        lo_idx.append(a)
        hi_idx.append(b)
        slices.append(slice(a, b + 1))
    denom = [max(n - 1, 1) for n in vol.shape]
    new_lo = tuple(
        float(lo_w[a] + span[a] * lo_idx[a] / denom[a]) for a in range(3)
    )
    new_hi = tuple(
        float(lo_w[a] + span[a] * hi_idx[a] / denom[a]) for a in range(3)
    )
    return np.ascontiguousarray(vol[tuple(slices)]), (new_lo, new_hi)


def _lambert_shade(
    vol: np.ndarray,
    coords: np.ndarray,
    scale: np.ndarray,
    light: np.ndarray,
    ambient: float,
) -> np.ndarray:
    """Lambertian term per sample from central-difference gradients.

    Gradients are taken in voxel space and rescaled to world space with
    ``scale`` so shading is consistent across anisotropic bricks; the
    absolute dot product lights both gradient orientations (volume data
    has no consistent surface orientation).
    """
    grad = np.empty((coords.shape[0], 3), dtype=np.float32)
    for axis in range(3):
        offset = np.zeros(3)
        offset[axis] = 1.0
        plus = sample_trilinear(vol, coords + offset)
        minus = sample_trilinear(vol, coords - offset)
        grad[:, axis] = (plus - minus) * (0.5 * scale[axis])
    norms = np.linalg.norm(grad, axis=1)
    safe = np.maximum(norms, 1e-12)
    diffuse = np.abs(grad @ light.astype(np.float32)) / safe
    # flat regions (no gradient) shade fully ambient-to-diffuse neutral
    diffuse = np.where(norms < 1e-8, 1.0, diffuse)
    return (ambient + (1.0 - ambient) * diffuse).astype(np.float32)


def _intersect_box(
    origins: np.ndarray, direction: np.ndarray, box: Box
) -> tuple[np.ndarray, np.ndarray]:
    """Slab-method entry/exit distances of each ray with ``box``.

    ``direction`` is either a shared ``(3,)`` vector (orthographic) or a
    per-ray ``(N, 3)`` array (perspective).
    """
    lo = np.asarray(box[0], dtype=np.float64)
    hi = np.asarray(box[1], dtype=np.float64)
    n = origins.shape[0]
    t0 = np.zeros(n)
    t1 = np.full(n, np.inf)
    per_ray = direction.ndim == 2
    for axis in range(3):
        d = direction[:, axis] if per_ray else direction[axis]
        o = origins[:, axis]
        if not per_ray:
            if abs(d) < 1e-12:
                outside = (o < lo[axis]) | (o > hi[axis])
                t1 = np.where(outside, -np.inf, t1)
                continue
            ta = (lo[axis] - o) / d
            tb = (hi[axis] - o) / d
        else:
            parallel = np.abs(d) < 1e-12
            safe = np.where(parallel, 1.0, d)
            ta = (lo[axis] - o) / safe
            tb = (hi[axis] - o) / safe
            if parallel.any():
                outside = parallel & ((o < lo[axis]) | (o > hi[axis]))
                t1 = np.where(outside, -np.inf, t1)
                # inside-and-parallel rays impose no constraint this axis
                ta = np.where(parallel, -np.inf, ta)
                tb = np.where(parallel, np.inf, tb)
        near = np.minimum(ta, tb)
        far = np.maximum(ta, tb)
        t0 = np.maximum(t0, near)
        t1 = np.minimum(t1, far)
    return t0, t1


def render_volume(
    volume: np.ndarray,
    tf: TransferFunction,
    camera: Camera,
    *,
    box: Box = _FULL_BOX,
    step: float | None = None,
    early_termination: float = 0.98,
    shading: bool = False,
    light_direction: tuple[float, float, float] = (-0.5, -0.3, -0.8),
    ambient: float = 0.35,
) -> np.ndarray:
    """Render a (sub)volume into a premultiplied RGBA float32 image.

    Parameters
    ----------
    volume:
        3-D float32 scalar grid in [0, 1].  When ``box`` is not the unit
        cube, the grid spans exactly ``box`` in world space — the brick a
        processor was assigned by the data-input stage.
    tf, camera:
        Classification and view.
    step:
        World-space sampling distance; defaults to half the smallest voxel
        spacing of the *full* volume implied by ``box``.
    early_termination:
        Accumulated-opacity threshold past which a ray stops.
    shading:
        Lambertian gradient shading ("high quality images", at the cost
        of six extra gradient taps per sample): sample color is scaled by
        ``ambient + (1-ambient)·|∇f · L|``.
    light_direction, ambient:
        Directional light (world space, normalized internally) and the
        ambient floor of the shading term.

    Returns
    -------
    ``(H, W, 4)`` float32 premultiplied-alpha image; pixels whose rays
    miss ``box`` keep alpha 0, so partial images composite with ``over``.
    """
    if volume.ndim != 3:
        raise ValueError(f"volume must be 3-D, got shape {volume.shape}")
    vol = np.ascontiguousarray(volume, dtype=np.float32)
    h, w = camera.image_size
    origins, direction = camera.rays()

    lo = np.asarray(box[0], dtype=np.float64)
    hi = np.asarray(box[1], dtype=np.float64)
    span = hi - lo
    if np.any(span <= 0):
        raise ValueError(f"degenerate box {box}")
    if step is None:
        # voxel spacing along each axis in world units
        spacing = span / np.maximum(np.asarray(vol.shape) - 1, 1)
        step = float(spacing.min()) * 0.5
    if step <= 0:
        raise ValueError("step must be positive")

    t0, t1 = _intersect_box(origins, direction, box)
    npix = origins.shape[0]
    rgb = np.zeros((npix, 3), dtype=np.float32)
    alpha = np.zeros(npix, dtype=np.float32)

    if shading:
        light = np.asarray(light_direction, dtype=np.float64)
        norm = np.linalg.norm(light)
        if norm < 1e-12 or not 0.0 <= ambient <= 1.0:
            raise ValueError("bad light_direction or ambient")
        light = light / norm

    per_ray = direction.ndim == 2
    active = np.flatnonzero(t1 > t0)
    if active.size:
        tcur = t0[active].copy()
        tend = t1[active]
        scale = (np.asarray(vol.shape, dtype=np.float64) - 1) / span
        dirv = direction.astype(np.float64)
        # Classification LUT: one opacity-corrected table lookup per
        # sample instead of four np.interp evaluations (~15% of frame
        # time); 1/1024 scalar quantization is far below voxel noise.
        lut = tf.sample(
            np.linspace(0.0, 1.0, _LUT_SIZE + 1, dtype=np.float32), step=step
        ).astype(np.float32)
        while active.size:
            # positions of this sample for all live rays
            d = dirv[active] if per_ray else dirv[None, :]
            pos = origins[active] + tcur[:, None] * d
            coords = (pos - lo[None, :]) * scale[None, :]
            values = sample_trilinear(vol, coords)
            idx = np.rint(values * _LUT_SIZE).astype(np.int64)
            np.clip(idx, 0, _LUT_SIZE, out=idx)
            rgba = lut[idx]
            if shading:
                shade = _lambert_shade(vol, coords, scale, light, ambient)
                rgba = rgba.copy()
                rgba[:, :3] *= shade[:, None]
            a_in = alpha[active]
            contrib = (1.0 - a_in) * rgba[:, 3]
            rgb[active] += contrib[:, None] * rgba[:, :3]
            alpha[active] = a_in + contrib
            tcur += step
            keep = (tcur < tend) & (alpha[active] < early_termination)
            if not keep.all():
                active = active[keep]
                tcur = tcur[keep]
                tend = tend[keep]

    out = np.concatenate([rgb, alpha[:, None]], axis=1)
    return out.reshape(h, w, 4)


@dataclass
class RayCaster:
    """A configured renderer: transfer function + camera + quality knobs.

    The per-frame entry point of the *local rendering* pipeline stage;
    ``render`` is stateless across calls, so one instance can be shared by
    all processors of a group.
    """

    tf: TransferFunction
    camera: Camera
    step: float | None = None
    early_termination: float = 0.98
    shading: bool = False

    def render(self, volume: np.ndarray, box: Box = _FULL_BOX) -> np.ndarray:
        return render_volume(
            volume,
            self.tf,
            self.camera,
            box=box,
            step=self.step,
            early_termination=self.early_termination,
            shading=self.shading,
        )
