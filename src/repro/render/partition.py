"""3-D data distribution: decomposing a volume into per-processor bricks.

The data-input stage "reads data from disk and distributes them to the
processor nodes — each processor receives a subset of the volume data".
Bricks come from recursive bisection along the longest axis, so any group
size (not just powers of two) gets a balanced, convex, axis-aligned
decomposition; neighbouring bricks share one voxel plane so trilinear
sampling is seamless across brick faces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Brick", "BrickDecomposition", "decompose"]

Box = tuple[tuple[float, float, float], tuple[float, float, float]]


@dataclass(frozen=True)
class Brick:
    """One processor's subvolume.

    ``index_ranges`` are half-open voxel ranges per axis **including** the
    shared boundary plane; ``box`` is the world-space extent (the unit cube
    is the full volume).
    """

    index_ranges: tuple[tuple[int, int], tuple[int, int], tuple[int, int]]
    box: Box

    @property
    def slices(self) -> tuple[slice, slice, slice]:
        return tuple(slice(a, b) for a, b in self.index_ranges)

    @property
    def shape(self) -> tuple[int, int, int]:
        return tuple(b - a for a, b in self.index_ranges)

    @property
    def center(self) -> np.ndarray:
        lo, hi = self.box
        return (np.asarray(lo) + np.asarray(hi)) / 2.0

    def extract(self, volume: np.ndarray) -> np.ndarray:
        """The brick's voxels from the full volume (a view)."""
        return volume[self.slices]

    @property
    def n_voxels(self) -> int:
        s = self.shape
        return s[0] * s[1] * s[2]


@dataclass(frozen=True)
class BrickDecomposition:
    """A full-volume decomposition into ``len(bricks)`` bricks."""

    shape: tuple[int, int, int]
    bricks: tuple[Brick, ...]

    def __len__(self) -> int:
        return len(self.bricks)

    def __iter__(self):
        return iter(self.bricks)

    def __getitem__(self, i: int) -> Brick:
        return self.bricks[i]


def _world(lo_idx: int, hi_idx: int, n: int) -> tuple[float, float]:
    """World-space extent of voxel index range [lo_idx, hi_idx)."""
    denom = max(n - 1, 1)
    return lo_idx / denom, (hi_idx - 1) / denom


def decompose(shape: tuple[int, int, int], n_bricks: int) -> BrickDecomposition:
    """Split ``shape`` into ``n_bricks`` balanced axis-aligned bricks.

    Recursive bisection: the region with the most voxels splits along its
    longest axis into two sub-regions whose target brick counts differ by
    at most one, so brick volumes stay within a factor ~2 of each other
    for any ``n_bricks``.
    """
    if n_bricks < 1:
        raise ValueError("n_bricks must be >= 1")
    if any(n < 2 for n in shape):
        raise ValueError(f"volume too small to decompose: {shape}")

    def split(ranges, count):
        if count == 1:
            return [ranges]
        sizes = [b - a for a, b in ranges]
        axis = int(np.argmax(sizes))
        a, b = ranges[axis]
        left_count = count // 2
        right_count = count - left_count
        # Split index proportional to the brick-count ratio; both halves
        # include the cut plane so interpolation never sees a gap.
        cut = a + max(1, round((b - a - 1) * left_count / count))
        cut = min(cut, b - 2)
        left = list(ranges)
        left[axis] = (a, cut + 1)
        right = list(ranges)
        right[axis] = (cut, b)
        return split(tuple(left), left_count) + split(tuple(right), right_count)

    full = tuple((0, n) for n in shape)
    max_bricks = 1
    for n in shape:
        max_bricks *= max(n - 1, 1)
    if n_bricks > max_bricks:
        raise ValueError(f"cannot make {n_bricks} bricks from shape {shape}")
    regions = split(full, n_bricks)
    bricks = []
    for ranges in regions:
        box_lo = []
        box_hi = []
        for axis, (a, b) in enumerate(ranges):
            w0, w1 = _world(a, b, shape[axis])
            box_lo.append(w0)
            box_hi.append(w1)
        bricks.append(Brick(index_ranges=tuple(ranges), box=(tuple(box_lo), tuple(box_hi))))
    return BrickDecomposition(shape=tuple(shape), bricks=tuple(bricks))
