"""Orthographic camera for the ray caster.

The volume occupies the unit cube [0,1]^3 in world space.  The camera is
parameterized by spherical angles around the cube center — the "viewing
position" a remote user manipulates through the display interface —
and yields one parallel ray per output pixel.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["Camera"]


@dataclass(frozen=True)
class Camera:
    """Orthographic or perspective view of the unit cube.

    Attributes
    ----------
    image_size:
        ``(height, width)`` of the output image in pixels.
    azimuth, elevation:
        View direction angles in degrees (rotation about +z, then tilt).
    zoom:
        1.0 frames the full cube diagonal; >1 magnifies (orthographic
        footprint, or vertical field of view under perspective).
    projection:
        ``"orthographic"`` (parallel rays, the classic parallel-renderer
        assumption) or ``"perspective"`` (rays from a single eye point).
    distance:
        Eye distance from the cube centre (perspective only).
    fov:
        Vertical field of view in degrees at ``zoom == 1`` (perspective
        only); the effective FOV is ``fov / zoom``.
    """

    image_size: tuple[int, int] = (256, 256)
    azimuth: float = 30.0
    elevation: float = 20.0
    zoom: float = 1.0
    projection: str = "orthographic"
    distance: float = 2.5
    fov: float = 45.0

    def __post_init__(self):
        h, w = self.image_size
        if h < 1 or w < 1:
            raise ValueError(f"bad image size {self.image_size}")
        if self.zoom <= 0:
            raise ValueError("zoom must be positive")
        if self.projection not in ("orthographic", "perspective"):
            raise ValueError(f"unknown projection {self.projection!r}")
        if self.distance <= 0:
            raise ValueError("distance must be positive")
        if not 0 < self.fov < 180:
            raise ValueError("fov must be in (0, 180) degrees")

    @property
    def view_direction(self) -> np.ndarray:
        """Unit vector pointing from the camera into the scene."""
        az = np.radians(self.azimuth)
        el = np.radians(self.elevation)
        d = -np.array(
            [
                np.cos(el) * np.cos(az),
                np.cos(el) * np.sin(az),
                np.sin(el),
            ],
            dtype=np.float64,
        )
        return d / np.linalg.norm(d)

    def basis(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Orthonormal ``(right, up, forward)`` camera frame."""
        forward = self.view_direction
        world_up = np.array([0.0, 0.0, 1.0])
        if abs(forward @ world_up) > 0.999:
            world_up = np.array([0.0, 1.0, 0.0])
        right = np.cross(forward, world_up)
        right /= np.linalg.norm(right)
        up = np.cross(right, forward)
        return right, up, forward

    @property
    def eye_position(self) -> np.ndarray | None:
        """Eye point for perspective cameras, ``None`` for orthographic."""
        if self.projection != "perspective":
            return None
        center = np.array([0.5, 0.5, 0.5])
        return center - self.view_direction * self.distance

    def rays(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-pixel rays ``(origins, directions)``.

        ``origins`` has shape ``(H*W, 3)`` (row-major pixel order).  For
        orthographic cameras ``directions`` is the shared unit forward
        vector of shape ``(3,)``; for perspective cameras it is per-pixel
        with shape ``(H*W, 3)`` (unit length), all emanating from the eye.
        """
        h, w = self.image_size
        right, up, forward = self.basis()
        center = np.array([0.5, 0.5, 0.5])
        # Pixel grid in camera plane coordinates; v flipped so that image
        # row 0 is the top of the picture.
        u = (np.arange(w) + 0.5) / w - 0.5
        v = 0.5 - (np.arange(h) + 0.5) / h

        if self.projection == "orthographic":
            extent = np.sqrt(3.0) / self.zoom  # cube diagonal at zoom 1
            uu, vv = np.meshgrid(u * extent, v * extent, indexing="xy")
            plane_origin = center - forward * 2.0
            origins = (
                plane_origin[None, :]
                + uu.reshape(-1, 1) * right[None, :]
                + vv.reshape(-1, 1) * up[None, :]
            )
            return origins, forward

        eye = center - forward * self.distance
        half = np.tan(np.radians(self.fov / self.zoom) / 2.0)
        aspect = w / h
        uu, vv = np.meshgrid(
            u * 2.0 * half * aspect, v * 2.0 * half, indexing="xy"
        )
        directions = (
            forward[None, :]
            + uu.reshape(-1, 1) * right[None, :]
            + vv.reshape(-1, 1) * up[None, :]
        )
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        origins = np.broadcast_to(eye, directions.shape).copy()
        return origins, directions

    def with_view(self, azimuth: float, elevation: float) -> "Camera":
        """A copy with a new viewing position (user-control callback)."""
        return replace(self, azimuth=azimuth, elevation=elevation)
