"""Codec interface and registry.

Every compressor in :mod:`repro.compress` implements the same two-method
byte-oriented interface so the display daemon (:mod:`repro.daemon`) can swap
compression methods at run time — the paper's display interface explicitly
allows the client to "instruct the system to change the compression method".

Codecs operating on images (JPEG and the two-phase combinations) additionally
accept/return ``(height, width, 3)`` ``uint8`` arrays through
:meth:`Codec.encode_image` / :meth:`Codec.decode_image`; the default
implementation round-trips through the flat byte interface with a small
shape header so that *every* codec can be used on images.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

__all__ = [
    "Codec",
    "CodecError",
    "LosslessCodec",
    "register_codec",
    "get_codec",
    "available_codecs",
]


class CodecError(ValueError):
    """Raised when a payload cannot be decoded (corrupt or mismatched)."""


class Codec(ABC):
    """Abstract byte-stream compressor.

    Subclasses must define :attr:`name`, :attr:`lossless`, and the two
    byte-level methods.  ``encode``/``decode`` must be inverses for lossless
    codecs; for lossy codecs only the image interface has round-trip
    guarantees (up to the quality setting).
    """

    #: registry key; subclasses override.
    name: str = "abstract"
    #: whether decode(encode(x)) == x holds exactly.
    lossless: bool = True

    @abstractmethod
    def encode(self, data: bytes) -> bytes:
        """Compress ``data`` and return the payload bytes."""

    @abstractmethod
    def decode(self, payload: bytes) -> bytes:
        """Invert :meth:`encode`.  Raises :class:`CodecError` on corruption."""

    # -- image interface ---------------------------------------------------

    _IMG_MAGIC = b"RIMG"

    def encode_image(self, image: np.ndarray) -> bytes:
        """Compress an ``(H, W, 3)`` or ``(H, W)`` ``uint8`` image.

        The default implementation prefixes a 13-byte shape header and
        defers to :meth:`encode` on the raw pixels; transform codecs
        override this to exploit 2-D structure.
        """
        arr = _check_image(image)
        channels = 1 if arr.ndim == 2 else arr.shape[2]
        header = self._IMG_MAGIC + struct.pack(
            "<IIB", arr.shape[0], arr.shape[1], channels
        )
        return header + self.encode(arr.tobytes())

    def decode_image(self, payload: bytes) -> np.ndarray:
        """Invert :meth:`encode_image`."""
        if len(payload) < 13 or payload[:4] != self._IMG_MAGIC:
            raise CodecError(f"{self.name}: bad or truncated image header")
        h, w, c = struct.unpack("<IIB", payload[4:13])
        raw = self.decode(payload[13:])
        expected = h * w * c
        if len(raw) != expected:
            raise CodecError(
                f"{self.name}: decoded {len(raw)} bytes, expected {expected}"
            )
        arr = np.frombuffer(raw, dtype=np.uint8)
        return arr.reshape((h, w) if c == 1 else (h, w, c))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "lossless" if self.lossless else "lossy"
        return f"<{type(self).__name__} name={self.name!r} ({kind})>"


class LosslessCodec(Codec):
    """Marker base class for exactly-invertible codecs."""

    lossless = True


def _check_image(image: np.ndarray) -> np.ndarray:
    arr = np.ascontiguousarray(image)
    if arr.dtype != np.uint8:
        raise CodecError(f"image must be uint8, got {arr.dtype}")
    if arr.ndim not in (2, 3) or (arr.ndim == 3 and arr.shape[2] not in (1, 3)):
        raise CodecError(f"image must be (H,W) or (H,W,1|3), got {arr.shape}")
    return arr


class _RawCodec(LosslessCodec):
    """Identity codec — the paper's "Raw" row in Table 1."""

    name = "raw"

    def encode(self, data: bytes) -> bytes:
        return bytes(data)

    def decode(self, payload: bytes) -> bytes:
        return bytes(payload)


_REGISTRY: dict[str, Callable[[], Codec]] = {}


def register_codec(name: str, factory: Callable[[], Codec]) -> None:
    """Register a codec factory under ``name`` (case-insensitive)."""
    _REGISTRY[name.lower()] = factory


def get_codec(name: str, **kwargs) -> Codec:
    """Instantiate a registered codec.

    ``kwargs`` are forwarded to the factory (e.g. ``quality=75`` for JPEG,
    including through the two-phase names ``"jpeg+lzo"``/``"jpeg+bzip"``).
    """
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_codecs() -> list[str]:
    """Names accepted by :func:`get_codec`, sorted."""
    return sorted(_REGISTRY)


register_codec("raw", lambda: _RawCodec())
