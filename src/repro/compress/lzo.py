"""LZO-style fast Lempel–Ziv codec.

The paper picks LZO because it "offers fast compression and very fast
decompression … favors speed over compression ratio".  This module
implements a codec in the same family from scratch: byte-aligned LZSS with a
hash-chain match finder and greedy parsing.  Like real LZO it has

- *compression levels* — higher levels probe the hash chain deeper for a
  better ratio at slower speed;
- *allocation-free decompression* — the decoder needs only the output
  buffer;
- *byte-aligned output* — no bit I/O anywhere on the hot path.

Stream format (after an 8-byte header of magic + original length): groups of
a flag byte followed by eight items, MSB-first; flag bit 1 = match (2-byte
little-endian distance ≥ 1, then 1 byte of length − 3), flag bit 0 = one
literal byte.  Matches span 3..258 bytes and may overlap their source, which
is what makes runs cheap.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compress.base import CodecError, LosslessCodec, register_codec
from repro.compress.scan import POPCOUNT, orbit_positions

__all__ = ["LZOCodec"]

_MAGIC = b"RLZO"
_MIN_MATCH = 3
_MAX_MATCH = 258
_MAX_DIST = 65535
# 16 bits so hashes fit uint16: np.argsort(kind="stable") then radix-sorts
# the bucket keys, which is over 2x faster than a comparison sort of a
# combined (hash, position) key.  Window-value equality filters the extra
# collisions a shorter hash admits.
_HASH_BITS = 16


_CHUNK = 16  # bytes compared per extension round
# Greedy parse segment: matches never cross a segment end, so each
# segment's token chain can be pointer-doubled independently over a
# 32 KiB domain instead of the whole stream.
_SEG = 1 << 15

# Shared read-only ramp caches, grown on demand: callers must never
# mutate the returned slices.
_IOTA = np.zeros(0, dtype=np.int64)
_IOTA32 = np.zeros(0, dtype=np.int32)
_SEGRAMP = np.zeros(0, dtype=np.int32)
_ITEM_RAMP = np.zeros(0, dtype=np.int64)


def _iota(k: int) -> np.ndarray:
    """``arange(k)`` from a shared read-only cache."""
    global _IOTA
    if _IOTA.size < k:
        _IOTA = np.arange(max(k, 2 * _IOTA.size), dtype=np.int64)
    return _IOTA[:k]


def _iota32(k: int) -> np.ndarray:
    """``arange(k)`` as int32, from a shared read-only cache."""
    global _IOTA32
    if _IOTA32.size < k:
        _IOTA32 = np.arange(max(k, 2 * _IOTA32.size), dtype=np.int32)
    return _IOTA32[:k]


def _segramp(k: int) -> np.ndarray:
    """Bytes remaining in the parse segment at each position (incl. it)."""
    global _SEGRAMP
    if _SEGRAMP.size < k:
        i = np.arange(max(k, 2 * _SEGRAMP.size), dtype=np.int32)
        _SEGRAMP = np.int32(_SEG) - (i & np.int32(_SEG - 1))
    return _SEGRAMP[:k]


def _item_ramp(k: int) -> np.ndarray:
    """``i + (i >> 3) + 1`` per token: item offset assuming all-literal
    groups (one flag byte per eight tokens), from a shared cache."""
    global _ITEM_RAMP
    if _ITEM_RAMP.size < k:
        i = np.arange(max(k, 2 * _ITEM_RAMP.size), dtype=np.int64)
        _ITEM_RAMP = i + (i >> 3) + 1
    return _ITEM_RAMP[:k]


def _extend_matches(
    arr: np.ndarray, src: np.ndarray, dst: np.ndarray, caps: np.ndarray
) -> np.ndarray:
    """Vectorized longest-common-prefix of ``arr[src:]`` vs ``arr[dst:]``.

    All pairs are already verified equal on their first 4 bytes; each
    round compares one 16-byte chunk per still-active pair through a
    sliding-window view (two row gathers + one byte-wise comparison), so
    the round count is ``max_lcp / 16``, not per byte, and pairs drop out
    of the active set as soon as they mismatch or hit their cap.
    """
    m = src.size
    lcp = np.minimum(np.int64(4), caps)
    if m == 0:
        return lcp
    pad = np.zeros(arr.size + _CHUNK, dtype=np.uint8)
    pad[: arr.size] = arr
    win = np.lib.stride_tricks.sliding_window_view(pad, _CHUNK)
    active = np.flatnonzero(lcp < caps)
    while active.size:
        s = src[active] + lcp[active]
        d = dst[active] + lcp[active]
        eq = win[s] == win[d]
        full = eq.all(axis=1)
        adv = np.where(full, _CHUNK, np.argmin(eq, axis=1))
        lcp[active] = np.minimum(lcp[active] + adv, caps[active])
        active = active[full & (lcp[active] < caps[active])]
    return lcp


class LZOCodec(LosslessCodec):
    """Fast byte-aligned LZ77 codec.

    Parameters
    ----------
    level:
        1 (fastest, single hash probe — the default, matching LZO1X-1's
        position in the speed/ratio space) through 9 (deepest chain search).
    """

    name = "lzo"

    def __init__(self, level: int = 1):
        if not 1 <= level <= 9:
            raise ValueError("level must be in 1..9")
        self.level = level
        # Probes per position: 1 at level 1 up to 64 at level 9.
        self._probes = 1 << ((level - 1) // 2 + (1 if level > 1 else 0))

    # -- encoding ----------------------------------------------------------

    def encode(self, data: bytes) -> bytes:
        """Vectorized greedy LZ parse.

        The stream splits into two kinds of positions, resolved by two
        disjoint vectorized mechanisms:

        1. **Run interiors** — a position strictly inside a constant byte
           run has a guaranteed distance-1 match whose greedy length is
           the closed form ``run_end - pos``; no hashing, no search.  On
           rendered frames this is the overwhelming majority.
        2. **Run boundaries** — only the remaining positions enter the
           hash machinery: one stable sort of their window hashes (the
           sorted bucket *is* the hash chain, nearest prior occurrence
           adjacent), 4-byte window equality to drop collisions, then
           :func:`_extend_matches` grows all surviving matches at once
           in 16-byte rounds.

        The greedy parse itself is the orbit of position 0 under
        ``i -> i + step(i)`` (``step`` = match length, or 1 for a
        literal), pointer-doubled per 32 KiB segment
        (:func:`~repro.compress.scan.orbit_positions` — the exact dual
        of the vectorized decoder's record walk).  Matches are clamped
        at segment ends so segments parse independently.  Emission
        scatters flags, literals and match records in one pass each.

        The stream format is unchanged and every emitted match is
        verified against the actual bytes, so any decoder (including the
        seed's) accepts the output; the parse may pick different —
        typically better — matches than the sequential hash-chain walk.
        """
        n = len(data)
        header = _MAGIC + struct.pack("<I", n)
        if n < _MIN_MATCH + 1:
            # Too short to ever match; emit all-literal groups.
            return header + self._encode_all_literals(data)

        arr = np.frombuffer(data, dtype=np.uint8)
        m = n - 3  # positions with a full 4-byte window

        # Constant-run geometry: id and distance-to-run-end per position.
        neq = arr[1:] != arr[:-1]
        run_id = np.empty(n, dtype=np.intp)
        run_id[0] = 0
        np.cumsum(neq, dtype=np.intp, out=run_id[1:])
        rend = np.append(np.flatnonzero(neq) + 1, n).astype(np.int32)
        d2e = rend[run_id]
        d2e -= _iota32(n)

        # Run-interior positions: guaranteed distance-1 match of length
        # min(d2e, 258, segment remainder) — accepted without search.
        sm = np.minimum(d2e, _segramp(n))
        np.minimum(sm, np.int32(_MAX_MATCH), out=sm)
        auto = sm >= np.int32(_MIN_MATCH)
        auto[0] = False
        auto[1:] &= ~neq  # run starts are boundaries, not interiors
        steps = np.where(auto, sm, np.int32(1))

        best_len = np.zeros(n, dtype=np.int32)
        best_dist = np.ones(n, dtype=np.int32)  # interior matches: dist 1
        # Boundary set: only these positions need hash-chain probing.
        bnd = np.flatnonzero(~auto[:m])
        k = bnd.size
        matched: list[np.ndarray] = []
        if k > 1:
            vals = (
                arr[bnd].astype(np.uint32)
                | (arr[bnd + 1].astype(np.uint32) << np.uint32(8))
                | (arr[bnd + 2].astype(np.uint32) << np.uint32(16))
                | (arr[bnd + 3].astype(np.uint32) << np.uint32(24))
            )
            hashes = (
                (vals * np.uint32(2654435761))
                >> np.uint32(32 - _HASH_BITS)
            ).astype(np.uint16)
            # Stable sort on the bucket key alone: within a bucket,
            # sorted neighbors are the nearest prior occurrences.
            order = np.argsort(hashes, kind="stable")
            h_sorted = hashes[order]
            same = np.empty(k, dtype=bool)
            same[0] = False
            np.equal(h_sorted[1:], h_sorted[:-1], out=same[1:])
            ridx = None
            for probe in range(1, self._probes + 1):
                if probe == 1:
                    # ridx >= 1 is just "not a bucket head" — the common
                    # single-probe level never pays for the full rank scan.
                    sel = np.flatnonzero(same)
                else:
                    if ridx is None:
                        # index of each sorted slot within its bucket
                        ridx = np.arange(k, dtype=np.int64)
                        ridx -= np.maximum.accumulate(
                            np.where(same, 0, ridx)
                        )
                    sel = np.flatnonzero(ridx >= probe)
                if sel.size == 0:
                    break
                pi = order[sel]
                ci = order[sel - probe]
                pos = bnd[pi]
                cand = bnd[ci]
                dist = pos - cand
                # Same-hash neighbors whose windows genuinely match (hash
                # collisions drop out here) and are near enough to encode.
                ok = (dist <= _MAX_DIST) & (vals[ci] == vals[pi])
                pos = pos[ok]
                cand = cand[ok]
                if pos.size == 0:
                    continue
                caps = np.minimum(np.int64(_MAX_MATCH), np.int64(n) - pos)
                # Pairs that sit entirely inside one constant run have
                # the closed-form LCP ``run_end - pos`` and skip the
                # chunked extension loop.
                in_run = run_id[cand] == run_id[pos + 3]
                length = np.empty(pos.size, dtype=np.int64)
                length[in_run] = np.minimum(
                    d2e[pos[in_run]], caps[in_run]
                )
                gen = ~in_run
                length[gen] = _extend_matches(
                    arr, cand[gen], pos[gen], caps[gen]
                )
                # positions are unique within a probe (order is a
                # permutation), so plain indexed updates suffice; ties keep
                # the earlier (nearer) probe's smaller distance via the
                # strict compare.
                better = length > best_len[pos]
                upd = pos[better]
                best_len[upd] = length[better]
                best_dist[upd] = dist[ok][better]
                matched.append(upd)
        if matched:
            mm = (
                matched[0]
                if len(matched) == 1
                else np.concatenate(matched)
            )
            # Duplicate updates across probes all gather the same final
            # best_len, so last-write-wins is deterministic.
            lv = np.minimum(best_len[mm], _segramp(n)[mm])
            good = lv >= np.int32(_MIN_MATCH)
            steps[mm[good]] = lv[good]

        # Greedy parse: token starts are the orbit of each segment start
        # under ``i -> i + step(i)``.  Steps never cross a segment end,
        # so each 32 KiB segment pointer-doubles over its own small
        # domain (log2(tokens-per-segment) passes of segment-size work).
        tparts = []
        for s0 in range(0, n, _SEG):
            seg = min(_SEG, n - s0)
            tp = orbit_positions(_iota(seg) + steps[s0 : s0 + seg], seg)
            if s0:
                tp += s0
            tparts.append(tp)
        tpos = tparts[0] if len(tparts) == 1 else np.concatenate(tparts)
        tlen = steps[tpos]
        midx = np.flatnonzero(tlen >= np.int32(_MIN_MATCH))
        mlen = tlen[midx].astype(np.int64)
        mdist = best_dist[tpos[midx]].astype(np.int64)
        return header + _emit_tokens(arr, tpos, midx, mlen, mdist)

    @staticmethod
    def _encode_all_literals(data: bytes) -> bytes:  # short-input fallback
        out = bytearray()
        for start in range(0, len(data), 8):
            chunk = data[start : start + 8]
            out.append(0)
            out += chunk
        return bytes(out)

    # -- decoding ----------------------------------------------------------

    def decode(self, payload: bytes) -> bytes:
        """Vectorized decode.

        The token stream parses without executing it: a flag byte fully
        determines its group's size (``9 + 2 * popcount``), so pointer
        doubling enumerates every group position, ``np.unpackbits`` expands
        the flags, and all literals scatter into the output in one pass.
        Only matches — which genuinely depend on earlier output — run in a
        Python loop, and each is a NumPy slice copy, so the loop count is
        the number of matches, not the number of bytes.
        """
        if len(payload) < 8 or payload[:4] != _MAGIC:
            raise CodecError("lzo: bad or truncated header")
        (orig_len,) = struct.unpack_from("<I", payload, 4)
        if orig_len == 0:
            return b""
        buf = np.frombuffer(payload, dtype=np.uint8)
        body = buf[8:]
        limit = body.size
        if limit == 0:
            raise CodecError("lzo: truncated stream")
        jump = (
            np.arange(limit, dtype=np.int64)
            + 9
            + 2 * POPCOUNT[body[:limit]]
        )
        gpos = orbit_positions(jump, limit)
        # Per-item geometry, groups laid out as if all were full (the final
        # group may be partial; its phantom items are trimmed below).
        is_match = np.unpackbits(body[gpos]).reshape(-1, 8).astype(bool)
        isize = np.where(is_match, 3, 1)
        ipos = (
            gpos[:, None] + np.cumsum(isize, axis=1) - isize + 1
        ).reshape(-1)
        is_match = is_match.reshape(-1)
        isize = isize.reshape(-1)
        inside = ipos + isize <= limit
        out_len = np.where(is_match, 0, 1)
        m_in = is_match & inside
        out_len[m_in] = body[ipos[m_in] + 2].astype(np.int64) + _MIN_MATCH
        # An item is consumed iff output is still short when it starts.
        starts = np.cumsum(out_len) - out_len
        needed = starts < orig_len
        if (needed & ~inside).any():
            first = int(np.flatnonzero(needed & ~inside)[0])
            raise CodecError(
                "lzo: truncated match" if is_match[first] else "lzo: truncated literal"
            )
        produced = int(out_len[needed].sum()) if needed.any() else 0
        if produced < orig_len:
            raise CodecError("lzo: truncated stream")
        if produced > orig_len:
            raise CodecError("lzo: length mismatch after decode")
        ipos = ipos[needed]
        is_match = is_match[needed]
        starts = starts[needed]
        out_len = out_len[needed]
        scatter = np.zeros(orig_len, dtype=np.uint8)
        scatter[starts[~is_match]] = body[ipos[~is_match]]
        m_pos = ipos[is_match]
        m_start = starts[is_match]
        dist = body[m_pos].astype(np.int64) | (
            body[m_pos + 1].astype(np.int64) << 8
        )
        if (dist == 0).any() or (m_start - dist < 0).any():
            raise CodecError("lzo: match distance out of range")
        # Matches genuinely depend on earlier output, so they run in
        # stream order — but as C-speed bytearray slice copies, one per
        # match, never per byte.
        out = bytearray(scatter)
        for s, d, ln in zip(
            m_start.tolist(),
            (m_start - dist).tolist(),
            out_len[is_match].tolist(),
        ):
            if s - d >= ln:
                out[s : s + ln] = out[d : d + ln]
            else:  # overlapping copy: replicate the window
                window = bytes(out[d:s])
                reps = -(-ln // len(window))
                out[s : s + ln] = (window * reps)[:ln]
        return bytes(out)


def _emit_tokens(
    arr: np.ndarray,
    tpos: np.ndarray,
    midx: np.ndarray,
    mlen: np.ndarray,
    mdist: np.ndarray,
) -> bytes:
    """Scatter the parsed tokens into the flag-grouped stream layout.

    ``tpos`` are the token start positions in stream order; token
    ``midx[j]`` is a match of ``mlen[j]`` bytes at distance ``mdist[j]``,
    every other token a literal.  Every byte position is pure arithmetic
    over the token sizes (1 literal byte or 3 match bytes, plus one flag
    byte ahead of each group of eight tokens), so flags, literals and
    match records each land in one fancy-index store.
    """
    t = tpos.size
    k = midx.size
    # item offset of token i = i + (i >> 3) + 1 + 2 * (matches before i):
    # a cached ramp plus a cumsum over the scattered match surcharges.
    grow = np.zeros(t + 1, dtype=np.int64)
    grow[midx + 1] = 2
    ipos = np.cumsum(grow[:t])
    ipos += _item_ramp(t)
    out = np.zeros(t + 2 * k + ((t + 7) >> 3), dtype=np.uint8)
    # Write every token's first byte as its literal, then overwrite the
    # k match records — cheaper than masking the literals out.
    out[ipos] = arr[tpos]
    mp = ipos[midx]
    out[mp] = mdist & 0xFF
    out[mp + 1] = mdist >> 8
    out[mp + 2] = mlen - _MIN_MATCH
    # Flag bytes, MSB-first within a group of eight tokens; a partial
    # final group keeps its low bits zero — exactly the sequential
    # writer's ``flags << (8 - nflags)``.  ``out`` is zero-initialized,
    # so only the groups that contain a match need a write; group g's
    # flag byte sits one before its first item (``ipos[8g] - 1``).
    if k:
        fb = np.bincount(midx >> 3, weights=np.int64(128) >> (midx & 7))
        grp = np.flatnonzero(fb)
        out[ipos[grp << 3] - 1] = fb[grp].astype(np.uint8)
    return out.tobytes()


register_codec("lzo", lambda **kw: LZOCodec(**kw))
