"""LZO-style fast Lempel–Ziv codec.

The paper picks LZO because it "offers fast compression and very fast
decompression … favors speed over compression ratio".  This module
implements a codec in the same family from scratch: byte-aligned LZSS with a
hash-chain match finder and greedy parsing.  Like real LZO it has

- *compression levels* — higher levels probe the hash chain deeper for a
  better ratio at slower speed;
- *allocation-free decompression* — the decoder needs only the output
  buffer;
- *byte-aligned output* — no bit I/O anywhere on the hot path.

Stream format (after an 8-byte header of magic + original length): groups of
a flag byte followed by eight items, MSB-first; flag bit 1 = match (2-byte
little-endian distance ≥ 1, then 1 byte of length − 3), flag bit 0 = one
literal byte.  Matches span 3..258 bytes and may overlap their source, which
is what makes runs cheap.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compress.base import CodecError, LosslessCodec, register_codec
from repro.compress.scan import POPCOUNT, orbit_positions

__all__ = ["LZOCodec"]

_MAGIC = b"RLZO"
_MIN_MATCH = 3
_MAX_MATCH = 258
_MAX_DIST = 65535
_HASH_BITS = 17


def _hash_all(arr: np.ndarray) -> np.ndarray:
    """Fibonacci hash of every 4-byte window, one slot per position."""
    if arr.size < 4:
        return np.zeros(0, dtype=np.int64)
    a = arr.astype(np.uint32)
    vals = a[:-3] | (a[1:-2] << 8) | (a[2:-1] << 16) | (a[3:] << 24)
    return ((vals * np.uint32(2654435761)) >> np.uint32(32 - _HASH_BITS)).astype(
        np.int64
    )


class LZOCodec(LosslessCodec):
    """Fast byte-aligned LZ77 codec.

    Parameters
    ----------
    level:
        1 (fastest, single hash probe — the default, matching LZO1X-1's
        position in the speed/ratio space) through 9 (deepest chain search).
    """

    name = "lzo"

    def __init__(self, level: int = 1):
        if not 1 <= level <= 9:
            raise ValueError("level must be in 1..9")
        self.level = level
        # Probes per position: 1 at level 1 up to 64 at level 9.
        self._probes = 1 << ((level - 1) // 2 + (1 if level > 1 else 0))

    # -- encoding ----------------------------------------------------------

    def encode(self, data: bytes) -> bytes:
        n = len(data)
        header = _MAGIC + struct.pack("<I", n)
        if n < _MIN_MATCH + 1:
            # Too short to ever match; emit all-literal groups.
            return header + self._encode_all_literals(data)

        arr = np.frombuffer(data, dtype=np.uint8)
        hashes = _hash_all(arr)
        head = np.full(1 << _HASH_BITS, -1, dtype=np.int64)
        chain = np.full(n, -1, dtype=np.int64) if self._probes > 1 else None

        out = bytearray()
        flags = 0
        nflags = 0
        items = bytearray()
        i = 0
        hash_limit = hashes.size
        probes = self._probes

        def flush() -> None:
            nonlocal flags, nflags
            out.append(flags << (8 - nflags))
            out.extend(items)
            items.clear()
            flags = 0
            nflags = 0

        while i < n:
            best_len = 0
            best_dist = 0
            if i < hash_limit:
                h = int(hashes[i])
                cand = int(head[h])
                tries = probes
                max_len = min(_MAX_MATCH, n - i)
                while cand >= 0 and tries > 0:
                    # Run-ahead insertion (below) can leave positions >= i in
                    # the table; they are not valid match sources yet.
                    if cand < i:
                        if i - cand > _MAX_DIST:
                            break  # chain only gets older from here
                        length = _match_length(data, cand, i, max_len)
                        if length > best_len:
                            best_len = length
                            best_dist = i - cand
                            if length >= max_len:
                                break
                    if chain is None:
                        break
                    cand = int(chain[cand])
                    tries -= 1

            if best_len >= _MIN_MATCH:
                flags = (flags << 1) | 1
                items += struct.pack("<HB", best_dist, best_len - _MIN_MATCH)
                # Insert skipped positions into the dictionary (bounded so
                # long runs stay O(1) per token at level 1).
                insert_end = min(i + (best_len if probes > 1 else 8), hash_limit)
                for j in range(i, insert_end):
                    hj = int(hashes[j])
                    if chain is not None:
                        chain[j] = head[hj]
                    head[hj] = j
                i += best_len
            else:
                flags = flags << 1
                items.append(data[i])
                if i < hash_limit:
                    if chain is not None:
                        chain[i] = head[h]
                    head[h] = i
                i += 1
            nflags += 1
            if nflags == 8:
                flush()
        if nflags:
            flush()
        return header + bytes(out)

    @staticmethod
    def _encode_all_literals(data: bytes) -> bytes:
        out = bytearray()
        for start in range(0, len(data), 8):
            chunk = data[start : start + 8]
            out.append(0)
            out += chunk
        return bytes(out)

    # -- decoding ----------------------------------------------------------

    def decode(self, payload: bytes) -> bytes:
        """Vectorized decode.

        The token stream parses without executing it: a flag byte fully
        determines its group's size (``9 + 2 * popcount``), so pointer
        doubling enumerates every group position, ``np.unpackbits`` expands
        the flags, and all literals scatter into the output in one pass.
        Only matches — which genuinely depend on earlier output — run in a
        Python loop, and each is a NumPy slice copy, so the loop count is
        the number of matches, not the number of bytes.
        """
        if len(payload) < 8 or payload[:4] != _MAGIC:
            raise CodecError("lzo: bad or truncated header")
        (orig_len,) = struct.unpack_from("<I", payload, 4)
        if orig_len == 0:
            return b""
        buf = np.frombuffer(payload, dtype=np.uint8)
        body = buf[8:]
        limit = body.size
        if limit == 0:
            raise CodecError("lzo: truncated stream")
        jump = (
            np.arange(limit, dtype=np.int64)
            + 9
            + 2 * POPCOUNT[body[:limit]]
        )
        gpos = orbit_positions(jump, limit)
        # Per-item geometry, groups laid out as if all were full (the final
        # group may be partial; its phantom items are trimmed below).
        is_match = np.unpackbits(body[gpos]).reshape(-1, 8).astype(bool)
        isize = np.where(is_match, 3, 1)
        ipos = (
            gpos[:, None] + np.cumsum(isize, axis=1) - isize + 1
        ).reshape(-1)
        is_match = is_match.reshape(-1)
        isize = isize.reshape(-1)
        inside = ipos + isize <= limit
        out_len = np.where(is_match, 0, 1)
        m_in = is_match & inside
        out_len[m_in] = body[ipos[m_in] + 2].astype(np.int64) + _MIN_MATCH
        # An item is consumed iff output is still short when it starts.
        starts = np.cumsum(out_len) - out_len
        needed = starts < orig_len
        if (needed & ~inside).any():
            first = int(np.flatnonzero(needed & ~inside)[0])
            raise CodecError(
                "lzo: truncated match" if is_match[first] else "lzo: truncated literal"
            )
        produced = int(out_len[needed].sum()) if needed.any() else 0
        if produced < orig_len:
            raise CodecError("lzo: truncated stream")
        if produced > orig_len:
            raise CodecError("lzo: length mismatch after decode")
        ipos = ipos[needed]
        is_match = is_match[needed]
        starts = starts[needed]
        out_len = out_len[needed]
        scatter = np.zeros(orig_len, dtype=np.uint8)
        scatter[starts[~is_match]] = body[ipos[~is_match]]
        m_pos = ipos[is_match]
        m_start = starts[is_match]
        dist = body[m_pos].astype(np.int64) | (
            body[m_pos + 1].astype(np.int64) << 8
        )
        if (dist == 0).any() or (m_start - dist < 0).any():
            raise CodecError("lzo: match distance out of range")
        # Matches genuinely depend on earlier output, so they run in
        # stream order — but as C-speed bytearray slice copies, one per
        # match, never per byte.
        out = bytearray(scatter)
        for s, d, ln in zip(
            m_start.tolist(),
            (m_start - dist).tolist(),
            out_len[is_match].tolist(),
        ):
            if s - d >= ln:
                out[s : s + ln] = out[d : d + ln]
            else:  # overlapping copy: replicate the window
                window = bytes(out[d:s])
                reps = -(-ln // len(window))
                out[s : s + ln] = (window * reps)[:ln]
        return bytes(out)


def _match_length(data: bytes, src: int, dst: int, max_len: int) -> int:
    """Longest common prefix of data[src:] and data[dst:], capped."""
    length = 0
    # Chunked comparison first (C-speed), then the byte tail.
    while length + 16 <= max_len and (
        data[src + length : src + length + 16]
        == data[dst + length : dst + length + 16]
    ):
        length += 16
    while length < max_len and data[src + length] == data[dst + length]:
        length += 1
    return length


register_codec("lzo", lambda **kw: LZOCodec(**kw))
