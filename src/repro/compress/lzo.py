"""LZO-style fast Lempel–Ziv codec.

The paper picks LZO because it "offers fast compression and very fast
decompression … favors speed over compression ratio".  This module
implements a codec in the same family from scratch: byte-aligned LZSS with a
hash-chain match finder and greedy parsing.  Like real LZO it has

- *compression levels* — higher levels probe the hash chain deeper for a
  better ratio at slower speed;
- *allocation-free decompression* — the decoder needs only the output
  buffer;
- *byte-aligned output* — no bit I/O anywhere on the hot path.

Stream format (after an 8-byte header of magic + original length): groups of
a flag byte followed by eight items, MSB-first; flag bit 1 = match (2-byte
little-endian distance ≥ 1, then 1 byte of length − 3), flag bit 0 = one
literal byte.  Matches span 3..258 bytes and may overlap their source, which
is what makes runs cheap.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compress.base import CodecError, LosslessCodec, register_codec

__all__ = ["LZOCodec"]

_MAGIC = b"RLZO"
_MIN_MATCH = 3
_MAX_MATCH = 258
_MAX_DIST = 65535
_HASH_BITS = 17


def _hash_all(arr: np.ndarray) -> np.ndarray:
    """Fibonacci hash of every 4-byte window, one slot per position."""
    if arr.size < 4:
        return np.zeros(0, dtype=np.int64)
    a = arr.astype(np.uint32)
    vals = a[:-3] | (a[1:-2] << 8) | (a[2:-1] << 16) | (a[3:] << 24)
    return ((vals * np.uint32(2654435761)) >> np.uint32(32 - _HASH_BITS)).astype(
        np.int64
    )


class LZOCodec(LosslessCodec):
    """Fast byte-aligned LZ77 codec.

    Parameters
    ----------
    level:
        1 (fastest, single hash probe — the default, matching LZO1X-1's
        position in the speed/ratio space) through 9 (deepest chain search).
    """

    name = "lzo"

    def __init__(self, level: int = 1):
        if not 1 <= level <= 9:
            raise ValueError("level must be in 1..9")
        self.level = level
        # Probes per position: 1 at level 1 up to 64 at level 9.
        self._probes = 1 << ((level - 1) // 2 + (1 if level > 1 else 0))

    # -- encoding ----------------------------------------------------------

    def encode(self, data: bytes) -> bytes:
        n = len(data)
        header = _MAGIC + struct.pack("<I", n)
        if n < _MIN_MATCH + 1:
            # Too short to ever match; emit all-literal groups.
            return header + self._encode_all_literals(data)

        arr = np.frombuffer(data, dtype=np.uint8)
        hashes = _hash_all(arr)
        head = np.full(1 << _HASH_BITS, -1, dtype=np.int64)
        chain = np.full(n, -1, dtype=np.int64) if self._probes > 1 else None

        out = bytearray()
        flags = 0
        nflags = 0
        items = bytearray()
        i = 0
        hash_limit = hashes.size
        probes = self._probes

        def flush() -> None:
            nonlocal flags, nflags
            out.append(flags << (8 - nflags))
            out.extend(items)
            items.clear()
            flags = 0
            nflags = 0

        while i < n:
            best_len = 0
            best_dist = 0
            if i < hash_limit:
                h = int(hashes[i])
                cand = int(head[h])
                tries = probes
                max_len = min(_MAX_MATCH, n - i)
                while cand >= 0 and tries > 0:
                    # Run-ahead insertion (below) can leave positions >= i in
                    # the table; they are not valid match sources yet.
                    if cand < i:
                        if i - cand > _MAX_DIST:
                            break  # chain only gets older from here
                        length = _match_length(data, cand, i, max_len)
                        if length > best_len:
                            best_len = length
                            best_dist = i - cand
                            if length >= max_len:
                                break
                    if chain is None:
                        break
                    cand = int(chain[cand])
                    tries -= 1

            if best_len >= _MIN_MATCH:
                flags = (flags << 1) | 1
                items += struct.pack("<HB", best_dist, best_len - _MIN_MATCH)
                # Insert skipped positions into the dictionary (bounded so
                # long runs stay O(1) per token at level 1).
                insert_end = min(i + (best_len if probes > 1 else 8), hash_limit)
                for j in range(i, insert_end):
                    hj = int(hashes[j])
                    if chain is not None:
                        chain[j] = head[hj]
                    head[hj] = j
                i += best_len
            else:
                flags = flags << 1
                items.append(data[i])
                if i < hash_limit:
                    if chain is not None:
                        chain[i] = head[h]
                    head[h] = i
                i += 1
            nflags += 1
            if nflags == 8:
                flush()
        if nflags:
            flush()
        return header + bytes(out)

    @staticmethod
    def _encode_all_literals(data: bytes) -> bytes:
        out = bytearray()
        for start in range(0, len(data), 8):
            chunk = data[start : start + 8]
            out.append(0)
            out += chunk
        return bytes(out)

    # -- decoding ----------------------------------------------------------

    def decode(self, payload: bytes) -> bytes:
        if len(payload) < 8 or payload[:4] != _MAGIC:
            raise CodecError("lzo: bad or truncated header")
        (orig_len,) = struct.unpack_from("<I", payload, 4)
        out = bytearray()
        i = 8
        n = len(payload)
        while len(out) < orig_len:
            if i >= n:
                raise CodecError("lzo: truncated stream")
            flags = payload[i]
            i += 1
            for bit in range(7, -1, -1):
                if len(out) >= orig_len:
                    break
                if flags & (1 << bit):
                    if i + 3 > n:
                        raise CodecError("lzo: truncated match")
                    dist, lx = struct.unpack_from("<HB", payload, i)
                    i += 3
                    length = lx + _MIN_MATCH
                    src = len(out) - dist
                    if src < 0 or dist == 0:
                        raise CodecError("lzo: match distance out of range")
                    if dist >= length:
                        out += out[src : src + length]
                    else:  # overlapping copy: replicate the window
                        window = out[src:]
                        reps = -(-length // dist)
                        out += (bytes(window) * reps)[:length]
                else:
                    if i >= n:
                        raise CodecError("lzo: truncated literal")
                    out.append(payload[i])
                    i += 1
        if len(out) != orig_len:
            raise CodecError("lzo: length mismatch after decode")
        return bytes(out)


def _match_length(data: bytes, src: int, dst: int, max_len: int) -> int:
    """Longest common prefix of data[src:] and data[dst:], capped."""
    length = 0
    # Chunked comparison first (C-speed), then the byte tail.
    while length + 16 <= max_len and (
        data[src + length : src + length + 16]
        == data[dst + length : dst + length + 16]
    ):
        length += 16
    while length < max_len and data[src + length] == data[dst + length]:
        length += 1
    return length


register_codec("lzo", lambda **kw: LZOCodec(**kw))
