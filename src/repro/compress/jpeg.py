"""Baseline-JPEG-style lossy image codec, implemented from scratch.

The paper's workhorse: "When lossy compression is acceptable, JPEG is the
choice because of the excellent compression it can achieve."  This codec
follows the baseline JPEG structure — RGB→YCbCr, 4:2:0 chroma subsampling,
8×8 DCT, quality-scaled quantization, zigzag scan, DC prediction, AC
zero-run coding with ZRL/EOB, canonical Huffman entropy coding with
amplitude bits — in our own container format (it is not bit-compatible with
ITU T.81; see DESIGN.md §7).

Two stream versions share the container:

- **v1** (legacy): DC/AC code words and amplitude bits interleaved in one
  stream per plane; the decoder walks it token by token in Python.
- **v2** (default): per plane, the DC size symbols and the AC run/size
  symbols are entropy-coded as *interleaved Huffman lanes*
  (:func:`repro.compress.huffman.encode_interleaved`) and the amplitude
  bits ride in a third raw bit stream.  Amplitude bit-lengths are implied
  by the decoded symbols, so after the lane decode the amplitudes, DC
  prediction, zero-run expansion, and coefficient placement are all single
  vectorized passes — no per-token Python loop anywhere on the decode path.

Both versions decode to byte-identical images; the encoder picks the
version via ``stream_version`` and the decoder dispatches on the header.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compress.base import Codec, CodecError, register_codec
from repro.compress.bitio import pack_values, sliding_code_windows, unpack_bits
from repro.compress.color import (
    downsample_420,
    pad_to_multiple,
    rgb_to_ycbcr,
    ycbcr_420_planes_to_rgb,
    ycbcr_planes_to_rgb,
)
from repro.compress.context import CodecContext
from repro.compress.dct import (
    BLOCK,
    blockize,
    dct2_blocks,
    partial_idct_blocks,
    unblockize,
    zigzag_indices,
)
from repro.compress.huffman import (
    HuffmanCode,
    build_code,
    decode_interleaved,
    encode_interleaved,
)

__all__ = ["JPEGCodec"]

_MAGIC = b"RJPG"
_V1 = 1
_V2 = 2
_ZRL = 0xF0  # AC symbol: run of 16 zeros
_EOB = 0x00  # AC symbol: end of block
_WINDOW = 16  # decoder bit-peek width (>= max code length and amp size)

_ZIGZAG = zigzag_indices()
_UNZIGZAG = np.argsort(_ZIGZAG)


def _sizes(values: np.ndarray) -> np.ndarray:
    """JPEG size category: bits needed for |v| (0 for v == 0)."""
    return np.ceil(np.log2(np.abs(values).astype(np.float64) + 1.0)).astype(
        np.int64
    )


def _amplitude_bits(values: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """One's-complement-style amplitude encoding of signed values."""
    return np.where(values >= 0, values, values + (1 << sizes) - 1).astype(
        np.uint64
    )


def _amplitude_decode(amp: int, size: int) -> int:
    if size == 0:
        return 0
    if amp < (1 << (size - 1)):
        return amp - (1 << size) + 1
    return amp


def _amplitude_decode_vec(amp: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_amplitude_decode` (``sizes == 0`` maps to 0)."""
    amp = amp.astype(np.int64)
    sizes = sizes.astype(np.int64)
    half = np.left_shift(1, np.maximum(sizes, 1) - 1)
    neg = amp < half
    vals = np.where(neg, amp - np.left_shift(1, sizes) + 1, amp)
    return np.where(sizes == 0, 0, vals)


def _extract_amplitudes(
    payload, nbits: int, sizes: np.ndarray
) -> np.ndarray:
    """Pull every variable-length amplitude field out of one raw bit stream.

    ``sizes[i]`` bits per field, concatenated MSB-first — the inverse of
    ``pack_values(amps, sizes)``.  Each field (at most 16 bits, so spanning
    at most 3 bytes) is sliced out of a big-endian 32-bit word gathered at
    its start byte — one vectorized pass over the tokens, never over the
    individual bits.
    """
    sizes = sizes.astype(np.int64)
    ends = np.cumsum(sizes)
    total = int(ends[-1]) if sizes.size else 0
    if total != nbits:
        raise CodecError("jpeg: amplitude bit count mismatch")
    if total == 0:
        return np.zeros(sizes.size, dtype=np.int64)
    buf = np.frombuffer(payload, dtype=np.uint8)
    if buf.size * 8 < nbits:
        raise CodecError("jpeg: amplitude bit count exceeds payload")
    padded = np.zeros(buf.size + 3, dtype=np.uint32)
    padded[: buf.size] = buf
    words = (
        (padded[:-3] << np.uint32(24))
        | (padded[1:-2] << np.uint32(16))
        | (padded[2:-1] << np.uint32(8))
        | padded[3:]
    )
    starts = ends - sizes
    raw = words.take(starts >> 3, mode="clip")
    raw >>= (np.uint32(32) - (starts & 7) - sizes).astype(np.uint32)
    raw &= ((np.uint32(1) << sizes.astype(np.uint32)) - np.uint32(1)).astype(
        np.uint32
    )
    return raw.astype(np.int64)


class _PlaneTokens:
    """Interleaved token stream of one plane, ready for bit packing.

    ``context`` selects the Huffman table (0 = DC, 1 = AC) per token;
    ``symbol`` is the table index; ``amp``/``amp_size`` the raw bits that
    follow the code word.
    """

    def __init__(self, zz: np.ndarray):
        n = zz.shape[0]
        dc = zz[:, 0].astype(np.int64)
        diffs = np.diff(dc, prepend=0)
        dc_sizes = _sizes(diffs)
        ac = zz[:, 1:].astype(np.int64)

        nzb, nzp = np.nonzero(ac)
        vals = ac[nzb, nzp]
        # zero-run before each nonzero, within its block
        prev_pos = np.full(nzb.size, -1, dtype=np.int64)
        if nzb.size > 1:
            same = nzb[1:] == nzb[:-1]
            prev_pos[1:] = np.where(same, nzp[:-1], -1)
        run = nzp - prev_pos - 1
        nzrl = run >> 4
        rem = run & 0xF
        val_sizes = _sizes(vals)
        if val_sizes.size and val_sizes.max() > 15:
            raise CodecError("jpeg: AC coefficient exceeds amplitude range")

        total_zrl = int(nzrl.sum())
        # Stream order inside a block: DC (seq -1), then for each nonzero at
        # zigzag position p: its ZRL tokens (seq 4p..4p+2, run < 63 implies
        # at most 3) then the value token (seq 4p+3); EOB last (seq 256).
        zrl_owner = np.repeat(np.arange(nzb.size), nzrl)
        zrl_intra = np.arange(total_zrl) - np.repeat(
            np.cumsum(nzrl) - nzrl, nzrl
        )
        block = np.concatenate(
            [np.arange(n), nzb[zrl_owner], nzb, np.arange(n)]
        )
        seq = np.concatenate(
            [
                np.full(n, -1, dtype=np.int64),
                4 * nzp[zrl_owner] + zrl_intra,
                4 * nzp + 3,
                np.full(n, 4 * 64, dtype=np.int64),
            ]
        )
        context = np.concatenate(
            [
                np.zeros(n, dtype=np.int64),
                np.ones(total_zrl + nzb.size + n, dtype=np.int64),
            ]
        )
        symbol = np.concatenate(
            [
                dc_sizes,
                np.full(total_zrl, _ZRL, dtype=np.int64),
                (rem << 4) | val_sizes,
                np.full(n, _EOB, dtype=np.int64),
            ]
        )
        amp_size = np.concatenate(
            [
                dc_sizes,
                np.zeros(total_zrl, dtype=np.int64),
                val_sizes,
                np.zeros(n, dtype=np.int64),
            ]
        )
        amp = np.concatenate(
            [
                _amplitude_bits(diffs, dc_sizes),
                np.zeros(total_zrl, dtype=np.uint64),
                _amplitude_bits(vals, val_sizes),
                np.zeros(n, dtype=np.uint64),
            ]
        )
        order = np.lexsort((seq, block))
        self.context = context[order]
        self.symbol = symbol[order]
        self.amp_size = amp_size[order]
        self.amp = amp[order]

    def pack(
        self, dc_code: HuffmanCode, ac_code: HuffmanCode
    ) -> tuple[bytes, int]:
        dc_codes = np.zeros(256, dtype=np.uint64)
        dc_lens = np.zeros(256, dtype=np.int64)
        dc_codes[: dc_code.codes.size] = dc_code.codes
        dc_lens[: dc_code.lengths.size] = dc_code.lengths
        is_dc = self.context == 0
        codes = np.where(
            is_dc,
            dc_codes[self.symbol],
            ac_code.codes.astype(np.uint64)[self.symbol],
        )
        lens = np.where(
            is_dc, dc_lens[self.symbol], ac_code.lengths[self.symbol]
        )
        n = self.symbol.size
        values = np.empty(2 * n, dtype=np.uint64)
        lengths = np.empty(2 * n, dtype=np.int64)
        values[0::2] = codes
        values[1::2] = self.amp
        lengths[0::2] = lens
        lengths[1::2] = self.amp_size
        return pack_values(values, lengths)

    def frequencies(self) -> tuple[np.ndarray, np.ndarray]:
        is_dc = self.context == 0
        dc_freq = np.bincount(self.symbol[is_dc], minlength=16)
        ac_freq = np.bincount(self.symbol[~is_dc], minlength=256)
        return dc_freq, ac_freq


class JPEGCodec(Codec):
    """Baseline-style JPEG codec.

    Parameters
    ----------
    quality:
        1..100, IJG convention (50 = reference tables; the paper's
        visually-lossless regime is ~75–90).
    subsample:
        4:2:0 chroma subsampling on/off (on by default, as in baseline
        encoders).
    fast_decode:
        0 = exact decode; 1/2/3 = libjpeg-style scaled decoding with a
        4x4 / 2x2 / 1x1 inverse DCT — "the decoder can also trade off
        decoding speed against image quality, by using fast but
        inaccurate approximations to the required calculations" (§4.2).
        Output keeps the full image dimensions (nearest upsample), so a
        weak display client can cheaply keep up with the frame stream.
    stream_version:
        2 (default) = interleaved-lane entropy streams with the
        vectorized decoder; 1 = the legacy per-token layout.  Both decode
        regardless of this setting.
    context:
        A shared :class:`~repro.compress.context.CodecContext`; a private
        one is created when omitted, so tables and scratch persist across
        the frames decoded by this instance either way.
    """

    name = "jpeg"
    lossless = False

    def __init__(
        self,
        quality: int = 75,
        subsample: bool = True,
        fast_decode: int = 0,
        stream_version: int = _V2,
        context: CodecContext | None = None,
    ):
        if fast_decode not in (0, 1, 2, 3):
            raise ValueError("fast_decode must be 0, 1, 2, or 3")
        if stream_version not in (_V1, _V2):
            raise ValueError("stream_version must be 1 or 2")
        self.quality = quality
        self.subsample = subsample
        self.fast_decode = fast_decode
        self.stream_version = stream_version
        self._ctx = context if context is not None else CodecContext()
        self._luma_q, self._chroma_q = self._ctx.quant_tables(quality)

    def use_context(self, context: CodecContext) -> None:
        """Adopt a shared cross-codec context (e.g. one per connection)."""
        self._ctx = context
        self._luma_q, self._chroma_q = context.quant_tables(self.quality)

    @property
    def _idct_points(self) -> int:
        return BLOCK >> self.fast_decode

    # The byte interface is intentionally unsupported: JPEG is meaningful
    # only on images.  The display daemon uses encode_image/decode_image.
    def encode(self, data: bytes) -> bytes:
        raise CodecError("jpeg: byte-stream interface unsupported; use encode_image")

    def decode(self, payload: bytes) -> bytes:
        raise CodecError("jpeg: byte-stream interface unsupported; use decode_image")

    # -- encoding ----------------------------------------------------------

    def encode_image(self, image: np.ndarray) -> bytes:
        arr = np.ascontiguousarray(image)
        if arr.dtype != np.uint8:
            raise CodecError("jpeg: image must be uint8")
        if arr.ndim == 3 and arr.shape[2] == 1:
            arr = arr[..., 0]
        gray = arr.ndim == 2
        if not gray and (arr.ndim != 3 or arr.shape[2] != 3):
            raise CodecError(f"jpeg: bad image shape {arr.shape}")

        h, w = arr.shape[:2]
        if gray:
            planes = [(arr.astype(np.float32), self._luma_q)]
        else:
            ycc = rgb_to_ycbcr(arr)
            y = ycc[..., 0]
            if self.subsample:
                cb = downsample_420(ycc[..., 1])
                cr = downsample_420(ycc[..., 2])
            else:
                cb, cr = ycc[..., 1], ycc[..., 2]
            planes = [
                (y, self._luma_q),
                (cb, self._chroma_q),
                (cr, self._chroma_q),
            ]

        out = [
            _MAGIC,
            struct.pack(
                "<BIIBBB",
                self.stream_version,
                h,
                w,
                1 if gray else 3,
                self.quality,
                1 if self.subsample else 0,
            ),
        ]
        for plane, qtable in planes:
            out.append(self._encode_plane(plane, qtable))
        return b"".join(out)

    def _encode_plane(self, plane: np.ndarray, qtable: np.ndarray) -> bytes:
        padded = pad_to_multiple(plane, BLOCK)
        blocks, bh, bw = blockize(padded.astype(np.float32) - 128.0)
        coeffs = dct2_blocks(blocks)
        quant = np.rint(coeffs / qtable).astype(np.int64)
        zz = quant.reshape(-1, 64)[:, _ZIGZAG]
        tokens = _PlaneTokens(zz)
        dc_freq, ac_freq = tokens.frequencies()
        dc_code = build_code(dc_freq)
        ac_code = build_code(ac_freq)
        if self.stream_version == _V1:
            payload, nbits = tokens.pack(dc_code, ac_code)
            parts = [
                struct.pack("<IIQ", bh, bw, nbits),
                dc_code.to_bytes(),
                ac_code.to_bytes(),
                struct.pack("<I", len(payload)),
                payload,
            ]
            return b"".join(parts)
        # v2: separate DC / AC symbol lane streams + one raw amplitude stream
        is_dc = tokens.context == 0
        dc_syms = tokens.symbol[is_dc]  # block order (DC leads each block)
        ac_syms = tokens.symbol[~is_dc]  # stream order within/across blocks
        amps = np.concatenate([tokens.amp[is_dc], tokens.amp[~is_dc]])
        sizes = np.concatenate(
            [tokens.amp_size[is_dc], tokens.amp_size[~is_dc]]
        )
        amp_payload, amp_nbits = pack_values(amps, sizes)
        parts = [
            struct.pack("<III", bh, bw, ac_syms.size),
            dc_code.to_bytes(),
            ac_code.to_bytes(),
            encode_interleaved(dc_syms, dc_code),
            encode_interleaved(ac_syms, ac_code),
            struct.pack("<QI", amp_nbits, len(amp_payload)),
            amp_payload,
        ]
        return b"".join(parts)

    # -- decoding ----------------------------------------------------------

    def decode_image(self, payload: bytes) -> np.ndarray:
        if len(payload) < 16 or payload[:4] != _MAGIC:
            raise CodecError("jpeg: bad or truncated header")
        version, h, w, channels, quality, subsample = struct.unpack_from(
            "<BIIBBB", payload, 4
        )
        if version not in (_V1, _V2):
            raise CodecError(f"jpeg: unsupported version {version}")
        if not (1 <= h <= 65536 and 1 <= w <= 65536):
            raise CodecError(f"jpeg: implausible image dimensions {h}x{w}")
        if channels not in (1, 3):
            raise CodecError(f"jpeg: bad channel count {channels}")
        if not 1 <= quality <= 100:
            raise CodecError(f"jpeg: bad quality field {quality}")
        luma_q, chroma_q = self._ctx.quant_tables(quality)
        offset = 4 + 12
        planes = []
        # a plane's block grid can never exceed the padded image grid
        max_blocks = ((h + 8) // 8 + 1) * ((w + 8) // 8 + 1)
        qtables = [luma_q] + [chroma_q, chroma_q][: max(channels - 1, 0)]
        for qtable in qtables[:channels]:
            plane, offset = self._decode_plane(
                payload, offset, qtable, max_blocks, version
            )
            planes.append(plane)

        if channels == 1:
            return np.clip(np.rint(planes[0][:h, :w]), 0, 255).astype(np.uint8)
        y = planes[0][:h, :w]
        if subsample:
            return ycbcr_420_planes_to_rgb(y, planes[1], planes[2])
        return ycbcr_planes_to_rgb(y, planes[1][:h, :w], planes[2][:h, :w])

    def _decode_plane(
        self,
        payload: bytes,
        offset: int,
        qtable: np.ndarray,
        max_blocks: int,
        version: int = _V1,
    ) -> tuple[np.ndarray, int]:
        if version == _V2:
            return self._decode_plane_v2(payload, offset, qtable, max_blocks)
        if offset + 16 > len(payload):
            raise CodecError("jpeg: truncated plane header")
        bh, bw, nbits = struct.unpack_from("<IIQ", payload, offset)
        offset += 16
        if bh < 1 or bw < 1 or bh * bw > max_blocks:
            raise CodecError(f"jpeg: implausible block grid {bh}x{bw}")
        dc_code, offset = self._ctx.huffman_from_bytes(payload, offset)
        ac_code, offset = self._ctx.huffman_from_bytes(payload, offset)
        if offset + 4 > len(payload):
            raise CodecError("jpeg: truncated plane payload length")
        (plen,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        if offset + plen > len(payload):
            raise CodecError("jpeg: truncated plane payload")
        if nbits > 8 * plen:
            raise CodecError("jpeg: bit count exceeds payload size")

        nblocks = bh * bw
        zz = self._entropy_decode(
            payload[offset : offset + plen], int(nbits), nblocks, dc_code, ac_code
        )
        offset += plen
        return self._plane_from_zz(zz, bh, bw, qtable), offset

    def _plane_from_zz(
        self, zz: np.ndarray, bh: int, bw: int, qtable: np.ndarray
    ) -> np.ndarray:
        quant = zz[:, _UNZIGZAG].reshape(-1, BLOCK, BLOCK).astype(np.float32)
        quant *= qtable
        # the +128 level shift, folded into the DC coefficient (128 * 8 for
        # the orthonormal 8-point basis; the k-point rescale preserves it)
        quant[:, 0, 0] += 1024.0
        return self._plane_from_blocks(quant, bh, bw)

    def _plane_from_blocks(
        self, quant: np.ndarray, bh: int, bw: int
    ) -> np.ndarray:
        """Inverse-transform dequantized ``(n, 8, 8)`` blocks to a plane."""
        k = self._idct_points
        blocks = partial_idct_blocks(quant, k)
        if k == BLOCK:
            return unblockize(blocks, bh, bw)
        reduced = (
            blocks.reshape(bh, bw, k, k).swapaxes(1, 2).reshape(bh * k, bw * k)
        )
        factor = BLOCK // k
        return np.repeat(np.repeat(reduced, factor, axis=0), factor, axis=1)

    def _decode_plane_v2(
        self, payload: bytes, offset: int, qtable: np.ndarray, max_blocks: int
    ) -> tuple[np.ndarray, int]:
        if offset + 12 > len(payload):
            raise CodecError("jpeg: truncated plane header")
        bh, bw, n_ac = struct.unpack_from("<III", payload, offset)
        offset += 12
        if bh < 1 or bw < 1 or bh * bw > max_blocks:
            raise CodecError(f"jpeg: implausible block grid {bh}x{bw}")
        nblocks = bh * bw
        if n_ac < nblocks or n_ac > 65 * nblocks:
            # every block carries at least an EOB and at most 64 tokens + EOB
            raise CodecError("jpeg: implausible AC token count")
        dc_code, offset = self._ctx.huffman_from_bytes(payload, offset)
        ac_code, offset = self._ctx.huffman_from_bytes(payload, offset)
        dc_syms, offset = decode_interleaved(payload, offset, nblocks, dc_code)
        ac_syms, offset = decode_interleaved(payload, offset, n_ac, ac_code)
        if offset + 12 > len(payload):
            raise CodecError("jpeg: truncated amplitude header")
        amp_nbits, amp_len = struct.unpack_from("<QI", payload, offset)
        offset += 12
        if offset + amp_len > len(payload):
            raise CodecError("jpeg: truncated amplitude payload")
        if amp_nbits > 8 * amp_len:
            raise CodecError("jpeg: amplitude bit count exceeds payload")

        dc_sizes = dc_syms.astype(np.int64)
        if dc_sizes.size and dc_sizes.max() > _WINDOW:
            raise CodecError("jpeg: DC size category out of range")
        is_eob = ac_syms == _EOB
        is_zrl = ac_syms == _ZRL
        is_val = ~(is_eob | is_zrl)
        ac_run = np.where(is_val, ac_syms >> 4, 0).astype(np.int64)
        ac_sizes = np.where(is_val, ac_syms & 0xF, 0).astype(np.int64)

        sizes = np.concatenate([dc_sizes, ac_sizes])
        amps = _extract_amplitudes(
            payload[offset : offset + amp_len], int(amp_nbits), sizes
        )
        offset += amp_len
        vals = _amplitude_decode_vec(amps, sizes)

        if int(is_eob.sum()) != nblocks or (n_ac and not is_eob[-1]):
            raise CodecError("jpeg: block terminator count mismatch")
        # block id of each AC token = EOBs seen so far (exclusive scan)
        block_id = np.cumsum(is_eob) - is_eob
        # zigzag advance per token; EOBs advance nothing
        adv = np.where(is_zrl, 16, ac_run + 1)
        adv[is_eob] = 0
        cs = np.cumsum(adv)
        excl = cs - adv
        first = np.flatnonzero(
            np.concatenate([[True], block_id[1:] != block_id[:-1]])
        )
        base = excl[first]  # every block has >= 1 token (its EOB)
        rel = excl - base[block_id]
        k = 1 + rel + ac_run
        if is_zrl.any() and (1 + rel[is_zrl] + 16).max() > 63:
            raise CodecError("jpeg: zero run past end of block")
        if is_val.any() and k[is_val].max() > 63:
            raise CodecError("jpeg: AC coefficient index overflow")
        # Scatter dequantized coefficients straight into natural-order
        # float32 blocks: only nonzero tokens are touched, so the unzigzag
        # gather and the full-plane dequant multiply both disappear.
        qflat = qtable.reshape(-1)
        blocks = self._ctx.scratch("blocks", (nblocks, 64), np.float32)
        blocks.fill(0.0)
        dc = np.cumsum(vals[:nblocks]).astype(np.float32)
        dc *= qflat[0]
        # +128 level shift folded into the DC coefficient (128 * 8)
        dc += 1024.0
        blocks[:, 0] = dc
        if is_val.any():
            nat = _ZIGZAG[k[is_val]]
            blocks.reshape(-1)[block_id[is_val] * 64 + nat] = (
                vals[nblocks:][is_val].astype(np.float32) * qflat[nat]
            )
        plane = self._plane_from_blocks(
            blocks.reshape(-1, BLOCK, BLOCK), bh, bw
        )
        return plane, offset

    @staticmethod
    def _entropy_decode(
        payload: bytes,
        nbits: int,
        nblocks: int,
        dc_code: HuffmanCode,
        ac_code: HuffmanCode,
    ) -> np.ndarray:
        bits = unpack_bits(payload, nbits)
        windows = sliding_code_windows(bits, _WINDOW)
        dc_sym, dc_len, dc_width = dc_code.decode_tables()
        ac_sym, ac_len, ac_width = ac_code.decode_tables()
        dc_shift = _WINDOW - dc_width
        ac_shift = _WINDOW - ac_width

        zz = np.zeros((nblocks, 64), dtype=np.int64)
        pos = 0
        prev_dc = 0
        win = windows
        for b in range(nblocks):
            if pos >= nbits:
                raise CodecError("jpeg: bit stream exhausted (DC)")
            # DC: size category, then amplitude bits
            wv = int(win[pos]) >> dc_shift
            ln = int(dc_len[wv])
            if ln == 0:
                raise CodecError("jpeg: invalid DC code")
            size = int(dc_sym[wv])
            pos += ln
            if size:
                if pos >= nbits:
                    raise CodecError("jpeg: bit stream exhausted (DC amp)")
                amp = int(win[pos]) >> (_WINDOW - size)
                pos += size
            else:
                amp = 0
            prev_dc += _amplitude_decode(amp, size)
            zz[b, 0] = prev_dc
            # AC: run/size tokens until the (always-present) EOB symbol
            k = 1
            while True:
                if pos >= nbits:
                    raise CodecError("jpeg: bit stream exhausted (AC)")
                wv = int(win[pos]) >> ac_shift
                ln = int(ac_len[wv])
                if ln == 0:
                    raise CodecError("jpeg: invalid AC code")
                sym = int(ac_sym[wv])
                pos += ln
                if sym == _EOB:
                    break
                if sym == _ZRL:
                    k += 16
                    if k > 63:
                        raise CodecError("jpeg: zero run past end of block")
                    continue
                run = sym >> 4
                size = sym & 0xF
                k += run
                if k > 63:
                    raise CodecError("jpeg: AC coefficient index overflow")
                if size:
                    if pos >= nbits:
                        raise CodecError("jpeg: bit stream exhausted (AC amp)")
                    amp = int(win[pos]) >> (_WINDOW - size)
                    pos += size
                    zz[b, k] = _amplitude_decode(amp, size)
                k += 1
        if pos > nbits:
            raise CodecError("jpeg: bit stream overrun")
        return zz


register_codec("jpeg", lambda **kw: JPEGCodec(**kw))
